//! The `noise_sweep` experiment: false-negative rate as a function of
//! injected PUF error weight, reproducing the paper's §4.1 analysis that
//! the BCH\[32,6,16\] reverse fuzzy extractor recovers up to `t = 7` flipped
//! bits and fails beyond.
//!
//! Two layers of evidence, both from the same sweep:
//!
//! 1. **Extractor level** — exact-weight errors applied directly to a
//!    32-bit response word; the fuzzy extractor either reconstructs the
//!    noisy word within the verifier's bounded-distance rule
//!    (`corrected_errors ≤ t`) or it does not. This boundary is
//!    code-theoretic and deterministic: weight ≤ 7 always recovers,
//!    weight ≥ 8 never does — the raw maximum-likelihood decoder would
//!    often still return the exact heavier pattern, but the verifier
//!    refuses any decode beyond `t`, exactly like the paper's BCH decoder.
//! 2. **Protocol level** — full attestation sessions on the paper's 32-bit
//!    profile with a contiguous burst of the given weight injected into
//!    *every* raw PUF evaluation. Each session needs all of its raw
//!    evaluations reconstructed, so the per-evaluation boundary compounds:
//!    the measured FNR curve stays near 0 below `t`, crosses at `t = 7`
//!    (where intrinsic device noise stacked on the burst can tip single
//!    evaluations over), and pins to 1 beyond.
//!
//! The contiguous-burst shape of layer 2 is deliberate: it is the error
//! pattern overclocking produces (carry-chain setup violations corrupt
//! contiguous runs) and the pattern that *aliased onto RM(1,5) codewords
//! within the `t`-bound* before the pipeline grew its burst interleaver —
//! early sweeps measured the FNR dipping back down at weight 9–10. See
//! DESIGN.md §5b finding 7; this sweep is the regression harness for it.

use crate::plan::FaultPlan;
use pufatt::enroll::enroll;
use pufatt::protocol::{provision, run_session, AttestationRequest, Channel};
use pufatt::PufattError;
use pufatt_alupuf::device::AluPufConfig;
use pufatt_ecc::gf2::BitVec;
use pufatt_ecc::noise::exact_weight_error;
use pufatt_ecc::rm::ReedMuller1;
use pufatt_ecc::ReverseFuzzyExtractor;
use pufatt_pe32::cpu::Clock;
use pufatt_swatt::checksum::SwattParams;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// The error-correction capability of the paper's BCH\[32,6,16\] code.
pub const PAPER_T: u32 = 7;

/// Shape of one noise sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepConfig {
    /// Seed for every random draw in the sweep (challenges, error
    /// positions, intrinsic device noise derivation).
    pub seed: u64,
    /// Extractor-level trials per error weight.
    pub extractor_trials: u32,
    /// Protocol-level attestation sessions per error weight.
    pub sessions_per_weight: u32,
    /// Sweep weights `0..=max_weight`.
    pub max_weight: u32,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seed: 42,
            extractor_trials: 200,
            sessions_per_weight: 10,
            max_weight: 10,
        }
    }
}

/// Measured outcomes for one error weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightRow {
    /// Hamming weight of the injected error.
    pub weight: u32,
    /// Extractor-level trials where reconstruction returned the exact
    /// noisy response.
    pub extractor_recovered: u32,
    /// Extractor-level trials run.
    pub extractor_trials: u32,
    /// Protocol-level sessions the verifier accepted.
    pub accepts: u32,
    /// Protocol-level sessions run.
    pub sessions: u32,
}

impl WeightRow {
    /// Fraction of extractor trials that recovered exactly.
    pub fn recovery_rate(&self) -> f64 {
        if self.extractor_trials == 0 {
            return 0.0;
        }
        f64::from(self.extractor_recovered) / f64::from(self.extractor_trials)
    }

    /// Protocol-level false-negative rate: honest sessions rejected.
    pub fn fnr(&self) -> f64 {
        if self.sessions == 0 {
            return 0.0;
        }
        1.0 - f64::from(self.accepts) / f64::from(self.sessions)
    }
}

/// The complete result of a noise sweep: one row per error weight.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseSweep {
    /// The configuration that produced this sweep.
    pub config: SweepConfig,
    /// The code's error-correction bound (`t = 7` for the paper's code).
    pub t: u32,
    /// One row per swept weight, ascending.
    pub rows: Vec<WeightRow>,
}

impl NoiseSweep {
    /// The row for a given weight, if it was swept.
    pub fn row(&self, weight: u32) -> Option<&WeightRow> {
        self.rows.iter().find(|r| r.weight == weight)
    }

    /// Whether the measured boundary matches the paper: full extractor
    /// recovery for every weight ≤ `t`, zero beyond, and session FNR = 1
    /// for every burst weight > `t + 1` (the `t + 1` session row may
    /// straddle, because intrinsic device noise can *cancel* a burst bit
    /// and pull the effective weight back under `t`).
    pub fn boundary_holds(&self) -> bool {
        self.rows.iter().all(|r| {
            if r.weight <= self.t {
                r.extractor_recovered == r.extractor_trials
            } else {
                r.extractor_recovered == 0 && (r.weight <= self.t + 1 || r.fnr() == 1.0)
            }
        })
    }
}

impl fmt::Display for NoiseSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "noise_sweep: BCH[32,6,16] boundary at t = {} (seed {})", self.t, self.config.seed)?;
        writeln!(f, "| weight | extractor recovery | session FNR | verdict |")?;
        writeln!(f, "|-------:|-------------------:|------------:|---------|")?;
        for row in &self.rows {
            let note = if row.weight <= self.t {
                "recovers"
            } else if row.fnr() == 1.0 {
                "rejected"
            } else {
                "boundary"
            };
            writeln!(
                f,
                "| {:>6} | {:>7}/{:<5} {:>4.0}% | {:>11.2} | {} |",
                row.weight,
                row.extractor_recovered,
                row.extractor_trials,
                row.recovery_rate() * 100.0,
                row.fnr(),
                note
            )?;
        }
        Ok(())
    }
}

/// The small-but-faithful protocol profile the sweep attests with: the
/// paper's 32-bit PUF and code, scaled-down traversal so a full sweep runs
/// in seconds.
pub fn sweep_params() -> SwattParams {
    SwattParams { region_bits: 8, rounds: 256, puf_interval: 32 }
}

/// Runs the full sweep: extractor-level exact-weight trials and
/// protocol-level burst sessions for every weight in `0..=max_weight`.
///
/// Deterministic in `config.seed`: the same configuration reproduces the
/// identical table.
///
/// # Errors
///
/// Propagates enrolment/provisioning failures; individual reconstruction
/// failures are the *measurement* and are counted, not raised.
pub fn run_noise_sweep(config: &SweepConfig) -> Result<NoiseSweep, PufattError> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let extractor = ReverseFuzzyExtractor::new(ReedMuller1::bch_32_6_16());

    // One enrolled device serves every weight; the injected fault is the
    // only thing that changes between rows.
    let enrolled = enroll(AluPufConfig::paper_32bit(), 42, 0)?;
    let (mut prover, verifier, _) =
        provision(&enrolled, sweep_params(), Clock::new(100.0), Channel::sensor_link(), 7, 1.10)?;

    let mut rows = Vec::with_capacity(config.max_weight as usize + 1);
    for weight in 0..=config.max_weight {
        // Layer 1: the extractor in isolation, exact-weight errors.
        let mut extractor_recovered = 0;
        for _ in 0..config.extractor_trials {
            let reference = BitVec::from_word(u64::from(rng.gen::<u32>()), 32);
            let error = exact_weight_error(32, weight as usize, &mut rng);
            let noisy = reference.xor(&error);
            let recovered = extractor
                .generate(&noisy)
                .and_then(|helper| extractor.reproduce(&reference, &helper))
                .map(|rec| rec.response == noisy && rec.corrected_errors <= PAPER_T as usize)
                .unwrap_or(false);
            extractor_recovered += u32::from(recovered);
        }

        // Layer 2: full sessions with a weight-`weight` burst on every raw
        // PUF evaluation.
        let plan = if weight == 0 {
            FaultPlan::clean(config.seed)
        } else {
            FaultPlan::clean(config.seed).with_burst(weight, 1)
        };
        prover.set_response_fault(plan.response_fault());
        let mut accepts = 0;
        for _ in 0..config.sessions_per_weight {
            let request = AttestationRequest::random(&mut rng);
            let (verdict, _) = run_session(&mut prover, &verifier, request)?;
            accepts += u32::from(verdict.accepted);
        }

        rows.push(WeightRow {
            weight,
            extractor_recovered,
            extractor_trials: config.extractor_trials,
            accepts,
            sessions: config.sessions_per_weight,
        });
    }
    prover.set_response_fault(None);

    Ok(NoiseSweep { config: *config, t: PAPER_T, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> SweepConfig {
        SweepConfig {
            seed: 42,
            extractor_trials: 40,
            sessions_per_weight: 4,
            max_weight: 9,
        }
    }

    #[test]
    fn boundary_sits_at_t_equals_7() {
        let sweep = run_noise_sweep(&quick_config()).expect("sweep runs");
        assert!(sweep.boundary_holds(), "boundary must hold:\n{sweep}");
        for weight in 0..=PAPER_T {
            let row = sweep.row(weight).expect("row exists");
            assert_eq!(row.extractor_recovered, row.extractor_trials, "weight {weight} must always recover");
        }
        let beyond = sweep.row(9).expect("row exists");
        assert_eq!(beyond.accepts, 0, "9-bit bursts must never be accepted:\n{sweep}");
        assert_eq!(beyond.extractor_recovered, 0, "9-bit errors must never pass the t-bound");
    }

    #[test]
    fn clean_weight_zero_row_accepts_everything() {
        let config = SweepConfig { max_weight: 0, ..quick_config() };
        let sweep = run_noise_sweep(&config).expect("sweep runs");
        let row = sweep.row(0).expect("row exists");
        assert_eq!(row.accepts, row.sessions, "clean sessions must all accept:\n{sweep}");
        assert_eq!(row.fnr(), 0.0);
    }

    #[test]
    fn same_seed_reproduces_the_identical_table() {
        let config = SweepConfig {
            extractor_trials: 20,
            sessions_per_weight: 2,
            max_weight: 8,
            seed: 5,
        };
        let a = run_noise_sweep(&config).expect("sweep runs");
        let b = run_noise_sweep(&config).expect("sweep runs");
        assert_eq!(a, b, "sweeps must be deterministic in the seed");
    }

    #[test]
    fn display_emits_one_row_per_weight() {
        let config = SweepConfig {
            extractor_trials: 4,
            sessions_per_weight: 1,
            max_weight: 3,
            seed: 1,
        };
        let sweep = run_noise_sweep(&config).expect("sweep runs");
        let text = sweep.to_string();
        assert_eq!(text.lines().count(), 3 + 4, "header + separator + title + 4 rows:\n{text}");
        assert!(text.contains("t = 7"));
    }
}
