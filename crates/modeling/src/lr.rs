//! Logistic regression with stochastic gradient descent.
//!
//! The standard model-building attack on delay PUFs (Rührmair et al., CCS
//! 2010) fits a linear threshold over challenge-derived features. Plain,
//! dependency-free SGD is plenty here: the point of the experiment is the
//! *gap* between raw and obfuscated responses, not squeezing the last
//! percent of attack accuracy.

use rand::Rng;

/// A trainable binary classifier — the interface the CRP attacks are
/// generic over (implemented by [`Logistic`] and [`crate::mlp::Mlp`]).
pub trait Model {
    /// Trains on `(features, label)` pairs.
    fn train<R: Rng + ?Sized>(&mut self, data: &[(Vec<f64>, bool)], rng: &mut R);
    /// Hard prediction for one sample.
    fn classify(&self, x: &[f64]) -> bool;

    /// Fraction of correctly classified samples.
    fn score(&self, data: &[(Vec<f64>, bool)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        data.iter().filter(|(x, y)| self.classify(x) == *y).count() as f64 / data.len() as f64
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Initial learning rate (decayed as 1/(1 + epoch)).
    pub learning_rate: f64,
    /// L2 regularisation strength.
    pub l2: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 30, learning_rate: 0.05, l2: 1e-4 }
    }
}

/// A binary logistic-regression model (weights + bias).
#[derive(Debug, Clone, PartialEq)]
pub struct Logistic {
    weights: Vec<f64>,
    bias: f64,
}

impl Logistic {
    /// Creates a zero-initialised model for `features` inputs.
    pub fn new(features: usize) -> Self {
        Logistic { weights: vec![0.0; features], bias: 0.0 }
    }

    /// Number of input features.
    pub fn features(&self) -> usize {
        self.weights.len()
    }

    /// Predicted probability of label 1.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the feature count.
    pub fn probability(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature length mismatch");
        let score: f64 = self.bias + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>();
        1.0 / (1.0 + (-score).exp())
    }

    /// Hard prediction.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.probability(x) >= 0.5
    }

    /// Fits the model with SGD over `(x, label)` pairs, shuffling each
    /// epoch with `rng`.
    ///
    /// # Panics
    ///
    /// Panics if any sample's feature length disagrees with the model.
    pub fn fit<R: Rng + ?Sized>(&mut self, data: &[(Vec<f64>, bool)], config: &TrainConfig, rng: &mut R) {
        if data.is_empty() {
            return;
        }
        let mut order: Vec<usize> = (0..data.len()).collect();
        for epoch in 0..config.epochs {
            // Fisher–Yates shuffle for per-epoch sample order.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let lr = config.learning_rate / (1.0 + epoch as f64 * 0.1);
            for &idx in &order {
                let (x, label) = &data[idx];
                let p = self.probability(x);
                let err = p - (*label as u8 as f64);
                self.bias -= lr * err;
                for (w, v) in self.weights.iter_mut().zip(x) {
                    *w -= lr * (err * v + config.l2 * *w);
                }
            }
        }
    }

    /// Fraction of correctly classified samples.
    pub fn accuracy(&self, data: &[(Vec<f64>, bool)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let hits = data.iter().filter(|(x, y)| self.predict(x) == *y).count();
        hits as f64 / data.len() as f64
    }
}

/// A [`Logistic`] bundled with its training configuration, implementing
/// [`Model`].
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticModel {
    /// The underlying regression.
    pub inner: Logistic,
    /// Hyper-parameters used by [`Model::train`].
    pub config: TrainConfig,
}

impl LogisticModel {
    /// Creates a zero-initialised model.
    pub fn new(features: usize, config: TrainConfig) -> Self {
        LogisticModel { inner: Logistic::new(features), config }
    }
}

impl Model for LogisticModel {
    fn train<R: Rng + ?Sized>(&mut self, data: &[(Vec<f64>, bool)], rng: &mut R) {
        self.inner.fit(data, &self.config, rng);
    }

    fn classify(&self, x: &[f64]) -> bool {
        self.inner.predict(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    fn linearly_separable(n: usize, rng: &mut ChaCha8Rng) -> Vec<(Vec<f64>, bool)> {
        // label = sign(2*x0 - x1 + 0.5*x2)
        (0..n)
            .map(|_| {
                let x: Vec<f64> = (0..3).map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 }).collect();
                let score = 2.0 * x[0] - x[1] + 0.5 * x[2];
                (x, score > 0.0)
            })
            .collect()
    }

    #[test]
    fn learns_linear_concept() {
        let mut r = rng();
        let train = linearly_separable(400, &mut r);
        let test = linearly_separable(200, &mut r);
        let mut model = Logistic::new(3);
        model.fit(&train, &TrainConfig::default(), &mut r);
        assert!(model.accuracy(&test) > 0.97, "accuracy {}", model.accuracy(&test));
    }

    #[test]
    fn cannot_learn_parity() {
        // XOR of 6 balanced bits has no linear structure: accuracy ~ 0.5.
        let mut r = rng();
        let gen = |rng: &mut ChaCha8Rng, n: usize| -> Vec<(Vec<f64>, bool)> {
            (0..n)
                .map(|_| {
                    let bits: Vec<bool> = (0..6).map(|_| rng.gen()).collect();
                    let x: Vec<f64> = bits.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
                    let y = bits.iter().fold(false, |a, &b| a ^ b);
                    (x, y)
                })
                .collect()
        };
        let train = gen(&mut r, 600);
        let test = gen(&mut r, 400);
        let mut model = Logistic::new(6);
        model.fit(&train, &TrainConfig::default(), &mut r);
        let acc = model.accuracy(&test);
        assert!((0.4..0.6).contains(&acc), "parity must be unlearnable, accuracy {acc}");
    }

    #[test]
    fn learns_bias_only_concept() {
        let mut r = rng();
        let data: Vec<(Vec<f64>, bool)> = (0..300).map(|i| (vec![0.0, 0.0], i % 10 < 8)).collect();
        let mut model = Logistic::new(2);
        model.fit(&data, &TrainConfig::default(), &mut r);
        assert!(model.accuracy(&data) >= 0.79, "majority class must be captured");
    }

    #[test]
    fn empty_fit_is_noop() {
        let mut r = rng();
        let mut model = Logistic::new(4);
        let before = model.clone();
        model.fit(&[], &TrainConfig::default(), &mut r);
        assert_eq!(model, before);
    }

    #[test]
    #[should_panic(expected = "feature length mismatch")]
    fn feature_length_is_checked() {
        Logistic::new(3).probability(&[0.0; 2]);
    }
}
