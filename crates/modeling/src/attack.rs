//! Modeling attacks on the ALU PUF.
//!
//! Reproduces the security argument of §4.1 ("Side-channel Attack
//! Resiliency") and §4.2 ("Prover Authentication"): raw delay-PUF responses
//! are learnable from observed CRPs, while the two-phase XOR obfuscation
//! (each output bit = XOR of 8 raw bits from 8 different challenges) pushes
//! the attack back to coin-flipping at practical CRP counts.

use crate::lr::{Logistic, Model, TrainConfig};
use pufatt::obfuscate::RESPONSES_PER_OUTPUT;
use pufatt_alupuf::challenge::Challenge;
use pufatt_alupuf::device::PufInstance;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Challenge feature encodings available to the attacker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureMap {
    /// ±1 encoding of the raw operand bits (2·width features).
    RawBits,
    /// Carry-aware encoding: per bit position, the propagate (`aᵢ ⊕ bᵢ`)
    /// and generate (`aᵢ ∧ bᵢ`) signals that drive the ripple-carry race —
    /// domain knowledge that strengthens the attack.
    CarryAware,
}

impl FeatureMap {
    /// Encodes one challenge.
    pub fn encode(self, ch: Challenge, width: usize) -> Vec<f64> {
        let pm = |b: bool| if b { 1.0 } else { -1.0 };
        match self {
            FeatureMap::RawBits => (0..width)
                .map(|i| pm((ch.a >> i) & 1 == 1))
                .chain((0..width).map(|i| pm((ch.b >> i) & 1 == 1)))
                .collect(),
            FeatureMap::CarryAware => (0..width)
                .map(|i| pm(((ch.a ^ ch.b) >> i) & 1 == 1))
                .chain((0..width).map(|i| pm(((ch.a & ch.b) >> i) & 1 == 1)))
                .collect(),
        }
    }

    /// Number of features produced for a given response width.
    pub fn len(self, width: usize) -> usize {
        2 * width
    }
}

/// Result of attacking one target bit (or the whole response, averaged).
#[derive(Debug, Clone, PartialEq)]
pub struct AttackReport {
    /// Test-set prediction accuracy per response bit.
    pub per_bit_accuracy: Vec<f64>,
    /// Number of training CRPs used.
    pub training_crps: usize,
}

impl AttackReport {
    /// Mean accuracy over response bits.
    pub fn mean_accuracy(&self) -> f64 {
        self.per_bit_accuracy.iter().sum::<f64>() / self.per_bit_accuracy.len() as f64
    }

    /// Best-predicted bit's accuracy (the adversary's strongest handle).
    pub fn best_accuracy(&self) -> f64 {
        self.per_bit_accuracy.iter().copied().fold(0.0, f64::max)
    }
}

/// Attacks the *raw* (pre-obfuscation) responses: one logistic model per
/// response bit, trained on `train` CRPs, evaluated on `test` fresh CRPs.
pub fn attack_raw<R: Rng + ?Sized>(
    instance: &PufInstance<'_>,
    map: FeatureMap,
    train: usize,
    test: usize,
    config: &TrainConfig,
    rng: &mut R,
) -> AttackReport {
    let width = instance.design().width();
    let collect = |n: usize, rng: &mut R| -> Vec<(Vec<f64>, u64)> {
        (0..n)
            .map(|_| {
                let ch = Challenge::random(rng, width);
                let resp = instance.evaluate(ch, rng);
                (map.encode(ch, width), resp.bits())
            })
            .collect()
    };
    let train_set = collect(train, rng);
    let test_set = collect(test, rng);

    let per_bit_accuracy = (0..width)
        .map(|bit| {
            let labelled =
                |set: &[(Vec<f64>, u64)]| set.iter().map(|(x, r)| (x.clone(), (r >> bit) & 1 == 1)).collect::<Vec<_>>();
            let mut model = Logistic::new(map.len(width));
            model.fit(&labelled(&train_set), config, rng);
            model.accuracy(&labelled(&test_set))
        })
        .collect();
    AttackReport { per_bit_accuracy, training_crps: train }
}

/// Collects `n` raw CRPs from the device under attack in parallel:
/// challenges drawn deterministically from `challenge_seed`, responses
/// evaluated through [`PufInstance::evaluate_batch`] with independent
/// per-challenge noise streams under `noise_seed`. Deterministic in the
/// seeds and independent of `threads`.
pub fn harvest_crps(
    instance: &PufInstance<'_>,
    n: usize,
    challenge_seed: u64,
    noise_seed: u64,
    threads: usize,
) -> Vec<(Challenge, u64)> {
    let width = instance.design().width();
    let mut rng = ChaCha8Rng::seed_from_u64(challenge_seed);
    let challenges: Vec<Challenge> = (0..n).map(|_| Challenge::random(&mut rng, width)).collect();
    let responses = instance.evaluate_batch(&challenges, noise_seed, threads);
    challenges.into_iter().zip(responses.into_iter().map(|r| r.bits())).collect()
}

/// [`attack_raw`] with the CRP-collection phase batched over `threads`
/// workers ([`harvest_crps`]); only model training still consumes the
/// caller's RNG. The simulation cost dominates attacks at realistic CRP
/// counts, so this is the fast path for attack sweeps.
#[allow(clippy::too_many_arguments)]
pub fn attack_raw_batched<R: Rng + ?Sized>(
    instance: &PufInstance<'_>,
    map: FeatureMap,
    train: usize,
    test: usize,
    config: &TrainConfig,
    crp_seed: u64,
    threads: usize,
    rng: &mut R,
) -> AttackReport {
    let width = instance.design().width();
    let encode = |crps: Vec<(Challenge, u64)>| -> Vec<(Vec<f64>, u64)> {
        crps.into_iter().map(|(ch, bits)| (map.encode(ch, width), bits)).collect()
    };
    let all = harvest_crps(instance, train + test, crp_seed, crp_seed ^ 0xA5A5_A5A5, threads);
    let mut all = encode(all);
    let test_set = all.split_off(train);
    let train_set = all;

    let per_bit_accuracy = (0..width)
        .map(|bit| {
            let labelled =
                |set: &[(Vec<f64>, u64)]| set.iter().map(|(x, r)| (x.clone(), (r >> bit) & 1 == 1)).collect::<Vec<_>>();
            let mut model = Logistic::new(map.len(width));
            model.fit(&labelled(&train_set), config, rng);
            model.accuracy(&labelled(&test_set))
        })
        .collect();
    AttackReport { per_bit_accuracy, training_crps: train }
}

/// Attacks the *obfuscated* outputs: the adversary sees the 8 challenges of
/// a query and the resulting `z`, and trains one model per `z` bit over the
/// concatenated challenge features.
pub fn attack_obfuscated<R: Rng + ?Sized>(
    device: &mut pufatt::DevicePuf,
    map: FeatureMap,
    train: usize,
    test: usize,
    config: &TrainConfig,
    rng: &mut R,
) -> AttackReport {
    let width = device.width();
    let feat_len = map.len(width) * RESPONSES_PER_OUTPUT;
    let collect = |n: usize, rng: &mut R, device: &mut pufatt::DevicePuf| -> Vec<(Vec<f64>, u64)> {
        (0..n)
            .map(|_| {
                let challenges: [Challenge; RESPONSES_PER_OUTPUT] =
                    std::array::from_fn(|_| Challenge::random(rng, width));
                let out = device.respond(&challenges);
                let mut x = Vec::with_capacity(feat_len);
                for ch in challenges {
                    x.extend(map.encode(ch, width));
                }
                (x, out.z)
            })
            .collect()
    };
    let train_set = collect(train, rng, device);
    let test_set = collect(test, rng, device);

    let per_bit_accuracy = (0..width)
        .map(|bit| {
            let labelled =
                |set: &[(Vec<f64>, u64)]| set.iter().map(|(x, z)| (x.clone(), (z >> bit) & 1 == 1)).collect::<Vec<_>>();
            let mut model = Logistic::new(feat_len);
            model.fit(&labelled(&train_set), config, rng);
            model.accuracy(&labelled(&test_set))
        })
        .collect();
    AttackReport { per_bit_accuracy, training_crps: train }
}

/// Attacks the obfuscated outputs with an arbitrary [`Model`] built by
/// `make_model` (one fresh model per target bit). Generalises
/// [`attack_obfuscated`] to nonlinear learners such as
/// [`crate::mlp::MlpModel`].
pub fn attack_obfuscated_with<M, F, R>(
    device: &mut pufatt::DevicePuf,
    map: FeatureMap,
    train: usize,
    test: usize,
    mut make_model: F,
    rng: &mut R,
) -> AttackReport
where
    M: Model,
    F: FnMut(usize, &mut R) -> M,
    R: Rng + ?Sized,
{
    let width = device.width();
    let feat_len = map.len(width) * RESPONSES_PER_OUTPUT;
    let collect = |n: usize, rng: &mut R, device: &mut pufatt::DevicePuf| -> Vec<(Vec<f64>, u64)> {
        (0..n)
            .map(|_| {
                let challenges: [Challenge; RESPONSES_PER_OUTPUT] =
                    std::array::from_fn(|_| Challenge::random(rng, width));
                let out = device.respond(&challenges);
                let mut x = Vec::with_capacity(feat_len);
                for ch in challenges {
                    x.extend(map.encode(ch, width));
                }
                (x, out.z)
            })
            .collect()
    };
    let train_set = collect(train, rng, device);
    let test_set = collect(test, rng, device);
    let per_bit_accuracy = (0..width)
        .map(|bit| {
            let labelled =
                |set: &[(Vec<f64>, u64)]| set.iter().map(|(x, z)| (x.clone(), (z >> bit) & 1 == 1)).collect::<Vec<_>>();
            let mut model = make_model(feat_len, rng);
            model.train(&labelled(&train_set), rng);
            model.score(&labelled(&test_set))
        })
        .collect();
    AttackReport { per_bit_accuracy, training_crps: train }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pufatt_alupuf::device::{AdderKind, AluPufConfig, AluPufDesign, ArbiterConfig};
    use pufatt_silicon::env::Environment;
    use pufatt_silicon::variation::ChipSampler;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_design() -> AluPufDesign {
        AluPufDesign::new(AluPufConfig {
            width: 8,
            adder: AdderKind::default(),
            arbiter: ArbiterConfig::asic(),
            design_seed: 5,
        })
    }

    #[test]
    fn raw_attack_beats_coin_flipping() {
        let design = small_design();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let chip = design.fabricate(&ChipSampler::new(), &mut rng);
        let instance = PufInstance::new(&design, &chip, Environment::nominal());
        let report = attack_raw(&instance, FeatureMap::CarryAware, 300, 150, &TrainConfig::default(), &mut rng);
        assert!(report.mean_accuracy() > 0.62, "raw responses must be learnable: {}", report.mean_accuracy());
        assert!(report.best_accuracy() > 0.75, "some bit must be highly predictable: {}", report.best_accuracy());
    }

    #[test]
    fn batched_raw_attack_matches_serial_quality() {
        let design = small_design();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let chip = design.fabricate(&ChipSampler::new(), &mut rng);
        let instance = PufInstance::new(&design, &chip, Environment::nominal());
        // The harvested CRPs are a pure function of the seeds.
        let a = harvest_crps(&instance, 40, 13, 14, 1);
        let b = harvest_crps(&instance, 40, 13, 14, 4);
        assert_eq!(a, b);
        let report =
            attack_raw_batched(&instance, FeatureMap::CarryAware, 300, 150, &TrainConfig::default(), 55, 4, &mut rng);
        assert!(report.mean_accuracy() > 0.62, "batched raw attack must learn: {}", report.mean_accuracy());
    }

    #[test]
    fn carry_aware_features_are_at_least_as_good() {
        let design = small_design();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let chip = design.fabricate(&ChipSampler::new(), &mut rng);
        let instance = PufInstance::new(&design, &chip, Environment::nominal());
        let raw = attack_raw(&instance, FeatureMap::RawBits, 250, 120, &TrainConfig::default(), &mut rng);
        let carry = attack_raw(&instance, FeatureMap::CarryAware, 250, 120, &TrainConfig::default(), &mut rng);
        assert!(
            carry.mean_accuracy() + 0.05 >= raw.mean_accuracy(),
            "carry-aware {} vs raw {}",
            carry.mean_accuracy(),
            raw.mean_accuracy()
        );
    }

    #[test]
    fn obfuscation_substantially_degrades_the_attack() {
        // At this small width some arbiters are saturated (their bias leaks
        // through the XOR), so the obfuscated accuracy does not reach 50 %
        // exactly — but it must fall far below the raw-response accuracy.
        // The full-width comparison lives in the modeling_attack bench.
        use pufatt::enroll::enroll;
        let cfg = AluPufConfig {
            width: 8,
            adder: AdderKind::default(),
            arbiter: ArbiterConfig::asic(),
            design_seed: 5,
        };
        let enrolled = enroll(cfg.clone(), 3, 0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let instance = PufInstance::new(enrolled.design(), enrolled.chip(), Environment::nominal());
        let raw = attack_raw(&instance, FeatureMap::CarryAware, 250, 120, &TrainConfig::default(), &mut rng);
        let mut device = enrolled.device_puf(17);
        let obf = attack_obfuscated(&mut device, FeatureMap::CarryAware, 250, 120, &TrainConfig::default(), &mut rng);
        assert!(
            obf.mean_accuracy() < raw.mean_accuracy() - 0.12,
            "obfuscation must cost the attacker accuracy: raw {} vs obf {}",
            raw.mean_accuracy(),
            obf.mean_accuracy()
        );
    }

    #[test]
    fn mlp_attacker_also_fails_on_obfuscated_outputs() {
        use crate::mlp::{MlpConfig, MlpModel};
        use pufatt::enroll::enroll;
        let cfg = AluPufConfig {
            width: 8,
            adder: pufatt_alupuf::device::AdderKind::default(),
            arbiter: ArbiterConfig::asic(),
            design_seed: 5,
        };
        let enrolled = enroll(cfg, 3, 0).unwrap();
        let mut device = enrolled.device_puf(23);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mlp_cfg = MlpConfig { hidden: 12, epochs: 25, ..MlpConfig::default() };
        let report = attack_obfuscated_with(
            &mut device,
            FeatureMap::CarryAware,
            200,
            100,
            |inputs, rng| MlpModel::new(inputs, mlp_cfg, rng),
            &mut rng,
        );
        // Even a nonlinear learner stays weak: the 8-way XOR over fresh
        // challenges starves it of signal at this CRP budget. (Bias leakage
        // keeps it slightly above chance, as with LR.)
        assert!(report.mean_accuracy() < 0.75, "MLP must not crack the obfuscation: {}", report.mean_accuracy());
    }

    #[test]
    fn feature_maps_have_documented_lengths() {
        let ch = Challenge::new(0b1010, 0b0110, 4);
        assert_eq!(FeatureMap::RawBits.encode(ch, 4).len(), 8);
        assert_eq!(FeatureMap::CarryAware.encode(ch, 4).len(), 8);
        // propagate = a^b = 0b1100, generate = a&b = 0b0010.
        let f = FeatureMap::CarryAware.encode(ch, 4);
        assert_eq!(&f[..4], &[-1.0, -1.0, 1.0, 1.0], "propagate bits");
        assert_eq!(&f[4..], &[-1.0, 1.0, -1.0, -1.0], "generate bits");
    }

    #[test]
    fn report_statistics() {
        let r = AttackReport { per_bit_accuracy: vec![0.5, 0.9, 0.7], training_crps: 10 };
        assert!((r.mean_accuracy() - 0.7).abs() < 1e-12);
        assert!((r.best_accuracy() - 0.9).abs() < 1e-12);
    }
}
