//! Modeling attacks on the ALU PUF (paper §4.1/§4.2 security arguments).
//!
//! Delay PUFs exposed through raw challenge/response pairs are learnable
//! with simple machine learning (Rührmair et al., CCS 2010). PUFatt's
//! two-phase XOR obfuscation makes every visible output bit an XOR of
//! eight raw response bits from eight different challenges, which defeats
//! linear model building the same way XOR-arbiter constructions do.
//!
//! * [`lr`] — dependency-free logistic regression with SGD.
//! * [`mlp`] — a small multi-layer perceptron (the stronger nonlinear
//!   attacker; still at chance against the obfuscated outputs).
//! * [`attack`] — CRP collection, feature maps (raw-bit and carry-aware),
//!   and the raw-vs-obfuscated attack harnesses.
//!
//! # Example
//!
//! ```
//! use pufatt_modeling::attack::{attack_raw, FeatureMap};
//! use pufatt_modeling::lr::TrainConfig;
//! use pufatt_alupuf::device::{AdderKind, AluPufConfig, AluPufDesign, ArbiterConfig, PufInstance};
//! use pufatt_silicon::env::Environment;
//! use pufatt_silicon::variation::ChipSampler;
//! use rand::SeedableRng;
//!
//! let design = AluPufDesign::new(AluPufConfig { width: 8, adder: AdderKind::default(), arbiter: ArbiterConfig::asic(), design_seed: 1 });
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
//! let chip = design.fabricate(&ChipSampler::new(), &mut rng);
//! let instance = PufInstance::new(&design, &chip, Environment::nominal());
//! let report = attack_raw(&instance, FeatureMap::CarryAware, 200, 100, &TrainConfig::default(), &mut rng);
//! assert!(report.mean_accuracy() > 0.5, "raw responses leak structure");
//! ```

pub mod attack;
pub mod lr;
pub mod mlp;

pub use attack::{attack_obfuscated, attack_obfuscated_with, attack_raw, AttackReport, FeatureMap};
pub use lr::{Logistic, LogisticModel, Model, TrainConfig};
pub use mlp::{Mlp, MlpConfig, MlpModel};
