//! A small multi-layer perceptron: the stronger, nonlinear model-building
//! attacker.
//!
//! Rührmair et al.'s results use logistic regression *and* more expressive
//! learners; a single hidden layer can represent low-order XORs, so this
//! attacker probes whether the obfuscation's security rests merely on
//! linear inseparability (it does not: an 8-way XOR over fresh challenges
//! per output keeps small MLPs at chance for practical CRP budgets, which
//! the `modeling_attack` tests confirm).
//!
//! One hidden tanh layer + sigmoid output, trained by plain backprop SGD.
//! Deterministic given the RNG.

use rand::Rng;

/// MLP hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpConfig {
    /// Hidden-layer width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate (decayed as 1/(1 + 0.05·epoch)).
    pub learning_rate: f64,
    /// Weight-initialisation scale.
    pub init_scale: f64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig { hidden: 16, epochs: 40, learning_rate: 0.05, init_scale: 0.3 }
    }
}

/// A 1-hidden-layer perceptron for binary classification.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    inputs: usize,
    hidden: usize,
    /// `w1[h][i]`: input `i` → hidden `h`.
    w1: Vec<Vec<f64>>,
    b1: Vec<f64>,
    /// `w2[h]`: hidden `h` → output.
    w2: Vec<f64>,
    b2: f64,
}

impl Mlp {
    /// Creates a randomly initialised network.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` or `config.hidden` is zero.
    pub fn new<R: Rng + ?Sized>(inputs: usize, config: &MlpConfig, rng: &mut R) -> Self {
        assert!(inputs > 0 && config.hidden > 0, "network must have inputs and hidden units");
        let mut init =
            |n: usize| -> Vec<f64> { (0..n).map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * config.init_scale).collect() };
        let w1 = (0..config.hidden).map(|_| init(inputs)).collect();
        let b1 = init(config.hidden);
        let w2 = init(config.hidden);
        Mlp { inputs, hidden: config.hidden, w1, b1, w2, b2: 0.0 }
    }

    fn forward(&self, x: &[f64]) -> (Vec<f64>, f64) {
        debug_assert_eq!(x.len(), self.inputs);
        let h: Vec<f64> = (0..self.hidden)
            .map(|j| {
                let z: f64 = self.b1[j] + self.w1[j].iter().zip(x).map(|(w, v)| w * v).sum::<f64>();
                z.tanh()
            })
            .collect();
        let z: f64 = self.b2 + self.w2.iter().zip(&h).map(|(w, v)| w * v).sum::<f64>();
        let p = 1.0 / (1.0 + (-z).exp());
        (h, p)
    }

    /// Predicted probability of label 1.
    ///
    /// # Panics
    ///
    /// Panics on a feature-length mismatch.
    pub fn probability(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.inputs, "feature length mismatch");
        self.forward(x).1
    }

    /// Hard prediction.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.probability(x) >= 0.5
    }

    /// Trains with backprop SGD, shuffling each epoch.
    pub fn fit<R: Rng + ?Sized>(&mut self, data: &[(Vec<f64>, bool)], config: &MlpConfig, rng: &mut R) {
        if data.is_empty() {
            return;
        }
        let mut order: Vec<usize> = (0..data.len()).collect();
        for epoch in 0..config.epochs {
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let lr = config.learning_rate / (1.0 + 0.05 * epoch as f64);
            for &idx in &order {
                let (x, label) = &data[idx];
                let (h, p) = self.forward(x);
                let err = p - (*label as u8 as f64);
                // Output layer.
                for (w, &hv) in self.w2.iter_mut().zip(&h) {
                    *w -= lr * err * hv;
                }
                self.b2 -= lr * err;
                // Hidden layer (tanh' = 1 − h²).
                for (((w2j, hj), w1j), b1j) in self.w2.iter().zip(&h).zip(self.w1.iter_mut()).zip(self.b1.iter_mut()) {
                    let grad_h = err * w2j * (1.0 - hj * hj);
                    for (w, &xv) in w1j.iter_mut().zip(x) {
                        *w -= lr * grad_h * xv;
                    }
                    *b1j -= lr * grad_h;
                }
            }
        }
    }

    /// Classification accuracy over a labelled set.
    pub fn accuracy(&self, data: &[(Vec<f64>, bool)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        data.iter().filter(|(x, y)| self.predict(x) == *y).count() as f64 / data.len() as f64
    }
}

/// An [`Mlp`] bundled with its training configuration, implementing
/// [`crate::lr::Model`].
#[derive(Debug, Clone, PartialEq)]
pub struct MlpModel {
    /// The underlying network.
    pub inner: Mlp,
    /// Hyper-parameters used for training.
    pub config: MlpConfig,
}

impl MlpModel {
    /// Creates a randomly initialised model.
    pub fn new<R: Rng + ?Sized>(inputs: usize, config: MlpConfig, rng: &mut R) -> Self {
        MlpModel { inner: Mlp::new(inputs, &config, rng), config }
    }
}

impl crate::lr::Model for MlpModel {
    fn train<R: Rng + ?Sized>(&mut self, data: &[(Vec<f64>, bool)], rng: &mut R) {
        self.inner.fit(data, &self.config, rng);
    }

    fn classify(&self, x: &[f64]) -> bool {
        self.inner.predict(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn xor2_data(n: usize, rng: &mut ChaCha8Rng) -> Vec<(Vec<f64>, bool)> {
        (0..n)
            .map(|_| {
                let a = rng.gen::<bool>();
                let b = rng.gen::<bool>();
                (vec![if a { 1.0 } else { -1.0 }, if b { 1.0 } else { -1.0 }], a ^ b)
            })
            .collect()
    }

    #[test]
    fn learns_xor_of_two() {
        // The canonical not-linearly-separable problem: an MLP must crack
        // it (logistic regression cannot).
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let train = xor2_data(400, &mut rng);
        let test = xor2_data(200, &mut rng);
        let config = MlpConfig { hidden: 8, epochs: 120, learning_rate: 0.1, init_scale: 0.5 };
        let mut net = Mlp::new(2, &config, &mut rng);
        net.fit(&train, &config, &mut rng);
        assert!(net.accuracy(&test) > 0.95, "accuracy {}", net.accuracy(&test));
    }

    #[test]
    fn cannot_learn_wide_xor_with_little_data() {
        // XOR of 8 balanced bits embedded in 64 inputs, 300 samples: the
        // regime of the obfuscated PUF attack — the net stays near chance.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let gen = |rng: &mut ChaCha8Rng, n: usize| -> Vec<(Vec<f64>, bool)> {
            (0..n)
                .map(|_| {
                    let bits: Vec<bool> = (0..64).map(|_| rng.gen()).collect();
                    let y = bits.iter().step_by(8).fold(false, |a, &b| a ^ b);
                    (bits.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect(), y)
                })
                .collect()
        };
        let train = gen(&mut rng, 300);
        let test = gen(&mut rng, 300);
        let config = MlpConfig::default();
        let mut net = Mlp::new(64, &config, &mut rng);
        net.fit(&train, &config, &mut rng);
        let acc = net.accuracy(&test);
        assert!((0.38..0.62).contains(&acc), "wide XOR must stay near chance: {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = ChaCha8Rng::seed_from_u64(3);
        let mut r2 = ChaCha8Rng::seed_from_u64(3);
        let config = MlpConfig::default();
        let d1 = xor2_data(50, &mut r1);
        let d2 = xor2_data(50, &mut r2);
        let mut n1 = Mlp::new(2, &config, &mut r1);
        let mut n2 = Mlp::new(2, &config, &mut r2);
        n1.fit(&d1, &config, &mut r1);
        n2.fit(&d2, &config, &mut r2);
        assert_eq!(n1, n2);
    }

    #[test]
    fn empty_fit_is_noop() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let config = MlpConfig::default();
        let mut net = Mlp::new(3, &config, &mut rng);
        let before = net.clone();
        net.fit(&[], &config, &mut rng);
        assert_eq!(net, before);
    }

    #[test]
    #[should_panic(expected = "feature length mismatch")]
    fn checks_feature_length() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        Mlp::new(3, &MlpConfig::default(), &mut rng).probability(&[0.0; 2]);
    }
}
