//! The PE32 instruction set.
//!
//! A minimal 32-bit embedded RISC: 16 registers (`r0` hardwired to zero),
//! word-addressed memory, fixed 32-bit instruction words. The encoding is
//! real (the attestation checksum hashes *encoded program memory*), with
//! three formats:
//!
//! ```text
//! R-type:  op[31:24] rd[23:20] rs1[19:16] rs2[15:12] 0[11:0]
//! I-type:  op[31:24] rd[23:20] rs1[19:16] imm16[15:0]   (imm sign-extended)
//! B-type:  op[31:24] rs1[23:20] rs2[19:16] imm16[15:0]  (word offset)
//! ```
//!
//! The PUFatt extension adds `pstart`, `pend`, `pread` and `phelp`
//! (§2, "Architectural Support"); in PUF mode, `add` additionally forwards
//! its operands to the ALU PUF as a challenge.

use std::fmt;

/// Register identifier `r0`–`r15`; `r0` always reads zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// The hardwired zero register.
    pub const ZERO: Reg = Reg(0);

    /// Creates a register.
    ///
    /// # Panics
    ///
    /// Panics if `index > 15`.
    pub fn new(index: u8) -> Self {
        assert!(index < 16, "register index {index} out of range");
        Reg(index)
    }

    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Binary operation of an R-type or I-type ALU instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (wrapping). In PUF mode this also queries the ALU PUF.
    Add,
    /// Subtraction (wrapping).
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (amount masked to 5 bits).
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Set-less-than, signed.
    Slt,
    /// Set-less-than, unsigned.
    Sltu,
    /// Multiplication (low 32 bits, wrapping).
    Mul,
}

impl AluOp {
    /// Applies the operation.
    pub fn apply(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => (a as i32).wrapping_shr(b & 31) as u32,
            AluOp::Slt => ((a as i32) < (b as i32)) as u32,
            AluOp::Sltu => (a < b) as u32,
            AluOp::Mul => a.wrapping_mul(b),
        }
    }
}

/// Branch condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than, signed.
    Lt,
    /// Greater or equal, signed.
    Ge,
    /// Less than, unsigned.
    Ltu,
    /// Greater or equal, unsigned.
    Geu,
}

impl BranchCond {
    /// Evaluates the condition.
    pub fn holds(self, a: u32, b: u32) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i32) < (b as i32),
            BranchCond::Ge => (a as i32) >= (b as i32),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }
}

/// A decoded PE32 instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Register-register ALU operation: `rd ← rs1 op rs2`.
    Alu { op: AluOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// Register-immediate ALU operation: `rd ← rs1 op imm`.
    AluImm { op: AluOp, rd: Reg, rs1: Reg, imm: i16 },
    /// Load upper immediate: `rd ← imm << 16`.
    Lui { rd: Reg, imm: u16 },
    /// Load word: `rd ← mem[rs1 + imm]` (word address).
    Lw { rd: Reg, rs1: Reg, imm: i16 },
    /// Store word: `mem[rs1 + imm] ← rs2` (`rs2` travels in the rd slot).
    Sw { rs2: Reg, rs1: Reg, imm: i16 },
    /// Conditional branch: `if rs1 cond rs2 then pc ← pc + 1 + imm`.
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        imm: i16,
    },
    /// Jump and link: `rd ← pc + 1; pc ← pc + 1 + imm`.
    Jal { rd: Reg, imm: i16 },
    /// Jump and link register: `rd ← pc + 1; pc ← rs1`.
    Jalr { rd: Reg, rs1: Reg },
    /// Stop execution.
    Halt,
    /// No operation.
    Nop,
    /// Enter PUF mode (clears the PUF port's challenge buffer).
    Pstart,
    /// Leave PUF mode; runs post-processing and latches `z`/helper data.
    Pend,
    /// Read the obfuscated PUF output: `rd ← z`.
    Pread { rd: Reg },
    /// Read helper-data word `imm`: `rd ← helper[imm]`.
    Phelp { rd: Reg, imm: i16 },
}

/// Errors from decoding a memory word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The undecodable word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

// Opcode byte assignments. ALU R-type occupy 0x01..=0x0B, I-type mirror
// them at 0x21..=0x2B.
const OP_ALU_BASE: u8 = 0x01;
const OP_ALUI_BASE: u8 = 0x21;
const OP_LUI: u8 = 0x30;
const OP_LW: u8 = 0x31;
const OP_SW: u8 = 0x32;
const OP_BRANCH_BASE: u8 = 0x40; // + BranchCond discriminant
const OP_JAL: u8 = 0x50;
const OP_JALR: u8 = 0x51;
const OP_HALT: u8 = 0x00;
const OP_NOP: u8 = 0x60;
const OP_PSTART: u8 = 0x70;
const OP_PEND: u8 = 0x71;
const OP_PREAD: u8 = 0x72;
const OP_PHELP: u8 = 0x73;

const ALU_OPS: [AluOp; 11] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Mul,
];

const BRANCH_CONDS: [BranchCond; 6] = [
    BranchCond::Eq,
    BranchCond::Ne,
    BranchCond::Lt,
    BranchCond::Ge,
    BranchCond::Ltu,
    BranchCond::Geu,
];

fn alu_code(op: AluOp) -> u8 {
    ALU_OPS.iter().position(|&o| o == op).expect("op listed") as u8
}

fn branch_code(c: BranchCond) -> u8 {
    BRANCH_CONDS.iter().position(|&o| o == c).expect("cond listed") as u8
}

impl Instruction {
    /// Encodes the instruction into a memory word.
    pub fn encode(self) -> u32 {
        let r = |op: u8, rd: Reg, rs1: Reg, rs2: Reg| {
            ((op as u32) << 24) | ((rd.0 as u32) << 20) | ((rs1.0 as u32) << 16) | ((rs2.0 as u32) << 12)
        };
        let i = |op: u8, rd: Reg, rs1: Reg, imm: i16| {
            ((op as u32) << 24) | ((rd.0 as u32) << 20) | ((rs1.0 as u32) << 16) | (imm as u16 as u32)
        };
        match self {
            Instruction::Alu { op, rd, rs1, rs2 } => r(OP_ALU_BASE + alu_code(op), rd, rs1, rs2),
            Instruction::AluImm { op, rd, rs1, imm } => i(OP_ALUI_BASE + alu_code(op), rd, rs1, imm),
            Instruction::Lui { rd, imm } => i(OP_LUI, rd, Reg::ZERO, imm as i16),
            Instruction::Lw { rd, rs1, imm } => i(OP_LW, rd, rs1, imm),
            Instruction::Sw { rs2, rs1, imm } => i(OP_SW, rs2, rs1, imm),
            Instruction::Branch { cond, rs1, rs2, imm } => i(OP_BRANCH_BASE + branch_code(cond), rs1, rs2, imm),
            Instruction::Jal { rd, imm } => i(OP_JAL, rd, Reg::ZERO, imm),
            Instruction::Jalr { rd, rs1 } => i(OP_JALR, rd, rs1, 0),
            Instruction::Halt => (OP_HALT as u32) << 24,
            Instruction::Nop => (OP_NOP as u32) << 24,
            Instruction::Pstart => (OP_PSTART as u32) << 24,
            Instruction::Pend => (OP_PEND as u32) << 24,
            Instruction::Pread { rd } => i(OP_PREAD, rd, Reg::ZERO, 0),
            Instruction::Phelp { rd, imm } => i(OP_PHELP, rd, Reg::ZERO, imm),
        }
    }

    /// Decodes a memory word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for an unassigned opcode.
    pub fn decode(word: u32) -> Result<Self, DecodeError> {
        let op = (word >> 24) as u8;
        let rd = Reg(((word >> 20) & 0xF) as u8);
        let rs1 = Reg(((word >> 16) & 0xF) as u8);
        let rs2 = Reg(((word >> 12) & 0xF) as u8);
        let imm = word as u16 as i16;
        let inst = match op {
            OP_HALT => Instruction::Halt,
            OP_NOP => Instruction::Nop,
            o if (OP_ALU_BASE..OP_ALU_BASE + 11).contains(&o) => {
                Instruction::Alu { op: ALU_OPS[(o - OP_ALU_BASE) as usize], rd, rs1, rs2 }
            }
            o if (OP_ALUI_BASE..OP_ALUI_BASE + 11).contains(&o) => {
                Instruction::AluImm { op: ALU_OPS[(o - OP_ALUI_BASE) as usize], rd, rs1, imm }
            }
            OP_LUI => Instruction::Lui { rd, imm: imm as u16 },
            OP_LW => Instruction::Lw { rd, rs1, imm },
            OP_SW => Instruction::Sw { rs2: rd, rs1, imm },
            o if (OP_BRANCH_BASE..OP_BRANCH_BASE + 6).contains(&o) => Instruction::Branch {
                cond: BRANCH_CONDS[(o - OP_BRANCH_BASE) as usize],
                rs1: rd,
                rs2: rs1,
                imm,
            },
            OP_JAL => Instruction::Jal { rd, imm },
            OP_JALR => Instruction::Jalr { rd, rs1 },
            OP_PSTART => Instruction::Pstart,
            OP_PEND => Instruction::Pend,
            OP_PREAD => Instruction::Pread { rd },
            OP_PHELP => Instruction::Phelp { rd, imm },
            _ => return Err(DecodeError { word }),
        };
        Ok(inst)
    }

    /// Cycle cost of the instruction (branch-taken penalty is added by the
    /// CPU).
    pub fn base_cycles(self) -> u64 {
        match self {
            Instruction::Alu { op: AluOp::Mul, .. } | Instruction::AluImm { op: AluOp::Mul, .. } => 3,
            Instruction::Lw { .. } | Instruction::Sw { .. } => 2,
            Instruction::Jal { .. } | Instruction::Jalr { .. } => 2,
            Instruction::Pend => 4, // post-processing pipeline drain
            _ => 1,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::Alu { op, rd, rs1, rs2 } => write!(f, "{} {rd}, {rs1}, {rs2}", alu_name(op)),
            Instruction::AluImm { op, rd, rs1, imm } => write!(f, "{}i {rd}, {rs1}, {imm}", alu_name(op)),
            Instruction::Lui { rd, imm } => write!(f, "lui {rd}, {imm:#x}"),
            Instruction::Lw { rd, rs1, imm } => write!(f, "lw {rd}, {imm}({rs1})"),
            Instruction::Sw { rs2, rs1, imm } => write!(f, "sw {rs2}, {imm}({rs1})"),
            Instruction::Branch { cond, rs1, rs2, imm } => write!(f, "b{} {rs1}, {rs2}, {imm}", cond_name(cond)),
            Instruction::Jal { rd, imm } => write!(f, "jal {rd}, {imm}"),
            Instruction::Jalr { rd, rs1 } => write!(f, "jalr {rd}, {rs1}"),
            Instruction::Halt => write!(f, "halt"),
            Instruction::Nop => write!(f, "nop"),
            Instruction::Pstart => write!(f, "pstart"),
            Instruction::Pend => write!(f, "pend"),
            Instruction::Pread { rd } => write!(f, "pread {rd}"),
            Instruction::Phelp { rd, imm } => write!(f, "phelp {rd}, {imm}"),
        }
    }
}

pub(crate) fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Sll => "sll",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
        AluOp::Mul => "mul",
    }
}

pub(crate) fn cond_name(c: BranchCond) -> &'static str {
    match c {
        BranchCond::Eq => "eq",
        BranchCond::Ne => "ne",
        BranchCond::Lt => "lt",
        BranchCond::Ge => "ge",
        BranchCond::Ltu => "ltu",
        BranchCond::Geu => "geu",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_sample_instructions() -> Vec<Instruction> {
        let mut v = Vec::new();
        for &op in &ALU_OPS {
            v.push(Instruction::Alu { op, rd: Reg(3), rs1: Reg(4), rs2: Reg(5) });
            v.push(Instruction::AluImm { op, rd: Reg(6), rs1: Reg(7), imm: -42 });
        }
        for &cond in &BRANCH_CONDS {
            v.push(Instruction::Branch { cond, rs1: Reg(1), rs2: Reg(2), imm: -5 });
        }
        v.extend([
            Instruction::Lui { rd: Reg(8), imm: 0xBEEF },
            Instruction::Lw { rd: Reg(9), rs1: Reg(10), imm: 100 },
            Instruction::Sw { rs2: Reg(11), rs1: Reg(12), imm: -100 },
            Instruction::Jal { rd: Reg(13), imm: 77 },
            Instruction::Jalr { rd: Reg(14), rs1: Reg(15) },
            Instruction::Halt,
            Instruction::Nop,
            Instruction::Pstart,
            Instruction::Pend,
            Instruction::Pread { rd: Reg(5) },
            Instruction::Phelp { rd: Reg(6), imm: 3 },
        ]);
        v
    }

    #[test]
    fn encode_decode_round_trip() {
        for inst in all_sample_instructions() {
            let word = inst.encode();
            assert_eq!(Instruction::decode(word), Ok(inst), "word {word:#010x}");
        }
    }

    #[test]
    fn alu_op_semantics() {
        assert_eq!(AluOp::Add.apply(u32::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u32::MAX);
        assert_eq!(AluOp::Sra.apply(0x8000_0000, 31), u32::MAX);
        assert_eq!(AluOp::Srl.apply(0x8000_0000, 31), 1);
        assert_eq!(AluOp::Slt.apply(u32::MAX, 0), 1, "-1 < 0 signed");
        assert_eq!(AluOp::Sltu.apply(u32::MAX, 0), 0, "MAX > 0 unsigned");
        assert_eq!(AluOp::Mul.apply(0x1_0001, 0x1_0001), 0x1_0001u32.wrapping_mul(0x1_0001));
        assert_eq!(AluOp::Mul.apply(0x8000_0000, 2), 0, "mul wraps");
        assert_eq!(AluOp::Sll.apply(1, 33), 2, "shift amount masked to 5 bits");
    }

    #[test]
    fn branch_cond_semantics() {
        assert!(BranchCond::Eq.holds(5, 5));
        assert!(BranchCond::Ne.holds(5, 6));
        assert!(BranchCond::Lt.holds(u32::MAX, 0));
        assert!(!BranchCond::Ltu.holds(u32::MAX, 0));
        assert!(BranchCond::Ge.holds(0, u32::MAX));
        assert!(BranchCond::Geu.holds(u32::MAX, 0));
    }

    #[test]
    fn undecodable_word_is_an_error() {
        assert!(Instruction::decode(0xFF00_0000).is_err());
    }

    #[test]
    fn distinct_instructions_encode_distinctly() {
        let all = all_sample_instructions();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.encode(), b.encode(), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn cycle_costs() {
        assert_eq!(Instruction::Nop.base_cycles(), 1);
        assert_eq!(Instruction::Lw { rd: Reg(1), rs1: Reg(2), imm: 0 }.base_cycles(), 2);
        assert_eq!(Instruction::Alu { op: AluOp::Mul, rd: Reg(1), rs1: Reg(2), rs2: Reg(3) }.base_cycles(), 3);
        assert_eq!(Instruction::Pend.base_cycles(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn register_bounds() {
        Reg::new(16);
    }
}
