//! The CPU ↔ PUF interface.
//!
//! The paper couples the ALU PUF to the pipeline through two instructions:
//! `pstart` switches the redundant ALUs into PUF mode, subsequent `add`
//! instructions race their operands through both ALUs, and `pend` pushes
//! the accumulated raw responses through the post-processing logic
//! (error-correction syndrome generator + obfuscation network) and latches
//! the output `z` and the helper data.
//!
//! The CPU crate only defines the *port*; the real implementation (backed
//! by the simulated ALU PUF and the BCH\[32,6,16\] pipeline) lives in the
//! `pufatt` core crate, keeping this crate free of PUF dependencies.

/// Result of a `pend`: the obfuscated output and the helper words the
/// attestation protocol transmits to the verifier.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PufOutput {
    /// The obfuscated PUF output `z` (readable via `pread`).
    pub z: u32,
    /// Helper-data words (readable via `phelp`), one 26-bit syndrome per
    /// raw response, packed into `u32`s.
    pub helper: Vec<u32>,
}

/// A device attached to the CPU's PUF port.
pub trait PufPort {
    /// `pstart`: reset the challenge buffer and enter PUF mode.
    fn start(&mut self);

    /// A PUF-mode `add` issued `(a, b)` as a challenge.
    fn challenge(&mut self, a: u32, b: u32);

    /// `pend`: run post-processing over the buffered responses.
    fn finalize(&mut self) -> PufOutput;
}

/// A deterministic stand-in PUF for CPU-level tests: `z` is a mix of all
/// buffered challenges, helper data is the challenge count.
///
/// Not a PUF at all (pure function of the challenges) — exists so `pe32`
/// can be tested without the silicon stack.
#[derive(Debug, Clone, Default)]
pub struct MockPufPort {
    buffer: Vec<(u32, u32)>,
    /// Challenges observed by the last finalized session.
    pub last_session: Vec<(u32, u32)>,
}

impl MockPufPort {
    /// Creates an empty mock port.
    pub fn new() -> Self {
        MockPufPort::default()
    }
}

impl PufPort for MockPufPort {
    fn start(&mut self) {
        self.buffer.clear();
    }

    fn challenge(&mut self, a: u32, b: u32) {
        self.buffer.push((a, b));
    }

    fn finalize(&mut self) -> PufOutput {
        let mut z = 0x9E37_79B9u32;
        for &(a, b) in &self.buffer {
            z = z.rotate_left(5) ^ a.wrapping_add(b.rotate_left(13));
        }
        let out = PufOutput { z, helper: vec![self.buffer.len() as u32] };
        self.last_session = std::mem::take(&mut self.buffer);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_is_deterministic() {
        let mut a = MockPufPort::new();
        let mut b = MockPufPort::new();
        for p in [&mut a, &mut b] {
            p.start();
            p.challenge(1, 2);
            p.challenge(3, 4);
        }
        assert_eq!(a.finalize(), b.finalize());
    }

    #[test]
    fn start_clears_previous_session() {
        let mut p = MockPufPort::new();
        p.start();
        p.challenge(1, 1);
        let z1 = p.finalize();
        p.start();
        p.challenge(1, 1);
        assert_eq!(p.finalize(), z1, "same challenges, same output");
        p.start();
        p.challenge(2, 2);
        assert_ne!(p.finalize(), z1, "different challenges, different output");
    }

    #[test]
    fn helper_reports_challenge_count() {
        let mut p = MockPufPort::new();
        p.start();
        for i in 0..5 {
            p.challenge(i, i);
        }
        assert_eq!(p.finalize().helper, vec![5]);
    }
}
