//! PE32: a cycle-counted 32-bit embedded RISC CPU simulator.
//!
//! The PUFatt prover is a resource-constrained embedded processor whose
//! instruction set is extended with `pstart`/`pend` to drive the ALU PUF
//! (paper §2, "Architectural Support"). PE32 is that processor: a small
//! word-addressed RISC with a real binary encoding (the attestation
//! checksum hashes encoded program memory), per-instruction cycle costs
//! (the time bound δ is enforced in cycles), a clock model (the
//! overclocking attack turns on cycle time), and a pluggable PUF port.
//!
//! * [`isa`] — instructions, encoding, semantics.
//! * [`asm`] — two-pass assembler with labels and data directives, plus a
//!   disassembler.
//! * [`cpu`] — the machine and its traps.
//! * [`puf_port`] — the CPU ↔ PUF interface (implemented for the real PUF
//!   pipeline in the `pufatt` core crate).
//! * [`trace`] — execution profiling (cycle attribution per instruction
//!   class, hot program counters).
//! * [`programs`] — a small library of assembly workloads (regression
//!   tests, "normal mode" applications, attestation memory content).
//!
//! # Example
//!
//! ```
//! use pufatt_pe32::asm::assemble;
//! use pufatt_pe32::cpu::Cpu;
//! use pufatt_pe32::isa::Reg;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(
//!     "addi r1, r0, 6\n\
//!      addi r2, r0, 7\n\
//!      mul  r3, r1, r2\n\
//!      halt",
//! )?;
//! let mut cpu = Cpu::new(64);
//! cpu.load_program(&program.image);
//! let result = cpu.run(1_000)?;
//! assert_eq!(cpu.reg(Reg(3)), 42);
//! assert!(result.cycles > 0);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod cpu;
pub mod isa;
pub mod programs;
pub mod puf_port;
pub mod trace;

pub use asm::{assemble, disassemble, AsmError, Program};
pub use cpu::{Clock, Cpu, RunResult, Trap};
pub use isa::{AluOp, BranchCond, Instruction, Reg};
pub use puf_port::{MockPufPort, PufOutput, PufPort};
pub use trace::{run_profiled, ExecutionProfile, InstClass};
