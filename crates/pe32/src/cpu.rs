//! The PE32 machine: memory, register file, cycle-accounted interpreter,
//! clock model, and the PUF-mode execution state.

use crate::isa::{AluOp, Instruction, Reg};
use crate::puf_port::{PufOutput, PufPort};
use std::fmt;

/// Execution traps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// PC or data access outside memory.
    OutOfBounds {
        /// The offending word address.
        addr: u32,
    },
    /// Unassigned opcode reached the decoder.
    IllegalInstruction {
        /// The undecodable word.
        word: u32,
        /// Its address.
        addr: u32,
    },
    /// `pread`/`phelp` executed before any `pend`.
    PufNotReady,
    /// A PUF instruction executed with no PUF attached.
    NoPufAttached,
    /// The cycle budget given to [`Cpu::run`] was exhausted.
    CycleLimit,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::OutOfBounds { addr } => write!(f, "memory access out of bounds at word {addr:#x}"),
            Trap::IllegalInstruction { word, addr } => {
                write!(f, "illegal instruction {word:#010x} at word {addr:#x}")
            }
            Trap::PufNotReady => write!(f, "pread/phelp before pend"),
            Trap::NoPufAttached => write!(f, "PUF instruction with no PUF port attached"),
            Trap::CycleLimit => write!(f, "cycle limit exhausted"),
        }
    }
}

impl std::error::Error for Trap {}

/// Clock configuration: translates cycle counts to wall time.
///
/// The overclocking attack of §4.2 is expressed through this type: raising
/// `frequency_mhz` shortens `cycle_ps`, and once the PUF's
/// `T_ALU + T_set` no longer fits in a cycle, responses corrupt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Clock {
    /// Core frequency in MHz.
    pub frequency_mhz: f64,
}

impl Clock {
    /// Creates a clock.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < frequency_mhz <= 10_000`.
    pub fn new(frequency_mhz: f64) -> Self {
        assert!(frequency_mhz > 0.0 && frequency_mhz <= 10_000.0, "frequency {frequency_mhz} MHz out of range");
        Clock { frequency_mhz }
    }

    /// Cycle time in picoseconds.
    pub fn cycle_ps(&self) -> f64 {
        1e6 / self.frequency_mhz
    }

    /// Wall-clock duration of `cycles` in nanoseconds.
    pub fn duration_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * self.cycle_ps() / 1000.0
    }

    /// Returns this clock overclocked by `factor` (e.g. 1.25 = +25 %).
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 0`.
    pub fn overclocked(&self, factor: f64) -> Clock {
        assert!(factor > 0.0, "overclock factor must be positive");
        Clock::new(self.frequency_mhz * factor)
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::new(100.0)
    }
}

/// Result of a completed [`Cpu::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Cycles consumed until `halt`.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
}

/// The PE32 processor with word-addressed memory.
pub struct Cpu {
    regs: [u32; 16],
    pc: u32,
    cycles: u64,
    instructions: u64,
    halted: bool,
    puf_mode: bool,
    puf_result: Option<PufOutput>,
    memory: Vec<u32>,
    puf: Option<Box<dyn PufPort + Send>>,
    clock: Clock,
}

impl fmt::Debug for Cpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cpu")
            .field("pc", &self.pc)
            .field("cycles", &self.cycles)
            .field("halted", &self.halted)
            .field("puf_mode", &self.puf_mode)
            .field("mem_words", &self.memory.len())
            .finish()
    }
}

impl Cpu {
    /// Creates a CPU with `mem_words` words of zeroed memory.
    ///
    /// # Panics
    ///
    /// Panics if `mem_words == 0` or exceeds 2^24 (16 M words).
    pub fn new(mem_words: usize) -> Self {
        assert!(mem_words > 0 && mem_words <= 1 << 24, "memory size {mem_words} out of range");
        Cpu {
            regs: [0; 16],
            pc: 0,
            cycles: 0,
            instructions: 0,
            halted: false,
            puf_mode: false,
            puf_result: None,
            memory: vec![0; mem_words],
            puf: None,
            clock: Clock::default(),
        }
    }

    /// Attaches a PUF device to the port. The port must be `Send` so the
    /// whole CPU (and the prover built on it) can migrate across worker
    /// threads in fleet-scale attestation campaigns.
    pub fn attach_puf(&mut self, puf: Box<dyn PufPort + Send>) {
        self.puf = Some(puf);
    }

    /// Detaches and returns the PUF device.
    pub fn detach_puf(&mut self) -> Option<Box<dyn PufPort + Send>> {
        self.puf.take()
    }

    /// Sets the core clock.
    pub fn set_clock(&mut self, clock: Clock) {
        self.clock = clock;
    }

    /// The core clock.
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Loads a program image at word address 0 and resets execution state
    /// (registers, pc, cycle counters; memory beyond the image is kept).
    ///
    /// # Panics
    ///
    /// Panics if the image exceeds memory.
    pub fn load_program(&mut self, image: &[u32]) {
        assert!(image.len() <= self.memory.len(), "program image larger than memory");
        self.memory[..image.len()].copy_from_slice(image);
        self.reset();
    }

    /// Resets registers, pc and counters; memory is untouched.
    pub fn reset(&mut self) {
        self.regs = [0; 16];
        self.pc = 0;
        self.cycles = 0;
        self.instructions = 0;
        self.halted = false;
        self.puf_mode = false;
        self.puf_result = None;
    }

    /// Reads a register (`r0` reads zero).
    pub fn reg(&self, r: Reg) -> u32 {
        if r.index() == 0 {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes a register (writes to `r0` are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if r.index() != 0 {
            self.regs[r.index()] = value;
        }
    }

    /// Program counter (word address).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Whether the CPU has executed `halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Whether the ALUs are in PUF mode.
    pub fn puf_mode(&self) -> bool {
        self.puf_mode
    }

    /// Reads a memory word.
    ///
    /// # Errors
    ///
    /// [`Trap::OutOfBounds`] outside memory.
    pub fn load_word(&self, addr: u32) -> Result<u32, Trap> {
        self.memory.get(addr as usize).copied().ok_or(Trap::OutOfBounds { addr })
    }

    /// Writes a memory word.
    ///
    /// # Errors
    ///
    /// [`Trap::OutOfBounds`] outside memory.
    pub fn store_word(&mut self, addr: u32, value: u32) -> Result<(), Trap> {
        match self.memory.get_mut(addr as usize) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(Trap::OutOfBounds { addr }),
        }
    }

    /// Direct view of memory (e.g. for the verifier's expected-memory copy).
    pub fn memory(&self) -> &[u32] {
        &self.memory
    }

    /// Mutable view of memory (the adversary's lever: malware injection).
    pub fn memory_mut(&mut self) -> &mut [u32] {
        &mut self.memory
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Propagates execution traps; the CPU is left at the faulting state.
    pub fn step(&mut self) -> Result<(), Trap> {
        if self.halted {
            return Ok(());
        }
        let addr = self.pc;
        let word = self.load_word(addr)?;
        let inst = Instruction::decode(word).map_err(|e| Trap::IllegalInstruction { word: e.word, addr })?;
        self.pc = self.pc.wrapping_add(1);
        self.cycles += inst.base_cycles();
        self.instructions += 1;

        match inst {
            Instruction::Alu { op, rd, rs1, rs2 } => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                if self.puf_mode && op == AluOp::Add {
                    match self.puf.as_mut() {
                        Some(p) => p.challenge(a, b),
                        None => return Err(Trap::NoPufAttached),
                    }
                }
                self.set_reg(rd, op.apply(a, b));
            }
            Instruction::AluImm { op, rd, rs1, imm } => {
                let a = self.reg(rs1);
                self.set_reg(rd, op.apply(a, imm as i32 as u32));
            }
            Instruction::Lui { rd, imm } => self.set_reg(rd, (imm as u32) << 16),
            Instruction::Lw { rd, rs1, imm } => {
                let addr = self.reg(rs1).wrapping_add(imm as i32 as u32);
                let v = self.load_word(addr)?;
                self.set_reg(rd, v);
            }
            Instruction::Sw { rs2, rs1, imm } => {
                let addr = self.reg(rs1).wrapping_add(imm as i32 as u32);
                let v = self.reg(rs2);
                self.store_word(addr, v)?;
            }
            Instruction::Branch { cond, rs1, rs2, imm } => {
                if cond.holds(self.reg(rs1), self.reg(rs2)) {
                    self.pc = self.pc.wrapping_add(imm as i32 as u32);
                    self.cycles += 1; // taken-branch penalty
                }
            }
            Instruction::Jal { rd, imm } => {
                self.set_reg(rd, self.pc);
                self.pc = self.pc.wrapping_add(imm as i32 as u32);
            }
            Instruction::Jalr { rd, rs1 } => {
                let target = self.reg(rs1);
                self.set_reg(rd, self.pc);
                self.pc = target;
            }
            Instruction::Halt => self.halted = true,
            Instruction::Nop => {}
            Instruction::Pstart => {
                match self.puf.as_mut() {
                    Some(p) => p.start(),
                    None => return Err(Trap::NoPufAttached),
                }
                self.puf_mode = true;
            }
            Instruction::Pend => {
                let out = match self.puf.as_mut() {
                    Some(p) => p.finalize(),
                    None => return Err(Trap::NoPufAttached),
                };
                self.puf_result = Some(out);
                self.puf_mode = false;
            }
            Instruction::Pread { rd } => {
                let z = self.puf_result.as_ref().ok_or(Trap::PufNotReady)?.z;
                self.set_reg(rd, z);
            }
            Instruction::Phelp { rd, imm } => {
                let helper = &self.puf_result.as_ref().ok_or(Trap::PufNotReady)?.helper;
                let v = helper.get(imm as usize).copied().unwrap_or(0);
                self.set_reg(rd, v);
            }
        }
        Ok(())
    }

    /// Runs until `halt` or the cycle budget is exhausted.
    ///
    /// # Errors
    ///
    /// [`Trap::CycleLimit`] if the budget runs out, or any execution trap.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunResult, Trap> {
        while !self.halted {
            if self.cycles >= max_cycles {
                return Err(Trap::CycleLimit);
            }
            self.step()?;
        }
        Ok(RunResult { cycles: self.cycles, instructions: self.instructions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AluOp, BranchCond};
    use crate::puf_port::MockPufPort;

    fn program(insts: &[Instruction]) -> Vec<u32> {
        insts.iter().map(|i| i.encode()).collect()
    }

    #[test]
    fn arithmetic_program() {
        let mut cpu = Cpu::new(64);
        cpu.load_program(&program(&[
            Instruction::AluImm { op: AluOp::Add, rd: Reg(1), rs1: Reg::ZERO, imm: 21 },
            Instruction::AluImm { op: AluOp::Add, rd: Reg(2), rs1: Reg::ZERO, imm: 2 },
            Instruction::Alu { op: AluOp::Mul, rd: Reg(3), rs1: Reg(1), rs2: Reg(2) },
            Instruction::Halt,
        ]));
        cpu.run(1000).unwrap();
        assert_eq!(cpu.reg(Reg(3)), 42);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let mut cpu = Cpu::new(16);
        cpu.load_program(&program(&[
            Instruction::AluImm { op: AluOp::Add, rd: Reg::ZERO, rs1: Reg::ZERO, imm: 99 },
            Instruction::Halt,
        ]));
        cpu.run(100).unwrap();
        assert_eq!(cpu.reg(Reg::ZERO), 0);
    }

    #[test]
    fn loop_counts_cycles() {
        // r1 = 10; loop { r1 -= 1 } until r1 == 0.
        let mut cpu = Cpu::new(16);
        cpu.load_program(&program(&[
            Instruction::AluImm { op: AluOp::Add, rd: Reg(1), rs1: Reg::ZERO, imm: 10 },
            Instruction::AluImm { op: AluOp::Add, rd: Reg(1), rs1: Reg(1), imm: -1 },
            Instruction::Branch { cond: BranchCond::Ne, rs1: Reg(1), rs2: Reg::ZERO, imm: -2 },
            Instruction::Halt,
        ]));
        let r = cpu.run(10_000).unwrap();
        assert_eq!(cpu.reg(Reg(1)), 0);
        // 1 (addi) + 10·(1 addi + 1 branch) + 9 taken penalties + 1 halt.
        assert_eq!(r.cycles, 1 + 20 + 9 + 1);
    }

    #[test]
    fn memory_load_store() {
        let mut cpu = Cpu::new(64);
        cpu.load_program(&program(&[
            Instruction::AluImm { op: AluOp::Add, rd: Reg(1), rs1: Reg::ZERO, imm: 40 }, // base
            Instruction::AluImm { op: AluOp::Add, rd: Reg(2), rs1: Reg::ZERO, imm: 123 },
            Instruction::Sw { rs2: Reg(2), rs1: Reg(1), imm: 2 },
            Instruction::Lw { rd: Reg(3), rs1: Reg(1), imm: 2 },
            Instruction::Halt,
        ]));
        cpu.run(100).unwrap();
        assert_eq!(cpu.reg(Reg(3)), 123);
        assert_eq!(cpu.memory()[42], 123);
    }

    #[test]
    fn out_of_bounds_traps() {
        let mut cpu = Cpu::new(16);
        cpu.load_program(&program(&[
            Instruction::Lw { rd: Reg(1), rs1: Reg::ZERO, imm: 100 },
            Instruction::Halt,
        ]));
        assert_eq!(cpu.run(100), Err(Trap::OutOfBounds { addr: 100 }));
    }

    #[test]
    fn illegal_instruction_traps() {
        let mut cpu = Cpu::new(16);
        cpu.load_program(&[0xFF00_0000]);
        assert!(matches!(cpu.run(100), Err(Trap::IllegalInstruction { addr: 0, .. })));
    }

    #[test]
    fn cycle_limit_traps() {
        // Infinite loop: jal r0, -1.
        let mut cpu = Cpu::new(16);
        cpu.load_program(&program(&[Instruction::Jal { rd: Reg::ZERO, imm: -1 }]));
        assert_eq!(cpu.run(100), Err(Trap::CycleLimit));
    }

    #[test]
    fn puf_mode_forwards_add_operands() {
        let mut cpu = Cpu::new(32);
        cpu.attach_puf(Box::new(MockPufPort::new()));
        cpu.load_program(&program(&[
            Instruction::AluImm { op: AluOp::Add, rd: Reg(1), rs1: Reg::ZERO, imm: 11 },
            Instruction::AluImm { op: AluOp::Add, rd: Reg(2), rs1: Reg::ZERO, imm: 22 },
            Instruction::Pstart,
            Instruction::Alu { op: AluOp::Add, rd: Reg(3), rs1: Reg(1), rs2: Reg(2) },
            Instruction::Pend,
            Instruction::Pread { rd: Reg(4) },
            Instruction::Phelp { rd: Reg(5), imm: 0 },
            Instruction::Halt,
        ]));
        cpu.run(1000).unwrap();
        // The add still computes its architectural result…
        assert_eq!(cpu.reg(Reg(3)), 33);
        // …and the PUF saw exactly one challenge.
        assert_eq!(cpu.reg(Reg(5)), 1);
        assert_ne!(cpu.reg(Reg(4)), 0, "z latched");
    }

    #[test]
    fn add_outside_puf_mode_does_not_challenge() {
        let mut cpu = Cpu::new(32);
        cpu.attach_puf(Box::new(MockPufPort::new()));
        cpu.load_program(&program(&[
            Instruction::Pstart,
            Instruction::Pend, // zero challenges
            Instruction::Phelp { rd: Reg(5), imm: 0 },
            Instruction::Alu { op: AluOp::Add, rd: Reg(3), rs1: Reg(1), rs2: Reg(2) },
            Instruction::Halt,
        ]));
        cpu.run(1000).unwrap();
        assert_eq!(cpu.reg(Reg(5)), 0, "no challenges outside PUF mode");
    }

    #[test]
    fn pread_before_pend_traps() {
        let mut cpu = Cpu::new(16);
        cpu.attach_puf(Box::new(MockPufPort::new()));
        cpu.load_program(&program(&[Instruction::Pread { rd: Reg(1) }, Instruction::Halt]));
        assert_eq!(cpu.run(100), Err(Trap::PufNotReady));
    }

    #[test]
    fn puf_instructions_without_port_trap() {
        let mut cpu = Cpu::new(16);
        cpu.load_program(&program(&[Instruction::Pstart, Instruction::Halt]));
        assert_eq!(cpu.run(100), Err(Trap::NoPufAttached));
    }

    #[test]
    fn clock_translates_cycles() {
        let c = Clock::new(100.0); // 100 MHz ⇒ 10 ns ⇒ 10_000 ps
        assert!((c.cycle_ps() - 10_000.0).abs() < 1e-9);
        assert!((c.duration_ns(100) - 1000.0).abs() < 1e-9);
        let oc = c.overclocked(1.25);
        assert!((oc.frequency_mhz - 125.0).abs() < 1e-9);
        assert!(oc.cycle_ps() < c.cycle_ps());
    }

    #[test]
    fn jalr_returns() {
        // jal r15, +2 (skip one); halt at target; subroutine jumps back.
        let mut cpu = Cpu::new(32);
        cpu.load_program(&program(&[
            Instruction::Jal { rd: Reg(15), imm: 1 }, // 0: to 2, r15 = 1
            Instruction::Halt,                        // 1: final halt
            Instruction::AluImm { op: AluOp::Add, rd: Reg(1), rs1: Reg::ZERO, imm: 7 }, // 2
            Instruction::Jalr { rd: Reg::ZERO, rs1: Reg(15) }, // 3: back to 1
        ]));
        cpu.run(100).unwrap();
        assert!(cpu.halted());
        assert_eq!(cpu.reg(Reg(1)), 7);
    }
}
