//! Two-pass assembler (and disassembler) for PE32.
//!
//! Syntax, one statement per line; `;` or `#` start comments:
//!
//! ```text
//! ; compute 6 * 7
//!         addi  r1, r0, 6
//!         addi  r2, r0, 7
//!         mul   r3, r1, r2
//! spin:   beq   r0, r0, spin     ; labels resolve to relative offsets
//!         halt
//! value:  .word 0xDEADBEEF       ; literal data words
//!         .space 8               ; 8 zero words
//!         .equ  LIMIT 100        ; named constant, usable as an immediate
//! ```
//!
//! Mnemonics: `add sub and or xor sll srl sra slt sltu mul` (+ `i`-suffixed
//! immediate forms), `lui`, `lw rd, imm(rs1)`, `sw rs2, imm(rs1)`,
//! `beq bne blt bge bltu bgeu`, `jal`, `jalr`, `halt`, `nop`, and the PUF
//! extension `pstart pend pread phelp`.

use crate::isa::{AluOp, BranchCond, Instruction, Reg};
use std::collections::HashMap;
use std::fmt;

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number; 0 when the error is not tied to a source line
    /// (e.g. a failed label lookup on an assembled program).
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            f.write_str(&self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for AsmError {}

/// A successfully assembled program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Encoded memory image, starting at word address 0.
    pub image: Vec<u32>,
    /// Label → word-address map (useful for locating data in tests and for
    /// the attestation adversary to find its malware region).
    pub labels: HashMap<String, u32>,
}

impl Program {
    /// Address of a label.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] (with no line attribution) for an undefined
    /// label, so callers embedding generated programs — e.g. a verifier
    /// worker loading a checksum program — can reject malformed sources
    /// instead of aborting.
    pub fn label(&self, name: &str) -> Result<u32, AsmError> {
        self.labels
            .get(name)
            .copied()
            .ok_or_else(|| AsmError { line: 0, message: format!("no such label `{name}`") })
    }
}

/// Assembles PE32 source into a memory image.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered (unknown mnemonic, bad
/// operand, duplicate or unresolved label, immediate overflow).
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut items: Vec<(usize, Stmt)> = Vec::new();
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut addr: u32 = 0;

    // Pass 1: parse, record label addresses and .equ constants.
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut text = raw;
        if let Some(pos) = text.find([';', '#']) {
            text = &text[..pos];
        }
        let mut text = text.trim();
        // `.equ NAME value` defines a label-like constant.
        if let Some(rest) = text.strip_prefix(".equ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(value)) = (parts.next(), parts.next()) else {
                return Err(AsmError { line, message: ".equ needs a name and a value".into() });
            };
            if parts.next().is_some() {
                return Err(AsmError { line, message: ".equ takes exactly two operands".into() });
            }
            let v = parse_u32(value).map_err(|m| AsmError { line, message: m })?;
            if labels.insert(name.to_string(), v).is_some() {
                return Err(AsmError { line, message: format!("duplicate label `{name}`") });
            }
            continue;
        }
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.') {
                return Err(AsmError { line, message: format!("invalid label `{label}`") });
            }
            if labels.insert(label.to_string(), addr).is_some() {
                return Err(AsmError { line, message: format!("duplicate label `{label}`") });
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let stmt = parse_stmt(text, line)?;
        addr += stmt.size();
        items.push((line, stmt));
    }

    // Pass 2: encode with resolved labels.
    let mut image = Vec::with_capacity(addr as usize);
    for (line, stmt) in items {
        let at = image.len() as u32;
        stmt.emit(at, &labels, &mut image)
            .map_err(|message| AsmError { line, message })?;
    }
    Ok(Program { image, labels })
}

/// Disassembles a memory image; undecodable words render as `.word`.
pub fn disassemble(image: &[u32]) -> String {
    let mut out = String::new();
    for (addr, &word) in image.iter().enumerate() {
        let text = match Instruction::decode(word) {
            Ok(inst) => inst.to_string(),
            Err(_) => format!(".word {word:#010x}"),
        };
        out.push_str(&format!("{addr:6}: {text}\n"));
    }
    out
}

#[derive(Debug, Clone)]
enum Stmt {
    Inst { mnemonic: String, operands: Vec<String> },
    Word(u32),
    Space(u32),
}

impl Stmt {
    fn size(&self) -> u32 {
        match self {
            Stmt::Inst { .. } | Stmt::Word(_) => 1,
            Stmt::Space(n) => *n,
        }
    }

    fn emit(&self, at: u32, labels: &HashMap<String, u32>, image: &mut Vec<u32>) -> Result<(), String> {
        match self {
            Stmt::Word(w) => image.push(*w),
            Stmt::Space(n) => image.extend(std::iter::repeat_n(0u32, *n as usize)),
            Stmt::Inst { mnemonic, operands } => {
                let inst = encode_inst(mnemonic, operands, at, labels)?;
                image.push(inst.encode());
            }
        }
        Ok(())
    }
}

fn parse_stmt(text: &str, line: usize) -> Result<Stmt, AsmError> {
    let mut parts = text.splitn(2, char::is_whitespace);
    let head = parts.next().expect("nonempty").to_ascii_lowercase();
    let rest = parts.next().unwrap_or("").trim();
    match head.as_str() {
        ".word" => {
            let v = parse_u32(rest).map_err(|m| AsmError { line, message: m })?;
            Ok(Stmt::Word(v))
        }
        ".space" => {
            let v = parse_u32(rest).map_err(|m| AsmError { line, message: m })?;
            Ok(Stmt::Space(v))
        }
        _ => {
            let operands = if rest.is_empty() {
                Vec::new()
            } else {
                rest.split(',').map(|s| s.trim().to_string()).collect()
            };
            Ok(Stmt::Inst { mnemonic: head, operands })
        }
    }
}

fn parse_u32(s: &str) -> Result<u32, String> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        body.parse::<u64>()
    }
    .map_err(|_| format!("invalid number `{s}`"))?;
    if value > u32::MAX as u64 {
        return Err(format!("number `{s}` exceeds 32 bits"));
    }
    Ok(if neg { (value as u32).wrapping_neg() } else { value as u32 })
}

fn parse_reg(s: &str) -> Result<Reg, String> {
    let t = s.trim().to_ascii_lowercase();
    let idx = t.strip_prefix('r').ok_or_else(|| format!("expected register, got `{s}`"))?;
    let n: u8 = idx.parse().map_err(|_| format!("invalid register `{s}`"))?;
    if n > 15 {
        return Err(format!("register `{s}` out of range (r0-r15)"));
    }
    Ok(Reg(n))
}

fn parse_imm16(s: &str, at: u32, labels: &HashMap<String, u32>, relative: bool) -> Result<i16, String> {
    let t = s.trim();
    if let Some(&target) = labels.get(t) {
        let value = if relative { target as i64 - (at as i64 + 1) } else { target as i64 };
        return i16::try_from(value).map_err(|_| format!("label `{t}` out of 16-bit range ({value})"));
    }
    let (neg, body) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let raw = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| format!("invalid immediate `{s}`"))?;
    let value = if neg { -raw } else { raw };
    // Accept both signed range and unsigned 16-bit literals (for lui masks).
    if value > u16::MAX as i64 || value < i16::MIN as i64 {
        return Err(format!("immediate `{s}` out of 16-bit range"));
    }
    Ok(value as u16 as i16)
}

/// Parses `imm(rs1)` memory operands.
fn parse_mem(s: &str, labels: &HashMap<String, u32>) -> Result<(i16, Reg), String> {
    let open = s.find('(').ok_or_else(|| format!("expected `imm(reg)`, got `{s}`"))?;
    let close = s.rfind(')').ok_or_else(|| format!("missing `)` in `{s}`"))?;
    let imm_text = s[..open].trim();
    let imm = if imm_text.is_empty() { 0 } else { parse_imm16(imm_text, 0, labels, false)? };
    let reg = parse_reg(&s[open + 1..close])?;
    Ok((imm, reg))
}

fn encode_inst(mnemonic: &str, ops: &[String], at: u32, labels: &HashMap<String, u32>) -> Result<Instruction, String> {
    let expect = |n: usize| -> Result<(), String> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(format!("`{mnemonic}` expects {n} operands, got {}", ops.len()))
        }
    };
    let alu = |name: &str| -> Option<AluOp> {
        Some(match name {
            "add" => AluOp::Add,
            "sub" => AluOp::Sub,
            "and" => AluOp::And,
            "or" => AluOp::Or,
            "xor" => AluOp::Xor,
            "sll" => AluOp::Sll,
            "srl" => AluOp::Srl,
            "sra" => AluOp::Sra,
            "slt" => AluOp::Slt,
            "sltu" => AluOp::Sltu,
            "mul" => AluOp::Mul,
            _ => return None,
        })
    };
    let branch = |name: &str| -> Option<BranchCond> {
        Some(match name {
            "beq" => BranchCond::Eq,
            "bne" => BranchCond::Ne,
            "blt" => BranchCond::Lt,
            "bge" => BranchCond::Ge,
            "bltu" => BranchCond::Ltu,
            "bgeu" => BranchCond::Geu,
            _ => return None,
        })
    };

    if let Some(op) = alu(mnemonic) {
        expect(3)?;
        return Ok(Instruction::Alu {
            op,
            rd: parse_reg(&ops[0])?,
            rs1: parse_reg(&ops[1])?,
            rs2: parse_reg(&ops[2])?,
        });
    }
    if let Some(base) = mnemonic.strip_suffix('i') {
        if let Some(op) = alu(base) {
            expect(3)?;
            return Ok(Instruction::AluImm {
                op,
                rd: parse_reg(&ops[0])?,
                rs1: parse_reg(&ops[1])?,
                imm: parse_imm16(&ops[2], at, labels, false)?,
            });
        }
    }
    if let Some(cond) = branch(mnemonic) {
        expect(3)?;
        return Ok(Instruction::Branch {
            cond,
            rs1: parse_reg(&ops[0])?,
            rs2: parse_reg(&ops[1])?,
            imm: parse_imm16(&ops[2], at, labels, true)?,
        });
    }
    match mnemonic {
        "lui" => {
            expect(2)?;
            Ok(Instruction::Lui {
                rd: parse_reg(&ops[0])?,
                imm: parse_imm16(&ops[1], at, labels, false)? as u16,
            })
        }
        "lw" => {
            expect(2)?;
            let (imm, rs1) = parse_mem(&ops[1], labels)?;
            Ok(Instruction::Lw { rd: parse_reg(&ops[0])?, rs1, imm })
        }
        "sw" => {
            expect(2)?;
            let (imm, rs1) = parse_mem(&ops[1], labels)?;
            Ok(Instruction::Sw { rs2: parse_reg(&ops[0])?, rs1, imm })
        }
        "jal" => {
            expect(2)?;
            Ok(Instruction::Jal {
                rd: parse_reg(&ops[0])?,
                imm: parse_imm16(&ops[1], at, labels, true)?,
            })
        }
        "jalr" => {
            expect(2)?;
            Ok(Instruction::Jalr { rd: parse_reg(&ops[0])?, rs1: parse_reg(&ops[1])? })
        }
        "halt" => {
            expect(0)?;
            Ok(Instruction::Halt)
        }
        "nop" => {
            expect(0)?;
            Ok(Instruction::Nop)
        }
        "pstart" => {
            expect(0)?;
            Ok(Instruction::Pstart)
        }
        "pend" => {
            expect(0)?;
            Ok(Instruction::Pend)
        }
        "pread" => {
            expect(1)?;
            Ok(Instruction::Pread { rd: parse_reg(&ops[0])? })
        }
        "phelp" => {
            expect(2)?;
            Ok(Instruction::Phelp {
                rd: parse_reg(&ops[0])?,
                imm: parse_imm16(&ops[1], at, labels, false)?,
            })
        }
        _ => Err(format!("unknown mnemonic `{mnemonic}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Cpu;
    use crate::isa::Reg;

    #[test]
    fn assemble_and_run_factorial() {
        let src = r"
            ; 5! iteratively
            addi r1, r0, 5      ; n
            addi r2, r0, 1      ; acc
        loop:
            mul  r2, r2, r1
            addi r1, r1, -1
            bne  r1, r0, loop
            halt
        ";
        let prog = assemble(src).unwrap();
        let mut cpu = Cpu::new(64);
        cpu.load_program(&prog.image);
        cpu.run(10_000).unwrap();
        assert_eq!(cpu.reg(Reg(2)), 120);
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let src = r"
            jal r0, end
        back:
            halt
        end:
            beq r0, r0, back
        ";
        let prog = assemble(src).unwrap();
        let mut cpu = Cpu::new(16);
        cpu.load_program(&prog.image);
        cpu.run(100).unwrap();
        assert!(cpu.halted());
    }

    #[test]
    fn data_directives() {
        let src = r"
            lw r1, value(r0)
            halt
        value: .word 0xCAFEBABE
            .space 3
        ";
        let prog = assemble(src).unwrap();
        assert_eq!(prog.image.len(), 2 + 1 + 3);
        assert_eq!(prog.label("value").unwrap(), 2);
        let mut cpu = Cpu::new(16);
        cpu.load_program(&prog.image);
        cpu.run(100).unwrap();
        assert_eq!(cpu.reg(Reg(1)), 0xCAFE_BABE);
    }

    #[test]
    fn lw_absolute_label_addressing() {
        let src = r"
            addi r2, r0, data
            lw   r1, 1(r2)
            halt
        data: .word 10
              .word 20
        ";
        let prog = assemble(src).unwrap();
        let mut cpu = Cpu::new(16);
        cpu.load_program(&prog.image);
        cpu.run(100).unwrap();
        assert_eq!(cpu.reg(Reg(1)), 20);
    }

    #[test]
    fn missing_label_is_an_error_not_a_panic() {
        let prog = assemble("start: nop\nhalt").unwrap();
        assert_eq!(prog.label("start").unwrap(), 0);
        let err = prog.label("malware_region").unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.message.contains("malware_region"));
        assert!(!err.to_string().contains("line"), "{err}");
    }

    #[test]
    fn puf_mnemonics_assemble() {
        let src = "pstart\nadd r1, r2, r3\npend\npread r4\nphelp r5, 1\nhalt";
        let prog = assemble(src).unwrap();
        assert_eq!(prog.image.len(), 6);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("nop\nbogus r1, r2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));

        let err = assemble("addi r1, r0, 99999").unwrap_err();
        assert!(err.message.contains("16-bit"), "{}", err.message);

        let err = assemble("add r1, r2").unwrap_err();
        assert!(err.message.contains("3 operands"));

        let err = assemble("x: nop\nx: nop").unwrap_err();
        assert!(err.message.contains("duplicate"));

        let err = assemble("add r99, r0, r0").unwrap_err();
        assert!(err.message.contains("register"));
    }

    #[test]
    fn equ_constants_work_as_immediates() {
        let src = r"
            .equ LIMIT 12
            .equ BASE 0x40
            addi r1, r0, LIMIT
            addi r2, r0, BASE
            sw   r1, 2(r2)
            lw   r3, 2(r2)
            halt
        ";
        let prog = assemble(src).unwrap();
        let mut cpu = Cpu::new(128);
        cpu.load_program(&prog.image);
        cpu.run(100).unwrap();
        assert_eq!(cpu.reg(Reg(1)), 12);
        assert_eq!(cpu.reg(Reg(3)), 12);
        assert_eq!(cpu.memory()[0x42], 12);
    }

    #[test]
    fn equ_rejects_malformed_definitions() {
        assert!(assemble(".equ ONLYNAME").unwrap_err().message.contains("name and a value"));
        assert!(assemble(".equ A 1 2").unwrap_err().message.contains("exactly two"));
        assert!(assemble(
            ".equ A 1
.equ A 2"
        )
        .unwrap_err()
        .message
        .contains("duplicate"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let prog = assemble("; nothing\n\n   # also nothing\nhalt ; trailing\n").unwrap();
        assert_eq!(prog.image.len(), 1);
    }

    #[test]
    fn disassemble_round_trips_through_display() {
        let src = "addi r1, r0, 5\nhalt\n";
        let prog = assemble(src).unwrap();
        let dis = disassemble(&prog.image);
        assert!(dis.contains("addi r1, r0, 5"));
        assert!(dis.contains("halt"));
    }

    #[test]
    fn disassemble_marks_data_words() {
        let dis = disassemble(&[0xFFFF_FFFF]);
        assert!(dis.contains(".word 0xffffffff"));
    }

    #[test]
    fn negative_hex_immediates() {
        let prog = assemble("addi r1, r0, -0x10\nhalt").unwrap();
        let mut cpu = Cpu::new(8);
        cpu.load_program(&prog.image);
        cpu.run(10).unwrap();
        assert_eq!(cpu.reg(Reg(1)), (-16i32) as u32);
    }
}
