//! Execution profiling: where the prover's cycles go.
//!
//! The attestation time bound δ is a cycle budget; this module breaks a
//! run down by instruction class and hot program counters, which is how
//! the experiments attribute the memory-copy attack's overhead (extra
//! branches and address arithmetic in the load path) and how the docs'
//! cycle-count claims were produced.

use crate::cpu::{Cpu, Trap};
use crate::isa::Instruction;
use std::collections::HashMap;
use std::fmt;

/// Coarse instruction classes for cycle attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InstClass {
    /// Register/immediate ALU operations (including `mul`).
    Alu,
    /// Loads and stores.
    Memory,
    /// Branches and jumps.
    Control,
    /// `pstart`/`pend`/`pread`/`phelp` and PUF-mode `add`s are counted as
    /// Alu; this class covers only the dedicated PUF opcodes.
    Puf,
    /// `nop`, `halt`, `lui`.
    Other,
}

impl InstClass {
    fn of(inst: &Instruction) -> InstClass {
        match inst {
            Instruction::Alu { .. } | Instruction::AluImm { .. } => InstClass::Alu,
            Instruction::Lw { .. } | Instruction::Sw { .. } => InstClass::Memory,
            Instruction::Branch { .. } | Instruction::Jal { .. } | Instruction::Jalr { .. } => InstClass::Control,
            Instruction::Pstart | Instruction::Pend | Instruction::Pread { .. } | Instruction::Phelp { .. } => {
                InstClass::Puf
            }
            Instruction::Lui { .. } | Instruction::Halt | Instruction::Nop => InstClass::Other,
        }
    }

    /// All classes, in display order.
    pub const ALL: [InstClass; 5] = [
        InstClass::Alu,
        InstClass::Memory,
        InstClass::Control,
        InstClass::Puf,
        InstClass::Other,
    ];
}

impl fmt::Display for InstClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstClass::Alu => "alu",
            InstClass::Memory => "memory",
            InstClass::Control => "control",
            InstClass::Puf => "puf",
            InstClass::Other => "other",
        };
        f.write_str(s)
    }
}

/// Profile of one traced execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutionProfile {
    /// Instructions retired per class.
    pub instructions: HashMap<InstClass, u64>,
    /// Cycles consumed per class (including taken-branch penalties).
    pub cycles: HashMap<InstClass, u64>,
    /// Execution count per program counter.
    pub pc_heat: HashMap<u32, u64>,
    /// Total cycles.
    pub total_cycles: u64,
    /// Total instructions.
    pub total_instructions: u64,
}

impl ExecutionProfile {
    /// The `count` hottest program counters, hottest first.
    pub fn hottest(&self, count: usize) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self.pc_heat.iter().map(|(&pc, &n)| (pc, n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(count);
        v
    }

    /// Fraction of cycles spent in a class.
    pub fn cycle_fraction(&self, class: InstClass) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        *self.cycles.get(&class).unwrap_or(&0) as f64 / self.total_cycles as f64
    }
}

impl fmt::Display for ExecutionProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "execution profile: {} instructions, {} cycles", self.total_instructions, self.total_cycles)?;
        for class in InstClass::ALL {
            let i = self.instructions.get(&class).unwrap_or(&0);
            let c = self.cycles.get(&class).unwrap_or(&0);
            if *i > 0 {
                writeln!(
                    f,
                    "  {class:<8} {i:>10} insts {c:>10} cycles ({:>5.1}%)",
                    100.0 * self.cycle_fraction(class)
                )?;
            }
        }
        Ok(())
    }
}

/// Runs the CPU to completion while collecting an [`ExecutionProfile`].
///
/// Functionally identical to [`Cpu::run`] (same architectural results);
/// only the bookkeeping differs.
///
/// # Errors
///
/// Propagates the same traps as [`Cpu::run`].
pub fn run_profiled(cpu: &mut Cpu, max_cycles: u64) -> Result<ExecutionProfile, Trap> {
    let mut profile = ExecutionProfile::default();
    while !cpu.halted() {
        if cpu.cycles() >= max_cycles {
            return Err(Trap::CycleLimit);
        }
        let pc = cpu.pc();
        let word = cpu.load_word(pc)?;
        let class = Instruction::decode(word).map(|i| InstClass::of(&i)).unwrap_or(InstClass::Other);
        let before = cpu.cycles();
        cpu.step()?;
        let spent = cpu.cycles() - before;
        *profile.instructions.entry(class).or_insert(0) += 1;
        *profile.cycles.entry(class).or_insert(0) += spent;
        *profile.pc_heat.entry(pc).or_insert(0) += 1;
        profile.total_instructions += 1;
        profile.total_cycles += spent;
    }
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn traced(src: &str) -> (Cpu, ExecutionProfile) {
        let program = assemble(src).expect("assembles");
        let mut cpu = Cpu::new(256);
        cpu.load_program(&program.image);
        let profile = run_profiled(&mut cpu, 1_000_000).expect("halts");
        (cpu, profile)
    }

    #[test]
    fn profile_matches_cpu_counters() {
        let (cpu, profile) = traced("addi r1, r0, 10\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt");
        assert_eq!(profile.total_cycles, cpu.cycles());
        let insts: u64 = profile.instructions.values().sum();
        assert_eq!(insts, profile.total_instructions);
        let cycles: u64 = profile.cycles.values().sum();
        assert_eq!(cycles, profile.total_cycles);
    }

    #[test]
    fn classes_are_attributed() {
        let (_, profile) = traced("addi r1, r0, 40\nsw r1, 100(r0)\nlw r2, 100(r0)\nbeq r0, r0, end\nnop\nend: halt");
        assert_eq!(*profile.instructions.get(&InstClass::Alu).unwrap(), 1);
        assert_eq!(*profile.instructions.get(&InstClass::Memory).unwrap(), 2);
        assert_eq!(*profile.instructions.get(&InstClass::Control).unwrap(), 1);
        // memory ops cost 2 cycles each.
        assert_eq!(*profile.cycles.get(&InstClass::Memory).unwrap(), 4);
    }

    #[test]
    fn hot_spot_is_the_loop() {
        let (_, profile) = traced("addi r1, r0, 50\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt");
        let hottest = profile.hottest(2);
        // The two loop instructions (addresses 1 and 2) dominate.
        assert_eq!(hottest.len(), 2);
        assert!(hottest.iter().all(|&(pc, n)| (pc == 1 || pc == 2) && n == 50), "{hottest:?}");
    }

    #[test]
    fn profiled_run_is_architecturally_identical() {
        let src = "addi r1, r0, 6\naddi r2, r0, 7\nmul r3, r1, r2\nhalt";
        let program = assemble(src).unwrap();
        let mut plain = Cpu::new(64);
        plain.load_program(&program.image);
        plain.run(1000).unwrap();
        let (profiled, _) = traced(src);
        assert_eq!(plain.reg(crate::isa::Reg(3)), profiled.reg(crate::isa::Reg(3)));
        assert_eq!(plain.cycles(), profiled.cycles());
    }

    #[test]
    fn display_renders_nonempty() {
        let (_, profile) = traced("addi r1, r0, 1\nhalt");
        let text = profile.to_string();
        assert!(text.contains("alu"));
        assert!(text.contains("cycles"));
    }
}
