//! A small library of PE32 assembly programs.
//!
//! Used three ways: as CPU regression workloads, as "normal mode"
//! applications for the paper's §2 claim that the PUF extension has *no
//! performance impact on programs executed in normal mode*, and as
//! realistic memory content for attestation scenarios (so the attested
//! region is not just the checksum's own code).

/// Iterative Fibonacci: leaves `fib(n)` in `r3`, where `n` is read from
/// the memory cell at label `n_cell`.
pub fn fibonacci() -> &'static str {
    r"
        lw   r1, n_cell(r0)      ; n
        addi r2, r0, 0           ; fib(0)
        addi r3, r0, 1           ; fib(1)
        beq  r1, r0, base0
        addi r4, r0, 1
        beq  r1, r4, done        ; n == 1 -> r3 = 1
    loop:
        add  r5, r2, r3
        add  r2, r3, r0
        add  r3, r5, r0
        addi r1, r1, -1
        bne  r1, r4, loop
        jal  r0, done
    base0:
        addi r3, r0, 0
    done:
        halt
    n_cell: .word 10
    "
}

/// Word-wise memcpy: copies `len` words from `src` to `dst` (labels in the
/// image; `len` at `len_cell`).
pub fn memcpy() -> &'static str {
    r"
        lw   r1, len_cell(r0)
        addi r2, r0, src
        addi r3, r0, dst
    copy:
        beq  r1, r0, done
        lw   r4, 0(r2)
        sw   r4, 0(r3)
        addi r2, r2, 1
        addi r3, r3, 1
        addi r1, r1, -1
        jal  r0, copy
    done:
        halt
    len_cell: .word 8
    src: .word 0x11111111
         .word 0x22222222
         .word 0x33333333
         .word 0x44444444
         .word 0x55555555
         .word 0x66666666
         .word 0x77777777
         .word 0x88888888
    dst: .space 8
    "
}

/// A 32-bit checksum over a data block (simple add-rotate mix) — a typical
/// sensor-node housekeeping routine. Result in `r3`.
pub fn block_checksum() -> &'static str {
    r"
        addi r1, r0, data
        lw   r2, count_cell(r0)
        addi r3, r0, 0
    mix:
        beq  r2, r0, done
        lw   r4, 0(r1)
        add  r3, r3, r4
        slli r5, r3, 7
        srli r6, r3, 25
        or   r3, r5, r6          ; rotl7
        addi r1, r1, 1
        addi r2, r2, -1
        jal  r0, mix
    done:
        halt
    count_cell: .word 6
    data: .word 101
          .word 202
          .word 303
          .word 404
          .word 505
          .word 606
    "
}

/// Bubble sort over a small array (in place). Demonstrates nested loops
/// and is the heaviest normal-mode workload in the library.
pub fn bubble_sort() -> &'static str {
    r"
        lw   r1, count_cell(r0)   ; n
        addi r1, r1, -1           ; outer = n - 1
    outer:
        beq  r1, r0, done
        addi r2, r0, 0            ; i = 0
    inner:
        bge  r2, r1, outer_next
        addi r3, r2, arr
        lw   r4, 0(r3)
        lw   r5, 1(r3)
        bge  r5, r4, no_swap      ; already ordered (signed)
        sw   r5, 0(r3)
        sw   r4, 1(r3)
    no_swap:
        addi r2, r2, 1
        jal  r0, inner
    outer_next:
        addi r1, r1, -1
        jal  r0, outer
    done:
        halt
    count_cell: .word 8
    arr: .word 42
         .word 7
         .word 99
         .word 1
         .word 64
         .word 23
         .word 88
         .word 15
    "
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::cpu::Cpu;
    use crate::isa::Reg;
    use crate::puf_port::MockPufPort;

    fn run(src: &str) -> Cpu {
        let program = assemble(src).expect("program assembles");
        let mut cpu = Cpu::new(512);
        cpu.load_program(&program.image);
        cpu.run(1_000_000).expect("program halts");
        cpu
    }

    #[test]
    fn fibonacci_computes() {
        let cpu = run(fibonacci());
        assert_eq!(cpu.reg(Reg(3)), 55, "fib(10)");
    }

    #[test]
    fn memcpy_copies() {
        let src = memcpy();
        let program = assemble(src).unwrap();
        let mut cpu = Cpu::new(512);
        cpu.load_program(&program.image);
        cpu.run(1_000_000).unwrap();
        let s = program.label("src").unwrap();
        let d = program.label("dst").unwrap();
        for i in 0..8 {
            assert_eq!(cpu.load_word(d + i).unwrap(), cpu.load_word(s + i).unwrap(), "word {i}");
        }
    }

    #[test]
    fn checksum_mixes_all_words() {
        let base = run(block_checksum()).reg(Reg(3));
        // Changing any data word changes the result.
        let program_src = block_checksum().replace(".word 303", ".word 304");
        let changed = run(&program_src).reg(Reg(3));
        assert_ne!(base, changed);
    }

    #[test]
    fn bubble_sort_sorts() {
        let src = bubble_sort();
        let program = assemble(src).unwrap();
        let mut cpu = Cpu::new(512);
        cpu.load_program(&program.image);
        cpu.run(1_000_000).unwrap();
        let arr = program.label("arr").unwrap();
        let values: Vec<u32> = (0..8).map(|i| cpu.load_word(arr + i).unwrap()).collect();
        let mut sorted = values.clone();
        sorted.sort();
        assert_eq!(values, sorted, "array must be sorted ascending");
    }

    /// Paper §2: "Since the PUF operation is performed in PUF mode, there
    /// is no performance impact on programs executed in normal mode." The
    /// same binary must take exactly the same cycles with or without a PUF
    /// attached.
    #[test]
    fn puf_extension_has_no_normal_mode_cost() {
        for src in [fibonacci(), memcpy(), block_checksum(), bubble_sort()] {
            let program = assemble(src).unwrap();

            let mut plain = Cpu::new(512);
            plain.load_program(&program.image);
            let plain_cycles = plain.run(1_000_000).unwrap().cycles;

            let mut with_puf = Cpu::new(512);
            with_puf.attach_puf(Box::new(MockPufPort::new()));
            with_puf.load_program(&program.image);
            let puf_cycles = with_puf.run(1_000_000).unwrap().cycles;

            assert_eq!(plain_cycles, puf_cycles, "PUF port must be invisible in normal mode");
        }
    }
}
