//! Coset-leader table decoding.
//!
//! For codes with few syndrome bits, the entire syndrome → minimum-weight
//! error mapping fits in memory (`2^(n−k)` entries): decoding becomes a
//! single lookup. This is how a hardware verifier would implement the
//! Golay or repetition decoders, and it doubles as an oracle to test the
//! algorithmic decoders against — a table decoder is *exact* minimum-
//! distance decoding by construction.

use crate::code::{CodeError, Decoder, LinearCode};
use crate::gf2::BitVec;

/// A decoder backed by a precomputed coset-leader table.
#[derive(Debug, Clone)]
pub struct TableDecoder {
    code: LinearCode,
    /// `leaders[s]` = minimum-weight error with syndrome `s` (bit-packed).
    leaders: Vec<u64>,
}

impl TableDecoder {
    /// Builds the table for `code` by breadth-first enumeration of error
    /// patterns in order of weight (so the first pattern hitting each coset
    /// is a minimum-weight leader).
    ///
    /// # Panics
    ///
    /// Panics if the code is too large for table decoding
    /// (`n − k > 24` or `n > 64`).
    #[allow(clippy::expect_used)]
    pub fn new(code: LinearCode) -> Self {
        let n = code.n();
        let sbits = code.syndrome_bits();
        assert!(n <= 64, "table decoding supports n <= 64, got {n}");
        assert!(sbits <= 24, "table decoding supports n-k <= 24, got {sbits}");
        let table_len = 1usize << sbits;
        let mut leaders = vec![u64::MAX; table_len];
        let mut remaining = table_len;

        // Weight-0 leader.
        leaders[0] = 0;
        remaining -= 1;

        // Enumerate patterns by weight until every coset has a leader.
        // Gosper's hack iterates fixed-weight words in increasing order.
        let mut weight = 1u32;
        while remaining > 0 {
            assert!(weight as usize <= n, "ran out of patterns with cosets unfilled");
            let mut v: u64 = (1 << weight) - 1;
            let limit = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
            while v <= limit {
                let e = BitVec::from_word(v, n);
                // analyze: allow(panic: e is built with exactly n bits)
                let s = code.syndrome(&e).expect("sized pattern").as_word() as usize;
                if leaders[s] == u64::MAX {
                    leaders[s] = v;
                    remaining -= 1;
                    if remaining == 0 {
                        break;
                    }
                }
                // Next word with the same popcount (Gosper).
                let c = v & v.wrapping_neg();
                let r = v + c;
                if r < v {
                    break; // overflow: done with this weight
                }
                v = r | (((v ^ r) >> 2) / c);
            }
            weight += 1;
        }
        TableDecoder { code, leaders }
    }

    /// The maximum leader weight in the table — every error pattern up to
    /// the code's guaranteed radius appears, heavier cosets hold their true
    /// minimum-weight representative.
    pub fn max_leader_weight(&self) -> u32 {
        self.leaders.iter().map(|l| l.count_ones()).max().unwrap_or(0)
    }
}

impl Decoder for TableDecoder {
    fn code(&self) -> &LinearCode {
        &self.code
    }

    fn decode(&self, received: &BitVec) -> Result<BitVec, CodeError> {
        let n = self.code.n();
        if received.len() != n {
            return Err(CodeError::LengthMismatch { expected: n, actual: received.len() });
        }
        let s = self.code.syndrome(received)?.as_word() as usize;
        let leader = self.leaders[s];
        Ok(BitVec::from_word(received.as_word() ^ leader, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golay::GolayCode;
    use crate::repetition::RepetitionCode;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn table_matches_golay_ml_decoder() {
        // Both are exact minimum-distance decoders: on every input within
        // the guaranteed radius they must agree exactly.
        let ml = GolayCode::new();
        let table = TableDecoder::new(ml.code().clone());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let positions: Vec<usize> = (0..24).collect();
        for _ in 0..300 {
            let msg: BitVec = (0..12).map(|_| rng.gen::<bool>()).collect();
            let cw = ml.code().encode(&msg).unwrap();
            let mut noisy = cw.clone();
            let k = rng.gen_range(0..=3);
            for &p in positions.choose_multiple(&mut rng, k) {
                noisy.flip(p);
            }
            assert_eq!(table.decode(&noisy).unwrap(), cw, "weight-{k}");
            assert_eq!(ml.decode(&noisy).unwrap(), cw);
        }
    }

    #[test]
    fn golay_leaders_cover_weights_up_to_4() {
        // Golay cosets: every syndrome has a leader of weight <= 4 (the
        // covering radius of the extended Golay code).
        let table = TableDecoder::new(GolayCode::new().code().clone());
        assert_eq!(table.max_leader_weight(), 4);
    }

    #[test]
    fn table_decodes_repetition_exactly() {
        let rep = RepetitionCode::new(3, 4);
        let table = TableDecoder::new(rep.code().clone());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..200 {
            let msg = BitVec::from_word(rng.gen::<u64>() & 0xF, 4);
            let cw = rep.code().encode(&msg).unwrap();
            let mut noisy = cw.clone();
            // One flip per group stays within the majority budget.
            for g in 0..4 {
                if rng.gen::<bool>() {
                    noisy.flip(g * 3 + rng.gen_range(0..3));
                }
            }
            assert_eq!(table.decode(&noisy).unwrap(), cw);
        }
    }

    #[test]
    fn syndrome_decoding_via_table() {
        let table = TableDecoder::new(GolayCode::new().code().clone());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let positions: Vec<usize> = (0..24).collect();
        for _ in 0..100 {
            let mut e = BitVec::zeros(24);
            let k = rng.gen_range(0..=3);
            for &p in positions.choose_multiple(&mut rng, k) {
                e.flip(p);
            }
            let s = table.code().syndrome(&e).unwrap();
            assert_eq!(table.decode_syndrome(&s).unwrap(), e);
        }
    }

    #[test]
    #[should_panic(expected = "n-k <= 24")]
    fn refuses_oversized_tables() {
        TableDecoder::new(crate::rm::ReedMuller1::bch_32_6_16().code().clone());
    }
}
