//! The extended binary Golay code \[24,12,8\].
//!
//! The classic mid-rate choice for PUF key generation: twice the key bits
//! of the paper's \[32,6,16\] code per codeword, at less than half the
//! correction radius (3 errors guaranteed). Included in the
//! error-correction ablation to show where the paper's heavy-correction
//! choice pays off.
//!
//! Construction: the cyclic \[23,12,7\] Golay code from its quadratic-
//! residue generator polynomial `g(x) = 1 + x² + x⁴ + x⁵ + x⁶ + x¹⁰ + x¹¹`,
//! extended with an overall parity bit. Decoding is exact maximum
//! likelihood by scanning the 4096 codewords (a few microseconds — tiny
//! codes make brute force the simplest *correct* decoder).

use crate::code::{CodeError, Decoder, LinearCode};
use crate::gf2::{BitMatrix, BitVec};

/// Generator polynomial of the cyclic [23,12,7] Golay code,
/// bit `i` = coefficient of `x^i`.
const GOLAY_G: u32 = 0b1100_0111_0101;

/// The extended binary Golay code with brute-force ML decoding.
#[derive(Debug, Clone)]
pub struct GolayCode {
    code: LinearCode,
    /// All 4096 codewords, bit-packed (bit `i` = position `i`).
    codewords: Vec<u32>,
}

impl GolayCode {
    /// Constructs the extended \[24,12,8\] Golay code.
    #[allow(clippy::expect_used)]
    pub fn new() -> Self {
        // Rows of the cyclic [23,12] generator: x^i · g(x), then extend
        // each row to even weight with bit 23.
        let rows: Vec<BitVec> = (0..12)
            .map(|shift| {
                let base = (GOLAY_G as u64) << shift;
                let weight = (base & ((1 << 23) - 1)).count_ones();
                let parity = (weight % 2 == 1) as u64;
                BitVec::from_word(base | (parity << 23), 24)
            })
            .collect();
        // analyze: allow(panic: identity block makes the generator rows independent)
        let code = LinearCode::from_generator(BitMatrix::from_rows(rows)).expect("Golay rows are independent");
        let mut codewords = Vec::with_capacity(1 << 12);
        for m in 0u64..(1 << 12) {
            let msg: BitVec = (0..12).map(|i| (m >> i) & 1 == 1).collect();
            // analyze: allow(panic: msg is built with exactly k = 12 bits)
            codewords.push(code.encode(&msg).expect("12-bit message").as_word() as u32);
        }
        GolayCode { code, codewords }
    }

    /// Guaranteed correction radius: 3.
    pub fn guaranteed_correction(&self) -> usize {
        3
    }
}

impl Default for GolayCode {
    fn default() -> Self {
        GolayCode::new()
    }
}

impl Decoder for GolayCode {
    fn code(&self) -> &LinearCode {
        &self.code
    }

    #[allow(clippy::expect_used)]
    fn decode(&self, received: &BitVec) -> Result<BitVec, CodeError> {
        if received.len() != 24 {
            return Err(CodeError::LengthMismatch { expected: 24, actual: received.len() });
        }
        let r = received.as_word() as u32;
        // 2^12 codewords were enumerated in new(); `unwrap_or` only
        // avoids a panic path the type system cannot rule out.
        let best = self
            .codewords
            .iter()
            .min_by_key(|&&c| ((c ^ r).count_ones(), c))
            .copied()
            .unwrap_or(0);
        Ok(BitVec::from_word(best as u64, 24))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn parameters_and_weight_distribution() {
        // The Golay code's famous weight distribution is the strongest
        // possible construction check: 1/759/2576/759/1 at weights
        // 0/8/12/16/24.
        let g = GolayCode::new();
        assert_eq!(g.code().n(), 24);
        assert_eq!(g.code().k(), 12);
        assert_eq!(g.code().syndrome_bits(), 12);
        let dist = g.code().weight_distribution();
        assert_eq!(dist[0], 1);
        assert_eq!(dist[8], 759);
        assert_eq!(dist[12], 2576);
        assert_eq!(dist[16], 759);
        assert_eq!(dist[24], 1);
        assert!(dist.iter().enumerate().all(|(w, &c)| c == 0 || [0, 8, 12, 16, 24].contains(&w)));
    }

    #[test]
    fn corrects_every_weight_le3_pattern_sampled() {
        let g = GolayCode::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let positions: Vec<usize> = (0..24).collect();
        for _ in 0..400 {
            let msg: BitVec = (0..12).map(|_| rng.gen::<bool>()).collect();
            let cw = g.code().encode(&msg).unwrap();
            let k = rng.gen_range(0..=3);
            let mut noisy = cw.clone();
            for &p in positions.choose_multiple(&mut rng, k) {
                noisy.flip(p);
            }
            assert_eq!(g.decode(&noisy).unwrap(), cw, "weight-{k} pattern");
        }
    }

    #[test]
    fn weight_4_patterns_are_ambiguous_but_terminate() {
        // d = 8: weight-4 errors sit exactly between codewords; ML returns
        // *a* nearest codeword deterministically.
        let g = GolayCode::new();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let positions: Vec<usize> = (0..24).collect();
        let mut wrong = 0;
        for _ in 0..100 {
            let msg: BitVec = (0..12).map(|_| rng.gen::<bool>()).collect();
            let cw = g.code().encode(&msg).unwrap();
            let mut noisy = cw.clone();
            for &p in positions.choose_multiple(&mut rng, 4) {
                noisy.flip(p);
            }
            let out = g.decode(&noisy).unwrap();
            assert!(g.code().is_codeword(&out));
            wrong += (out != cw) as u32;
        }
        assert!(wrong > 0, "some weight-4 ties must resolve to the wrong codeword");
    }

    #[test]
    fn syndrome_decoding_round_trips() {
        let g = GolayCode::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let positions: Vec<usize> = (0..24).collect();
        for _ in 0..200 {
            let mut e = BitVec::zeros(24);
            let k = rng.gen_range(0..=3);
            for &p in positions.choose_multiple(&mut rng, k) {
                e.flip(p);
            }
            let s = g.code().syndrome(&e).unwrap();
            assert_eq!(g.decode_syndrome(&s).unwrap(), e);
        }
    }

    #[test]
    fn decoding_is_deterministic() {
        let g = GolayCode::new();
        let r = BitVec::from_word(0xABCDEF, 24);
        assert_eq!(g.decode(&r).unwrap(), g.decode(&r).unwrap());
    }
}
