//! Bit-packed linear algebra over GF(2).
//!
//! The prover-side cost of the paper's error-correction scheme is a single
//! parity-check-matrix multiplication (the syndrome generator); the
//! verifier-side decoder additionally needs coset-representative solving.
//! Both are built on the [`BitVec`]/[`BitMatrix`] types here.

use std::fmt;

/// A fixed-length vector over GF(2), bit-packed into `u64` words
/// (bit `i` of the vector is bit `i % 64` of word `i / 64`).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        BitVec { len, words: vec![0; len.div_ceil(64)] }
    }

    /// Creates a vector from the low `len` bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    pub fn from_word(value: u64, len: usize) -> Self {
        assert!(len <= 64, "from_word supports at most 64 bits");
        let mut v = BitVec::zeros(len);
        if len > 0 {
            let mask = if len == 64 { u64::MAX } else { (1u64 << len) - 1 };
            v.words[0] = value & mask;
        }
        v
    }

    /// Creates a vector from boolean bits.
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut v = BitVec::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b);
        }
        v
    }

    /// Length in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has length zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// Hamming weight (number of one bits).
    pub fn weight(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Hamming distance to another vector.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn distance(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// In-place XOR with another vector.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn xor_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Returns `self ⊕ other`.
    pub fn xor(&self, other: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.xor_assign(other);
        out
    }

    /// Inner product over GF(2) (parity of the AND).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn dot(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "length mismatch");
        let mut acc = 0u64;
        for (a, b) in self.words.iter().zip(&other.words) {
            acc ^= a & b;
        }
        acc.count_ones() % 2 == 1
    }

    /// Returns the low 64 bits as a word.
    ///
    /// # Panics
    ///
    /// Panics if the vector is longer than 64 bits.
    pub fn as_word(&self) -> u64 {
        assert!(self.len <= 64, "vector longer than 64 bits");
        self.words.first().copied().unwrap_or(0)
    }

    /// Iterates over the bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[")?;
        for b in self.iter() {
            write!(f, "{}", b as u8)?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{}", b as u8)?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        BitVec::from_bits(&bits)
    }
}

/// A dense matrix over GF(2), stored as a row-major collection of [`BitVec`]s.
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    data: Vec<BitVec>,
}

impl BitMatrix {
    /// Creates an all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        BitMatrix { rows, cols, data: vec![BitVec::zeros(cols); rows] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = BitMatrix::zeros(n, n);
        for i in 0..n {
            m.data[i].set(i, true);
        }
        m
    }

    /// Creates a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: Vec<BitVec>) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "row length mismatch");
        BitMatrix { rows: rows.len(), cols, data: rows }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads entry `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> bool {
        self.data[r].get(c)
    }

    /// Writes entry `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        self.data[r].set(c, value);
    }

    /// Borrows row `r`.
    pub fn row(&self, r: usize) -> &BitVec {
        &self.data[r]
    }

    /// Matrix–vector product `M · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn mul_vec(&self, v: &BitVec) -> BitVec {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        self.data.iter().map(|row| row.dot(v)).collect()
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn mul(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let t = other.transpose();
        let rows = self
            .data
            .iter()
            .map(|r| (0..other.cols).map(|c| r.dot(&t.data[c])).collect())
            .collect();
        BitMatrix::from_rows(rows)
    }

    /// Transpose.
    pub fn transpose(&self) -> BitMatrix {
        let mut t = BitMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                if self.get(r, c) {
                    t.set(c, r, true);
                }
            }
        }
        t
    }

    /// Reduced row-echelon form. Returns `(rref, transform, pivots)` where
    /// `transform · self = rref` and `pivots[i]` is the pivot column of row
    /// `i` (rows beyond the rank are zero and have no pivot entry).
    pub fn rref(&self) -> (BitMatrix, BitMatrix, Vec<usize>) {
        let mut r = self.clone();
        let mut u = BitMatrix::identity(self.rows);
        let mut pivots = Vec::new();
        let mut row = 0;
        for col in 0..self.cols {
            if row == self.rows {
                break;
            }
            // Find a pivot at or below `row`.
            let Some(p) = (row..self.rows).find(|&i| r.get(i, col)) else {
                continue;
            };
            r.data.swap(row, p);
            u.data.swap(row, p);
            // Eliminate the column everywhere else.
            for i in 0..self.rows {
                if i != row && r.get(i, col) {
                    let (ri, rr) = borrow_two(&mut r.data, i, row);
                    ri.xor_assign(rr);
                    let (ui, ur) = borrow_two(&mut u.data, i, row);
                    ui.xor_assign(ur);
                }
            }
            pivots.push(col);
            row += 1;
        }
        (r, u, pivots)
    }

    /// Rank of the matrix.
    pub fn rank(&self) -> usize {
        self.rref().2.len()
    }

    /// A basis for the null space `{v : M · v = 0}`, one row per basis
    /// vector. Empty when the matrix has full column rank.
    pub fn nullspace(&self) -> Vec<BitVec> {
        let (r, _, pivots) = self.rref();
        let pivot_of_col: Vec<Option<usize>> = {
            let mut m = vec![None; self.cols];
            for (row, &col) in pivots.iter().enumerate() {
                m[col] = Some(row);
            }
            m
        };
        let mut basis = Vec::new();
        for (free, pivot) in pivot_of_col.iter().enumerate() {
            if pivot.is_some() {
                continue;
            }
            let mut v = BitVec::zeros(self.cols);
            v.set(free, true);
            for (row, &pc) in pivots.iter().enumerate() {
                if r.get(row, free) {
                    v.set(pc, true);
                }
            }
            basis.push(v);
        }
        basis
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix {}x{} [", self.rows, self.cols)?;
        for r in &self.data {
            writeln!(f, "  {r}")?;
        }
        write!(f, "]")
    }
}

/// Mutably borrows two distinct rows.
fn borrow_two<T>(data: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    assert_ne!(i, j);
    if i < j {
        let (a, b) = data.split_at_mut(j);
        (&mut a[i], &mut b[0])
    } else {
        let (a, b) = data.split_at_mut(i);
        (&mut b[0], &mut a[j])
    }
}

/// Solves `M · v = s` for one particular solution using a precomputed RREF.
///
/// Returned by [`CosetSolver::solve`]; `None` when the system is
/// inconsistent.
#[derive(Debug, Clone)]
pub struct CosetSolver {
    transform: BitMatrix,
    pivots: Vec<usize>,
    rref: BitMatrix,
    cols: usize,
}

impl CosetSolver {
    /// Prepares a solver for the linear system `M · v = s`.
    pub fn new(m: &BitMatrix) -> Self {
        let (rref, transform, pivots) = m.rref();
        CosetSolver { transform, pivots, rref, cols: m.cols() }
    }

    /// Finds a particular solution `v` with `M · v = s`, supported on the
    /// pivot columns only. Returns `None` if the system is inconsistent.
    ///
    /// # Panics
    ///
    /// Panics if `s.len()` differs from the number of rows of `M`.
    pub fn solve(&self, s: &BitVec) -> Option<BitVec> {
        let reduced = self.transform.mul_vec(s);
        // Consistency: zero rows of the RREF must map to zero bits.
        for row in self.pivots.len()..reduced.len() {
            if reduced.get(row) {
                return None;
            }
        }
        let mut v = BitVec::zeros(self.cols);
        for (row, &col) in self.pivots.iter().enumerate() {
            if reduced.get(row) {
                v.set(col, true);
            }
        }
        Some(v)
    }

    /// The RREF of the underlying matrix (useful for inspection/tests).
    pub fn rref(&self) -> &BitMatrix {
        &self.rref
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_vec(len: usize, rng: &mut impl Rng) -> BitVec {
        (0..len).map(|_| rng.gen::<bool>()).collect()
    }

    fn random_matrix(rows: usize, cols: usize, rng: &mut impl Rng) -> BitMatrix {
        BitMatrix::from_rows((0..rows).map(|_| random_vec(cols, rng)).collect())
    }

    #[test]
    fn bitvec_set_get_flip() {
        let mut v = BitVec::zeros(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert_eq!(v.weight(), 3);
        v.flip(64);
        assert!(!v.get(64));
        assert_eq!(v.weight(), 2);
    }

    #[test]
    fn bitvec_word_round_trip() {
        let v = BitVec::from_word(0xDEAD_BEEF, 32);
        assert_eq!(v.as_word(), 0xDEAD_BEEF);
        assert_eq!(v.len(), 32);
        assert_eq!(v.weight(), 0xDEAD_BEEFu64.count_ones() as usize);
    }

    #[test]
    fn dot_is_parity_of_and() {
        let a = BitVec::from_word(0b1101, 4);
        let b = BitVec::from_word(0b1011, 4);
        // AND = 0b1001, parity = 0.
        assert!(!a.dot(&b));
        let c = BitVec::from_word(0b0001, 4);
        assert!(a.dot(&c));
    }

    #[test]
    fn distance_symmetry_and_triangle() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..50 {
            let a = random_vec(70, &mut rng);
            let b = random_vec(70, &mut rng);
            let c = random_vec(70, &mut rng);
            assert_eq!(a.distance(&b), b.distance(&a));
            assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c));
            assert_eq!(a.distance(&a), 0);
        }
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let m = random_matrix(7, 7, &mut rng);
        let i = BitMatrix::identity(7);
        assert_eq!(m.mul(&i), m);
        assert_eq!(i.mul(&m), m);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let m = random_matrix(5, 9, &mut rng);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn mul_vec_matches_mul() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let m = random_matrix(6, 10, &mut rng);
        let v = random_vec(10, &mut rng);
        let as_col = BitMatrix::from_rows(v.iter().map(|b| BitVec::from_bits(&[b])).collect());
        let prod = m.mul(&as_col);
        let mv = m.mul_vec(&v);
        for r in 0..6 {
            assert_eq!(prod.get(r, 0), mv.get(r));
        }
    }

    #[test]
    fn rref_transform_reproduces_rref() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..20 {
            let m = random_matrix(6, 12, &mut rng);
            let (r, u, pivots) = m.rref();
            assert_eq!(u.mul(&m), r);
            // Pivot structure: each pivot column has a single 1 in its row.
            for (row, &col) in pivots.iter().enumerate() {
                assert!(r.get(row, col));
                for other in 0..r.rows() {
                    if other != row {
                        assert!(!r.get(other, col));
                    }
                }
            }
        }
    }

    #[test]
    fn nullspace_vectors_are_in_kernel() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..20 {
            let m = random_matrix(5, 11, &mut rng);
            let ns = m.nullspace();
            assert_eq!(ns.len(), 11 - m.rank());
            for v in &ns {
                assert_eq!(m.mul_vec(v).weight(), 0, "nullspace vector not in kernel");
            }
        }
    }

    #[test]
    fn coset_solver_finds_solutions() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..30 {
            let m = random_matrix(6, 14, &mut rng);
            let solver = CosetSolver::new(&m);
            // Any s of the form M·x is solvable and the solution must verify.
            let x = random_vec(14, &mut rng);
            let s = m.mul_vec(&x);
            let v = solver.solve(&s).expect("consistent system");
            assert_eq!(m.mul_vec(&v), s);
        }
    }

    #[test]
    fn coset_solver_detects_inconsistency() {
        // A rank-1 matrix with two distinct rows can yield inconsistent s.
        let rows = vec![BitVec::from_word(0b11, 2), BitVec::from_word(0b11, 2)];
        let m = BitMatrix::from_rows(rows);
        let solver = CosetSolver::new(&m);
        let s = BitVec::from_word(0b01, 2); // row0 ⇒ 1, row1 ⇒ 0: impossible
        assert!(solver.solve(&s).is_none());
    }

    #[test]
    fn rank_of_identity() {
        assert_eq!(BitMatrix::identity(9).rank(), 9);
    }
}
