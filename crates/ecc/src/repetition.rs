//! Repetition codes: the simplest (and weakest-per-bit) error correction
//! used by early PUF key generators.
//!
//! An `[r·k, k]` repetition scheme repeats each of `k` data bits `r` times
//! and majority-decodes. Compared with the paper's BCH\[32,6,16\] it trades
//! far more helper bits for far less correction — exactly the trade-off
//! the `ecc_ablation` bench quantifies.

use crate::code::{CodeError, Decoder, LinearCode};
use crate::gf2::{BitMatrix, BitVec};

/// An `[r·k, k]` repetition code (bit `i` of the message occupies positions
/// `i·r .. (i+1)·r` of the codeword).
#[derive(Debug, Clone)]
pub struct RepetitionCode {
    repeats: usize,
    data_bits: usize,
    code: LinearCode,
}

impl RepetitionCode {
    /// Constructs the code.
    ///
    /// # Panics
    ///
    /// Panics unless `repeats` is odd (majority must be decisive), at least
    /// 3, and the codeword fits 256 bits.
    pub fn new(repeats: usize, data_bits: usize) -> Self {
        assert!(repeats >= 3 && repeats % 2 == 1, "repeats {repeats} must be odd and >= 3");
        assert!(data_bits >= 1 && repeats * data_bits <= 256, "codeword too long");
        let n = repeats * data_bits;
        let rows = (0..data_bits)
            .map(|i| (0..n).map(|c| c / repeats == i).collect::<BitVec>())
            .collect();
        #[allow(clippy::expect_used)]
        // analyze: allow(panic: repetition rows have disjoint supports, so they are independent)
        let code = LinearCode::from_generator(BitMatrix::from_rows(rows)).expect("repetition rows independent");
        RepetitionCode { repeats, data_bits, code }
    }

    /// Repetitions per data bit.
    pub fn repeats(&self) -> usize {
        self.repeats
    }

    /// Number of data bits.
    pub fn data_bits(&self) -> usize {
        self.data_bits
    }

    /// Guaranteed per-bit correction radius `(r − 1)/2`.
    pub fn guaranteed_correction_per_bit(&self) -> usize {
        (self.repeats - 1) / 2
    }
}

impl Decoder for RepetitionCode {
    fn code(&self) -> &LinearCode {
        &self.code
    }

    fn decode(&self, received: &BitVec) -> Result<BitVec, CodeError> {
        let n = self.code.n();
        if received.len() != n {
            return Err(CodeError::LengthMismatch { expected: n, actual: received.len() });
        }
        let mut out = BitVec::zeros(n);
        for i in 0..self.data_bits {
            let ones = (0..self.repeats).filter(|&j| received.get(i * self.repeats + j)).count();
            let bit = 2 * ones > self.repeats;
            for j in 0..self.repeats {
                out.set(i * self.repeats + j, bit);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn parameters() {
        let c = RepetitionCode::new(3, 8);
        assert_eq!(c.code().n(), 24);
        assert_eq!(c.code().k(), 8);
        assert_eq!(c.code().syndrome_bits(), 16);
        assert_eq!(c.guaranteed_correction_per_bit(), 1);
    }

    #[test]
    fn encode_repeats_bits() {
        let c = RepetitionCode::new(3, 4);
        let cw = c.code().encode(&BitVec::from_word(0b1010, 4)).unwrap();
        assert_eq!(cw.as_word(), 0b111_000_111_000);
    }

    #[test]
    fn majority_decoding_corrects_scattered_errors() {
        let c = RepetitionCode::new(5, 6);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            let msg = BitVec::from_word(rng.gen::<u64>() & 0x3F, 6);
            let cw = c.code().encode(&msg).unwrap();
            let mut noisy = cw.clone();
            // Flip up to 2 distinct positions inside each 5-bit group —
            // within the per-group majority budget of (5 − 1)/2.
            for i in 0..6 {
                let flips = rng.gen_range(0..=2usize);
                let mut offsets = [0usize, 1, 2, 3, 4];
                for f in 0..flips {
                    let pick = rng.gen_range(f..5);
                    offsets.swap(f, pick);
                    noisy.flip(i * 5 + offsets[f]);
                }
            }
            let decoded = c.decode(&noisy).unwrap();
            assert_eq!(decoded, cw);
        }
    }

    #[test]
    fn syndrome_decoding_round_trip() {
        let c = RepetitionCode::new(3, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..100 {
            // One error per group at most.
            let mut e = BitVec::zeros(24);
            for i in 0..8 {
                if rng.gen::<bool>() {
                    e.set(i * 3 + rng.gen_range(0..3), true);
                }
            }
            let s = c.code().syndrome(&e).unwrap();
            assert_eq!(c.decode_syndrome(&s).unwrap(), e);
        }
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn even_repeats_rejected() {
        RepetitionCode::new(4, 4);
    }
}
