//! Narrow-sense binary BCH codes over GF(2^m).
//!
//! The paper names its code "BCH\[32,6,16\]"; the length-32 instance is the
//! Reed–Muller code implemented in [`crate::rm`]. This module provides the
//! classical BCH family (length 2^m − 1, designed distance 2t + 1, decoded
//! by Berlekamp–Massey + Chien search) so the reproduction can run
//! error-correction *ablations*: swapping the paper's code for BCH(31, 6),
//! BCH(31, 11), … and measuring the false-negative-rate impact.

use crate::code::{CodeError, Decoder, LinearCode};
use crate::gf2::{BitMatrix, BitVec};
use crate::gf2m::Gf2m;

/// Polynomials over GF(2), little-endian coefficient vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poly2(Vec<bool>);

impl Poly2 {
    /// The constant-one polynomial.
    pub fn one() -> Self {
        Poly2(vec![true])
    }

    /// Creates a polynomial from little-endian coefficients, trimming
    /// leading zeros.
    pub fn from_coeffs(coeffs: Vec<bool>) -> Self {
        let mut p = Poly2(coeffs);
        p.trim();
        p
    }

    fn trim(&mut self) {
        while self.0.len() > 1 && self.0.last() == Some(&false) {
            self.0.pop();
        }
    }

    /// Degree (0 for constants, including the zero polynomial).
    pub fn degree(&self) -> usize {
        self.0.len() - 1
    }

    /// Coefficient of x^i.
    pub fn coeff(&self, i: usize) -> bool {
        self.0.get(i).copied().unwrap_or(false)
    }

    /// Product of two polynomials over GF(2).
    pub fn mul(&self, other: &Poly2) -> Poly2 {
        let mut out = vec![false; self.0.len() + other.0.len() - 1];
        for (i, &a) in self.0.iter().enumerate() {
            if a {
                for (j, &b) in other.0.iter().enumerate() {
                    if b {
                        out[i + j] ^= true;
                    }
                }
            }
        }
        Poly2::from_coeffs(out)
    }
}

/// A narrow-sense binary BCH code of length `2^m − 1` correcting `t` errors.
#[derive(Debug, Clone)]
pub struct BchCode {
    field: Gf2m,
    t: usize,
    generator_poly: Poly2,
    code: LinearCode,
}

impl BchCode {
    /// Constructs BCH(n = 2^m − 1, k, d ≥ 2t+1).
    ///
    /// # Panics
    ///
    /// Panics if `t == 0` or the designed distance is unachievable
    /// (generator polynomial swallows the whole length).
    pub fn new(m: u32, t: usize) -> Self {
        assert!(t > 0, "t must be positive");
        let field = Gf2m::new(m);
        let n = field.order();

        // Generator polynomial = lcm of minimal polynomials of α^1 … α^{2t}.
        // Work over cyclotomic cosets mod 2^m − 1.
        let mut g = Poly2::one();
        let mut covered = vec![false; n + 1];
        for i in 1..=2 * t {
            let i = i % n;
            if i == 0 || covered[i] {
                continue;
            }
            // Cyclotomic coset of i.
            let mut coset = Vec::new();
            let mut j = i;
            loop {
                coset.push(j);
                covered[j] = true;
                j = (j * 2) % n;
                if j == i {
                    break;
                }
            }
            // Minimal polynomial = Π (x − α^j) over the coset, computed with
            // GF(2^m) coefficients; the result has GF(2) coefficients.
            let mut mp: Vec<u16> = vec![1]; // constant 1
            for &j in &coset {
                let root = field.alpha_pow(j);
                let mut next = vec![0u16; mp.len() + 1];
                for (d, &c) in mp.iter().enumerate() {
                    next[d + 1] ^= c;
                    next[d] ^= field.mul(c, root);
                }
                mp = next;
            }
            let mp2 = Poly2::from_coeffs(
                mp.iter()
                    .map(|&c| {
                        debug_assert!(c <= 1, "minimal polynomial must have binary coefficients");
                        c == 1
                    })
                    .collect(),
            );
            g = g.mul(&mp2);
        }
        let k = n - g.degree();
        assert!(k > 0, "designed distance too large: generator degree {} >= n {n}", g.degree());

        // Generator matrix rows: x^i · g(x) for i = 0..k.
        let rows = (0..k)
            .map(|shift| (0..n).map(|c| c >= shift && g.coeff(c - shift)).collect::<BitVec>())
            .collect();
        #[allow(clippy::expect_used)]
        let code = LinearCode::from_generator(BitMatrix::from_rows(rows))
            // analyze: allow(panic: x^i*g(x) rows have distinct leading terms, so they are independent)
            .expect("shifted generator polynomial rows are independent");
        BchCode { field, t, generator_poly: g, code }
    }

    /// Correction capability `t`.
    pub fn t(&self) -> usize {
        self.t
    }

    /// The generator polynomial g(x).
    pub fn generator_poly(&self) -> &Poly2 {
        &self.generator_poly
    }

    /// Computes the 2t BCH syndromes S_i = r(α^i), i = 1..2t.
    fn bch_syndromes(&self, received: &BitVec) -> Vec<u16> {
        (1..=2 * self.t)
            .map(|i| {
                let mut s = 0u16;
                for (pos, bit) in received.iter().enumerate() {
                    if bit {
                        s ^= self.field.alpha_pow(pos * i);
                    }
                }
                s
            })
            .collect()
    }
}

impl Decoder for BchCode {
    fn code(&self) -> &LinearCode {
        &self.code
    }

    /// Bounded-distance decoding: Berlekamp–Massey to find the error-locator
    /// polynomial, Chien search for its roots.
    ///
    /// # Errors
    ///
    /// [`CodeError::Uncorrectable`] when more than `t` errors occurred (or
    /// the locator is inconsistent); [`CodeError::LengthMismatch`] for a
    /// wrong-size word.
    fn decode(&self, received: &BitVec) -> Result<BitVec, CodeError> {
        let n = self.code.n();
        if received.len() != n {
            return Err(CodeError::LengthMismatch { expected: n, actual: received.len() });
        }
        let syn = self.bch_syndromes(received);
        if syn.iter().all(|&s| s == 0) {
            return Ok(received.clone());
        }

        // Berlekamp–Massey over GF(2^m).
        let f = &self.field;
        let mut c = vec![0u16; 2 * self.t + 1];
        let mut b = vec![0u16; 2 * self.t + 1];
        c[0] = 1;
        b[0] = 1;
        let mut l = 0usize;
        let mut mshift = 1usize;
        let mut bcoef = 1u16;
        for (idx, _) in syn.iter().enumerate() {
            // Discrepancy d = S_n + Σ c_i · S_{n−i}.
            let mut d = syn[idx];
            for i in 1..=l {
                d ^= f.mul(c[i], syn[idx - i]);
            }
            if d == 0 {
                mshift += 1;
            } else if 2 * l <= idx {
                let t_prev = c.clone();
                let coef = f.div(d, bcoef);
                for i in 0..c.len() - mshift {
                    let delta = f.mul(coef, b[i]);
                    c[i + mshift] ^= delta;
                }
                l = idx + 1 - l;
                b = t_prev;
                bcoef = d;
                mshift = 1;
            } else {
                let coef = f.div(d, bcoef);
                for i in 0..c.len() - mshift {
                    let delta = f.mul(coef, b[i]);
                    c[i + mshift] ^= delta;
                }
                mshift += 1;
            }
        }
        if l > self.t {
            return Err(CodeError::Uncorrectable);
        }

        // Chien search: roots of the locator give error positions.
        let mut corrected = received.clone();
        let mut found = 0usize;
        for pos in 0..n {
            // Error at position `pos` ⇔ Λ(α^{−pos}) = 0.
            let x = f.alpha_pow((n - pos) % n);
            let mut val = 0u16;
            let mut xp = 1u16;
            for &ci in c.iter().take(l + 1) {
                val ^= f.mul(ci, xp);
                xp = f.mul(xp, x);
            }
            if val == 0 {
                corrected.flip(pos);
                found += 1;
            }
        }
        if found != l {
            return Err(CodeError::Uncorrectable);
        }
        // The corrected word must be a codeword.
        if !self.code.is_codeword(&corrected) {
            return Err(CodeError::Uncorrectable);
        }
        Ok(corrected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn poly_mul_small() {
        // (1 + x)(1 + x) = 1 + x² over GF(2).
        let p = Poly2::from_coeffs(vec![true, true]);
        let q = p.mul(&p);
        assert_eq!(q, Poly2::from_coeffs(vec![true, false, true]));
    }

    #[test]
    fn bch_15_7_2_parameters() {
        // Classic BCH(15, 7) corrects 2 errors; generator degree 8.
        let c = BchCode::new(4, 2);
        assert_eq!(c.code().n(), 15);
        assert_eq!(c.code().k(), 7);
        assert_eq!(c.generator_poly().degree(), 8);
    }

    #[test]
    fn bch_31_6_7_matches_paper_scale() {
        // BCH(31, 6, t = 7): the classical code closest to the paper's
        // [32, 6, 16] label.
        let c = BchCode::new(5, 7);
        assert_eq!(c.code().n(), 31);
        assert_eq!(c.code().k(), 6);
    }

    #[test]
    fn decode_within_t_errors() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for (m, t) in [(4u32, 2usize), (4, 3), (5, 3), (5, 7)] {
            let code = BchCode::new(m, t);
            let n = code.code().n();
            let k = code.code().k();
            let positions: Vec<usize> = (0..n).collect();
            for _ in 0..60 {
                let msg: BitVec = (0..k).map(|_| rng.gen::<bool>()).collect();
                let cw = code.code().encode(&msg).unwrap();
                let e = rng.gen_range(0..=t);
                let mut noisy = cw.clone();
                for &p in positions.choose_multiple(&mut rng, e) {
                    noisy.flip(p);
                }
                let decoded = code.decode(&noisy).unwrap();
                assert_eq!(decoded, cw, "BCH({m},{t}) failed on weight-{e} error");
            }
        }
    }

    #[test]
    fn syndrome_decoding_api() {
        let code = BchCode::new(5, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let n = code.code().n();
        let positions: Vec<usize> = (0..n).collect();
        for _ in 0..40 {
            let mut e = BitVec::zeros(n);
            let k = rng.gen_range(0..=3);
            for &p in positions.choose_multiple(&mut rng, k) {
                e.flip(p);
            }
            let s = code.code().syndrome(&e).unwrap();
            assert_eq!(code.decode_syndrome(&s).unwrap(), e);
        }
    }

    #[test]
    fn beyond_t_is_flagged_or_wrong_never_panics() {
        let code = BchCode::new(4, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let n = code.code().n();
        let positions: Vec<usize> = (0..n).collect();
        for _ in 0..100 {
            let msg: BitVec = (0..code.code().k()).map(|_| rng.gen::<bool>()).collect();
            let cw = code.code().encode(&msg).unwrap();
            let mut noisy = cw.clone();
            for &p in positions.choose_multiple(&mut rng, 5) {
                noisy.flip(p);
            }
            // Must terminate with either an error or *some* codeword.
            if let Ok(out) = code.decode(&noisy) {
                assert!(code.code().is_codeword(&out));
            }
        }
    }

    #[test]
    fn zero_syndrome_decodes_to_self() {
        let code = BchCode::new(5, 3);
        let msg = BitVec::from_word(0b10110, 6 + 10); // k = 16 for BCH(31,16,t=3)
        let k = code.code().k();
        let msg: BitVec = (0..k).map(|i| i < msg.len() && msg.get(i)).collect();
        let cw = code.code().encode(&msg).unwrap();
        assert_eq!(code.decode(&cw).unwrap(), cw);
    }
}
