//! Analytic error-rate tools for the false-negative-rate experiment (§4.1).
//!
//! The paper reports a false-negative rate of 1.53 × 10⁻⁷ for its error
//! correction at the measured intra-chip error rate. Rates that small are
//! unreachable by naive Monte Carlo, so the reproduction combines:
//!
//! * the exact **Poisson–binomial tail** of the per-bit flip probabilities
//!   measured from the simulated PUF (errors are concentrated on the few
//!   metastable arbiters, not i.i.d. — this is what makes the rate so low),
//!   and
//! * a decoder **failure-weight profile** estimated once by Monte Carlo
//!   (probability that the decoder mis-corrects a random pattern of a given
//!   weight).

use crate::code::Decoder;
use crate::gf2::BitVec;
use rand::Rng;

/// Distribution of the number of bit errors when bit `i` flips independently
/// with probability `p[i]` (the Poisson–binomial distribution).
///
/// # Panics
///
/// Panics if any probability lies outside `[0, 1]`.
pub fn poisson_binomial_pmf(flip_probs: &[f64]) -> Vec<f64> {
    assert!(flip_probs.iter().all(|&p| (0.0..=1.0).contains(&p)), "probabilities must be in [0,1]");
    let mut pmf = vec![1.0f64];
    for &p in flip_probs {
        let mut next = vec![0.0; pmf.len() + 1];
        for (k, &q) in pmf.iter().enumerate() {
            next[k] += q * (1.0 - p);
            next[k + 1] += q * p;
        }
        pmf = next;
    }
    pmf
}

/// Tail probability `P(W >= w)` of the Poisson–binomial weight distribution.
pub fn poisson_binomial_tail(flip_probs: &[f64], w: usize) -> f64 {
    let pmf = poisson_binomial_pmf(flip_probs);
    pmf.iter().skip(w).sum()
}

/// Estimated decoder failure probability per error weight.
///
/// `profile[w]` is the probability that a uniformly random error pattern of
/// weight `w` is *not* corrected (decoded error ≠ true error).
#[derive(Debug, Clone, PartialEq)]
pub struct FailureProfile {
    /// Failure probability indexed by error weight, length n + 1.
    pub per_weight: Vec<f64>,
}

impl FailureProfile {
    /// Estimates a decoder's failure profile by Monte Carlo, drawing
    /// `trials_per_weight` random patterns of each weight.
    ///
    /// Weights where decoding is guaranteed (found to never fail) record a
    /// failure probability of 0.
    #[allow(clippy::expect_used)]
    pub fn estimate<D: Decoder + ?Sized, R: Rng + ?Sized>(decoder: &D, trials_per_weight: usize, rng: &mut R) -> Self {
        let n = decoder.code().n();
        let mut per_weight = vec![0.0; n + 1];
        let mut positions: Vec<usize> = (0..n).collect();
        for (w, out) in per_weight.iter_mut().enumerate() {
            if w == 0 {
                continue;
            }
            let mut failures = 0usize;
            for _ in 0..trials_per_weight {
                // Sample a random weight-w pattern (partial Fisher–Yates).
                for i in 0..w {
                    let j = rng.gen_range(i..n);
                    positions.swap(i, j);
                }
                let mut e = BitVec::zeros(n);
                for &p in &positions[..w] {
                    e.set(p, true);
                }
                // analyze: allow(panic: e is built with exactly n bits)
                let s = decoder.code().syndrome(&e).expect("sized correctly");
                match decoder.decode_syndrome(&s) {
                    Ok(decoded) if decoded == e => {}
                    _ => failures += 1,
                }
            }
            *out = failures as f64 / trials_per_weight as f64;
        }
        FailureProfile { per_weight }
    }

    /// Combines the profile with a per-bit flip-probability vector into an
    /// overall false-negative rate:
    /// `FNR = Σ_w P(W = w) · P(fail | weight w)`.
    ///
    /// The weight distribution is Poisson–binomial over `flip_probs`; the
    /// conditional failure probability assumes the pattern at each weight is
    /// exchangeable, which holds when flip probabilities are assigned to
    /// random bit positions.
    pub fn false_negative_rate(&self, flip_probs: &[f64]) -> f64 {
        let pmf = poisson_binomial_pmf(flip_probs);
        pmf.iter()
            .enumerate()
            .map(|(w, &p)| p * self.per_weight.get(w).copied().unwrap_or(1.0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rm::ReedMuller1;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn pmf_sums_to_one() {
        let probs = [0.1, 0.3, 0.5, 0.05];
        let pmf = poisson_binomial_pmf(&probs);
        assert_eq!(pmf.len(), 5);
        let total: f64 = pmf.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_matches_binomial_for_uniform_p() {
        let p = 0.2;
        let n = 10;
        let pmf = poisson_binomial_pmf(&vec![p; n]);
        // Compare against binomial coefficients.
        let mut binom = 1.0f64;
        for (k, &q) in pmf.iter().enumerate() {
            let expect = binom * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32);
            assert!((q - expect).abs() < 1e-12, "k = {k}");
            binom = binom * (n - k) as f64 / (k + 1) as f64;
        }
    }

    #[test]
    fn tail_is_monotone() {
        let probs = vec![0.11; 32];
        let mut prev = 1.0;
        for w in 0..=32 {
            let t = poisson_binomial_tail(&probs, w);
            assert!(t <= prev + 1e-15);
            prev = t;
        }
        assert!((poisson_binomial_tail(&probs, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concentrated_errors_have_thinner_tails() {
        // Same expected error count, but concentrated on 6 metastable bits:
        // the tail beyond 7 errors vanishes entirely.
        let mean_errors = 3.2f64;
        let iid = vec![mean_errors / 32.0; 32];
        let mut concentrated = vec![0.0; 32];
        for p in concentrated.iter_mut().take(6) {
            *p = mean_errors / 6.0 / 2.0; // cap at ~0.27 each, 6 bits
        }
        // Rescale so both have the same mean.
        let scale = mean_errors / concentrated.iter().sum::<f64>();
        for p in concentrated.iter_mut() {
            *p *= scale;
        }
        let t_iid = poisson_binomial_tail(&iid, 8);
        let t_conc = poisson_binomial_tail(&concentrated, 8);
        assert!(t_conc < t_iid, "concentrated {t_conc} vs iid {t_iid}");
        assert_eq!(poisson_binomial_tail(&concentrated, 7), 0.0, "only 6 bits can ever flip");
    }

    #[test]
    fn rm_failure_profile_zero_through_weight_7() {
        let code = ReedMuller1::bch_32_6_16();
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let profile = FailureProfile::estimate(&code, 60, &mut rng);
        for w in 0..=7 {
            assert_eq!(profile.per_weight[w], 0.0, "weight {w} must always correct");
        }
        // Far beyond the distance, failure approaches certainty.
        assert!(profile.per_weight[16] > 0.5);
    }

    #[test]
    fn fnr_combines_profile_and_tail() {
        let code = ReedMuller1::bch_32_6_16();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let profile = FailureProfile::estimate(&code, 40, &mut rng);
        // Errors concentrated on 5 bits: never more than 5 flips, FNR = 0.
        let mut probs = vec![0.0; 32];
        for p in probs.iter_mut().take(5) {
            *p = 0.3;
        }
        assert_eq!(profile.false_negative_rate(&probs), 0.0);
        // i.i.d. 11.3 % errors: small but positive FNR.
        let fnr = profile.false_negative_rate(&vec![0.113; 32]);
        assert!(fnr > 0.0 && fnr < 0.05, "fnr = {fnr}");
    }
}
