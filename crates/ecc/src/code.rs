//! Generic binary linear block codes.
//!
//! A linear `[n, k, d]` code is described by its generator matrix `G`
//! (`k × n`) and parity-check matrix `H` (`(n−k) × n`) with `G·Hᵀ = 0`.
//! The prover-side syndrome generator computes `h = H·y`; the verifier-side
//! decoder finds the minimum-weight coset representative for a syndrome.

use crate::gf2::{BitMatrix, BitVec, CosetSolver};
use std::fmt;

/// Errors reported by code construction and decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// The generator matrix rows are linearly dependent.
    SingularGenerator,
    /// A received word / syndrome has the wrong length.
    LengthMismatch {
        /// Expected number of bits.
        expected: usize,
        /// Number of bits actually supplied.
        actual: usize,
    },
    /// The decoder could not correct the error pattern.
    Uncorrectable,
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::SingularGenerator => write!(f, "generator matrix rows are linearly dependent"),
            CodeError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected} bits, got {actual}")
            }
            CodeError::Uncorrectable => write!(f, "error pattern exceeds the code's correction capability"),
        }
    }
}

impl std::error::Error for CodeError {}

/// A binary linear block code with precomputed generator and parity-check
/// matrices and a coset solver for syndrome decoding.
#[derive(Debug, Clone)]
pub struct LinearCode {
    generator: BitMatrix,
    parity_check: BitMatrix,
    solver: CosetSolver,
}

impl LinearCode {
    /// Builds a code from a full-rank generator matrix, deriving the
    /// parity-check matrix as a null-space basis.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::SingularGenerator`] if the rows of `generator`
    /// are linearly dependent.
    pub fn from_generator(generator: BitMatrix) -> Result<Self, CodeError> {
        if generator.rank() != generator.rows() {
            return Err(CodeError::SingularGenerator);
        }
        // H rows span the dual code: null space of G acting on codeword
        // coordinates, i.e. the kernel of Gᵀ... Concretely: we need H with
        // H·cᵀ = 0 for every codeword c. Codewords span the row space of G,
        // so H's rows are a basis of the null space of G (as a map on
        // column vectors composed with transpose): nullspace(G) gives v with
        // G·v = 0, which is exactly H's row set.
        let h_rows = generator.nullspace();
        let parity_check = BitMatrix::from_rows(h_rows);
        let solver = CosetSolver::new(&parity_check);
        Ok(LinearCode { generator, parity_check, solver })
    }

    /// Code length `n`.
    pub fn n(&self) -> usize {
        self.generator.cols()
    }

    /// Code dimension `k`.
    pub fn k(&self) -> usize {
        self.generator.rows()
    }

    /// Number of syndrome bits `n − k` (the helper-data size).
    pub fn syndrome_bits(&self) -> usize {
        self.n() - self.k()
    }

    /// The generator matrix.
    pub fn generator(&self) -> &BitMatrix {
        &self.generator
    }

    /// The parity-check matrix.
    pub fn parity_check(&self) -> &BitMatrix {
        &self.parity_check
    }

    /// Encodes a `k`-bit message into an `n`-bit codeword.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::LengthMismatch`] if `message.len() != k`.
    pub fn encode(&self, message: &BitVec) -> Result<BitVec, CodeError> {
        if message.len() != self.k() {
            return Err(CodeError::LengthMismatch { expected: self.k(), actual: message.len() });
        }
        // c = mᵀ·G = sum of G's rows selected by m.
        let mut c = BitVec::zeros(self.n());
        for i in 0..self.k() {
            if message.get(i) {
                c.xor_assign(self.generator.row(i));
            }
        }
        Ok(c)
    }

    /// Computes the syndrome `H·y` of an `n`-bit word — the paper's
    /// prover-side "syndrome generator" block.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::LengthMismatch`] if `word.len() != n`.
    pub fn syndrome(&self, word: &BitVec) -> Result<BitVec, CodeError> {
        if word.len() != self.n() {
            return Err(CodeError::LengthMismatch { expected: self.n(), actual: word.len() });
        }
        Ok(self.parity_check.mul_vec(word))
    }

    /// Checks whether a word is a codeword (zero syndrome).
    pub fn is_codeword(&self, word: &BitVec) -> bool {
        self.syndrome(word).map(|s| s.weight() == 0).unwrap_or(false)
    }

    /// The code's weight distribution: `w[i]` = number of codewords of
    /// Hamming weight `i`, computed by enumerating all `2^k` codewords.
    ///
    /// # Panics
    ///
    /// Panics if `k > 20` (enumeration would be unreasonable).
    #[allow(clippy::expect_used)]
    pub fn weight_distribution(&self) -> Vec<u64> {
        assert!(self.k() <= 20, "weight distribution by enumeration needs k <= 20, got {}", self.k());
        let mut dist = vec![0u64; self.n() + 1];
        for m in 0u64..(1 << self.k()) {
            let msg: BitVec = (0..self.k()).map(|i| (m >> i) & 1 == 1).collect();
            // analyze: allow(panic: msg is built with exactly k bits)
            let cw = self.encode(&msg).expect("sized message");
            dist[cw.weight()] += 1;
        }
        dist
    }

    /// Minimum distance of the code (minimum nonzero codeword weight),
    /// via [`LinearCode::weight_distribution`].
    ///
    /// # Panics
    ///
    /// Panics if `k > 20`.
    pub fn minimum_distance(&self) -> usize {
        // `from_generator` requires k >= 1, so a nonzero codeword always
        // exists; 0 is the never-taken fallback, not a sentinel.
        self.weight_distribution()
            .iter()
            .enumerate()
            .skip(1)
            .find(|&(_, &c)| c > 0)
            .map_or(0, |(w, _)| w)
    }

    /// Finds one word whose syndrome equals `s` (a coset representative,
    /// not necessarily of minimum weight).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::LengthMismatch`] for a wrong-size syndrome. A
    /// full-rank parity-check matrix makes every syndrome consistent, so
    /// this otherwise always succeeds.
    pub fn coset_representative(&self, s: &BitVec) -> Result<BitVec, CodeError> {
        if s.len() != self.syndrome_bits() {
            return Err(CodeError::LengthMismatch { expected: self.syndrome_bits(), actual: s.len() });
        }
        self.solver.solve(s).ok_or(CodeError::Uncorrectable)
    }
}

/// Word-level decoding: finds the codeword nearest to a received word.
///
/// Implementations define the code family's decoding algorithm (fast
/// Hadamard transform for Reed–Muller, Berlekamp–Massey for BCH, …).
pub trait Decoder {
    /// The underlying linear code.
    fn code(&self) -> &LinearCode;

    /// Decodes `received` to the (estimated) nearest codeword.
    ///
    /// # Errors
    ///
    /// [`CodeError::LengthMismatch`] for wrong-size input;
    /// [`CodeError::Uncorrectable`] if the decoder gives up (bounded-distance
    /// decoders only — ML decoders always return something).
    fn decode(&self, received: &BitVec) -> Result<BitVec, CodeError>;

    /// Decodes an error pattern from its syndrome: returns the estimated
    /// minimum-weight `e` with `H·e = s`.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Decoder::decode`].
    fn decode_syndrome(&self, s: &BitVec) -> Result<BitVec, CodeError> {
        let v = self.code().coset_representative(s)?;
        let c = self.decode(&v)?;
        Ok(v.xor(&c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf2::{BitMatrix, BitVec};

    /// The [3,1,3] repetition code: small enough to verify by hand.
    fn repetition3() -> LinearCode {
        let g = BitMatrix::from_rows(vec![BitVec::from_word(0b111, 3)]);
        LinearCode::from_generator(g).unwrap()
    }

    #[test]
    fn parameters() {
        let c = repetition3();
        assert_eq!(c.n(), 3);
        assert_eq!(c.k(), 1);
        assert_eq!(c.syndrome_bits(), 2);
    }

    #[test]
    fn encode_repetition() {
        let c = repetition3();
        assert_eq!(c.encode(&BitVec::from_word(1, 1)).unwrap().as_word(), 0b111);
        assert_eq!(c.encode(&BitVec::from_word(0, 1)).unwrap().as_word(), 0b000);
    }

    #[test]
    fn codewords_have_zero_syndrome() {
        let c = repetition3();
        assert!(c.is_codeword(&BitVec::from_word(0b111, 3)));
        assert!(c.is_codeword(&BitVec::from_word(0b000, 3)));
        assert!(!c.is_codeword(&BitVec::from_word(0b001, 3)));
    }

    #[test]
    fn gh_orthogonality() {
        let c = repetition3();
        let prod = c.generator().mul(&c.parity_check().transpose());
        for r in 0..prod.rows() {
            for col in 0..prod.cols() {
                assert!(!prod.get(r, col), "G·Hᵀ must vanish");
            }
        }
    }

    #[test]
    fn coset_representative_has_correct_syndrome() {
        let c = repetition3();
        for s in 0..4u64 {
            let sv = BitVec::from_word(s, 2);
            let v = c.coset_representative(&sv).unwrap();
            assert_eq!(c.syndrome(&v).unwrap(), sv);
        }
    }

    #[test]
    fn weight_distribution_of_repetition() {
        let c = repetition3();
        assert_eq!(c.weight_distribution(), vec![1, 0, 0, 1]);
        assert_eq!(c.minimum_distance(), 3);
    }

    #[test]
    fn singular_generator_rejected() {
        let g = BitMatrix::from_rows(vec![BitVec::from_word(0b11, 2), BitVec::from_word(0b11, 2)]);
        assert_eq!(LinearCode::from_generator(g).unwrap_err(), CodeError::SingularGenerator);
    }

    #[test]
    fn length_mismatches_are_reported() {
        let c = repetition3();
        assert!(matches!(c.encode(&BitVec::zeros(2)), Err(CodeError::LengthMismatch { expected: 1, actual: 2 })));
        assert!(matches!(c.syndrome(&BitVec::zeros(4)), Err(CodeError::LengthMismatch { expected: 3, actual: 4 })));
        assert!(matches!(c.coset_representative(&BitVec::zeros(3)), Err(CodeError::LengthMismatch { .. })));
    }
}
