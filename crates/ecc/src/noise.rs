//! Deterministic error-pattern generators for noise experiments.
//!
//! The robustness layer's boundary arguments are exact: the paper's
//! BCH\[32,6,16\] code recovers *every* error of weight ≤ 7 and no error of
//! weight ≥ 8 decodes back to the transmitted word. Testing those
//! statements needs error patterns of *exact* Hamming weight — sampling
//! per-bit Bernoulli noise only hits a given weight probabilistically.
//! This module provides the exact-weight and burst-shaped generators the
//! `noise_sweep` experiment and the chaos tests sweep over.

use crate::gf2::BitVec;
use rand::Rng;

/// Draws an error pattern of exactly `weight` flipped bits at uniformly
/// random distinct positions.
///
/// # Panics
///
/// Panics if `weight > len`.
pub fn exact_weight_error<R: Rng + ?Sized>(len: usize, weight: usize, rng: &mut R) -> BitVec {
    assert!(weight <= len, "cannot flip {weight} of {len} bits");
    // Partial Fisher–Yates over the index space: the first `weight` draws
    // are a uniform sample of distinct positions.
    let mut positions: Vec<usize> = (0..len).collect();
    let mut e = BitVec::zeros(len);
    for i in 0..weight {
        let j = rng.gen_range(i..len);
        positions.swap(i, j);
        e.flip(positions[i]);
    }
    e
}

/// Builds a contiguous burst error of `weight` bits starting at `start`,
/// wrapping around the end of the word (the shape a clock-glitch or
/// voltage-droop event produces on adjacent arbiter latches).
///
/// # Panics
///
/// Panics if `weight > len` or `start >= len`.
pub fn burst_error(len: usize, start: usize, weight: usize) -> BitVec {
    assert!(weight <= len, "burst of {weight} does not fit in {len} bits");
    assert!(start < len, "burst start {start} out of range {len}");
    let mut e = BitVec::zeros(len);
    for j in 0..weight {
        e.flip((start + j) % len);
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn exact_weight_is_exact() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for weight in 0..=32 {
            let e = exact_weight_error(32, weight, &mut rng);
            assert_eq!(e.weight(), weight, "requested weight must be hit exactly");
            assert_eq!(e.len(), 32);
        }
    }

    #[test]
    fn exact_weight_positions_vary() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = exact_weight_error(32, 5, &mut rng);
        let b = exact_weight_error(32, 5, &mut rng);
        assert_ne!(a, b, "patterns should differ across draws (5-of-32 collisions are rare)");
    }

    #[test]
    fn bursts_are_contiguous_and_wrap() {
        let e = burst_error(32, 2, 4);
        assert_eq!(e.weight(), 4);
        assert!(e.get(2) && e.get(3) && e.get(4) && e.get(5));
        let w = burst_error(8, 6, 4);
        assert!(w.get(6) && w.get(7) && w.get(0) && w.get(1), "bursts wrap: {w:?}");
    }

    #[test]
    #[should_panic(expected = "cannot flip")]
    fn oversized_weight_is_refused() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        exact_weight_error(8, 9, &mut rng);
    }
}
