//! Error correction for PUF responses, as used by PUFatt (DAC 2014).
//!
//! The paper corrects noisy ALU-PUF responses with the low-cost
//! reverse-fuzzy-extractor construction of van Herrewege et al.: the prover
//! runs only a *syndrome generator* (`h = H·y'`, one parity-check-matrix
//! multiplication over GF(2)), and the verifier — who can emulate the PUF —
//! decodes the difference between its reference response and the prover's
//! noisy response. The paper instantiates the code as **BCH\[32,6,16\]** with
//! 26-bit helper data; a binary `[32, 6, 16]` code is the first-order
//! Reed–Muller code RM(1,5), which this crate decodes with the fast
//! Hadamard transform (maximum-likelihood decoding).
//!
//! Contents:
//!
//! * [`gf2`] — bit-packed GF(2) vectors/matrices, RREF, null spaces, coset
//!   solving.
//! * [`code`] — generic binary linear block codes and the [`code::Decoder`]
//!   trait (word- and syndrome-level decoding).
//! * [`rm`] — the paper's code ([`rm::ReedMuller1::bch_32_6_16`]) plus the
//!   16-bit FPGA variant.
//! * [`bch`] — classical narrow-sense BCH codes over GF(2^m)
//!   (Berlekamp–Massey + Chien search) for error-correction ablations.
//! * [`gf2m`] — the finite fields backing [`bch`].
//! * [`golay`] — the extended binary Golay code \[24,12,8\] (the classic
//!   mid-rate ablation point).
//! * [`repetition`] — majority-decoded repetition codes (the weakest
//!   baseline in the error-correction ablation).
//! * [`fuzzy`] — the syndrome-only reverse fuzzy extractor.
//! * [`noise`] — exact-weight and burst error generators for the
//!   robustness experiments (the `noise_sweep` boundary at t = 7).
//! * [`table`] — coset-leader table decoding (exact minimum-distance
//!   decoding by lookup, for codes with few syndrome bits).
//! * [`analysis`] — Poisson–binomial false-negative-rate analysis used to
//!   reproduce the paper's 1.53 × 10⁻⁷ figure.
//!
//! # Example
//!
//! ```
//! use pufatt_ecc::fuzzy::ReverseFuzzyExtractor;
//! use pufatt_ecc::gf2::BitVec;
//! use pufatt_ecc::rm::ReedMuller1;
//!
//! # fn main() -> Result<(), pufatt_ecc::code::CodeError> {
//! let fe = ReverseFuzzyExtractor::new(ReedMuller1::bch_32_6_16());
//! let noisy = BitVec::from_word(0xDEAD_BEEF ^ 0b101, 32); // 2 bit errors
//! let helper = fe.generate(&noisy)?;                      // prover side
//! let reference = BitVec::from_word(0xDEAD_BEEF, 32);     // verifier side
//! let rec = fe.reproduce(&reference, &helper)?;
//! assert_eq!(rec.response, noisy);
//! assert_eq!(rec.corrected_errors, 2); // 0b101 flips bits 0 and 2
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
// Lib-target panics are linted (see [lints.clippy] in Cargo.toml);
// tests are free to unwrap.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod analysis;
pub mod bch;
pub mod code;
pub mod fuzzy;
pub mod gf2;
pub mod gf2m;
pub mod golay;
pub mod noise;
pub mod repetition;
pub mod rm;
pub mod table;

pub use code::{CodeError, Decoder, LinearCode};
pub use fuzzy::{HelperData, Reconstruction, ReverseFuzzyExtractor};
pub use gf2::{BitMatrix, BitVec};
pub use golay::GolayCode;
pub use repetition::RepetitionCode;
pub use rm::ReedMuller1;
pub use table::TableDecoder;
