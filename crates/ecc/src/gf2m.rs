//! Finite fields GF(2^m) with log/antilog tables.
//!
//! Used by the generic BCH decoder ([`crate::bch`]), which the reproduction
//! uses for error-correction ablations against the paper's BCH\[32,6,16\]
//! (= RM(1,5)) code.

use std::fmt;

/// A finite field GF(2^m), 2 ≤ m ≤ 16, with precomputed exp/log tables.
#[derive(Clone)]
pub struct Gf2m {
    m: u32,
    /// exp[i] = α^i for 0 ≤ i < 2^m − 1 (extended to 2·(2^m−1) to avoid
    /// modular reduction in products).
    exp: Vec<u16>,
    /// log[x] = i with α^i = x, for x ≠ 0. log[0] is unused.
    log: Vec<u16>,
}

/// Default primitive polynomials (bit i = coefficient of x^i), indexed by m.
const PRIMITIVE_POLYS: [(u32, u32); 9] = [
    (2, 0b111),
    (3, 0b1011),
    (4, 0b10011),
    (5, 0b100101),
    (6, 0b1000011),
    (7, 0b10001001),
    (8, 0b100011101),
    (9, 0b1000010001),
    (10, 0b10000001001),
];

impl Gf2m {
    /// Constructs GF(2^m) with the standard primitive polynomial.
    ///
    /// # Panics
    ///
    /// Panics if no default polynomial is tabulated for `m` (supported:
    /// 2 ≤ m ≤ 10).
    pub fn new(m: u32) -> Self {
        let poly = PRIMITIVE_POLYS
            .iter()
            .find(|&&(mm, _)| mm == m)
            .map(|&(_, p)| p)
            .unwrap_or_else(|| panic!("no default primitive polynomial for m = {m}"));
        Self::with_polynomial(m, poly)
    }

    /// Constructs GF(2^m) from an explicit degree-m primitive polynomial.
    ///
    /// # Panics
    ///
    /// Panics if `poly` does not have degree `m`, or if it is not primitive
    /// (the generated multiplicative group is too small).
    pub fn with_polynomial(m: u32, poly: u32) -> Self {
        assert!((2..=16).contains(&m), "m = {m} out of supported range");
        assert_eq!(32 - poly.leading_zeros() - 1, m, "polynomial degree must equal m");
        let order = (1usize << m) - 1;
        let mut exp = vec![0u16; 2 * order];
        let mut log = vec![0u16; 1 << m];
        let mut x = 1u32;
        for (i, e) in exp.iter_mut().take(order).enumerate() {
            *e = x as u16;
            assert!(!(i > 0 && x == 1), "polynomial {poly:#b} is not primitive for m = {m}");
            log[x as usize] = i as u16;
            x <<= 1;
            if x >> m != 0 {
                x ^= poly;
            }
        }
        for i in 0..order {
            exp[order + i] = exp[i];
        }
        Gf2m { m, exp, log }
    }

    /// Field extension degree m.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Multiplicative group order 2^m − 1.
    pub fn order(&self) -> usize {
        (1usize << self.m) - 1
    }

    /// α^i (i may exceed the group order; it is reduced).
    pub fn alpha_pow(&self, i: usize) -> u16 {
        self.exp[i % self.order()]
    }

    /// Discrete log of a nonzero element.
    ///
    /// # Panics
    ///
    /// Panics on zero, which has no logarithm.
    pub fn log(&self, x: u16) -> usize {
        assert!(x != 0, "log of zero");
        self.log[x as usize] as usize
    }

    /// Field multiplication.
    pub fn mul(&self, a: u16, b: u16) -> u16 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
        }
    }

    /// Field division.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div(&self, a: u16, b: u16) -> u16 {
        assert!(b != 0, "division by zero");
        if a == 0 {
            0
        } else {
            let la = self.log[a as usize] as usize;
            let lb = self.log[b as usize] as usize;
            self.exp[la + self.order() - lb]
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics on zero.
    pub fn inv(&self, a: u16) -> u16 {
        self.div(1, a)
    }

    /// Exponentiation `a^e`.
    pub fn pow(&self, a: u16, e: usize) -> u16 {
        if a == 0 {
            return if e == 0 { 1 } else { 0 };
        }
        self.alpha_pow(self.log[a as usize] as usize * e % self.order())
    }
}

impl fmt::Debug for Gf2m {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf2m(2^{})", self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gf16_multiplication_table_spot_checks() {
        // GF(16) with x^4 + x + 1: α^4 = α + 1 = 0b0011.
        let f = Gf2m::new(4);
        assert_eq!(f.alpha_pow(4), 0b0011);
        assert_eq!(f.mul(0b0010, 0b0010), 0b0100); // α·α = α²
        assert_eq!(f.mul(0, 7), 0);
        assert_eq!(f.mul(1, 7), 7);
    }

    #[test]
    fn field_axioms_gf32() {
        let f = Gf2m::new(5);
        let n = 32u16;
        for a in 0..n {
            for b in 0..n {
                assert_eq!(f.mul(a, b), f.mul(b, a));
                if b != 0 {
                    assert_eq!(f.mul(f.div(a, b), b), a, "a={a} b={b}");
                }
            }
        }
        // Associativity on a sample.
        for a in 1..n {
            for b in 1..n {
                let c = 13;
                assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
            }
        }
    }

    #[test]
    fn inverses() {
        let f = Gf2m::new(6);
        for a in 1..64u16 {
            assert_eq!(f.mul(a, f.inv(a)), 1, "a = {a}");
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let f = Gf2m::new(5);
        for a in 1..32u16 {
            let mut acc = 1u16;
            for e in 0..40 {
                assert_eq!(f.pow(a, e), acc, "a={a} e={e}");
                acc = f.mul(acc, a);
            }
        }
        assert_eq!(f.pow(0, 0), 1);
        assert_eq!(f.pow(0, 5), 0);
    }

    #[test]
    fn alpha_generates_whole_group() {
        for m in 2..=8 {
            let f = Gf2m::new(m);
            let mut seen = vec![false; 1 << m];
            for i in 0..f.order() {
                let x = f.alpha_pow(i);
                assert!(!seen[x as usize], "α repeats early in GF(2^{m})");
                seen[x as usize] = true;
            }
        }
    }

    #[test]
    #[should_panic(expected = "not primitive")]
    fn rejects_non_primitive_polynomial() {
        // x^4 + x^3 + x^2 + x + 1 divides x^5 − 1: order 5, not primitive.
        Gf2m::with_polynomial(4, 0b11111);
    }
}
