//! The paper's error-correcting code: BCH\[32,6,16\], i.e. the first-order
//! Reed–Muller code RM(1,5).
//!
//! A binary `[32, 6, 16]` code is (up to equivalence) the first-order
//! Reed–Muller code of length 2⁵; the paper keeps the BCH name, we keep
//! both. Codewords are the truth tables of affine Boolean functions
//! `f(x) = b ⊕ a·x` over GF(2)⁵. The code is decoded with the fast
//! Hadamard transform — *maximum-likelihood* decoding in O(n log n) — which
//! corrects every pattern of up to 7 errors and the vast majority of
//! heavier patterns (the paper's "up to 16 bit errors"), giving the
//! 1.5 × 10⁻⁷-grade false-negative rates reported in §4.1.

use crate::code::{CodeError, Decoder, LinearCode};
use crate::gf2::{BitMatrix, BitVec};

/// First-order Reed–Muller code RM(1, m): length 2^m, dimension m + 1,
/// minimum distance 2^(m−1).
#[derive(Debug, Clone)]
pub struct ReedMuller1 {
    m: u32,
    code: LinearCode,
}

impl ReedMuller1 {
    /// Constructs RM(1, m).
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= m <= 16` (length ≤ 65536).
    pub fn new(m: u32) -> Self {
        assert!((2..=16).contains(&m), "RM(1,m) supported for 2 <= m <= 16, got {m}");
        let n = 1usize << m;
        // Generator rows: the all-ones function, then each coordinate
        // function x_j (truth-table order: position x counts from 0 to n−1,
        // bit j of x is the value of x_j).
        let mut rows = Vec::with_capacity(m as usize + 1);
        rows.push((0..n).map(|_| true).collect::<BitVec>());
        for j in 0..m {
            rows.push((0..n).map(|x| (x >> j) & 1 == 1).collect::<BitVec>());
        }
        #[allow(clippy::expect_used)]
        let code = LinearCode::from_generator(BitMatrix::from_rows(rows))
            // analyze: allow(panic: the all-ones row plus the m coordinate rows are independent)
            .expect("RM(1,m) generator is full rank by construction");
        ReedMuller1 { m, code }
    }

    /// The paper's code: BCH\[32,6,16\] = RM(1,5).
    pub fn bch_32_6_16() -> Self {
        ReedMuller1::new(5)
    }

    /// The 16-bit variant used for the FPGA prototype: \[16,5,8\] = RM(1,4).
    pub fn rm_16_5_8() -> Self {
        ReedMuller1::new(4)
    }

    /// The order parameter `m` (code length is `2^m`).
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Encodes the message `(b, a_0..a_{m-1})` where bit 0 of `message` is
    /// the affine constant `b`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::LengthMismatch`] if `message.len() != m + 1`.
    pub fn encode(&self, message: &BitVec) -> Result<BitVec, CodeError> {
        self.code.encode(message)
    }

    /// Maximum-likelihood decode via the fast Hadamard transform, returning
    /// `(message, codeword)`.
    ///
    /// Never fails: ML decoding always produces the nearest codeword (ties
    /// are broken deterministically toward the smallest coefficient vector).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::LengthMismatch`] for a wrong-size word.
    #[allow(clippy::expect_used)]
    pub fn decode_ml(&self, received: &BitVec) -> Result<(BitVec, BitVec), CodeError> {
        let n = 1usize << self.m;
        if received.len() != n {
            return Err(CodeError::LengthMismatch { expected: n, actual: received.len() });
        }
        // Map bits to ±1 and run the Walsh–Hadamard transform; entry a of
        // the transform equals n − 2·d(received, x ↦ a·x), so the maximal
        // |W(a)| identifies the closest affine function, with the sign
        // giving the constant term.
        let mut w: Vec<i32> = received.iter().map(|b| if b { -1 } else { 1 }).collect();
        let mut h = 1;
        while h < n {
            for i in (0..n).step_by(2 * h) {
                for j in i..i + h {
                    let x = w[j];
                    let y = w[j + h];
                    w[j] = x + y;
                    w[j + h] = x - y;
                }
            }
            h *= 2;
        }
        // `w` has 2^m >= 1 entries, but avoid the panic path anyway.
        let (best_a, best_w) = w
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(a, v)| (v.abs(), std::cmp::Reverse(a)))
            .unwrap_or((0, 0));
        // W(a) > 0 ⇒ received is closer to b = 0; W(a) < 0 ⇒ b = 1.
        let b = best_w < 0;
        let mut message = BitVec::zeros(self.m as usize + 1);
        message.set(0, b);
        for j in 0..self.m as usize {
            message.set(j + 1, (best_a >> j) & 1 == 1);
        }
        let codeword = self.code.encode(&message)?;
        Ok((message, codeword))
    }

    /// Guaranteed correction radius `⌊(d−1)/2⌋ = 2^(m−2) − 1` (7 for the
    /// paper's code). Many heavier patterns still decode correctly.
    pub fn guaranteed_correction(&self) -> usize {
        (1usize << (self.m - 2)) - 1
    }
}

impl Decoder for ReedMuller1 {
    fn code(&self) -> &LinearCode {
        &self.code
    }

    fn decode(&self, received: &BitVec) -> Result<BitVec, CodeError> {
        self.decode_ml(received).map(|(_, c)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn parameters_match_paper() {
        let c = ReedMuller1::bch_32_6_16();
        assert_eq!(c.code().n(), 32);
        assert_eq!(c.code().k(), 6);
        assert_eq!(c.code().syndrome_bits(), 26, "paper: 32 − 6 = 26-bit helper data");
        assert_eq!(c.guaranteed_correction(), 7);
    }

    #[test]
    fn minimum_distance_is_16() {
        // RM(1,5)'s weight distribution is exactly {0:1, 16:62, 32:1} —
        // the bent structure behind both the d=16 guarantee and the
        // obfuscation-fold degeneracy documented in DESIGN.md.
        let c = ReedMuller1::bch_32_6_16();
        let dist = c.code().weight_distribution();
        assert_eq!(dist[0], 1);
        assert_eq!(dist[16], 62);
        assert_eq!(dist[32], 1);
        assert_eq!(dist.iter().sum::<u64>(), 64);
        assert_eq!(c.code().minimum_distance(), 16);
    }

    #[test]
    fn decode_round_trip_no_errors() {
        let c = ReedMuller1::bch_32_6_16();
        for msg in 0u64..64 {
            let m = BitVec::from_word(msg, 6);
            let cw = c.encode(&m).unwrap();
            let (dm, dc) = c.decode_ml(&cw).unwrap();
            assert_eq!(dm, m);
            assert_eq!(dc, cw);
        }
    }

    #[test]
    fn corrects_all_weight_7_burst_samples() {
        let c = ReedMuller1::bch_32_6_16();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let positions: Vec<usize> = (0..32).collect();
        for _ in 0..300 {
            let msg = BitVec::from_word(rng.gen::<u64>() & 0x3F, 6);
            let cw = c.encode(&msg).unwrap();
            let k = rng.gen_range(1..=7);
            let mut noisy = cw.clone();
            for &p in positions.choose_multiple(&mut rng, k) {
                noisy.flip(p);
            }
            let (dm, _) = c.decode_ml(&noisy).unwrap();
            assert_eq!(dm, msg, "weight-{k} pattern must be corrected");
        }
    }

    #[test]
    fn corrects_most_weight_8_patterns() {
        let c = ReedMuller1::bch_32_6_16();
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let positions: Vec<usize> = (0..32).collect();
        let mut ok = 0;
        let trials = 500;
        for _ in 0..trials {
            let msg = BitVec::from_word(rng.gen::<u64>() & 0x3F, 6);
            let cw = c.encode(&msg).unwrap();
            let mut noisy = cw.clone();
            for &p in positions.choose_multiple(&mut rng, 8) {
                noisy.flip(p);
            }
            if c.decode_ml(&noisy).unwrap().0 == msg {
                ok += 1;
            }
        }
        // ML decoding still corrects beyond the guaranteed radius 7: a
        // weight-8 pattern fails only on a distance tie with another
        // codeword (all 8 flips inside one weight-16 support), which is
        // rare.
        assert!(ok as f64 / trials as f64 > 0.8, "only {ok}/{trials} corrected");
    }

    #[test]
    fn syndrome_decoding_recovers_error_patterns() {
        let c = ReedMuller1::bch_32_6_16();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let positions: Vec<usize> = (0..32).collect();
        for _ in 0..200 {
            let mut e = BitVec::zeros(32);
            let k = rng.gen_range(0..=7);
            for &p in positions.choose_multiple(&mut rng, k) {
                e.flip(p);
            }
            let s = c.code().syndrome(&e).unwrap();
            let decoded = c.decode_syndrome(&s).unwrap();
            assert_eq!(decoded, e, "weight-{k} syndrome decode failed");
        }
    }

    #[test]
    fn fpga_variant_parameters() {
        let c = ReedMuller1::rm_16_5_8();
        assert_eq!(c.code().n(), 16);
        assert_eq!(c.code().k(), 5);
        assert_eq!(c.guaranteed_correction(), 3);
    }

    #[test]
    fn rejects_wrong_length() {
        let c = ReedMuller1::bch_32_6_16();
        assert!(matches!(
            c.decode_ml(&BitVec::zeros(16)),
            Err(CodeError::LengthMismatch { expected: 32, actual: 16 })
        ));
    }
}
