//! Syndrome-only reverse fuzzy extractor (van Herrewege et al., FC 2012).
//!
//! The paper's error-correction architecture: the resource-constrained
//! prover only runs the *syndrome generator* (one parity-check
//! multiplication) over its noisy PUF response `y'` and publishes the
//! helper data `h = H·y'`. The verifier, holding a reference response `y`
//! (from `PUF.Emulate()`), computes `H·(y ⊕ y') = h ⊕ H·y`, decodes the
//! low-weight difference `e = y ⊕ y'` from that syndrome, and reconstructs
//! `y' = y ⊕ e` exactly. Both sides then continue with the *same* value
//! `y'`, which the obfuscation network consumes.

use crate::code::{CodeError, Decoder};
use crate::gf2::BitVec;

/// Helper data published by the prover: the syndrome of its noisy response.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HelperData(pub BitVec);

impl HelperData {
    /// Number of helper bits (n − k; 26 for the paper's code).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the helper data is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Outcome of verifier-side reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reconstruction {
    /// The prover's response as reconstructed by the verifier.
    pub response: BitVec,
    /// Hamming weight of the corrected error pattern.
    pub corrected_errors: usize,
}

/// The reverse fuzzy extractor over any syndrome-decodable code.
#[derive(Debug, Clone)]
pub struct ReverseFuzzyExtractor<D> {
    decoder: D,
}

impl<D: Decoder> ReverseFuzzyExtractor<D> {
    /// Wraps a decoder.
    pub fn new(decoder: D) -> Self {
        ReverseFuzzyExtractor { decoder }
    }

    /// The underlying decoder.
    pub fn decoder(&self) -> &D {
        &self.decoder
    }

    /// Prover side (`Gen`): computes the helper data for a noisy response.
    ///
    /// # Errors
    ///
    /// [`CodeError::LengthMismatch`] if the response is not `n` bits.
    pub fn generate(&self, noisy_response: &BitVec) -> Result<HelperData, CodeError> {
        Ok(HelperData(self.decoder.code().syndrome(noisy_response)?))
    }

    /// Verifier side (`Rep`): reconstructs the prover's noisy response from
    /// the reference response and the helper data.
    ///
    /// # Errors
    ///
    /// [`CodeError::LengthMismatch`] for wrong-size inputs;
    /// [`CodeError::Uncorrectable`] when the response difference exceeds the
    /// decoder's capability (a false negative, at the rate quantified in the
    /// paper's §4.1).
    pub fn reproduce(&self, reference: &BitVec, helper: &HelperData) -> Result<Reconstruction, CodeError> {
        let s_ref = self.decoder.code().syndrome(reference)?;
        let diff_syndrome = s_ref.xor(&helper.0);
        let e = self.decoder.decode_syndrome(&diff_syndrome)?;
        Ok(Reconstruction { corrected_errors: e.weight(), response: reference.xor(&e) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rm::ReedMuller1;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn extractor() -> ReverseFuzzyExtractor<ReedMuller1> {
        ReverseFuzzyExtractor::new(ReedMuller1::bch_32_6_16())
    }

    #[test]
    fn helper_data_is_26_bits() {
        let fe = extractor();
        let h = fe.generate(&BitVec::from_word(0xDEAD_BEEF, 32)).unwrap();
        assert_eq!(h.len(), 26, "paper: 32 − 6 = 26-bit helper data");
    }

    #[test]
    fn reconstructs_exact_match() {
        let fe = extractor();
        let y = BitVec::from_word(0x1234_5678, 32);
        let h = fe.generate(&y).unwrap();
        let rec = fe.reproduce(&y, &h).unwrap();
        assert_eq!(rec.response, y);
        assert_eq!(rec.corrected_errors, 0);
    }

    #[test]
    fn reconstructs_under_noise_up_to_7_bits() {
        let fe = extractor();
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let positions: Vec<usize> = (0..32).collect();
        for _ in 0..300 {
            let y_ref = BitVec::from_word(rng.gen::<u32>() as u64, 32);
            let mut y_noisy = y_ref.clone();
            let k = rng.gen_range(0..=7);
            for &p in positions.choose_multiple(&mut rng, k) {
                y_noisy.flip(p);
            }
            let h = fe.generate(&y_noisy).unwrap();
            let rec = fe.reproduce(&y_ref, &h).unwrap();
            assert_eq!(rec.response, y_noisy, "weight-{k} noise must reconstruct");
            assert_eq!(rec.corrected_errors, k);
        }
    }

    #[test]
    fn helper_data_leaks_at_most_syndrome() {
        // Two responses in the same coset yield identical helper data.
        let fe = extractor();
        let y = BitVec::from_word(0xCAFE_F00D, 32);
        let cw = ReedMuller1::bch_32_6_16().encode(&BitVec::from_word(0b101010, 6)).unwrap();
        let y2 = y.xor(&cw);
        assert_eq!(fe.generate(&y).unwrap(), fe.generate(&y2).unwrap());
    }

    #[test]
    fn wrong_reference_reconstructs_wrong_value() {
        // With an unrelated reference the reconstruction differs from the
        // prover's response (the attestation check then fails).
        let fe = extractor();
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let y_p = BitVec::from_word(rng.gen::<u32>() as u64, 32);
        let y_v = BitVec::from_word(rng.gen::<u32>() as u64, 32);
        let h = fe.generate(&y_p).unwrap();
        match fe.reproduce(&y_v, &h) {
            Ok(rec) => assert_ne!(rec.response, y_p),
            Err(CodeError::Uncorrectable) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}
