//! Gate-level silicon substrate for the PUFatt reproduction.
//!
//! The PUFatt paper (DAC 2014) evaluates its ALU PUF with a *gate-level delay
//! simulation*: a netlist of logic gates whose delays are perturbed by a
//! quad-tree process-variation model at the 45 nm node, evaluated under
//! voltage and temperature corners. This crate is that substrate:
//!
//! * [`netlist`] — a compact combinational netlist data model with a builder
//!   API, topological ordering and structural validation.
//! * [`gen`] — generators for the circuits the paper needs: full adders,
//!   ripple-carry adders (the ALU datapath the PUF races through) and XOR
//!   reduction trees (the obfuscation network).
//! * [`gen_adders`] — faster adder architectures (carry-lookahead,
//!   carry-select) for the PUF design-space ablation.
//! * [`delay`] — an alpha-power-law gate-delay model parameterised by supply
//!   voltage, threshold voltage and temperature, with per-gate-kind intrinsic
//!   delays and fanout loading.
//! * [`variation`] — the hierarchical quad-tree threshold-voltage variation
//!   model (Cline et al., ICCAD 2006) used by the paper, plus chip sampling.
//! * [`env`](mod@crate::env) — operating conditions (voltage and temperature corners).
//! * [`sim`] — an event-driven transport-delay timing simulator that reports
//!   per-net settling times (the quantity the PUF arbiters race on).
//! * [`wave`] — a bit-sliced 64-lane waveform simulator with incremental
//!   cone re-evaluation; the batch hot path for PUF evaluation/emulation,
//!   bit-identical to [`sim`] on continuous delay tables.
//! * [`sta`] — static timing analysis (topological worst-case arrival times),
//!   used to derive `T_ALU` for the overclocking-attack analysis.
//! * [`dot`] — Graphviz export (optionally heat-coloured by gate delay).
//!
//! # Example
//!
//! Build a 4-bit ripple-carry adder, sample a chip from the process, and
//! simulate an input transition:
//!
//! ```
//! use pufatt_silicon::env::Environment;
//! use pufatt_silicon::gen::{ripple_carry_adder, RcaPorts};
//! use pufatt_silicon::netlist::Netlist;
//! use pufatt_silicon::sim::EventSimulator;
//! use pufatt_silicon::variation::ChipSampler;
//! use rand::SeedableRng;
//!
//! let mut netlist = Netlist::new();
//! let ports: RcaPorts = ripple_carry_adder(&mut netlist, 4, "alu");
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let chip = ChipSampler::default().sample(&netlist, &mut rng);
//! let delays = chip.gate_delays(&netlist, &Environment::nominal());
//!
//! let mut sim = EventSimulator::new(&netlist, &delays);
//! let from = netlist.input_vector(&[(&ports.a, 0b0000), (&ports.b, 0b0000)]);
//! let to = netlist.input_vector(&[(&ports.a, 0b0111), (&ports.b, 0b0001)]);
//! let result = sim.run_transition(&from, &to);
//! assert_eq!(result.word(&ports.sum), 0b1000);
//! ```

// The SIMD/parallel simulation kernels are the only unsafe code in the
// workspace; every unsafe operation must sit in an explicit `unsafe {}`
// block with a SAFETY comment, even inside unsafe fns.
#![deny(unsafe_op_in_unsafe_fn)]
// Tests may unwrap/expect freely; library code must not panic on fallible
// paths (the clippy lints in Cargo.toml enforce this, and CI denies them).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod delay;
pub mod dot;
pub mod env;
pub mod gen;
pub mod gen_adders;
pub mod netlist;
pub mod sim;
pub mod sta;
pub mod variation;
pub mod wave;

pub use delay::{DelayModel, Technology};
pub use env::Environment;
pub use netlist::{FanoutCsr, Gate, GateId, GateKind, Net, NetId, Netlist};
pub use sim::{EventSimulator, SimResult};
pub use sta::ArrivalTimes;
pub use variation::{Chip, ChipSampler};
pub use wave::SlicedWaveSimulator;
