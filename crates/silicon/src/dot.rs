//! Graphviz DOT export for netlists.
//!
//! Debugging a delay race is much easier with a picture. `to_dot` renders
//! the gate graph; `to_dot_with_delays` additionally colours gates by
//! their delay (slow = red), which makes a chip's unique delay fingerprint
//! visible at a glance.

use crate::netlist::{NetId, Netlist};
use std::fmt::Write;

/// Renders the netlist as a Graphviz digraph. Primary inputs and outputs
/// become box nodes; gates become ellipses labelled with their kind.
pub fn to_dot(netlist: &Netlist) -> String {
    to_dot_inner(netlist, None)
}

/// Like [`to_dot`], colouring each gate by its delay relative to the
/// slowest gate (white → red).
///
/// # Panics
///
/// Panics if `delays_ps.len()` differs from the gate count.
pub fn to_dot_with_delays(netlist: &Netlist, delays_ps: &[f64]) -> String {
    assert_eq!(delays_ps.len(), netlist.gate_count(), "one delay per gate required");
    to_dot_inner(netlist, Some(delays_ps))
}

fn to_dot_inner(netlist: &Netlist, delays: Option<&[f64]>) -> String {
    let mut out = String::from("digraph netlist {\n  rankdir=LR;\n  node [fontsize=9];\n");
    let max_delay = delays.map(|d| d.iter().copied().fold(1e-9, f64::max)).unwrap_or(1.0);

    let net_name = |n: NetId| -> String { netlist.net(n).name.clone().unwrap_or_else(|| format!("{n}")) };

    // `fmt::Write` into a String is infallible; the `let _ =` keeps the
    // crate's no-panic lints clean without pretending failure is possible.
    for &pi in netlist.primary_inputs() {
        let _ = writeln!(out, "  \"{}\" [shape=box, style=filled, fillcolor=lightblue];", net_name(pi));
    }
    for &po in netlist.primary_outputs() {
        // Outputs driven by gates get their own sink node to keep the graph
        // readable; label with the port name.
        let _ = writeln!(
            out,
            "  \"out_{0}\" [shape=box, label=\"{0}\", style=filled, fillcolor=lightyellow];",
            net_name(po)
        );
    }
    for (gid, gate) in netlist.topological_gates() {
        let color = match delays {
            Some(d) => {
                let heat = (d[gid.index()] / max_delay).clamp(0.0, 1.0);
                let green_blue = (255.0 * (1.0 - heat)) as u8;
                format!("#ff{green_blue:02x}{green_blue:02x}")
            }
            None => "#eeeeee".to_string(),
        };
        let _ = writeln!(out, "  \"{gid}\" [label=\"{} {gid}\", style=filled, fillcolor=\"{color}\"];", gate.kind);
        for input in gate.input_nets() {
            let _ = match netlist.net(input).driver {
                Some(src) => writeln!(out, "  \"{src}\" -> \"{gid}\";"),
                None => writeln!(out, "  \"{}\" -> \"{gid}\";", net_name(input)),
            };
        }
    }
    for &po in netlist.primary_outputs() {
        let _ = match netlist.net(po).driver {
            Some(src) => writeln!(out, "  \"{src}\" -> \"out_{}\";", net_name(po)),
            None => writeln!(out, "  \"{}\" -> \"out_{}\";", net_name(po), net_name(po)),
        };
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ripple_carry_adder;

    fn adder() -> Netlist {
        let mut nl = Netlist::new();
        ripple_carry_adder(&mut nl, 4, "alu");
        nl
    }

    #[test]
    fn dot_contains_all_gates_and_ports() {
        let nl = adder();
        let dot = to_dot(&nl);
        assert!(dot.starts_with("digraph netlist {"));
        assert!(dot.trim_end().ends_with('}'));
        for (gid, _) in nl.topological_gates() {
            assert!(dot.contains(&format!("\"{gid}\"")), "gate {gid} missing");
        }
        assert!(dot.contains("alu_a[0]"), "input ports labelled");
        assert!(dot.contains("alu_s[3]"), "output ports labelled");
        // 5 gates per FA x 4 slices.
        assert_eq!(dot.matches("XOR2").count(), 8);
    }

    #[test]
    fn delay_colouring_marks_the_slowest_gate_red() {
        let nl = adder();
        let mut delays = vec![5.0; nl.gate_count()];
        delays[7] = 50.0;
        let dot = to_dot_with_delays(&nl, &delays);
        assert!(dot.contains("#ff0000"), "max-delay gate must be pure red");
        assert!(dot.contains("#ffe5e5"), "fast gates stay near white");
    }

    #[test]
    fn edge_count_matches_fanin() {
        let nl = adder();
        let dot = to_dot(&nl);
        let gate_edges = dot.matches("->").count();
        // Every gate input contributes one edge + one edge per primary
        // output sink.
        let fanin: usize = nl.gates().iter().map(|g| g.kind.arity()).sum();
        assert_eq!(gate_edges, fanin + nl.primary_outputs().len());
    }

    #[test]
    #[should_panic(expected = "one delay per gate")]
    fn delay_length_checked() {
        to_dot_with_delays(&adder(), &[1.0]);
    }
}
