//! Gate delay modelling.
//!
//! The paper computes gate delays under process variation using the
//! near-threshold delay model of Markovic et al. (Proc. IEEE 2010): CMOS gate
//! delay follows the alpha-power law
//!
//! ```text
//! t_d  ∝  Vdd / (Vdd − Vth)^α
//! ```
//!
//! with the velocity-saturation index α ≈ 1.3 at 45 nm. Temperature enters
//! twice and with opposite signs — carrier mobility degrades with temperature
//! (slower) while the threshold voltage drops (faster) — which is why
//! symmetric paths track each other so well across corners (the paper's
//! robustness argument).

use crate::env::Environment;
use crate::netlist::{FanoutCsr, GateKind, Netlist};

/// Technology parameters for the delay model (defaults model a 45 nm node,
/// the node targeted by the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Nominal supply voltage in volts.
    pub vdd_nominal: f64,
    /// Nominal (mean) threshold voltage in volts.
    pub vth_nominal: f64,
    /// Alpha-power-law velocity-saturation index.
    pub alpha: f64,
    /// Threshold-voltage temperature coefficient in V/°C (negative: V_th
    /// drops as the die heats up).
    pub vth_temp_coeff: f64,
    /// Mobility temperature exponent: mobility ∝ T^(−µ_exp), so delay scales
    /// with (T/T₀)^µ_exp.
    pub mobility_temp_exp: f64,
    /// Reference temperature in °C.
    pub temp_nominal_c: f64,
    /// Extra delay per fanout beyond the first, as a fraction of the
    /// intrinsic delay (a linear load model).
    pub fanout_penalty: f64,
    /// Interconnect delay per micrometre of Manhattan distance between a
    /// driver and its sinks (0 = lumped model, the default — adequate for
    /// the paper's small, tightly-placed PUF macros; set it for
    /// placement-sensitive studies).
    pub wire_ps_per_um: f64,
}

impl Technology {
    /// 45 nm bulk CMOS, the node used in the paper's simulations.
    pub fn node_45nm() -> Self {
        Technology {
            vdd_nominal: 1.0,
            vth_nominal: 0.40,
            alpha: 1.3,
            vth_temp_coeff: -1.0e-3,
            mobility_temp_exp: 1.5,
            temp_nominal_c: 25.0,
            fanout_penalty: 0.15,
            wire_ps_per_um: 0.0,
        }
    }

    /// A 45 nm variant with distributed interconnect (0.3 ps/µm — a
    /// mid-metal-layer RC figure), for placement-sensitivity studies.
    pub fn node_45nm_with_interconnect() -> Self {
        Technology { wire_ps_per_um: 0.3, ..Technology::node_45nm() }
    }

    /// Intrinsic (unloaded, nominal-corner) delay of a gate kind in
    /// picoseconds. Values are representative 45 nm standard-cell delays.
    pub fn intrinsic_delay_ps(&self, kind: GateKind) -> f64 {
        match kind {
            GateKind::Buf => 10.0,
            GateKind::Not => 7.0,
            GateKind::Nand2 => 12.0,
            GateKind::Nor2 => 14.0,
            GateKind::And2 => 16.0,
            GateKind::Or2 => 17.0,
            GateKind::Xor2 => 24.0,
            GateKind::Xnor2 => 24.0,
        }
    }

    /// Raw alpha-power-law factor `Vdd / (Vdd − Vth)^α` at an operating
    /// point, for a device with threshold voltage `vth`.
    ///
    /// # Panics
    ///
    /// Panics if the device would not switch (`Vdd <= Vth`), which is outside
    /// the model's validity range.
    pub fn alpha_power_factor(&self, vth: f64, env: &Environment) -> f64 {
        let vdd = self.vdd_nominal * env.vdd_factor;
        let vth_eff = vth + self.vth_temp_coeff * (env.temp_c - self.temp_nominal_c);
        let overdrive = vdd - vth_eff;
        assert!(overdrive > 0.0, "device does not switch: Vdd {vdd} <= Vth {vth_eff}");
        let mobility = ((env.temp_c + 273.15) / (self.temp_nominal_c + 273.15)).powf(self.mobility_temp_exp);
        mobility * vdd / overdrive.powf(self.alpha)
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::node_45nm()
    }
}

/// Computes per-gate propagation delays for a netlist.
///
/// A `DelayModel` combines the [`Technology`] with per-gate threshold
/// voltages (from the process-variation model) and an operating point.
#[derive(Debug, Clone)]
pub struct DelayModel<'a> {
    technology: &'a Technology,
}

impl<'a> DelayModel<'a> {
    /// Creates a delay model over a technology.
    pub fn new(technology: &'a Technology) -> Self {
        DelayModel { technology }
    }

    /// Delay in picoseconds of one gate given its threshold voltage,
    /// fanout and the operating point.
    pub fn gate_delay_ps(&self, kind: GateKind, vth: f64, fanout: u32, env: &Environment) -> f64 {
        let t = self.technology;
        let intrinsic = t.intrinsic_delay_ps(kind);
        let norm = t.alpha_power_factor(t.vth_nominal, &Environment::nominal());
        let factor = t.alpha_power_factor(vth, env) / norm;
        let load = 1.0 + t.fanout_penalty * (fanout.saturating_sub(1) as f64);
        intrinsic * factor * load
    }

    /// Computes the delay of every gate in `netlist`, where `vth[g]` is the
    /// per-gate threshold voltage.
    ///
    /// Derives the fanout adjacency itself; repeated callers over one
    /// netlist (chip batches, per-corner tables) should build the CSR once
    /// and use [`DelayModel::netlist_delays_ps_with`].
    ///
    /// # Panics
    ///
    /// Panics if `vth.len()` differs from the gate count.
    pub fn netlist_delays_ps(&self, netlist: &Netlist, vth: &[f64], env: &Environment) -> Vec<f64> {
        self.netlist_delays_ps_with(netlist, vth, env, &netlist.fanout_csr())
    }

    /// [`DelayModel::netlist_delays_ps`] over a shared, precomputed fanout
    /// adjacency: both the linear load model and the interconnect term read
    /// `fanouts` instead of re-deriving the adjacency per call.
    ///
    /// # Panics
    ///
    /// Panics if `vth.len()` differs from the gate count or `fanouts` was
    /// built for a different netlist.
    pub fn netlist_delays_ps_with(
        &self,
        netlist: &Netlist,
        vth: &[f64],
        env: &Environment,
        fanouts: &FanoutCsr,
    ) -> Vec<f64> {
        assert_eq!(vth.len(), netlist.gate_count(), "one Vth per gate required");
        assert_eq!(fanouts.net_count(), netlist.net_count(), "fanout CSR does not match netlist");
        let wire = self.technology.wire_ps_per_um;
        netlist
            .gates()
            .iter()
            .zip(vth)
            .map(|(g, &v)| {
                let mut d = self.gate_delay_ps(g.kind, v, fanouts.count(g.output), env);
                if wire > 0.0 {
                    // Interconnect: mean Manhattan distance to the sinks of
                    // this gate's output net.
                    let sinks = fanouts.readers(g.output);
                    if !sinks.is_empty() {
                        let from = g.placement;
                        let total: f64 = sinks
                            .iter()
                            .map(|&sid| {
                                let to = netlist.gate_at(sid).placement;
                                (from.x - to.x).abs() + (from.y - to.y).abs()
                            })
                            .sum();
                        d += wire * total / sinks.len() as f64;
                    }
                }
                d
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::node_45nm()
    }

    #[test]
    fn nominal_factor_is_one() {
        let t = tech();
        let m = DelayModel::new(&t);
        let d = m.gate_delay_ps(GateKind::Xor2, t.vth_nominal, 1, &Environment::nominal());
        assert!((d - t.intrinsic_delay_ps(GateKind::Xor2)).abs() < 1e-9);
    }

    #[test]
    fn higher_vth_is_slower() {
        let t = tech();
        let m = DelayModel::new(&t);
        let env = Environment::nominal();
        let slow = m.gate_delay_ps(GateKind::Nand2, 0.44, 1, &env);
        let fast = m.gate_delay_ps(GateKind::Nand2, 0.36, 1, &env);
        assert!(slow > fast, "slow {slow} fast {fast}");
    }

    #[test]
    fn lower_vdd_is_slower() {
        let t = tech();
        let m = DelayModel::new(&t);
        let nom = m.gate_delay_ps(GateKind::Nand2, t.vth_nominal, 1, &Environment::nominal());
        let low = m.gate_delay_ps(GateKind::Nand2, t.vth_nominal, 1, &Environment::with_vdd(0.9));
        let high = m.gate_delay_ps(GateKind::Nand2, t.vth_nominal, 1, &Environment::with_vdd(1.1));
        assert!(low > nom && nom > high);
    }

    #[test]
    fn fanout_increases_delay_linearly() {
        let t = tech();
        let m = DelayModel::new(&t);
        let env = Environment::nominal();
        let d1 = m.gate_delay_ps(GateKind::And2, t.vth_nominal, 1, &env);
        let d3 = m.gate_delay_ps(GateKind::And2, t.vth_nominal, 3, &env);
        assert!((d3 / d1 - (1.0 + 2.0 * t.fanout_penalty)).abs() < 1e-9);
    }

    #[test]
    fn temperature_effects_partially_cancel() {
        // Mobility degradation and Vth reduction oppose each other; the net
        // delay shift over the paper's whole range stays moderate (< 40 %).
        let t = tech();
        let m = DelayModel::new(&t);
        let nom = m.gate_delay_ps(GateKind::Xor2, t.vth_nominal, 1, &Environment::nominal());
        for corner in Environment::temperature_sweep(8) {
            let d = m.gate_delay_ps(GateKind::Xor2, t.vth_nominal, 1, &corner);
            let ratio = d / nom;
            assert!((0.6..1.4).contains(&ratio), "ratio {ratio} at {corner}");
        }
    }

    #[test]
    fn netlist_delays_cover_every_gate() {
        let t = tech();
        let m = DelayModel::new(&t);
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.xor2(a, b);
        let _y = nl.and2(x, b);
        let d = m.netlist_delays_ps(&nl, &[t.vth_nominal, t.vth_nominal], &Environment::nominal());
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn wire_delay_is_zero_by_default_and_scales_with_distance() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        nl.place_at(0.0, 0.0);
        let n1 = nl.not(a);
        nl.place_at(50.0, 0.0);
        let _far_sink = nl.not(n1); // 50 µm from its driver
        let vth = vec![0.40; nl.gate_count()];
        let env = Environment::nominal();

        let lumped = Technology::node_45nm();
        let d0 = DelayModel::new(&lumped).netlist_delays_ps(&nl, &vth, &env);

        let wired = Technology::node_45nm_with_interconnect();
        let d1 = DelayModel::new(&wired).netlist_delays_ps(&nl, &vth, &env);
        // The driver of the 50 µm net pays 0.3 ps/µm × 50 µm = 15 ps extra.
        assert!((d1[0] - d0[0] - 15.0).abs() < 1e-9, "wire delay: {} vs {}", d1[0], d0[0]);
        // The sink gate drives nothing: no wire penalty.
        assert!((d1[1] - d0[1]).abs() < 1e-9);
    }

    #[test]
    fn shared_csr_matches_self_derived_adjacency() {
        let mut nl = Netlist::new();
        crate::gen::ripple_carry_adder(&mut nl, 8, "alu");
        nl.place_at(3.0, 7.0);
        let vth: Vec<f64> = (0..nl.gate_count()).map(|i| 0.38 + 0.0005 * (i % 9) as f64).collect();
        let env = Environment::with_temp(80.0);
        let csr = nl.fanout_csr();
        for tech in [Technology::node_45nm(), Technology::node_45nm_with_interconnect()] {
            let m = DelayModel::new(&tech);
            assert_eq!(m.netlist_delays_ps(&nl, &vth, &env), m.netlist_delays_ps_with(&nl, &vth, &env, &csr));
        }
    }

    #[test]
    #[should_panic(expected = "does not switch")]
    fn rejects_subthreshold_supply() {
        let t = tech();
        t.alpha_power_factor(0.9, &Environment::with_vdd(0.9));
    }
}
