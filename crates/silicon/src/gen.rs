//! Circuit generators.
//!
//! Generators append a subcircuit to a [`Netlist`] and return its port nets.
//! The ripple-carry adder is the paper's ALU datapath: the PUF races the
//! carry-propagation of two identical copies of it. Placement is emitted in
//! a bit-sliced column layout so the variation model sees realistic
//! geometry.

use crate::netlist::{NetId, Netlist};

/// Horizontal pitch of one adder bit slice in µm.
const BIT_PITCH_UM: f64 = 2.0;
/// Vertical pitch between gate rows within a slice in µm.
const ROW_PITCH_UM: f64 = 1.0;

/// Ports of a generated full adder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FullAdderPorts {
    /// Sum output.
    pub sum: NetId,
    /// Carry output.
    pub carry: NetId,
}

/// Appends a full adder (2 XOR, 2 AND, 1 OR — the textbook 5-gate form whose
/// carry chain the ALU PUF races) at the current placement cursor.
pub fn full_adder(netlist: &mut Netlist, a: NetId, b: NetId, cin: NetId) -> FullAdderPorts {
    let axb = netlist.xor2(a, b);
    let sum = netlist.xor2(axb, cin);
    let t1 = netlist.and2(axb, cin);
    let t2 = netlist.and2(a, b);
    let carry = netlist.or2(t1, t2);
    FullAdderPorts { sum, carry }
}

/// Ports of a generated ripple-carry adder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RcaPorts {
    /// Operand A input bus (LSB first).
    pub a: Vec<NetId>,
    /// Operand B input bus (LSB first).
    pub b: Vec<NetId>,
    /// Carry-in input.
    pub cin: NetId,
    /// Sum output bus (LSB first).
    pub sum: Vec<NetId>,
    /// Carry-out output.
    pub cout: NetId,
}

impl RcaPorts {
    /// Adder operand width in bits.
    pub fn width(&self) -> usize {
        self.a.len()
    }
}

/// Appends an `n`-bit ripple-carry adder with fresh primary inputs named
/// `"{prefix}_a"`, `"{prefix}_b"`, `"{prefix}_cin"` and outputs
/// `"{prefix}_s"`, `"{prefix}_cout"`.
///
/// Bit slice `i` is placed at `x = i · 2 µm` relative to the current
/// placement cursor.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 64` (results are extracted as `u64` words).
pub fn ripple_carry_adder(netlist: &mut Netlist, n: usize, prefix: &str) -> RcaPorts {
    let a = netlist.input_bus(&format!("{prefix}_a"), n);
    let b = netlist.input_bus(&format!("{prefix}_b"), n);
    let cin = netlist.input(format!("{prefix}_cin"));
    ripple_carry_adder_at(netlist, &a, &b, cin, prefix, 0.0)
}

/// Like [`ripple_carry_adder`] but re-uses existing nets as operands, so two
/// adders can share their inputs — exactly the ALU PUF topology, where one
/// synchronised launch feeds both ALUs. `row_um` offsets the adder's row on
/// the die so redundant ALUs sit in adjacent rows, as in the paper's layout.
///
/// # Panics
///
/// Panics if `a` and `b` have different widths, are empty or wider than 64.
pub fn ripple_carry_adder_shared(
    netlist: &mut Netlist,
    a: &[NetId],
    b: &[NetId],
    cin: NetId,
    prefix: &str,
    row_um: f64,
) -> RcaPorts {
    ripple_carry_adder_at(netlist, a, b, cin, prefix, row_um)
}

fn ripple_carry_adder_at(
    netlist: &mut Netlist,
    a: &[NetId],
    b: &[NetId],
    cin: NetId,
    prefix: &str,
    row_um: f64,
) -> RcaPorts {
    let n = a.len();
    assert!(n > 0, "adder width must be positive");
    assert!(n <= 64, "adder width {n} exceeds 64");
    assert_eq!(a.len(), b.len(), "operand widths differ");

    let mut sum = Vec::with_capacity(n);
    let mut carry = cin;
    for i in 0..n {
        // Bit slice i occupies one standard-cell column at x = i * pitch.
        netlist.place_at(i as f64 * BIT_PITCH_UM, row_um + ROW_PITCH_UM);
        let fa = full_adder(netlist, a[i], b[i], carry);
        sum.push(fa.sum);
        carry = fa.carry;
    }
    for (i, &s) in sum.iter().enumerate() {
        netlist.mark_output(s, format!("{prefix}_s[{i}]"));
    }
    netlist.mark_output(carry, format!("{prefix}_cout"));
    RcaPorts { a: a.to_vec(), b: b.to_vec(), cin, sum, cout: carry }
}

/// Appends a balanced XOR reduction tree over `inputs`, returning the root.
///
/// Used for the obfuscation network's resource model.
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn xor_tree(netlist: &mut Netlist, inputs: &[NetId]) -> NetId {
    assert!(!inputs.is_empty(), "xor tree needs at least one input");
    let mut layer: Vec<NetId> = inputs.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(netlist.xor2(pair[0], pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    layer[0]
}

/// Appends a chain of `stages` buffers (a programmable-delay-line segment)
/// and returns the chain output.
///
/// # Panics
///
/// Panics if `stages == 0`.
pub fn buffer_chain(netlist: &mut Netlist, input: NetId, stages: usize) -> NetId {
    assert!(stages > 0, "buffer chain needs at least one stage");
    let mut n = input;
    for _ in 0..stages {
        n = netlist.buf(n);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_adder_truth_table() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let mut nl = Netlist::new();
                    let ia = nl.input("a");
                    let ib = nl.input("b");
                    let ic = nl.input("c");
                    let fa = full_adder(&mut nl, ia, ib, ic);
                    let v = nl.evaluate(&[a, b, c]);
                    let total = a as u8 + b as u8 + c as u8;
                    assert_eq!(v[fa.sum.index()], total & 1 == 1);
                    assert_eq!(v[fa.carry.index()], total >= 2);
                }
            }
        }
    }

    #[test]
    fn rca_adds_exhaustively_4bit() {
        let mut nl = Netlist::new();
        let p = ripple_carry_adder(&mut nl, 4, "alu");
        nl.validate().unwrap();
        for a in 0u64..16 {
            for b in 0u64..16 {
                for cin in 0u64..2 {
                    let mut iv = nl.input_vector(&[(&p.a, a), (&p.b, b)]);
                    // cin is a single net; find its position.
                    let pos = nl.primary_inputs().iter().position(|&x| x == p.cin).unwrap();
                    iv[pos] = cin == 1;
                    let v = nl.evaluate(&iv);
                    let s = Netlist::word_of(&v, &p.sum);
                    let co = v[p.cout.index()] as u64;
                    assert_eq!(s + (co << 4), a + b + cin, "a={a} b={b} cin={cin}");
                }
            }
        }
    }

    #[test]
    fn rca_random_32bit() {
        use rand::{Rng, SeedableRng};
        let mut nl = Netlist::new();
        let p = ripple_carry_adder(&mut nl, 32, "alu");
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        for _ in 0..200 {
            let a: u64 = rng.gen::<u32>() as u64;
            let b: u64 = rng.gen::<u32>() as u64;
            let iv = nl.input_vector(&[(&p.a, a), (&p.b, b)]);
            let v = nl.evaluate(&iv);
            let s = Netlist::word_of(&v, &p.sum);
            let co = v[p.cout.index()] as u64;
            assert_eq!(s | (co << 32), a + b, "a={a} b={b}");
        }
    }

    #[test]
    fn rca_gate_count_is_5n() {
        let mut nl = Netlist::new();
        ripple_carry_adder(&mut nl, 16, "alu");
        assert_eq!(nl.gate_count(), 5 * 16);
    }

    #[test]
    fn shared_inputs_drive_two_adders() {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 8);
        let b = nl.input_bus("b", 8);
        let cin = nl.input("cin");
        let p0 = ripple_carry_adder_shared(&mut nl, &a, &b, cin, "alu0", 0.0);
        let p1 = ripple_carry_adder_shared(&mut nl, &a, &b, cin, "alu1", 8.0);
        let iv = nl.input_vector(&[(&a, 200), (&b, 100)]);
        let v = nl.evaluate(&iv);
        assert_eq!(Netlist::word_of(&v, &p0.sum), Netlist::word_of(&v, &p1.sum));
        assert_eq!(Netlist::word_of(&v, &p0.sum), (200 + 100) & 0xFF);
    }

    #[test]
    fn xor_tree_computes_parity() {
        let mut nl = Netlist::new();
        let xs = nl.input_bus("x", 7);
        let root = xor_tree(&mut nl, &xs);
        for val in 0u64..128 {
            let iv = nl.input_vector(&[(&xs, val)]);
            let v = nl.evaluate(&iv);
            assert_eq!(v[root.index()], val.count_ones() % 2 == 1, "val {val}");
        }
    }

    #[test]
    fn buffer_chain_is_identity() {
        let mut nl = Netlist::new();
        let x = nl.input("x");
        let out = buffer_chain(&mut nl, x, 16);
        for b in [false, true] {
            let v = nl.evaluate(&[b]);
            assert_eq!(v[out.index()], b);
        }
        assert_eq!(nl.gate_count(), 16);
    }
}
