//! Process-variation modelling: the quad-tree threshold-voltage model.
//!
//! The paper follows Cline et al. (ICCAD 2006): intra-die variation is
//! spatially correlated, which is captured by a hierarchy of grids. Level
//! `l` divides the die into 2^l × 2^l cells, each holding an independent
//! Gaussian deviate; a gate's threshold-voltage shift is the sum of the
//! deviates of the cells containing it across all levels, plus a purely
//! random (white) per-gate component. Gates that are physically close share
//! most levels and therefore receive correlated shifts — exactly why the
//! paper places the two redundant ALUs side by side.
//!
//! Following the paper (and Pan et al., DAC 2009), the total variation obeys
//! σ/µ = 0.1 on V_th at the 45 nm node.

use crate::delay::{DelayModel, Technology};
use crate::env::Environment;
use crate::netlist::Netlist;
use rand::Rng;

/// Configuration for the quad-tree variation model.
#[derive(Debug, Clone, PartialEq)]
pub struct QuadTreeModel {
    /// Number of hierarchy levels (excluding the white-noise component).
    pub levels: u32,
    /// Fraction of total V_th *variance* assigned to the spatially
    /// correlated levels (split equally among them); the remainder is
    /// white per-gate noise.
    pub correlated_fraction: f64,
    /// Die edge length in µm; placements are clamped into this square.
    pub die_size_um: f64,
}

impl QuadTreeModel {
    /// The configuration used throughout the reproduction: 4 levels, half of
    /// the variance spatially correlated, a 100 µm macro region.
    pub fn paper_default() -> Self {
        QuadTreeModel { levels: 4, correlated_fraction: 0.5, die_size_um: 100.0 }
    }
}

impl Default for QuadTreeModel {
    fn default() -> Self {
        QuadTreeModel::paper_default()
    }
}

/// Draws chips (per-gate threshold-voltage assignments) from the process.
#[derive(Debug, Clone, Default)]
pub struct ChipSampler {
    technology: Technology,
    model: QuadTreeModel,
    sigma_ratio: f64,
}

impl ChipSampler {
    /// Creates a sampler with the paper's parameters: 45 nm technology,
    /// quad-tree model, σ/µ = 0.1 on V_th.
    pub fn new() -> Self {
        ChipSampler {
            technology: Technology::node_45nm(),
            model: QuadTreeModel::paper_default(),
            sigma_ratio: 0.1,
        }
    }

    /// Overrides the σ/µ ratio of the threshold-voltage distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= ratio <= 0.3` (larger ratios put devices outside
    /// the delay model's validity range).
    pub fn with_sigma_ratio(mut self, ratio: f64) -> Self {
        assert!((0.0..=0.3).contains(&ratio), "sigma ratio {ratio} out of range");
        self.sigma_ratio = ratio;
        self
    }

    /// Overrides the quad-tree configuration.
    pub fn with_model(mut self, model: QuadTreeModel) -> Self {
        self.model = model;
        self
    }

    /// Overrides the technology.
    pub fn with_technology(mut self, technology: Technology) -> Self {
        self.technology = technology;
        self
    }

    /// The technology this sampler draws devices in.
    pub fn technology(&self) -> &Technology {
        &self.technology
    }

    /// Total V_th standard deviation in volts.
    pub fn sigma_vth(&self) -> f64 {
        self.sigma_ratio * self.technology.vth_nominal
    }

    /// Samples one manufactured chip: a threshold voltage for every gate in
    /// `netlist`, spatially correlated through the quad-tree.
    pub fn sample<R: Rng + ?Sized>(&self, netlist: &Netlist, rng: &mut R) -> Chip {
        let sigma_total = self.sigma_vth();
        let var_total = sigma_total * sigma_total;
        let levels = self.model.levels.max(1);
        let var_per_level = var_total * self.model.correlated_fraction / levels as f64;
        let sigma_level = var_per_level.sqrt();
        let sigma_white = (var_total * (1.0 - self.model.correlated_fraction)).sqrt();

        // Draw the grids. Level l has 2^l x 2^l cells; we store them flat and
        // lazily index by placement.
        let mut grids: Vec<Vec<f64>> = Vec::with_capacity(levels as usize);
        for l in 0..levels {
            let n = 1usize << l;
            let cells = n * n;
            grids.push((0..cells).map(|_| gaussian(rng) * sigma_level).collect());
        }

        let die = self.model.die_size_um;
        let vth = netlist
            .gates()
            .iter()
            .map(|g| {
                let fx = (g.placement.x / die).clamp(0.0, 0.999_999);
                let fy = (g.placement.y / die).clamp(0.0, 0.999_999);
                let mut dv = gaussian(rng) * sigma_white;
                for (l, grid) in grids.iter().enumerate() {
                    let n = 1usize << l;
                    let cx = (fx * n as f64) as usize;
                    let cy = (fy * n as f64) as usize;
                    dv += grid[cy * n + cx];
                }
                self.technology.vth_nominal + dv
            })
            .collect();

        Chip { vth, technology: self.technology.clone() }
    }

    /// Samples `count` chips.
    pub fn sample_many<R: Rng + ?Sized>(&self, netlist: &Netlist, count: usize, rng: &mut R) -> Vec<Chip> {
        (0..count).map(|_| self.sample(netlist, rng)).collect()
    }
}

/// A manufactured chip: the per-gate threshold voltages of one die, plus the
/// technology it was fabricated in.
#[derive(Debug, Clone, PartialEq)]
pub struct Chip {
    vth: Vec<f64>,
    technology: Technology,
}

impl Chip {
    /// Creates a chip directly from per-gate threshold voltages (used for
    /// golden/reference chips in tests).
    pub fn from_vth(vth: Vec<f64>, technology: Technology) -> Self {
        Chip { vth, technology }
    }

    /// Per-gate threshold voltages in volts.
    pub fn vth(&self) -> &[f64] {
        &self.vth
    }

    /// The chip's technology.
    pub fn technology(&self) -> &Technology {
        &self.technology
    }

    /// Per-gate propagation delays (ps) at an operating point.
    ///
    /// This is the "gate-level delay table" the paper's trusted enrollment
    /// interface reads out, and the input to both the event simulator and
    /// the verifier-side PUF emulator.
    ///
    /// # Panics
    ///
    /// Panics if the chip was sampled for a different netlist (gate counts
    /// disagree).
    pub fn gate_delays(&self, netlist: &Netlist, env: &Environment) -> Vec<f64> {
        DelayModel::new(&self.technology).netlist_delays_ps(netlist, &self.vth, env)
    }

    /// [`Chip::gate_delays`] over a shared, precomputed fanout adjacency —
    /// the per-instance fast path (the adjacency is a property of the
    /// design, not the chip, so it is built once and reused).
    ///
    /// # Panics
    ///
    /// Panics if the chip or the CSR was built for a different netlist.
    pub fn gate_delays_with(
        &self,
        netlist: &Netlist,
        env: &Environment,
        fanouts: &crate::netlist::FanoutCsr,
    ) -> Vec<f64> {
        DelayModel::new(&self.technology).netlist_delays_ps_with(netlist, &self.vth, env, fanouts)
    }
}

/// Standard normal deviate via Box–Muller (avoids depending on
/// `rand_distr`; `rand` alone is in the approved dependency set).
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ripple_carry_adder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn adder_netlist() -> Netlist {
        let mut nl = Netlist::new();
        ripple_carry_adder(&mut nl, 8, "alu");
        nl
    }

    #[test]
    fn sigma_matches_configuration() {
        let nl = adder_netlist();
        let sampler = ChipSampler::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // Pool Vth deviations over many chips; the sample sigma must approach
        // the configured sigma.
        let mut devs = Vec::new();
        for _ in 0..200 {
            let chip = sampler.sample(&nl, &mut rng);
            for &v in chip.vth() {
                devs.push(v - sampler.technology().vth_nominal);
            }
        }
        let n = devs.len() as f64;
        let mean = devs.iter().sum::<f64>() / n;
        let var = devs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n;
        let sigma = var.sqrt();
        let target = sampler.sigma_vth();
        assert!((sigma - target).abs() / target < 0.1, "sigma {sigma} vs target {target}");
        assert!(mean.abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn nearby_gates_are_correlated() {
        // Two gates at the same placement share all quad-tree levels, so
        // their Vth correlation must exceed the correlated fraction; distant
        // gates share only the level-0 cell.
        let mut nl = Netlist::new();
        let a = nl.input("a");
        nl.place_at(10.0, 10.0);
        let g0 = nl.not(a);
        let g1 = nl.not(g0);
        nl.place_at(90.0, 90.0);
        let _g2 = nl.not(g1);

        let sampler = ChipSampler::new();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut near = Vec::new();
        let mut far = Vec::new();
        for _ in 0..800 {
            let chip = sampler.sample(&nl, &mut rng);
            let d: Vec<f64> = chip.vth().iter().map(|v| v - sampler.technology().vth_nominal).collect();
            near.push((d[0], d[1]));
            far.push((d[0], d[2]));
        }
        let corr = |pairs: &[(f64, f64)]| {
            let n = pairs.len() as f64;
            let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
            let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
            let cov = pairs.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>() / n;
            let sx = (pairs.iter().map(|p| (p.0 - mx).powi(2)).sum::<f64>() / n).sqrt();
            let sy = (pairs.iter().map(|p| (p.1 - my).powi(2)).sum::<f64>() / n).sqrt();
            cov / (sx * sy)
        };
        let c_near = corr(&near);
        let c_far = corr(&far);
        assert!(c_near > 0.35, "near correlation {c_near}");
        assert!(c_near > c_far + 0.15, "near {c_near} vs far {c_far}");
    }

    #[test]
    fn chips_differ_from_each_other() {
        let nl = adder_netlist();
        let sampler = ChipSampler::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = sampler.sample(&nl, &mut rng);
        let b = sampler.sample(&nl, &mut rng);
        assert_ne!(a.vth(), b.vth());
    }

    #[test]
    fn delays_positive_at_all_paper_corners() {
        let nl = adder_netlist();
        let sampler = ChipSampler::new();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let chip = sampler.sample(&nl, &mut rng);
        for env in Environment::voltage_sweep(3)
            .into_iter()
            .chain(Environment::temperature_sweep(3))
        {
            let d = chip.gate_delays(&nl, &env);
            assert!(d.iter().all(|&x| x.is_finite() && x > 0.0), "corner {env}");
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn deterministic_given_seed() {
        let nl = adder_netlist();
        let sampler = ChipSampler::new();
        let a = sampler.sample(&nl, &mut ChaCha8Rng::seed_from_u64(42));
        let b = sampler.sample(&nl, &mut ChaCha8Rng::seed_from_u64(42));
        assert_eq!(a.vth(), b.vth());
    }
}
