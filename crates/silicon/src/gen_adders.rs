//! Alternative adder architectures.
//!
//! The paper builds its PUF from ripple-carry adders because "ripple-carry
//! adders … are basic ALU components" whose long carry chains accumulate
//! per-gate variation. Real ALUs also use faster structures; these
//! generators let the reproduction ask the design-space question the paper
//! leaves open: *how much PUF quality does a faster adder give up?*
//!
//! * [`carry_lookahead_adder_shared`] — 4-bit-group CLA: short, balanced
//!   paths (good for speed, less accumulated variation per output).
//! * [`carry_select_adder_shared`] — 4-bit blocks computed for both carry
//!   hypotheses and muxed; path lengths in between.
//!
//! Both produce the same [`RcaPorts`] interface as the ripple-carry
//! generator, so the ALU PUF can instantiate any of them.

use crate::gen::{full_adder, RcaPorts};
use crate::netlist::{NetId, Netlist};

/// Group size for CLA groups and carry-select blocks.
const GROUP: usize = 4;

/// Appends a 2:1 multiplexer (`sel ? b : a`) built from NAND gates.
fn mux2(netlist: &mut Netlist, a: NetId, b: NetId, sel: NetId) -> NetId {
    let nsel = netlist.not(sel);
    let t0 = netlist.nand2(a, nsel);
    let t1 = netlist.nand2(b, sel);
    netlist.nand2(t0, t1)
}

/// Appends an `n`-bit carry-lookahead adder (4-bit groups, ripple between
/// groups) with shared operand nets, mirroring
/// [`crate::gen::ripple_carry_adder_shared`].
///
/// # Panics
///
/// Panics if operand widths differ, are zero, or exceed 64.
pub fn carry_lookahead_adder_shared(
    netlist: &mut Netlist,
    a: &[NetId],
    b: &[NetId],
    cin: NetId,
    prefix: &str,
    row_um: f64,
) -> RcaPorts {
    let n = a.len();
    assert!(n > 0 && n <= 64, "adder width {n} out of range");
    assert_eq!(a.len(), b.len(), "operand widths differ");

    let mut sum = Vec::with_capacity(n);
    let mut group_cin = cin;
    for (g, chunk) in (0..n).collect::<Vec<_>>().chunks(GROUP).enumerate() {
        netlist.place_at(g as f64 * 2.0 * GROUP as f64, row_um);
        // Generate/propagate per bit.
        let gs: Vec<NetId> = chunk.iter().map(|&i| netlist.and2(a[i], b[i])).collect();
        let ps: Vec<NetId> = chunk.iter().map(|&i| netlist.xor2(a[i], b[i])).collect();
        // True lookahead: every carry in the group is a flat AND-OR
        // expansion over the group inputs,
        //   c[k+1] = g[k] ∨ p[k]g[k−1] ∨ … ∨ p[k]…p[0]·c_in,
        // realised with balanced 2-input AND/OR trees (depth O(log G)
        // instead of the ripple's O(G)).
        let and_tree = |netlist: &mut Netlist, nets: &[NetId]| -> NetId {
            let mut layer = nets.to_vec();
            while layer.len() > 1 {
                let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                for pair in layer.chunks(2) {
                    next.push(if pair.len() == 2 { netlist.and2(pair[0], pair[1]) } else { pair[0] });
                }
                layer = next;
            }
            layer[0]
        };
        let or_tree = |netlist: &mut Netlist, nets: &[NetId]| -> NetId {
            let mut layer = nets.to_vec();
            while layer.len() > 1 {
                let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                for pair in layer.chunks(2) {
                    next.push(if pair.len() == 2 { netlist.or2(pair[0], pair[1]) } else { pair[0] });
                }
                layer = next;
            }
            layer[0]
        };
        let mut carries = Vec::with_capacity(chunk.len() + 1);
        carries.push(group_cin);
        for k in 0..chunk.len() {
            // Terms of c[k+1].
            let mut terms = Vec::with_capacity(k + 2);
            terms.push(gs[k]);
            for j in (0..k).rev() {
                // p[k]…p[j+1] · g[j]
                let mut factors: Vec<NetId> = ps[j + 1..=k].to_vec();
                factors.push(gs[j]);
                terms.push(and_tree(netlist, &factors));
            }
            let mut cin_factors: Vec<NetId> = ps[0..=k].to_vec();
            cin_factors.push(group_cin);
            terms.push(and_tree(netlist, &cin_factors));
            carries.push(or_tree(netlist, &terms));
        }
        for (k, _) in chunk.iter().enumerate() {
            sum.push(netlist.xor2(ps[k], carries[k]));
        }
        // `carries` always holds at least the pushed `group_cin`, so the
        // fallback never fires — it only keeps the no-panic lints honest.
        group_cin = carries.last().copied().unwrap_or(group_cin);
    }

    for (i, &s) in sum.iter().enumerate() {
        netlist.mark_output(s, format!("{prefix}_s[{i}]"));
    }
    netlist.mark_output(group_cin, format!("{prefix}_cout"));
    RcaPorts { a: a.to_vec(), b: b.to_vec(), cin, sum, cout: group_cin }
}

/// Appends an `n`-bit carry-select adder (4-bit blocks; each block computes
/// both carry hypotheses with ripple adders and selects) with shared
/// operand nets.
///
/// # Panics
///
/// Panics if operand widths differ, are zero, or exceed 64.
pub fn carry_select_adder_shared(
    netlist: &mut Netlist,
    a: &[NetId],
    b: &[NetId],
    cin: NetId,
    prefix: &str,
    row_um: f64,
) -> RcaPorts {
    let n = a.len();
    assert!(n > 0 && n <= 64, "adder width {n} out of range");
    assert_eq!(a.len(), b.len(), "operand widths differ");

    // Constant 0/1 hypothesis nets, derived from an operand bit so the
    // netlist stays purely combinational: x AND NOT x = 0, x OR NOT x = 1.
    let nx = netlist.not(a[0]);
    let zero = netlist.and2(a[0], nx);
    let one = netlist.or2(a[0], nx);

    let mut sum = Vec::with_capacity(n);
    let mut carry = cin;
    for (blk, chunk) in (0..n).collect::<Vec<_>>().chunks(GROUP).enumerate() {
        netlist.place_at(blk as f64 * 2.0 * GROUP as f64, row_um + 2.0);
        if blk == 0 {
            // First block: plain ripple from the true carry-in.
            for &i in chunk {
                let fa = full_adder(netlist, a[i], b[i], carry);
                sum.push(fa.sum);
                carry = fa.carry;
            }
            continue;
        }
        // Two speculative ripples.
        let mut c0 = zero;
        let mut c1 = one;
        let mut s0 = Vec::with_capacity(chunk.len());
        let mut s1 = Vec::with_capacity(chunk.len());
        for &i in chunk {
            let fa0 = full_adder(netlist, a[i], b[i], c0);
            s0.push(fa0.sum);
            c0 = fa0.carry;
            let fa1 = full_adder(netlist, a[i], b[i], c1);
            s1.push(fa1.sum);
            c1 = fa1.carry;
        }
        // Select on the incoming carry.
        for (s_0, s_1) in s0.into_iter().zip(s1) {
            sum.push(mux2(netlist, s_0, s_1, carry));
        }
        carry = mux2(netlist, c0, c1, carry);
    }

    for (i, &s) in sum.iter().enumerate() {
        netlist.mark_output(s, format!("{prefix}_s[{i}]"));
    }
    netlist.mark_output(carry, format!("{prefix}_cout"));
    RcaPorts { a: a.to_vec(), b: b.to_vec(), cin, sum, cout: carry }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sta::ArrivalTimes;

    type SharedGen = fn(&mut Netlist, &[NetId], &[NetId], NetId, &str, f64) -> RcaPorts;

    fn check_adder_exhaustive_8bit(generator: SharedGen) {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 8);
        let b = nl.input_bus("b", 8);
        let cin = nl.input("cin");
        let p = generator(&mut nl, &a, &b, cin, "dut", 0.0);
        nl.validate().unwrap();
        for av in (0u64..256).step_by(7) {
            for bv in (0u64..256).step_by(11) {
                for cv in 0u64..2 {
                    let mut iv = nl.input_vector(&[(&a, av), (&b, bv)]);
                    let pos = nl.primary_inputs().iter().position(|&x| x == cin).unwrap();
                    iv[pos] = cv == 1;
                    let v = nl.evaluate(&iv);
                    let s = Netlist::word_of(&v, &p.sum);
                    let co = v[p.cout.index()] as u64;
                    assert_eq!(s + (co << 8), av + bv + cv, "a={av} b={bv} c={cv}");
                }
            }
        }
    }

    #[test]
    fn cla_adds_correctly() {
        check_adder_exhaustive_8bit(carry_lookahead_adder_shared);
    }

    #[test]
    fn carry_select_adds_correctly() {
        check_adder_exhaustive_8bit(carry_select_adder_shared);
    }

    #[test]
    fn odd_widths_work() {
        for width in [3usize, 5, 7, 13] {
            for generator in [
                carry_lookahead_adder_shared as SharedGen,
                carry_select_adder_shared as SharedGen,
            ] {
                let mut nl = Netlist::new();
                let a = nl.input_bus("a", width);
                let b = nl.input_bus("b", width);
                let cin = nl.input("cin");
                let p = generator(&mut nl, &a, &b, cin, "dut", 0.0);
                let mask = (1u64 << width) - 1;
                let iv = nl.input_vector(&[(&a, mask), (&b, 1)]);
                let v = nl.evaluate(&iv);
                assert_eq!(Netlist::word_of(&v, &p.sum), 0, "width {width}");
                assert!(v[p.cout.index()], "width {width} must carry out");
            }
        }
    }

    #[test]
    fn cla_is_faster_than_ripple() {
        // The architectural point: CLA's critical path grows ~4x slower.
        let path_of = |gen: SharedGen| {
            let mut nl = Netlist::new();
            let a = nl.input_bus("a", 32);
            let b = nl.input_bus("b", 32);
            let cin = nl.input("cin");
            gen(&mut nl, &a, &b, cin, "dut", 0.0);
            let d = vec![10.0; nl.gate_count()];
            ArrivalTimes::compute(&nl, &d).critical_path_ps()
        };
        let rca = path_of(crate::gen::ripple_carry_adder_shared);
        let csel = path_of(carry_select_adder_shared);
        let cla = path_of(carry_lookahead_adder_shared);
        assert!(csel < rca, "carry-select {csel} must beat ripple {rca}");
        assert!(cla < rca, "lookahead {cla} must beat ripple {rca}");
    }

    #[test]
    fn mux2_truth_table() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let s = nl.input("s");
        let out = mux2(&mut nl, a, b, s);
        for (va, vb, vs) in [
            (false, true, false),
            (false, true, true),
            (true, false, false),
            (true, false, true),
        ] {
            let v = nl.evaluate(&[va, vb, vs]);
            assert_eq!(v[out.index()], if vs { vb } else { va });
        }
    }
}
