//! Event-driven gate-level timing simulation.
//!
//! The ALU PUF's arbiters race the *settling times* of corresponding output
//! bits of two ALUs. Settling times of a ripple-carry adder are strongly
//! data-dependent (sum bits glitch as the carry ripples), so a simple
//! longest-path analysis is not enough: we simulate the transition with a
//! transport-delay event queue and record the time of the last transition on
//! every net.
//!
//! The simulator is deliberately single-threaded and deterministic — the
//! same netlist, delays and stimulus always yield the same event sequence.

use crate::netlist::{GateId, NetId, Netlist};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One pending output change.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time_ps: f64,
    seq: u64,
    net: NetId,
    value: bool,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest event first.
        // Ties break on sequence number for determinism.
        other
            .time_ps
            .partial_cmp(&self.time_ps)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of simulating one input transition.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Final logic value of every net.
    pub values: Vec<bool>,
    /// Time (ps) of the last transition of each net; `None` if the net never
    /// toggled during the transition.
    pub settle_ps: Vec<Option<f64>>,
    /// Number of transitions per net (glitch count + 1 for the final value).
    pub transitions: Vec<u32>,
    /// Total number of events processed.
    pub events: u64,
}

impl SimResult {
    /// Extracts a word from the final values, treating `bus[i]` as bit `i`.
    pub fn word(&self, bus: &[NetId]) -> u64 {
        Netlist::word_of(&self.values, bus)
    }

    /// Settling time of a net, or `0.0` if the net never toggled (it was
    /// already stable before the launch edge).
    pub fn settle_or_zero(&self, net: NetId) -> f64 {
        self.settle_ps[net.index()].unwrap_or(0.0)
    }

    /// Latest settling time over all nets (the transition's critical delay).
    pub fn max_settle_ps(&self) -> f64 {
        self.settle_ps.iter().flatten().fold(0.0, |a, &b| a.max(b))
    }
}

/// An event-driven transport-delay simulator bound to one netlist and one
/// per-gate delay assignment.
#[derive(Debug)]
pub struct EventSimulator<'a> {
    netlist: &'a Netlist,
    delays_ps: &'a [f64],
    fanouts: Vec<Vec<GateId>>,
}

impl<'a> EventSimulator<'a> {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if `delays_ps.len()` differs from the netlist's gate count.
    pub fn new(netlist: &'a Netlist, delays_ps: &'a [f64]) -> Self {
        assert_eq!(delays_ps.len(), netlist.gate_count(), "one delay per gate required");
        EventSimulator { netlist, delays_ps, fanouts: netlist.fanouts() }
    }

    /// Simulates the transition from the steady state under `from` to the
    /// steady state under `to`, with all changed inputs launching at t = 0
    /// (the ALU PUF's synchronisation logic guarantees a simultaneous
    /// launch).
    ///
    /// # Panics
    ///
    /// Panics if the stimulus vectors do not match the number of primary
    /// inputs.
    pub fn run_transition(&mut self, from: &[bool], to: &[bool]) -> SimResult {
        let pis = self.netlist.primary_inputs();
        assert_eq!(from.len(), pis.len(), "`from` length mismatch");
        assert_eq!(to.len(), pis.len(), "`to` length mismatch");

        // Steady state before the launch edge.
        let mut values = self.netlist.evaluate(from);
        let mut settle: Vec<Option<f64>> = vec![None; self.netlist.net_count()];
        let mut transitions = vec![0u32; self.netlist.net_count()];

        let mut heap = BinaryHeap::new();
        let mut seq = 0u64;
        for (i, &net) in pis.iter().enumerate() {
            if from[i] != to[i] {
                heap.push(Event { time_ps: 0.0, seq, net, value: to[i] });
                seq += 1;
            }
        }

        let mut processed = 0u64;
        while let Some(ev) = heap.pop() {
            processed += 1;
            if values[ev.net.index()] == ev.value {
                continue; // glitch cancelled in flight
            }
            values[ev.net.index()] = ev.value;
            settle[ev.net.index()] = Some(ev.time_ps);
            transitions[ev.net.index()] += 1;
            for &gid in &self.fanouts[ev.net.index()] {
                let gate = self.netlist.gate_at(gid);
                let a = values[gate.inputs[0].index()];
                let b = values[gate.inputs[1].index()];
                let out = gate.kind.eval(a, b);
                // Transport delay: schedule the recomputed output; events
                // arriving with the already-current value are dropped at pop
                // time, which models glitch filtering at zero width.
                heap.push(Event {
                    time_ps: ev.time_ps + self.delays_ps[gid.index()],
                    seq,
                    net: gate.output,
                    value: out,
                });
                seq += 1;
            }
        }

        SimResult { values, settle_ps: settle, transitions, events: processed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ripple_carry_adder;
    use crate::netlist::Netlist;

    fn unit_delays(nl: &Netlist) -> Vec<f64> {
        vec![10.0; nl.gate_count()]
    }

    #[test]
    fn final_values_match_functional_eval() {
        let mut nl = Netlist::new();
        let p = ripple_carry_adder(&mut nl, 8, "alu");
        let d = unit_delays(&nl);
        let mut sim = EventSimulator::new(&nl, &d);
        for (a, b) in [(0u64, 0u64), (1, 1), (255, 1), (170, 85), (200, 100)] {
            let from = nl.input_vector(&[(&p.a, !a & 0xFF), (&p.b, !b & 0xFF)]);
            let to = nl.input_vector(&[(&p.a, a), (&p.b, b)]);
            let r = sim.run_transition(&from, &to);
            assert_eq!(r.word(&p.sum), (a + b) & 0xFF, "a={a} b={b}");
        }
    }

    #[test]
    fn carry_ripple_settles_monotonically_later() {
        // 0xFF + 0x01 propagates a carry through every slice: each sum bit
        // must settle no earlier than the previous one.
        let mut nl = Netlist::new();
        let p = ripple_carry_adder(&mut nl, 16, "alu");
        let d = unit_delays(&nl);
        let mut sim = EventSimulator::new(&nl, &d);
        let from = nl.input_vector(&[(&p.a, 0), (&p.b, 0)]);
        let to = nl.input_vector(&[(&p.a, 0xFFFF), (&p.b, 1)]);
        let r = sim.run_transition(&from, &to);
        let times: Vec<f64> = p.sum.iter().map(|&s| r.settle_or_zero(s)).collect();
        for w in times.windows(2) {
            assert!(w[1] >= w[0], "settling times not monotone: {times:?}");
        }
        assert!(times[15] > times[1], "carry chain must dominate: {times:?}");
    }

    #[test]
    fn no_input_change_produces_no_events() {
        let mut nl = Netlist::new();
        let p = ripple_carry_adder(&mut nl, 4, "alu");
        let d = unit_delays(&nl);
        let mut sim = EventSimulator::new(&nl, &d);
        let v = nl.input_vector(&[(&p.a, 5), (&p.b, 3)]);
        let r = sim.run_transition(&v, &v);
        assert_eq!(r.events, 0);
        assert!(r.settle_ps.iter().all(|s| s.is_none()));
        assert_eq!(r.word(&p.sum), 8);
    }

    #[test]
    fn glitches_are_observed_on_carry_chain() {
        // With a from-state of all-ones + 1 to a to-state that flips the
        // carry pattern, intermediate sum bits should toggle more than once.
        let mut nl = Netlist::new();
        let p = ripple_carry_adder(&mut nl, 8, "alu");
        let d = unit_delays(&nl);
        let mut sim = EventSimulator::new(&nl, &d);
        let from = nl.input_vector(&[(&p.a, 0x00), (&p.b, 0x00)]);
        let to = nl.input_vector(&[(&p.a, 0xFF), (&p.b, 0x01)]);
        let r = sim.run_transition(&from, &to);
        let total: u32 = p.sum.iter().map(|&s| r.transitions[s.index()]).sum();
        assert!(total > 8, "expected glitch activity, transitions = {total}");
    }

    #[test]
    fn slower_gates_delay_settling() {
        let mut nl = Netlist::new();
        let p = ripple_carry_adder(&mut nl, 8, "alu");
        let fast = vec![10.0; nl.gate_count()];
        let slow = vec![20.0; nl.gate_count()];
        let from = nl.input_vector(&[(&p.a, 0), (&p.b, 0)]);
        let to = nl.input_vector(&[(&p.a, 0xFF), (&p.b, 1)]);
        let rf = EventSimulator::new(&nl, &fast).run_transition(&from, &to);
        let rs = EventSimulator::new(&nl, &slow).run_transition(&from, &to);
        assert!((rs.max_settle_ps() - 2.0 * rf.max_settle_ps()).abs() < 1e-9);
    }

    #[test]
    fn deterministic_event_order() {
        let mut nl = Netlist::new();
        let p = ripple_carry_adder(&mut nl, 12, "alu");
        let d: Vec<f64> = (0..nl.gate_count()).map(|i| 10.0 + (i % 7) as f64).collect();
        let from = nl.input_vector(&[(&p.a, 0x321), (&p.b, 0xABC)]);
        let to = nl.input_vector(&[(&p.a, 0xCDE), (&p.b, 0x543)]);
        let r1 = EventSimulator::new(&nl, &d).run_transition(&from, &to);
        let r2 = EventSimulator::new(&nl, &d).run_transition(&from, &to);
        assert_eq!(r1, r2);
    }
}
