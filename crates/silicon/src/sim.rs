//! Event-driven gate-level timing simulation.
//!
//! The ALU PUF's arbiters race the *settling times* of corresponding output
//! bits of two ALUs. Settling times of a ripple-carry adder are strongly
//! data-dependent (sum bits glitch as the carry ripples), so a simple
//! longest-path analysis is not enough: we simulate the transition with a
//! transport-delay event queue and record the time of the last transition on
//! every net.
//!
//! The simulator is deliberately single-threaded and deterministic — the
//! same netlist, delays and stimulus always yield the same event sequence.
//!
//! # Reuse and allocation behaviour
//!
//! [`EventSimulator`] is built to be constructed once and queried many
//! times: the fanout adjacency is a shared CSR (see
//! [`FanoutCsr`]) rather than a per-simulator
//! `Vec<Vec<GateId>>`, and the per-run state (net values, settling times,
//! transition counts, the event heap) lives in persistent scratch buffers.
//! [`EventSimulator::run_transition_in_place`] therefore performs **zero
//! heap allocation at steady state** — after the first run has sized the
//! event heap, subsequent runs only write into existing buffers (pinned by
//! `tests/zero_alloc.rs` with a counting allocator). Settling times use a
//! NaN sentinel internally instead of `Vec<Option<f64>>`; the allocating
//! [`EventSimulator::run_transition`] compatibility path copies the state
//! out into a [`SimResult`].

use crate::netlist::{FanoutCsr, NetId, Netlist};
use std::borrow::Cow;

/// One pending output change, packed into a single sortable word.
///
/// Layout, most significant first: `time_ps.to_bits()` (64 bits, order
/// preserving because simulation times are non-negative finite floats),
/// the push sequence number (32 bits, breaking exact-time ties
/// deterministically in push order), the net id (31 bits) and the new
/// value (1 bit). Comparing the packed word therefore reproduces exactly
/// the `(time, seq)` ordering the simulator has always used, at the cost
/// of one integer compare instead of a float/struct comparison chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event(u128);

impl Event {
    fn pack(time_ps: f64, seq: u32, net_index: usize, value: bool) -> Self {
        debug_assert!(time_ps >= 0.0, "event times are non-negative");
        Event(
            (u128::from(time_ps.to_bits()) << 64)
                | (u128::from(seq) << 32)
                | ((net_index as u128) << 1)
                | u128::from(value),
        )
    }

    fn time_ps(self) -> f64 {
        f64::from_bits((self.0 >> 64) as u64)
    }

    fn net_index(self) -> usize {
        (self.0 as u32 >> 1) as usize
    }

    fn value(self) -> bool {
        self.0 & 1 == 1
    }
}

/// A calendar-wheel event queue exploiting the transport-delay invariant
/// that every scheduled event lies at least one **minimum** gate delay
/// after the event being processed.
///
/// Pushes scatter events into a ring of time slots `0.9 * min_delay`
/// wide (`slot = floor(time * inv)`, `inv = 1 / (0.9 * min_delay)`).
/// Because a push made while draining slot `s` has
/// `time >= t_pop + min_delay >= slot_start + width / 0.9`, it always
/// lands at least one slot ahead of the one being drained — the margin is
/// a tenth of a slot, orders of magnitude above the f64 rounding slack on
/// the `time * inv` products — so a slot can
/// be sorted once, when the drain reaches it, and never touched again:
/// each event is bucketed exactly once at push and sorted exactly once at
/// refill. Pops then reduce to an index increment over the sorted batch.
/// Within a slot, events are ordered by the packed `(time, seq)` word via
/// a counting-sort scatter over time-linear sub-buckets plus one
/// insertion pass that only pays for the rare within-bucket inversions —
/// a comparison sort here would cost thousands of unpredictable branches
/// per simulated challenge, and a binary heap's per-op bookkeeping
/// measurably dominated the whole simulation loop.
///
/// The ring length is sized from the delay spread (`max/min`) so that no
/// two occupied absolute slots ever alias one ring index. Degenerate
/// delay tables (`min_delay <= 0`, or a spread too wide to ring-buffer)
/// fall back to a flat pool that is partitioned against the exact
/// `t_min + min_delay` horizon and comparison-sorted per refill — the
/// same correctness argument, minus the speed.
///
/// `clear` keeps every tier's backing capacity, so a reused queue
/// allocates nothing at steady state.
#[derive(Debug)]
struct EventQueue {
    /// Flat slot arena (ring length x stride, both powers of two): slot
    /// `i`'s events live at `arena[i * stride ..][..lens[i]]`. Empty in
    /// fallback mode. A flat arena keeps every push one indexed store —
    /// no per-slot `Vec` header chase or capacity bookkeeping — and the
    /// whole `lens` table hot in one or two cache lines.
    arena: Vec<Event>,
    /// Occupancy of each ring slot.
    lens: Vec<u32>,
    /// Events per arena slot; doubled (rare, amortised) if any slot fills.
    stride: usize,
    mask: u64,
    /// Absolute slot index where the next refill starts scanning. Every
    /// occupied slot is at or past it.
    next_slot: u64,
    /// Events currently sitting in `slots`.
    in_slots: usize,
    /// The slot being drained, sorted ascending, consumed by index.
    batch: Vec<Event>,
    batch_idx: usize,
    /// Sub-bucket index per slot entry, recorded during the count pass.
    buckets: Vec<u8>,
    /// Slots per picosecond (`1 / (SLOT_FRACTION * min_delay)`); `0.0` in
    /// fallback mode.
    inv: f64,
    /// Smallest per-gate delay; the refill horizon width.
    min_delay_ps: f64,
    /// Fallback pool (degenerate delay tables only), unsorted.
    far: Vec<Event>,
    /// Earliest event time in `far` (`+inf` when empty).
    far_min_ps: f64,
}

/// Slot width as a fraction of the minimum gate delay. Must be < 1 with
/// real margin: a push lands `>= min_delay = width / SLOT_FRACTION` past
/// the pop that scheduled it, i.e. always in a strictly later slot.
const SLOT_FRACTION: f64 = 0.9;
/// Sub-buckets per slot for the refill's counting-sort scatter.
const SUB_BUCKETS: usize = 32;
/// Ring lengths past this fall back to the flat-pool path; a spread this
/// wide only arises from degenerate delay tables, and the fallback stays
/// correct at any spread.
const MAX_RING: usize = 1 << 16;
/// Initial arena stride (events per slot before the first doubling).
const INITIAL_STRIDE: usize = 128;

impl EventQueue {
    fn new(min_delay_ps: f64, max_delay_ps: f64) -> Self {
        let mut q = EventQueue {
            arena: Vec::new(),
            lens: Vec::new(),
            stride: 0,
            mask: 0,
            next_slot: 0,
            in_slots: 0,
            batch: Vec::new(),
            batch_idx: 0,
            buckets: Vec::new(),
            inv: 0.0,
            min_delay_ps,
            far: Vec::new(),
            far_min_ps: f64::INFINITY,
        };
        q.set_delay_range(min_delay_ps, max_delay_ps);
        q
    }

    /// Re-derives the slot geometry for a new delay table. The queue must
    /// be empty (events bucketed under the old geometry would be lost).
    fn set_delay_range(&mut self, min_delay_ps: f64, max_delay_ps: f64) {
        debug_assert!(
            self.in_slots == 0 && self.batch_idx == self.batch.len() && self.far.is_empty(),
            "cannot rescale a non-empty event queue"
        );
        self.min_delay_ps = min_delay_ps;
        let ring = if min_delay_ps > 0.0 && max_delay_ps.is_finite() {
            // Widest push reach in slots, plus slack for rounding and the
            // slot currently being drained.
            let span = (max_delay_ps / (SLOT_FRACTION * min_delay_ps)).ceil() as usize + 4;
            span.next_power_of_two()
        } else {
            usize::MAX // degenerate: force the fallback path
        };
        if ring <= MAX_RING {
            self.inv = 1.0 / (SLOT_FRACTION * min_delay_ps);
            self.mask = ring as u64 - 1;
            self.stride = self.stride.max(INITIAL_STRIDE); // keep the high-water stride
            if self.lens.len() != ring || self.arena.len() != ring * self.stride {
                self.lens.clear();
                self.lens.resize(ring, 0);
                self.arena.clear();
                self.arena.resize(ring * self.stride, Event(0));
            }
        } else {
            self.inv = 0.0;
            self.mask = 0;
            self.arena.clear();
            self.lens.clear();
        }
    }

    fn clear(&mut self) {
        self.batch.clear();
        self.batch_idx = 0;
        self.lens.fill(0); // arena contents are dead once the lens are zero
        self.in_slots = 0;
        self.next_slot = 0;
        self.far.clear();
        self.far_min_ps = f64::INFINITY;
    }

    /// Appends `ev` iff `wanted`. The suppression predicate is close to a
    /// coin flip in real runs, so a plain `if wanted { push }` would
    /// mispredict constantly; instead the event is written into the target
    /// slot's spare arena capacity unconditionally and the slot length
    /// advances by 0 or 1.
    #[inline]
    fn push_if(&mut self, wanted: bool, ev: Event) {
        if self.inv > 0.0 {
            let s = (ev.time_ps() * self.inv) as u64;
            let idx = (s & self.mask) as usize;
            // SAFETY: `idx < lens.len()` by the mask; after the grow check
            // `idx * stride + len < arena.len()`.
            unsafe {
                let len = *self.lens.get_unchecked(idx) as usize;
                if len == self.stride {
                    self.grow_stride();
                    return self.push_if(wanted, ev);
                }
                *self.arena.get_unchecked_mut(idx * self.stride + len) = ev;
                *self.lens.get_unchecked_mut(idx) = (len + usize::from(wanted)) as u32;
            }
            self.in_slots += usize::from(wanted);
        } else if wanted {
            self.far_min_ps = self.far_min_ps.min(ev.time_ps());
            self.far.push(ev);
        }
    }

    /// Doubles the arena stride, repositioning every slot's events. Rare
    /// and amortised: the stride never shrinks, so a workload triggers
    /// this at most a handful of times, after which pushes never allocate
    /// again (the zero-allocation steady-state contract).
    #[cold]
    #[inline(never)]
    fn grow_stride(&mut self) {
        let ring = self.lens.len();
        let new_stride = self.stride * 2;
        let mut arena = vec![Event(0); ring * new_stride];
        for i in 0..ring {
            let n = self.lens[i] as usize;
            arena[i * new_stride..i * new_stride + n]
                .copy_from_slice(&self.arena[i * self.stride..i * self.stride + n]);
        }
        self.arena = arena;
        self.stride = new_stride;
    }

    #[inline]
    fn pop(&mut self) -> Option<Event> {
        if self.batch_idx == self.batch.len() && !self.refill() {
            return None;
        }
        // SAFETY: `batch_idx < batch.len()` after the check/refill above.
        let ev = unsafe { *self.batch.get_unchecked(self.batch_idx) };
        self.batch_idx += 1;
        Some(ev)
    }

    /// Advances to the next occupied slot and sorts it straight out of
    /// the arena into the batch. In fallback mode, partitions the flat
    /// pool against the exact `t_min + min_delay` horizon instead.
    fn refill(&mut self) -> bool {
        if self.in_slots == 0 {
            return self.refill_fallback();
        }
        let mask = self.mask;
        let mut s = self.next_slot;
        // Terminates: `in_slots > 0` and every occupied slot is >= s.
        let (idx, n) = loop {
            let idx = (s & mask) as usize;
            let n = self.lens[idx] as usize;
            if n > 0 {
                break (idx, n);
            }
            s += 1;
        };
        self.lens[idx] = 0;
        self.in_slots -= n;
        // Every future push lands at or past s + 1, so this slot is final.
        self.next_slot = s + 1;
        self.sort_slot(idx * self.stride, n, s);
        true
    }

    /// Orders slot `s` (the `n` arena entries at `base`) by `(time, seq)`
    /// into `batch`: a counting sort over time-linear sub-buckets (the
    /// bucket index is a clamped monotone function of time, so the scatter
    /// is branch-free), then one insertion pass that only moves
    /// within-bucket inversions.
    fn sort_slot(&mut self, base: usize, n: usize, s: u64) {
        self.batch.clear();
        self.batch_idx = 0;
        self.batch.reserve(n);
        if n == 1 {
            self.batch.push(self.arena[base]);
            return;
        }
        let t0 = s as f64 / self.inv;
        let sub_inv = self.inv * SUB_BUCKETS as f64;
        let mut counts = [0u32; SUB_BUCKETS + 1];
        self.buckets.clear();
        self.buckets.reserve(n);
        // SAFETY: `batch` and `buckets` hold >= n spare slots (reserved
        // above) and `arena[base..base + n]` is the slot being claimed;
        // the counting-sort scatter writes each of the `n` batch slots
        // exactly once (counts sum to n), and the bucket index is clamped
        // to SUB_BUCKETS - 1.
        unsafe {
            self.batch.set_len(n);
            self.buckets.set_len(n);
            let arena = self.arena.as_ptr().add(base);
            let batch = self.batch.as_mut_ptr();
            let buckets = self.buckets.as_mut_ptr();
            for i in 0..n {
                let t = (*arena.add(i)).time_ps();
                // `t - t0` can round a hair negative for the slot's
                // earliest events; clamp both ends.
                let b = (((t - t0) * sub_inv).max(0.0) as usize).min(SUB_BUCKETS - 1);
                *buckets.add(i) = b as u8;
                counts[b + 1] += 1;
            }
            for b in 1..=SUB_BUCKETS {
                counts[b] += counts[b - 1];
            }
            for i in 0..n {
                let at = &mut counts[usize::from(*buckets.add(i))];
                *batch.add(*at as usize) = *arena.add(i);
                *at += 1;
            }
        }
        insertion_pass(&mut self.batch);
    }

    /// Fallback refill: split the events within one `min_delay` of the
    /// earliest pending time out of the flat pool and comparison-sort
    /// them. With `min_delay <= 0` the horizon collapses to `t_min` and
    /// each batch holds exactly the earliest-time events, which is still
    /// correct: same-time pushes carry higher sequence numbers and pop in
    /// a later batch, preserving `(time, seq)` order.
    fn refill_fallback(&mut self) -> bool {
        if self.far.is_empty() {
            return false;
        }
        let horizon = self.far_min_ps + self.min_delay_ps.max(0.0);
        self.batch.clear();
        self.batch_idx = 0;
        let mut keep = 0;
        let mut far_min = f64::INFINITY;
        for r in 0..self.far.len() {
            let ev = self.far[r];
            if ev.time_ps() <= horizon {
                self.batch.push(ev);
            } else {
                far_min = far_min.min(ev.time_ps());
                self.far[keep] = ev;
                keep += 1;
            }
        }
        self.far.truncate(keep);
        self.far_min_ps = far_min;
        self.batch.sort_unstable();
        true
    }
}

/// One insertion-sort pass: O(n + inversions), so nearly free on the
/// nearly sorted output of the sub-bucket scatter.
fn insertion_pass(batch: &mut [Event]) {
    for i in 1..batch.len() {
        let ev = batch[i];
        let mut j = i;
        while j > 0 && batch[j - 1] > ev {
            batch[j] = batch[j - 1];
            j -= 1;
        }
        batch[j] = ev;
    }
}

/// Result of simulating one input transition.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Final logic value of every net.
    pub values: Vec<bool>,
    /// Time (ps) of the last transition of each net; `None` if the net never
    /// toggled during the transition.
    pub settle_ps: Vec<Option<f64>>,
    /// Number of transitions per net (glitch count + 1 for the final value).
    pub transitions: Vec<u32>,
    /// Total number of events processed.
    pub events: u64,
}

impl SimResult {
    /// Extracts a word from the final values, treating `bus[i]` as bit `i`.
    pub fn word(&self, bus: &[NetId]) -> u64 {
        Netlist::word_of(&self.values, bus)
    }

    /// Settling time of a net, or `0.0` if the net never toggled (it was
    /// already stable before the launch edge).
    pub fn settle_or_zero(&self, net: NetId) -> f64 {
        self.settle_ps[net.index()].unwrap_or(0.0)
    }

    /// Latest settling time over all nets (the transition's critical delay).
    pub fn max_settle_ps(&self) -> f64 {
        self.settle_ps.iter().flatten().fold(0.0, |a, &b| a.max(b))
    }
}

/// One fanout edge, denormalised for the event loop: the reader gate's
/// input/output net indices, its truth table (bit `(a << 1) | b`) and its
/// transport delay, stored contiguously in CSR order. Net indices are
/// deliberately `u16` (checked at construction) to keep the record at
/// 16 bytes — the whole edge array stays cache-resident.
#[derive(Debug, Clone, Copy)]
struct Edge {
    in0: u16,
    in1: u16,
    out: u16,
    tt: u16,
    delay_ps: f64,
}

/// An event-driven transport-delay simulator bound to one netlist and one
/// per-gate delay assignment, with persistent per-run scratch state.
#[derive(Debug)]
pub struct EventSimulator<'a> {
    netlist: &'a Netlist,
    delays_ps: Vec<f64>,
    fanouts: Cow<'a, FanoutCsr>,
    // One record per fanout edge, laid out in the shared CSR's order so a
    // net's propagation reads contiguous memory: the reader gate's input and
    // output net indices, its 4-bit truth table and its delay, denormalised
    // from the gate table. Delays are per-chip, so this array is per
    // simulator even though the CSR itself is shared.
    //
    // Each net's edge run is padded with no-op edges (truth table 0, output
    // = the trash net) to an even length, so the event loop always consumes
    // edges as straight-line pairs — fanout counts of 1 would otherwise make
    // the inner loop's trip count unpredictable. `edge_starts[net]` indexes
    // the padded layout.
    edges: Vec<Edge>,
    edge_starts: Vec<u32>,
    // --- persistent scratch, overwritten by each run ---
    values: Vec<bool>,
    // Value each net will hold once all its in-flight events have popped.
    // Every net has exactly one driver gate with a fixed delay and pops are
    // time-ordered, so per-net event times are monotone: a newly computed
    // output equal to this value is guaranteed to be dropped at pop time,
    // and can be suppressed at push time instead.
    sched: Vec<bool>,
    settle_ps: Vec<f64>, // NaN = never toggled
    transitions: Vec<u32>,
    heap: EventQueue,
    events: u64,
}

impl<'a> EventSimulator<'a> {
    /// Creates a simulator, deriving its own fanout adjacency.
    ///
    /// When several simulators share one netlist (batch evaluation, one
    /// engine per worker thread), build the adjacency once with
    /// [`Netlist::fanout_csr`] and use [`EventSimulator::with_fanouts`].
    ///
    /// # Panics
    ///
    /// Panics if `delays_ps.len()` differs from the netlist's gate count.
    pub fn new(netlist: &'a Netlist, delays_ps: &[f64]) -> Self {
        let csr = netlist.fanout_csr();
        Self::build(netlist, delays_ps, Cow::Owned(csr))
    }

    /// Creates a simulator over a shared, precomputed fanout adjacency.
    ///
    /// # Panics
    ///
    /// Panics if `delays_ps.len()` differs from the gate count or `fanouts`
    /// was built for a different netlist (net counts disagree).
    pub fn with_fanouts(netlist: &'a Netlist, delays_ps: &[f64], fanouts: &'a FanoutCsr) -> Self {
        Self::build(netlist, delays_ps, Cow::Borrowed(fanouts))
    }

    fn build(netlist: &'a Netlist, delays_ps: &[f64], fanouts: Cow<'a, FanoutCsr>) -> Self {
        assert_eq!(delays_ps.len(), netlist.gate_count(), "one delay per gate required");
        assert_eq!(fanouts.net_count(), netlist.net_count(), "fanout CSR does not match netlist");
        let nets = netlist.net_count();
        // `u16::MAX` itself is reserved for the trash net the padding edges
        // write to.
        assert!(nets < usize::from(u16::MAX), "EventSimulator supports at most 65534 nets");
        let mut edges = Vec::new();
        let mut edge_starts = Vec::with_capacity(nets + 1);
        for net_index in 0..nets {
            edge_starts.push(edges.len() as u32);
            for &gid in fanouts.readers_at(net_index) {
                let g = netlist.gate_at(gid);
                let mut tt = 0u16;
                for (slot, (a, b)) in [(false, false), (false, true), (true, false), (true, true)]
                    .into_iter()
                    .enumerate()
                {
                    tt |= u16::from(g.kind.eval(a, b)) << slot;
                }
                edges.push(Edge {
                    in0: g.inputs[0].index() as u16,
                    in1: g.inputs[1].index() as u16,
                    out: g.output.index() as u16,
                    tt,
                    delay_ps: delays_ps[gid.index()],
                });
            }
            if fanouts.readers_at(net_index).len() % 2 == 1 {
                // No-op pad: truth table 0 always computes `false`, the trash
                // net's scheduled value is pinned `false`, so the pair's
                // second half reduces to a parked push.
                edges.push(Edge { in0: 0, in1: 0, out: nets as u16, tt: 0, delay_ps: 0.0 });
            }
        }
        edge_starts.push(edges.len() as u32);
        EventSimulator {
            netlist,
            delays_ps: delays_ps.to_vec(),
            fanouts,
            edges,
            edge_starts,
            values: vec![false; nets],
            sched: vec![false; nets + 1],
            settle_ps: vec![f64::NAN; nets],
            transitions: vec![0u32; nets],
            heap: EventQueue::new(
                delays_ps.iter().cloned().fold(f64::INFINITY, f64::min),
                delays_ps.iter().cloned().fold(0.0f64, f64::max),
            ),
            events: 0,
        }
    }

    /// The per-gate delays this simulator runs with.
    pub fn delays_ps(&self) -> &[f64] {
        &self.delays_ps
    }

    /// Replaces the per-gate delay assignment without touching the scratch
    /// buffers (e.g. to re-use one engine across enrolled delay tables).
    ///
    /// # Panics
    ///
    /// Panics if `delays_ps.len()` differs from the gate count.
    pub fn set_delays_ps(&mut self, delays_ps: &[f64]) {
        assert_eq!(delays_ps.len(), self.netlist.gate_count(), "one delay per gate required");
        self.delays_ps.clear();
        self.delays_ps.extend_from_slice(delays_ps);
        // Refresh the denormalised per-edge delay copies (same CSR walk as
        // construction, so the padded edge order is unchanged).
        for net_index in 0..self.netlist.net_count() {
            let k = self.edge_starts[net_index] as usize;
            for (off, &gid) in self.fanouts.readers_at(net_index).iter().enumerate() {
                self.edges[k + off].delay_ps = delays_ps[gid.index()];
            }
        }
        self.heap.clear();
        self.heap.set_delay_range(
            delays_ps.iter().cloned().fold(f64::INFINITY, f64::min),
            delays_ps.iter().cloned().fold(0.0f64, f64::max),
        );
    }

    /// Simulates the transition from the steady state under `from` to the
    /// steady state under `to`, with all changed inputs launching at t = 0
    /// (the ALU PUF's synchronisation logic guarantees a simultaneous
    /// launch).
    ///
    /// This is the compatibility path: it runs
    /// [`EventSimulator::run_transition_in_place`] and copies the state out
    /// into an owned [`SimResult`]. Hot paths should use the in-place run
    /// plus the accessor methods instead.
    ///
    /// # Panics
    ///
    /// Panics if the stimulus vectors do not match the number of primary
    /// inputs.
    pub fn run_transition(&mut self, from: &[bool], to: &[bool]) -> SimResult {
        self.run_transition_in_place(from, to);
        self.snapshot()
    }

    /// Simulates a transition entirely inside the persistent scratch
    /// buffers; read the outcome through [`EventSimulator::value`],
    /// [`EventSimulator::settle_or_zero`], [`EventSimulator::word`] and
    /// friends. Performs no heap allocation once the event heap has grown
    /// to the workload's high-water mark.
    ///
    /// # Panics
    ///
    /// Panics if the stimulus vectors do not match the number of primary
    /// inputs.
    pub fn run_transition_in_place(&mut self, from: &[bool], to: &[bool]) {
        let pis = self.netlist.primary_inputs();
        assert_eq!(from.len(), pis.len(), "`from` length mismatch");
        assert_eq!(to.len(), pis.len(), "`to` length mismatch");

        // Steady state before the launch edge.
        self.netlist.evaluate_into(from, &mut self.values);
        self.sched.clear();
        self.sched.extend_from_slice(&self.values);
        // Trash slot for padding edges; pinned `false` so they never push.
        self.sched.push(false);
        self.settle_ps.iter_mut().for_each(|s| *s = f64::NAN);
        self.transitions.iter_mut().for_each(|t| *t = 0);
        self.heap.clear();

        // Destructured field borrows keep the hot loop free of `&mut self`
        // indirection (and of the Cow discriminant check per lookup).
        let edges = &self.edges[..];
        let edge_starts = &self.edge_starts[..];
        let values = &mut self.values[..];
        let sched = &mut self.sched[..];
        let settle_ps = &mut self.settle_ps[..];
        let transitions = &mut self.transitions[..];
        let heap = &mut self.heap;

        // The t = 0 input wave is applied directly instead of being queued:
        // all launch events share time zero and were pushed before any gate
        // event, so the queue would pop them first, in this exact order, and
        // every gate event it schedules carries a strictly later (time, seq)
        // key. Skipping the queue for the wave removes the worst-case bucket
        // pile-up (every changed input in slot 0).
        let mut seq = 0u32;
        let mut processed = 0u64;

        // Every index below is in bounds by construction: the gate tables,
        // the CSR and the per-net scratch were all sized from the same
        // netlist, and every `gid`/`net_index` they yield was produced from
        // it. The hot loop therefore uses unchecked indexing; the invariants
        // are re-checked here in debug builds.
        debug_assert!(edges.iter().all(|e| (e.in0 as usize) < values.len()
            && (e.in1 as usize) < values.len()
            && (e.out as usize) <= values.len()));
        debug_assert_eq!(edge_starts.len(), values.len() + 1);
        debug_assert_eq!(edge_starts.last().map(|&e| e as usize), Some(edges.len()));
        debug_assert_eq!(values.len() + 1, sched.len());
        debug_assert_eq!(values.len(), settle_ps.len());
        debug_assert_eq!(values.len(), transitions.len());

        /// Recomputes one fanout edge's gate and schedules its output at
        /// `$base_ps + delay`. Transport delay: an event that would only
        /// re-assert the net's already-scheduled value is provably dropped
        /// at pop time (see `sched`), so it is suppressed here and never
        /// enters the heap (`push_if` parks it branchlessly).
        macro_rules! eval_edge {
            ($k:expr, $base_ps:expr) => {
                // SAFETY: `$k` lies inside this net's padded edge run and
                // edge net indices are in bounds (invariant block above).
                unsafe {
                    let e = edges.get_unchecked($k);
                    let a = *values.get_unchecked(e.in0 as usize);
                    let b = *values.get_unchecked(e.in1 as usize);
                    let select = (u16::from(a) << 1) | u16::from(b);
                    let out = (e.tt >> select) & 1 == 1;
                    let out_net = e.out as usize;
                    // `sched[out_net] == out` already when unchanged, so the
                    // store is unconditional and the push branchless.
                    let changed = *sched.get_unchecked(out_net) != out;
                    *sched.get_unchecked_mut(out_net) = out;
                    heap.push_if(changed, Event::pack($base_ps + e.delay_ps, seq, out_net, out));
                    seq += u32::from(changed);
                }
            };
        }

        /// Walks `$net_index`'s padded edge run two edges at a time. The
        /// padding guarantees an even run length, so each iteration is a
        /// straight-line pair — for this workload's fanout counts the loop
        /// body executes at most once per event, keeping the trip-count
        /// branch perfectly predictable.
        macro_rules! propagate {
            ($net_index:expr, $base_ps:expr) => {
                // SAFETY: `edge_starts` has `nets + 1` entries (invariant
                // block above).
                let mut k = unsafe { *edge_starts.get_unchecked($net_index) } as usize;
                let end = unsafe { *edge_starts.get_unchecked($net_index + 1) } as usize;
                while k < end {
                    eval_edge!(k, $base_ps);
                    eval_edge!(k + 1, $base_ps);
                    k += 2;
                }
            };
        }

        for (i, &net) in pis.iter().enumerate() {
            if from[i] == to[i] {
                continue;
            }
            processed += 1;
            let net_index = net.index();
            let value = to[i];
            values[net_index] = value;
            sched[net_index] = value;
            settle_ps[net_index] = 0.0;
            transitions[net_index] += 1;
            propagate!(net_index, 0.0);
        }

        while let Some(ev) = heap.pop() {
            processed += 1;
            let (net_index, value, time_ps) = (ev.net_index(), ev.value(), ev.time_ps());
            // SAFETY: `net_index` was packed from a gate output of this
            // netlist (invariant block above).
            unsafe {
                if *values.get_unchecked(net_index) == value {
                    continue; // glitch cancelled in flight
                }
                *values.get_unchecked_mut(net_index) = value;
                *settle_ps.get_unchecked_mut(net_index) = time_ps;
                *transitions.get_unchecked_mut(net_index) += 1;
            }
            propagate!(net_index, time_ps);
        }
        self.events = processed;
    }

    /// Final logic value of a net after the last run.
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Settling time of a net after the last run, or `None` if the net never
    /// toggled.
    pub fn settle_ps_of(&self, net: NetId) -> Option<f64> {
        let t = self.settle_ps[net.index()];
        if t.is_nan() {
            None
        } else {
            Some(t)
        }
    }

    /// Settling time of a net, or `0.0` if the net never toggled.
    pub fn settle_or_zero(&self, net: NetId) -> f64 {
        let t = self.settle_ps[net.index()];
        if t.is_nan() {
            0.0
        } else {
            t
        }
    }

    /// Number of transitions of a net during the last run.
    pub fn transitions_of(&self, net: NetId) -> u32 {
        self.transitions[net.index()]
    }

    /// Events processed by the last run.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Latest settling time over all nets (the last transition's critical
    /// delay).
    pub fn max_settle_ps(&self) -> f64 {
        self.settle_ps.iter().filter(|t| !t.is_nan()).fold(0.0, |a, &b| a.max(b))
    }

    /// Extracts a word from the final values, treating `bus[i]` as bit `i`.
    pub fn word(&self, bus: &[NetId]) -> u64 {
        Netlist::word_of(&self.values, bus)
    }

    /// Copies the last run's state out into an owned [`SimResult`].
    pub fn snapshot(&self) -> SimResult {
        SimResult {
            values: self.values.clone(),
            settle_ps: self
                .settle_ps
                .iter()
                .map(|&t| if t.is_nan() { None } else { Some(t) })
                .collect(),
            transitions: self.transitions.clone(),
            events: self.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ripple_carry_adder;
    use crate::netlist::Netlist;

    fn unit_delays(nl: &Netlist) -> Vec<f64> {
        vec![10.0; nl.gate_count()]
    }

    #[test]
    fn final_values_match_functional_eval() {
        let mut nl = Netlist::new();
        let p = ripple_carry_adder(&mut nl, 8, "alu");
        let d = unit_delays(&nl);
        let mut sim = EventSimulator::new(&nl, &d);
        for (a, b) in [(0u64, 0u64), (1, 1), (255, 1), (170, 85), (200, 100)] {
            let from = nl.input_vector(&[(&p.a, !a & 0xFF), (&p.b, !b & 0xFF)]);
            let to = nl.input_vector(&[(&p.a, a), (&p.b, b)]);
            let r = sim.run_transition(&from, &to);
            assert_eq!(r.word(&p.sum), (a + b) & 0xFF, "a={a} b={b}");
            assert_eq!(sim.word(&p.sum), (a + b) & 0xFF, "in-place accessor, a={a} b={b}");
        }
    }

    #[test]
    fn carry_ripple_settles_monotonically_later() {
        // 0xFF + 0x01 propagates a carry through every slice: each sum bit
        // must settle no earlier than the previous one.
        let mut nl = Netlist::new();
        let p = ripple_carry_adder(&mut nl, 16, "alu");
        let d = unit_delays(&nl);
        let mut sim = EventSimulator::new(&nl, &d);
        let from = nl.input_vector(&[(&p.a, 0), (&p.b, 0)]);
        let to = nl.input_vector(&[(&p.a, 0xFFFF), (&p.b, 1)]);
        let r = sim.run_transition(&from, &to);
        let times: Vec<f64> = p.sum.iter().map(|&s| r.settle_or_zero(s)).collect();
        for w in times.windows(2) {
            assert!(w[1] >= w[0], "settling times not monotone: {times:?}");
        }
        assert!(times[15] > times[1], "carry chain must dominate: {times:?}");
    }

    #[test]
    fn no_input_change_produces_no_events() {
        let mut nl = Netlist::new();
        let p = ripple_carry_adder(&mut nl, 4, "alu");
        let d = unit_delays(&nl);
        let mut sim = EventSimulator::new(&nl, &d);
        let v = nl.input_vector(&[(&p.a, 5), (&p.b, 3)]);
        let r = sim.run_transition(&v, &v);
        assert_eq!(r.events, 0);
        assert!(r.settle_ps.iter().all(|s| s.is_none()));
        assert_eq!(r.word(&p.sum), 8);
    }

    #[test]
    fn glitches_are_observed_on_carry_chain() {
        // With a from-state of all-ones + 1 to a to-state that flips the
        // carry pattern, intermediate sum bits should toggle more than once.
        let mut nl = Netlist::new();
        let p = ripple_carry_adder(&mut nl, 8, "alu");
        let d = unit_delays(&nl);
        let mut sim = EventSimulator::new(&nl, &d);
        let from = nl.input_vector(&[(&p.a, 0x00), (&p.b, 0x00)]);
        let to = nl.input_vector(&[(&p.a, 0xFF), (&p.b, 0x01)]);
        let r = sim.run_transition(&from, &to);
        let total: u32 = p.sum.iter().map(|&s| r.transitions[s.index()]).sum();
        assert!(total > 8, "expected glitch activity, transitions = {total}");
    }

    #[test]
    fn slower_gates_delay_settling() {
        let mut nl = Netlist::new();
        let p = ripple_carry_adder(&mut nl, 8, "alu");
        let fast = vec![10.0; nl.gate_count()];
        let slow = vec![20.0; nl.gate_count()];
        let from = nl.input_vector(&[(&p.a, 0), (&p.b, 0)]);
        let to = nl.input_vector(&[(&p.a, 0xFF), (&p.b, 1)]);
        let rf = EventSimulator::new(&nl, &fast).run_transition(&from, &to);
        let rs = EventSimulator::new(&nl, &slow).run_transition(&from, &to);
        assert!((rs.max_settle_ps() - 2.0 * rf.max_settle_ps()).abs() < 1e-9);
    }

    #[test]
    fn deterministic_event_order() {
        let mut nl = Netlist::new();
        let p = ripple_carry_adder(&mut nl, 12, "alu");
        let d: Vec<f64> = (0..nl.gate_count()).map(|i| 10.0 + (i % 7) as f64).collect();
        let from = nl.input_vector(&[(&p.a, 0x321), (&p.b, 0xABC)]);
        let to = nl.input_vector(&[(&p.a, 0xCDE), (&p.b, 0x543)]);
        let r1 = EventSimulator::new(&nl, &d).run_transition(&from, &to);
        let r2 = EventSimulator::new(&nl, &d).run_transition(&from, &to);
        assert_eq!(r1, r2);
    }

    #[test]
    fn reused_engine_matches_fresh_engine() {
        // One persistent engine stepped across many transitions must agree
        // bit-for-bit (values, settling times, transition counts, event
        // totals) with a fresh engine per transition.
        let mut nl = Netlist::new();
        let p = ripple_carry_adder(&mut nl, 16, "alu");
        let d: Vec<f64> = (0..nl.gate_count()).map(|i| 9.0 + (i % 5) as f64).collect();
        let csr = nl.fanout_csr();
        let mut reused = EventSimulator::with_fanouts(&nl, &d, &csr);
        for k in 0..12u64 {
            let a = k.wrapping_mul(0x9E37).wrapping_add(3) & 0xFFFF;
            let b = k.wrapping_mul(0x85EB).wrapping_add(7) & 0xFFFF;
            let from = nl.input_vector(&[(&p.a, !a & 0xFFFF), (&p.b, !b & 0xFFFF)]);
            let to = nl.input_vector(&[(&p.a, a), (&p.b, b)]);
            let fresh = EventSimulator::new(&nl, &d).run_transition(&from, &to);
            reused.run_transition_in_place(&from, &to);
            assert_eq!(reused.snapshot(), fresh, "transition {k}");
            assert_eq!(reused.word(&p.sum), (a + b) & 0xFFFF);
        }
    }

    #[test]
    fn in_place_accessors_match_snapshot() {
        let mut nl = Netlist::new();
        let p = ripple_carry_adder(&mut nl, 8, "alu");
        let d = unit_delays(&nl);
        let mut sim = EventSimulator::new(&nl, &d);
        let from = nl.input_vector(&[(&p.a, 0x0F), (&p.b, 0xF0)]);
        let to = nl.input_vector(&[(&p.a, 0xF0), (&p.b, 0x0F)]);
        sim.run_transition_in_place(&from, &to);
        let snap = sim.snapshot();
        assert_eq!(snap.events, sim.events());
        assert!((snap.max_settle_ps() - sim.max_settle_ps()).abs() < 1e-12);
        for i in 0..nl.net_count() {
            let net = NetId(i as u32);
            assert_eq!(snap.values[i], sim.value(net));
            assert_eq!(snap.settle_ps[i], sim.settle_ps_of(net));
            assert_eq!(snap.settle_or_zero(net), sim.settle_or_zero(net));
            assert_eq!(snap.transitions[i], sim.transitions_of(net));
        }
    }

    #[test]
    fn set_delays_rescales_without_rebuilding() {
        let mut nl = Netlist::new();
        let p = ripple_carry_adder(&mut nl, 8, "alu");
        let fast = vec![10.0; nl.gate_count()];
        let slow = vec![20.0; nl.gate_count()];
        let from = nl.input_vector(&[(&p.a, 0), (&p.b, 0)]);
        let to = nl.input_vector(&[(&p.a, 0xFF), (&p.b, 1)]);
        let mut sim = EventSimulator::new(&nl, &fast);
        sim.run_transition_in_place(&from, &to);
        let t_fast = sim.max_settle_ps();
        sim.set_delays_ps(&slow);
        sim.run_transition_in_place(&from, &to);
        assert!((sim.max_settle_ps() - 2.0 * t_fast).abs() < 1e-9);
    }
}
