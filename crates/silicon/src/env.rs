//! Operating conditions: supply voltage and temperature.
//!
//! The paper's robustness study (Fig. 4) sweeps the supply voltage from 90 %
//! to 110 % of nominal and the die temperature from −20 °C to +120 °C.

use std::fmt;

/// An operating point of the chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Environment {
    /// Supply voltage as a fraction of nominal V_dd (1.0 = nominal).
    pub vdd_factor: f64,
    /// Die temperature in degrees Celsius.
    pub temp_c: f64,
}

impl Environment {
    /// Nominal conditions: 100 % V_dd, 25 °C.
    pub fn nominal() -> Self {
        Environment { vdd_factor: 1.0, temp_c: 25.0 }
    }

    /// Creates an operating point.
    ///
    /// # Panics
    ///
    /// Panics if `vdd_factor` is not within the physically sensible
    /// (0.5, 1.5) range or `temp_c` outside (−60, 200) °C.
    pub fn new(vdd_factor: f64, temp_c: f64) -> Self {
        assert!((0.5..=1.5).contains(&vdd_factor), "vdd_factor {vdd_factor} out of range");
        assert!((-60.0..=200.0).contains(&temp_c), "temp_c {temp_c} out of range");
        Environment { vdd_factor, temp_c }
    }

    /// Voltage corner at nominal temperature.
    pub fn with_vdd(vdd_factor: f64) -> Self {
        Environment::new(vdd_factor, 25.0)
    }

    /// Temperature corner at nominal voltage.
    pub fn with_temp(temp_c: f64) -> Self {
        Environment::new(1.0, temp_c)
    }

    /// The paper's voltage sweep: 90 % to 110 % of nominal V_dd.
    pub fn voltage_sweep(steps: usize) -> Vec<Environment> {
        assert!(steps >= 2, "need at least two sweep points");
        (0..steps)
            .map(|i| {
                let f = 0.9 + 0.2 * (i as f64) / (steps as f64 - 1.0);
                Environment::with_vdd(f)
            })
            .collect()
    }

    /// The paper's temperature sweep: −20 °C to +120 °C.
    pub fn temperature_sweep(steps: usize) -> Vec<Environment> {
        assert!(steps >= 2, "need at least two sweep points");
        (0..steps)
            .map(|i| {
                let t = -20.0 + 140.0 * (i as f64) / (steps as f64 - 1.0);
                Environment::with_temp(t)
            })
            .collect()
    }
}

impl Default for Environment {
    fn default() -> Self {
        Environment::nominal()
    }
}

impl fmt::Display for Environment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}% Vdd, {:.0}degC", self.vdd_factor * 100.0, self.temp_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_default() {
        assert_eq!(Environment::default(), Environment::nominal());
    }

    #[test]
    fn sweeps_cover_paper_ranges() {
        let v = Environment::voltage_sweep(5);
        assert_eq!(v.len(), 5);
        assert!((v[0].vdd_factor - 0.9).abs() < 1e-12);
        assert!((v[4].vdd_factor - 1.1).abs() < 1e-12);
        let t = Environment::temperature_sweep(8);
        assert!((t[0].temp_c - -20.0).abs() < 1e-12);
        assert!((t[7].temp_c - 120.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_unphysical_voltage() {
        Environment::new(0.1, 25.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_unphysical_temperature() {
        Environment::new(1.0, 500.0);
    }
}
