//! Static timing analysis.
//!
//! Computes topological worst-case arrival times: the latest time a signal
//! transition launched at the primary inputs can still be propagating at
//! each net, assuming every gate passes the transition. The maximum arrival
//! over the outputs is `T_ALU`, the quantity the paper's overclocking-attack
//! condition `T_ALU + T_set < T_cycle` is built on.

use crate::netlist::{NetId, Netlist};

/// Worst-case arrival times for every net of a netlist, in picoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTimes {
    arrival_ps: Vec<f64>,
}

impl ArrivalTimes {
    /// Runs STA over `netlist` with per-gate delays `delays_ps`, assuming all
    /// primary inputs launch at t = 0.
    ///
    /// # Panics
    ///
    /// Panics if `delays_ps.len()` differs from the gate count.
    pub fn compute(netlist: &Netlist, delays_ps: &[f64]) -> Self {
        assert_eq!(delays_ps.len(), netlist.gate_count(), "one delay per gate required");
        let mut arrival = vec![0.0f64; netlist.net_count()];
        for (gid, gate) in netlist.topological_gates() {
            let worst_in = gate.input_nets().map(|n| arrival[n.index()]).fold(0.0f64, f64::max);
            arrival[gate.output.index()] = worst_in + delays_ps[gid.index()];
        }
        ArrivalTimes { arrival_ps: arrival }
    }

    /// Arrival time at a net.
    pub fn at(&self, net: NetId) -> f64 {
        self.arrival_ps[net.index()]
    }

    /// Worst arrival over a set of nets (e.g. the ALU's outputs).
    pub fn worst_of(&self, nets: &[NetId]) -> f64 {
        nets.iter().map(|&n| self.at(n)).fold(0.0, f64::max)
    }

    /// Worst arrival over the whole netlist (the critical-path delay).
    pub fn critical_path_ps(&self) -> f64 {
        self.arrival_ps.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ripple_carry_adder;
    use crate::netlist::Netlist;
    use crate::sim::EventSimulator;

    #[test]
    fn sta_bounds_event_sim_settling() {
        // STA is a worst case over all input patterns: no simulated
        // transition may settle later than the STA critical path.
        let mut nl = Netlist::new();
        let p = ripple_carry_adder(&mut nl, 16, "alu");
        let d: Vec<f64> = (0..nl.gate_count()).map(|i| 8.0 + (i % 5) as f64).collect();
        let sta = ArrivalTimes::compute(&nl, &d);
        let mut sim = EventSimulator::new(&nl, &d);
        for (a, b) in [(0xFFFFu64, 1u64), (0x5555, 0xAAAA), (0x1234, 0xEDCB)] {
            let from = nl.input_vector(&[(&p.a, !a & 0xFFFF), (&p.b, !b & 0xFFFF)]);
            let to = nl.input_vector(&[(&p.a, a), (&p.b, b)]);
            let r = sim.run_transition(&from, &to);
            assert!(
                r.max_settle_ps() <= sta.critical_path_ps() + 1e-9,
                "sim {} > sta {}",
                r.max_settle_ps(),
                sta.critical_path_ps()
            );
        }
    }

    #[test]
    fn critical_path_grows_with_width() {
        let sta_of = |w: usize| {
            let mut nl = Netlist::new();
            ripple_carry_adder(&mut nl, w, "alu");
            let d = vec![10.0; nl.gate_count()];
            ArrivalTimes::compute(&nl, &d).critical_path_ps()
        };
        assert!(sta_of(32) > sta_of(16));
        assert!(sta_of(16) > sta_of(8));
    }

    #[test]
    fn msb_sum_arrival_dominates_lsb() {
        let mut nl = Netlist::new();
        let p = ripple_carry_adder(&mut nl, 8, "alu");
        let d = vec![10.0; nl.gate_count()];
        let sta = ArrivalTimes::compute(&nl, &d);
        assert!(sta.at(p.sum[7]) > sta.at(p.sum[0]));
        assert_eq!(sta.worst_of(&p.sum), sta.at(p.sum[7]));
    }

    #[test]
    fn primary_inputs_arrive_at_zero() {
        let mut nl = Netlist::new();
        let p = ripple_carry_adder(&mut nl, 4, "alu");
        let d = vec![10.0; nl.gate_count()];
        let sta = ArrivalTimes::compute(&nl, &d);
        for &pi in &p.a {
            assert_eq!(sta.at(pi), 0.0);
        }
    }
}
