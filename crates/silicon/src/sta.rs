//! Static timing analysis.
//!
//! Computes topological worst-case arrival times: the latest time a signal
//! transition launched at the primary inputs can still be propagating at
//! each net, assuming every gate passes the transition. The maximum arrival
//! over the outputs is `T_ALU`, the quantity the paper's overclocking-attack
//! condition `T_ALU + T_set < T_cycle` is built on.

use crate::netlist::{FanoutCsr, NetId, Netlist};

/// Worst-case arrival times for every net of a netlist, in picoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTimes {
    arrival_ps: Vec<f64>,
}

impl ArrivalTimes {
    /// Runs STA over `netlist` with per-gate delays `delays_ps`, assuming all
    /// primary inputs launch at t = 0.
    ///
    /// # Panics
    ///
    /// Panics if `delays_ps.len()` differs from the gate count.
    pub fn compute(netlist: &Netlist, delays_ps: &[f64]) -> Self {
        assert_eq!(delays_ps.len(), netlist.gate_count(), "one delay per gate required");
        let mut arrival = vec![0.0f64; netlist.net_count()];
        for (gid, gate) in netlist.topological_gates() {
            let worst_in = gate.input_nets().map(|n| arrival[n.index()]).fold(0.0f64, f64::max);
            arrival[gate.output.index()] = worst_in + delays_ps[gid.index()];
        }
        ArrivalTimes { arrival_ps: arrival }
    }

    /// Arrival time at a net.
    pub fn at(&self, net: NetId) -> f64 {
        self.arrival_ps[net.index()]
    }

    /// Worst arrival over a set of nets (e.g. the ALU's outputs).
    pub fn worst_of(&self, nets: &[NetId]) -> f64 {
        nets.iter().map(|&n| self.at(n)).fold(0.0, f64::max)
    }

    /// Worst arrival over the whole netlist (the critical-path delay).
    pub fn critical_path_ps(&self) -> f64 {
        self.arrival_ps.iter().copied().fold(0.0, f64::max)
    }

    /// Per-net timing slack against `deadline_ps`: the backward
    /// required-time pass over the shared fanout adjacency (`required[n] =
    /// min over readers g of required[out(g)] − delay[g]`, capped at the
    /// deadline for nets nothing reads), minus this forward pass's arrival
    /// times.
    ///
    /// Slack 0 marks the critical path; negative slack means the net cannot
    /// meet the deadline — the per-net version of the paper's overclocking
    /// condition `T_ALU + T_set < T_cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `delays_ps` or `fanouts` does not match `netlist`, or if
    /// the arrival times were computed for a different netlist.
    pub fn slacks_ps(&self, netlist: &Netlist, delays_ps: &[f64], fanouts: &FanoutCsr, deadline_ps: f64) -> Vec<f64> {
        assert_eq!(delays_ps.len(), netlist.gate_count(), "one delay per gate required");
        assert_eq!(fanouts.net_count(), netlist.net_count(), "fanout CSR does not match netlist");
        assert_eq!(self.arrival_ps.len(), netlist.net_count(), "arrival times from a different netlist");
        // Net ids are topological (a gate's output is allocated after its
        // inputs), so a reverse id sweep sees every reader's output before
        // the net itself; endpoint nets (no readers) keep the deadline.
        let mut required = vec![deadline_ps; netlist.net_count()];
        for i in (0..netlist.net_count()).rev() {
            let net = NetId(i as u32);
            let mut req = f64::INFINITY;
            for &gid in fanouts.readers(net) {
                let gate = netlist.gate_at(gid);
                req = req.min(required[gate.output.index()] - delays_ps[gid.index()]);
            }
            if req.is_finite() {
                required[i] = req.min(deadline_ps);
            }
        }
        required.iter().zip(&self.arrival_ps).map(|(&r, &a)| r - a).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ripple_carry_adder;
    use crate::netlist::Netlist;
    use crate::sim::EventSimulator;

    #[test]
    fn sta_bounds_event_sim_settling() {
        // STA is a worst case over all input patterns: no simulated
        // transition may settle later than the STA critical path.
        let mut nl = Netlist::new();
        let p = ripple_carry_adder(&mut nl, 16, "alu");
        let d: Vec<f64> = (0..nl.gate_count()).map(|i| 8.0 + (i % 5) as f64).collect();
        let sta = ArrivalTimes::compute(&nl, &d);
        let mut sim = EventSimulator::new(&nl, &d);
        for (a, b) in [(0xFFFFu64, 1u64), (0x5555, 0xAAAA), (0x1234, 0xEDCB)] {
            let from = nl.input_vector(&[(&p.a, !a & 0xFFFF), (&p.b, !b & 0xFFFF)]);
            let to = nl.input_vector(&[(&p.a, a), (&p.b, b)]);
            let r = sim.run_transition(&from, &to);
            assert!(
                r.max_settle_ps() <= sta.critical_path_ps() + 1e-9,
                "sim {} > sta {}",
                r.max_settle_ps(),
                sta.critical_path_ps()
            );
        }
    }

    #[test]
    fn critical_path_grows_with_width() {
        let sta_of = |w: usize| {
            let mut nl = Netlist::new();
            ripple_carry_adder(&mut nl, w, "alu");
            let d = vec![10.0; nl.gate_count()];
            ArrivalTimes::compute(&nl, &d).critical_path_ps()
        };
        assert!(sta_of(32) > sta_of(16));
        assert!(sta_of(16) > sta_of(8));
    }

    #[test]
    fn msb_sum_arrival_dominates_lsb() {
        let mut nl = Netlist::new();
        let p = ripple_carry_adder(&mut nl, 8, "alu");
        let d = vec![10.0; nl.gate_count()];
        let sta = ArrivalTimes::compute(&nl, &d);
        assert!(sta.at(p.sum[7]) > sta.at(p.sum[0]));
        assert_eq!(sta.worst_of(&p.sum), sta.at(p.sum[7]));
    }

    #[test]
    fn slacks_vanish_on_the_critical_path_only() {
        let mut nl = Netlist::new();
        let p = ripple_carry_adder(&mut nl, 8, "alu");
        let d: Vec<f64> = (0..nl.gate_count()).map(|i| 10.0 + (i % 3) as f64).collect();
        let sta = ArrivalTimes::compute(&nl, &d);
        let csr = nl.fanout_csr();
        let deadline = sta.critical_path_ps();
        let slacks = sta.slacks_ps(&nl, &d, &csr, deadline);
        // At a deadline equal to the critical path, no net is violating and
        // at least one net (the critical path) has zero slack.
        assert!(slacks.iter().all(|&s| s > -1e-9), "negative slack at own critical path");
        let min = slacks.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(min.abs() < 1e-9, "critical path must have zero slack, min {min}");
        // The MSB sum output is later (tighter) than the LSB.
        assert!(slacks[p.sum[0].index()] > slacks[p.sum[7].index()] - 1e-9);
        // Overclocking below the critical path drives slack negative.
        let violated = sta.slacks_ps(&nl, &d, &csr, deadline * 0.5);
        assert!(violated.iter().any(|&s| s < 0.0));
    }

    #[test]
    fn primary_inputs_arrive_at_zero() {
        let mut nl = Netlist::new();
        let p = ripple_carry_adder(&mut nl, 4, "alu");
        let d = vec![10.0; nl.gate_count()];
        let sta = ArrivalTimes::compute(&nl, &d);
        for &pi in &p.a {
            assert_eq!(sta.at(pi), 0.0);
        }
    }
}
