//! Bit-sliced 64-lane waveform simulation with incremental cone re-evaluation.
//!
//! [`EventSimulator`](crate::sim::EventSimulator) processes one stimulus at a
//! time through a global event queue. That is the right shape for arbitrary
//! sequential use, but the PUF hot path evaluates *batches* of independent
//! challenges against the *same* netlist and delay assignment, and the event
//! queue's per-event bookkeeping (packing, push-time suppression, calendar
//! wheel) dominates the runtime long before the actual gate evaluations do.
//!
//! [`SlicedWaveSimulator`] exploits two structural facts about single-driver
//! transport-delay simulation:
//!
//! 1. **Per-net activity is an ordered toggle list.** Every event the event
//!    simulator pops is a real value change (push-time suppression keeps
//!    pushed values alternating, and per-net push times are monotone because
//!    a gate is re-evaluated at its inputs' toggle times, which arrive in
//!    global time order). So a net's entire waveform is `initial value +
//!    sorted list of toggle times` — no cancellation, no queue.
//! 2. **Gates can be finalised in one topological pass.** A gate's output
//!    waveform is a pure function of its input waveforms: merge the two
//!    input toggle lists in time order, re-evaluate the truth table at each
//!    toggle, and emit an output toggle (shifted by the gate delay) whenever
//!    the output value changes. Netlist insertion order is already
//!    topological, so one forward sweep finalises every net.
//!
//! On top of that list representation, two compounding optimisations:
//!
//! * **Bit-slicing:** 64 independent stimuli ("lanes") are packed into `u64`
//!   masks. A toggle entry is `(time, lane-mask)`; the truth table is
//!   evaluated branchlessly on whole masks. Because all lanes share the
//!   same delay assignment, candidate toggle times are path-delay sums that
//!   coincide heavily across lanes, so the merged time axis grows far more
//!   slowly than 64 scalar runs.
//! * **Incremental cone re-simulation:** the engine keeps the previous run's
//!   waveforms. A primary input is dirty iff its stimulus masks changed; a
//!   gate is dirty iff either input net is dirty. Clean gates keep their
//!   stored waveform untouched and are skipped entirely, so consecutive
//!   stimuli that share most lanes/bits only re-simulate the affected cone.
//!   [`gates_evaluated`](SlicedWaveSimulator::gates_evaluated) /
//!   [`gates_skipped`](SlicedWaveSimulator::gates_skipped) expose the
//!   effect.
//!
//! # Equivalence with the event simulator
//!
//! For netlists whose gate delays are drawn from a continuous distribution
//! (every PUF chip in this workspace), the per-lane values, settling times
//! and transition counts produced here are bit-identical to
//! [`EventSimulator`](crate::sim::EventSimulator) — pinned by the tests in
//! this module and by the engine-equivalence suites in `pufatt-alupuf`. The
//! one semantic difference is tie-breaking of *exactly* equal event times on
//! different nets feeding a common gate: the event simulator orders those by
//! global sequence number, this engine by merge order (first input first).
//! With continuous delays such cross-net ties occur with probability zero;
//! degenerate all-equal delay tables (as some unit tests use) can glitch
//! differently, which affects transition counts but never final values.
//!
//! The engine *owns* all derived tables (no borrow of the source
//! [`Netlist`]), so long-lived endpoints — enrolled verifiers, fleet
//! workers — can cache one engine per thread and amortise construction
//! across calls.

use crate::netlist::{NetId, Netlist};

/// Number of stimulus lanes evaluated per run.
pub const LANES: usize = 64;

/// One waveform step: at time `t`, the lanes in `mask` toggle.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    t: f64,
    mask: u64,
}

/// A gate in topological order with its truth table pre-expanded to lane
/// masks: `tt[(a << 1) | b]` is all-ones if the gate outputs 1 for that
/// input combination.
#[derive(Debug, Clone, Copy)]
struct WaveGate {
    in0: u32,
    in1: u32,
    out: u32,
    tt: [u64; 4],
    delay_ps: f64,
}

/// Owned, reusable 64-lane waveform simulator (see module docs).
#[derive(Debug)]
pub struct SlicedWaveSimulator {
    gates: Vec<WaveGate>,
    pis: Vec<u32>,
    /// Per-net steady-state lane values under the `from` stimulus.
    init: Vec<u64>,
    /// Per-net steady-state lane values after the transition settles.
    fin: Vec<u64>,
    /// Per-net toggle waveforms, time-ordered.
    entries: Vec<Vec<Entry>>,
    /// Per-net dirty flags for the current run.
    dirty: Vec<bool>,
    /// Whether `init`/`entries` hold a previous run usable for reuse.
    valid: bool,
    steps: u64,
    gates_evaluated: u64,
    gates_skipped: u64,
}

impl SlicedWaveSimulator {
    /// Builds an engine for `netlist` with per-gate `delays_ps` (indexed by
    /// gate id, as produced by [`Chip::gate_delays`](crate::variation::Chip::gate_delays)).
    ///
    /// All derived tables are copied out of the netlist; the engine has no
    /// further ties to it.
    ///
    /// # Panics
    /// Panics if `delays_ps.len()` does not match the gate count, or if the
    /// netlist is not in single-driver topological insertion order (every
    /// gate's inputs allocated before its output).
    pub fn new(netlist: &Netlist, delays_ps: &[f64]) -> Self {
        assert_eq!(delays_ps.len(), netlist.gates().len(), "delay table length must match gate count");
        let nets = netlist.net_count();
        let mut gates = Vec::with_capacity(netlist.gates().len());
        for ((_, gate), &delay_ps) in netlist.topological_gates().zip(delays_ps.iter()) {
            let mut inputs = gate.input_nets();
            let in0 = inputs.next().map_or(0, |n| n.index() as u32);
            let in1 = inputs.next().map_or(in0, |n| n.index() as u32);
            let out = gate.output.index() as u32;
            assert!((in0 < out) & (in1 < out), "netlist must allocate gate inputs before outputs");
            let tt = gate.kind.truth_table();
            let rows = std::array::from_fn(|row| 0u64.wrapping_sub(u64::from((tt >> row) & 1)));
            gates.push(WaveGate { in0, in1, out, tt: rows, delay_ps });
        }
        let pis: Vec<u32> = netlist.primary_inputs().iter().map(|n| n.index() as u32).collect();
        SlicedWaveSimulator {
            gates,
            pis,
            init: vec![0; nets],
            fin: vec![0; nets],
            entries: vec![Vec::new(); nets],
            dirty: vec![false; nets],
            valid: false,
            steps: 0,
            gates_evaluated: 0,
            gates_skipped: 0,
        }
    }

    /// Number of primary inputs (the length `run_lanes` expects).
    pub fn primary_input_count(&self) -> usize {
        self.pis.len()
    }

    /// Rescales per-gate delays in place (same indexing as the constructor)
    /// and invalidates stored waveforms.
    ///
    /// # Panics
    /// Panics if the length does not match the gate count.
    pub fn set_delays_ps(&mut self, delays_ps: &[f64]) {
        assert_eq!(delays_ps.len(), self.gates.len(), "delay table length must match gate count");
        for (gate, &d) in self.gates.iter_mut().zip(delays_ps.iter()) {
            gate.delay_ps = d;
        }
        self.invalidate();
    }

    /// Drops the stored previous run, forcing the next `run_lanes` to
    /// re-evaluate every gate.
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// Simulates the transition `from -> to` on all 64 lanes at once.
    ///
    /// `from[p]` / `to[p]` give the per-lane value masks of primary input
    /// `p` (in [`Netlist::primary_inputs`] order) before and after the
    /// transition: bit `L` is lane `L`'s value. Lanes whose stimulus is
    /// identical to the previous run's are resolved from the stored
    /// waveforms without touching their cone.
    ///
    /// # Panics
    /// Panics if the slice lengths do not match the primary-input count.
    pub fn run_lanes(&mut self, from: &[u64], to: &[u64]) {
        assert_eq!(from.len(), self.pis.len(), "one from-mask per primary input");
        assert_eq!(to.len(), self.pis.len(), "one to-mask per primary input");
        let reuse = self.valid;
        self.steps = 0;
        self.gates_evaluated = 0;
        self.gates_skipped = 0;

        // Primary inputs: a PI waveform is `init` plus at most one toggle at
        // t=0. It is clean iff both masks match the stored run exactly.
        for (p, &net) in self.pis.iter().enumerate() {
            let n = net as usize;
            let toggle = from[p] ^ to[p];
            let stored_toggle = self.entries[n].first().map_or(0, |e| e.mask);
            let clean = reuse && self.init[n] == from[p] && stored_toggle == toggle;
            self.dirty[n] = !clean;
            if !clean {
                self.init[n] = from[p];
                self.fin[n] = to[p];
                self.entries[n].clear();
                if toggle != 0 {
                    self.entries[n].push(Entry { t: 0.0, mask: toggle });
                }
            }
        }

        // One topological sweep. A gate re-evaluates iff an input net is
        // dirty; otherwise its stored waveform is still exact.
        for gi in 0..self.gates.len() {
            let g = self.gates[gi];
            let (i0, i1, o) = (g.in0 as usize, g.in1 as usize, g.out as usize);
            if !(self.dirty[i0] | self.dirty[i1]) {
                self.dirty[o] = false;
                self.gates_skipped += 1;
                continue;
            }
            self.dirty[o] = true;
            self.gates_evaluated += 1;

            // Inputs have smaller net indices than the output (checked at
            // construction), so split borrows are safe.
            let (head, tail) = self.entries.split_at_mut(o);
            let out_list = &mut tail[0];
            out_list.clear();

            let eval = |va: u64, vb: u64| -> u64 {
                (g.tt[0] & !va & !vb) | (g.tt[1] & !va & vb) | (g.tt[2] & va & !vb) | (g.tt[3] & va & vb)
            };
            let mut va = self.init[i0];
            let mut vb = self.init[i1];
            let mut sched = eval(va, vb);
            self.init[o] = sched;

            if i0 == i1 {
                // Buf/Not (or a degenerate two-pin gate reading one net):
                // a single toggle list, both operands move together.
                let list = &head[i0];
                for e in list {
                    va ^= e.mask;
                    vb = va;
                    let out = eval(va, vb);
                    let diff = out ^ sched;
                    if diff != 0 {
                        out_list.push(Entry { t: e.t + g.delay_ps, mask: diff });
                        sched = out;
                    }
                }
                self.steps += list.len() as u64;
            } else {
                // Time-ordered merge of the two input waveforms. Ties go to
                // the first input, matching the event simulator's sequence
                // order for the t=0 stimulus wave (PI declaration order).
                let a = &head[i0][..];
                let b = &head[i1][..];
                let (mut i, mut j) = (0, 0);
                while i < a.len() || j < b.len() {
                    let take_a = j >= b.len() || (i < a.len() && a[i].t <= b[j].t);
                    let t = if take_a {
                        let e = a[i];
                        i += 1;
                        va ^= e.mask;
                        e.t
                    } else {
                        let e = b[j];
                        j += 1;
                        vb ^= e.mask;
                        e.t
                    };
                    let out = eval(va, vb);
                    let diff = out ^ sched;
                    if diff != 0 {
                        out_list.push(Entry { t: t + g.delay_ps, mask: diff });
                        sched = out;
                    }
                }
                self.steps += (a.len() + b.len()) as u64;
            }
            self.fin[o] = sched;
        }
        self.valid = true;
    }

    /// Final (settled) lane values of `net`: bit `L` is lane `L`'s value.
    pub fn value_lanes(&self, net: NetId) -> u64 {
        self.fin[net.index()]
    }

    /// Final value of `net` on one lane.
    pub fn value(&self, net: NetId, lane: usize) -> bool {
        (self.fin[net.index()] >> lane) & 1 == 1
    }

    /// Per-lane settling times of `net` (time of each lane's last toggle;
    /// 0.0 for lanes that never toggled), written into `out`.
    pub fn settle_lanes_into(&self, net: NetId, out: &mut [f64; LANES]) {
        out.fill(0.0);
        let mut remaining = u64::MAX;
        for e in self.entries[net.index()].iter().rev() {
            let mut newly = e.mask & remaining;
            while newly != 0 {
                let lane = newly.trailing_zeros() as usize;
                out[lane] = e.t;
                newly &= newly - 1;
            }
            remaining &= !e.mask;
            if remaining == 0 {
                break;
            }
        }
    }

    /// Settling time of `net` on one lane (0.0 if the lane never toggled).
    pub fn settle_or_zero(&self, net: NetId, lane: usize) -> f64 {
        let bit = 1u64 << lane;
        for e in self.entries[net.index()].iter().rev() {
            if e.mask & bit != 0 {
                return e.t;
            }
        }
        0.0
    }

    /// Number of value changes `net` saw on one lane during the last run
    /// (or the stored run, for clean cones).
    pub fn transitions_of(&self, net: NetId, lane: usize) -> u32 {
        let bit = 1u64 << lane;
        self.entries[net.index()].iter().filter(|e| e.mask & bit != 0).count() as u32
    }

    /// Merged waveform steps processed by the last run (the engine's unit
    /// of work; clean cones contribute nothing).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Gates re-evaluated by the last run.
    pub fn gates_evaluated(&self) -> u64 {
        self.gates_evaluated
    }

    /// Gates skipped by the last run because their input cone was clean.
    pub fn gates_skipped(&self) -> u64 {
        self.gates_skipped
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::gen::{ripple_carry_adder, RcaPorts};
    use crate::netlist::Netlist;
    use crate::sim::EventSimulator;

    /// Deterministic continuous-ish pseudo-random delays: distinct values
    /// with full mantissas so cross-net time ties are measure-zero, as on a
    /// real chip.
    fn scrambled_delays(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xD1B5_4A32_D192_ED03);
                let frac = ((state >> 11) as f64) / ((1u64 << 53) as f64);
                5.0 + 20.0 * frac
            })
            .collect()
    }

    fn lane_stimulus(seed: u64, lanes: usize, width: u32) -> Vec<(u64, u64)> {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xBF58_476D_1CE4_E5B9);
            (state >> 7) & ((1u64 << width) - 1)
        };
        (0..lanes).map(|_| (next(), next())).collect()
    }

    struct Rca {
        netlist: Netlist,
        ports: RcaPorts,
        delays: Vec<f64>,
    }

    fn rca(width: u32, seed: u64) -> Rca {
        let mut netlist = Netlist::new();
        let ports = ripple_carry_adder(&mut netlist, width as usize, "add");
        let delays = scrambled_delays(netlist.gates().len(), seed);
        Rca { netlist, ports, delays }
    }

    /// One lane's `((a_from, b_from), (a_to, b_to))` operand words.
    type LaneStimulus = ((u64, u64), (u64, u64));

    /// Packs per-lane (a_from, b_from, a_to, b_to) words into PI masks.
    fn pack_lanes(netlist: &Netlist, ports: &RcaPorts, stimuli: &[LaneStimulus]) -> (Vec<u64>, Vec<u64>) {
        let pis = netlist.primary_inputs();
        let mut from = vec![0u64; pis.len()];
        let mut to = vec![0u64; pis.len()];
        let pos_of = |net: NetId| pis.iter().position(|&n| n == net).unwrap();
        for (lane, &((af, bf), (at, bt))) in stimuli.iter().enumerate() {
            for (bit, &net) in ports.a.iter().enumerate() {
                from[pos_of(net)] |= ((af >> bit) & 1) << lane;
                to[pos_of(net)] |= ((at >> bit) & 1) << lane;
            }
            for (bit, &net) in ports.b.iter().enumerate() {
                from[pos_of(net)] |= ((bf >> bit) & 1) << lane;
                to[pos_of(net)] |= ((bt >> bit) & 1) << lane;
            }
        }
        (from, to)
    }

    fn scalar_stimulus(netlist: &Netlist, ports: &RcaPorts, a: u64, b: u64) -> Vec<bool> {
        netlist.input_vector(&[(&ports.a, a), (&ports.b, b)])
    }

    #[test]
    fn half_adder_produces_expected_waveform() {
        let mut netlist = Netlist::new();
        let a = netlist.input("a");
        let b = netlist.input("b");
        let sum = netlist.xor2(a, b);
        let carry = netlist.and2(a, b);
        let mut wave = SlicedWaveSimulator::new(&netlist, &[3.0, 5.0]);
        // Lane 0: (a,b) 00 -> 11, lane 1: 10 -> 01, lane 2: idle at 00.
        wave.run_lanes(&[0b010, 0b000], &[0b001, 0b011]);
        assert!(!wave.value(sum, 0) && wave.value(carry, 0));
        assert!(wave.value(sum, 1) && !wave.value(carry, 1));
        assert!(!wave.value(sum, 2) && !wave.value(carry, 2));
        // Lane 0's XOR glitches: a toggles then b toggles, both at t=0, so
        // the merge sees two equal-time steps and emits a zero-width pulse.
        assert_eq!(wave.transitions_of(sum, 0), 2);
        assert_eq!(wave.settle_or_zero(sum, 0), 3.0);
        assert_eq!(wave.settle_or_zero(carry, 0), 5.0);
        assert_eq!(wave.settle_or_zero(sum, 2), 0.0);
    }

    #[test]
    fn all_lanes_match_event_simulator() {
        for width in [4u32, 8, 16] {
            let Rca { netlist, ports, delays } = rca(width, 0xACE0 + u64::from(width));
            let froms = lane_stimulus(0xF00 + u64::from(width), LANES, width);
            let tos = lane_stimulus(0x700 + u64::from(width), LANES, width);
            let stimuli: Vec<_> = froms.into_iter().zip(tos).collect();
            let (from, to) = pack_lanes(&netlist, &ports, &stimuli);

            let mut wave = SlicedWaveSimulator::new(&netlist, &delays);
            wave.run_lanes(&from, &to);

            let mut sim = EventSimulator::new(&netlist, &delays);
            for (lane, &((af, bf), (at, bt))) in stimuli.iter().enumerate() {
                sim.run_transition_in_place(
                    &scalar_stimulus(&netlist, &ports, af, bf),
                    &scalar_stimulus(&netlist, &ports, at, bt),
                );
                for (id, _) in netlist.nets() {
                    assert_eq!(
                        wave.value(id, lane),
                        sim.value(id),
                        "value mismatch width={width} lane={lane} net={id}"
                    );
                    assert_eq!(
                        wave.settle_or_zero(id, lane).to_bits(),
                        sim.settle_or_zero(id).to_bits(),
                        "settle mismatch width={width} lane={lane} net={id}"
                    );
                    assert_eq!(
                        wave.transitions_of(id, lane),
                        sim.transitions_of(id),
                        "transition-count mismatch width={width} lane={lane} net={id}"
                    );
                }
            }
        }
    }

    #[test]
    fn settle_lanes_into_matches_per_lane_accessor() {
        let Rca { netlist, ports, delays } = rca(8, 0xBEEF);
        let stimuli: Vec<_> = lane_stimulus(1, LANES, 8).into_iter().zip(lane_stimulus(2, LANES, 8)).collect();
        let (from, to) = pack_lanes(&netlist, &ports, &stimuli);
        let mut wave = SlicedWaveSimulator::new(&netlist, &delays);
        wave.run_lanes(&from, &to);
        let mut buf = [0.0f64; LANES];
        for &net in ports.sum.iter().chain([ports.cout].iter()) {
            wave.settle_lanes_into(net, &mut buf);
            for (lane, &t) in buf.iter().enumerate() {
                assert_eq!(t.to_bits(), wave.settle_or_zero(net, lane).to_bits());
            }
        }
    }

    #[test]
    fn incremental_reuse_is_bit_identical_and_skips_clean_cones() {
        let Rca { netlist, ports, delays } = rca(16, 0x1DEA);
        let mut reused = SlicedWaveSimulator::new(&netlist, &delays);
        let base: Vec<_> = lane_stimulus(10, LANES, 16)
            .into_iter()
            .zip(lane_stimulus(11, LANES, 16))
            .collect();
        let mut stimuli = base.clone();
        let mut skipped_any = false;
        for round in 0..6u64 {
            // Correlated drift: flip one operand bit of one lane per round.
            if round > 0 {
                let lane = (round as usize * 7) % LANES;
                let ((_, bf), _) = stimuli[lane];
                stimuli[lane].0 .1 = bf ^ (1 << (round % 16));
            }
            let (from, to) = pack_lanes(&netlist, &ports, &stimuli);
            reused.run_lanes(&from, &to);
            let mut fresh = SlicedWaveSimulator::new(&netlist, &delays);
            fresh.run_lanes(&from, &to);
            for (id, _) in netlist.nets() {
                assert_eq!(reused.value_lanes(id), fresh.value_lanes(id), "round {round} net {id}");
                for lane in 0..LANES {
                    assert_eq!(
                        reused.settle_or_zero(id, lane).to_bits(),
                        fresh.settle_or_zero(id, lane).to_bits(),
                        "round {round} net {id} lane {lane}"
                    );
                }
            }
            if round > 0 {
                assert!(reused.gates_skipped() > 0, "correlated rounds must skip clean cones");
                skipped_any = true;
            }
            assert_eq!(reused.gates_evaluated() + reused.gates_skipped(), netlist.gates().len() as u64);
        }
        assert!(skipped_any);
        // Identical stimulus back-to-back: the whole netlist is clean.
        let (from, to) = pack_lanes(&netlist, &ports, &stimuli);
        reused.run_lanes(&from, &to);
        assert_eq!(reused.gates_evaluated(), 0);
        assert_eq!(reused.gates_skipped(), netlist.gates().len() as u64);
        assert_eq!(reused.steps(), 0);
    }

    #[test]
    fn set_delays_rescales_and_invalidates() {
        let Rca { netlist, ports, delays } = rca(8, 0x5CA1);
        let stimuli: Vec<_> = lane_stimulus(3, LANES, 8).into_iter().zip(lane_stimulus(4, LANES, 8)).collect();
        let (from, to) = pack_lanes(&netlist, &ports, &stimuli);
        let mut wave = SlicedWaveSimulator::new(&netlist, &delays);
        wave.run_lanes(&from, &to);
        let doubled: Vec<f64> = delays.iter().map(|d| d * 2.0).collect();
        wave.set_delays_ps(&doubled);
        wave.run_lanes(&from, &to);
        assert_eq!(wave.gates_evaluated(), netlist.gates().len() as u64, "invalidate forces full re-eval");
        let mut fresh = SlicedWaveSimulator::new(&netlist, &doubled);
        fresh.run_lanes(&from, &to);
        for &net in &ports.sum {
            for lane in 0..LANES {
                assert_eq!(wave.settle_or_zero(net, lane).to_bits(), fresh.settle_or_zero(net, lane).to_bits());
            }
        }
    }
}
