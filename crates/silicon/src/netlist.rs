//! Combinational netlist data model.
//!
//! A [`Netlist`] is a directed acyclic graph of logic [`Gate`]s connected by
//! [`Net`]s. Nets are either primary inputs or driven by exactly one gate.
//! The model is deliberately minimal — two-input gates plus inverter/buffer —
//! because that is the granularity at which the paper's delay and variation
//! models operate.

use std::fmt;

/// Identifier of a net (a wire) within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) u32);

/// Identifier of a gate within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(pub(crate) u32);

impl NetId {
    /// Returns the raw index of this net.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl GateId {
    /// Returns the raw index of this gate.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// The logic function computed by a [`Gate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Non-inverting buffer (also used for programmable-delay-line stages).
    Buf,
    /// Inverter.
    Not,
    /// Two-input AND.
    And2,
    /// Two-input OR.
    Or2,
    /// Two-input XOR.
    Xor2,
    /// Two-input NAND.
    Nand2,
    /// Two-input NOR.
    Nor2,
    /// Two-input XNOR.
    Xnor2,
}

impl GateKind {
    /// Number of input pins for this gate kind.
    pub fn arity(self) -> usize {
        match self {
            GateKind::Buf | GateKind::Not => 1,
            _ => 2,
        }
    }

    /// Evaluates the gate's logic function.
    ///
    /// `b` is ignored for one-input gates.
    ///
    /// Branchless — a 4-bit truth-table lookup indexed by `(a, b)` rather
    /// than a per-kind `match`: functional netlist evaluation calls this
    /// once per gate with data-dependent kinds, and a branch here is
    /// unpredictable in exactly that loop.
    pub fn eval(self, a: bool, b: bool) -> bool {
        (self.truth_table() >> ((u8::from(a) << 1) | u8::from(b))) & 1 == 1
    }

    /// The 4-bit truth table of this gate kind: bit `(a << 1) | b` holds the
    /// output. One-input gates repeat their column so `b` is a don't-care.
    /// Simulation engines expand this into branchless lane masks.
    pub fn truth_table(self) -> u8 {
        // Truth tables in variant order (Buf, Not, And2, Or2, Xor2, Nand2,
        // Nor2, Xnor2).
        const TT: [u8; 8] = [0b1100, 0b0011, 0b1000, 0b1110, 0b0110, 0b0111, 0b0001, 0b1001];
        TT[self as usize]
    }

    /// All gate kinds, useful for exhaustive tests.
    pub const ALL: [GateKind; 8] = [
        GateKind::Buf,
        GateKind::Not,
        GateKind::And2,
        GateKind::Or2,
        GateKind::Xor2,
        GateKind::Nand2,
        GateKind::Nor2,
        GateKind::Xnor2,
    ];
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And2 => "AND2",
            GateKind::Or2 => "OR2",
            GateKind::Xor2 => "XOR2",
            GateKind::Nand2 => "NAND2",
            GateKind::Nor2 => "NOR2",
            GateKind::Xnor2 => "XNOR2",
        };
        f.write_str(s)
    }
}

/// Physical placement of a gate on the die, in micrometres.
///
/// Placement drives the spatial correlation of the quad-tree variation model:
/// gates that are close together receive correlated threshold voltages.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Placement {
    /// X coordinate in µm.
    pub x: f64,
    /// Y coordinate in µm.
    pub y: f64,
}

/// A logic gate instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// Logic function.
    pub kind: GateKind,
    /// Input nets (`kind.arity()` of them).
    pub inputs: [NetId; 2],
    /// Output net; every gate drives exactly one net.
    pub output: NetId,
    /// Die placement (used by the variation model).
    pub placement: Placement,
}

impl Gate {
    /// Iterates over the gate's used input pins.
    pub fn input_nets(&self) -> impl Iterator<Item = NetId> + '_ {
        self.inputs.iter().copied().take(self.kind.arity())
    }
}

/// A wire in the netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    /// Gate driving this net, or `None` for primary inputs.
    pub driver: Option<GateId>,
    /// Optional human-readable name (ports are always named).
    pub name: Option<String>,
}

/// Errors reported by [`Netlist::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A net is neither a primary input nor driven by any gate.
    UndrivenNet(NetId),
    /// The gate graph contains a combinational cycle.
    CombinationalCycle,
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UndrivenNet(n) => write!(f, "net {n} has no driver and is not a primary input"),
            NetlistError::CombinationalCycle => write!(f, "netlist contains a combinational cycle"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// A combinational netlist: gates, nets, primary inputs and outputs.
///
/// Gates are appended through the builder-style methods ([`Netlist::gate`],
/// [`Netlist::and2`], …) which allocate the output net automatically. The
/// structure is append-only; generators compose by sharing `&mut Netlist`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Netlist {
    gates: Vec<Gate>,
    nets: Vec<Net>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
    cursor: Placement,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// All gates in insertion order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Looks up a gate.
    pub fn gate_at(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Looks up a net.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// All nets in id order, paired with their ids (used by external
    /// analyses such as `pufatt-analyze`'s netlist verifier).
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets.iter().enumerate().map(|(i, n)| (NetId(i as u32), n))
    }

    /// Primary inputs in declaration order.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Primary outputs in declaration order.
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }

    /// Declares a new primary input net.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.alloc_net(Some(name.into()), None);
        self.primary_inputs.push(id);
        id
    }

    /// Declares a bus of `width` primary inputs named `name[0..width]`,
    /// least-significant bit first.
    pub fn input_bus(&mut self, name: &str, width: usize) -> Vec<NetId> {
        (0..width).map(|i| self.input(format!("{name}[{i}]"))).collect()
    }

    /// Marks an existing net as a primary output.
    pub fn mark_output(&mut self, net: NetId, name: impl Into<String>) {
        let name = name.into();
        let slot = &mut self.nets[net.index()];
        if slot.name.is_none() {
            slot.name = Some(name);
        }
        self.primary_outputs.push(net);
    }

    /// Sets the placement cursor; gates created afterwards are placed there
    /// until the cursor moves again.
    pub fn place_at(&mut self, x: f64, y: f64) {
        self.cursor = Placement { x, y };
    }

    /// Appends a gate with the current placement cursor and returns its
    /// freshly allocated output net.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match the arity of `kind` or references a
    /// net that does not exist.
    pub fn gate(&mut self, kind: GateKind, inputs: &[NetId]) -> NetId {
        assert_eq!(inputs.len(), kind.arity(), "gate {kind} takes {} inputs", kind.arity());
        for &n in inputs {
            assert!(n.index() < self.nets.len(), "input net {n} does not exist");
        }
        let gate_id = GateId(self.gates.len() as u32);
        let output = self.alloc_net(None, Some(gate_id));
        let pad = inputs[0];
        self.gates.push(Gate {
            kind,
            inputs: [inputs[0], *inputs.get(1).unwrap_or(&pad)],
            output,
            placement: self.cursor,
        });
        output
    }

    /// Appends a buffer.
    pub fn buf(&mut self, a: NetId) -> NetId {
        self.gate(GateKind::Buf, &[a])
    }

    /// Appends an inverter.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.gate(GateKind::Not, &[a])
    }

    /// Appends a two-input AND gate.
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::And2, &[a, b])
    }

    /// Appends a two-input OR gate.
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Or2, &[a, b])
    }

    /// Appends a two-input XOR gate.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Xor2, &[a, b])
    }

    /// Appends a two-input NAND gate.
    pub fn nand2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Nand2, &[a, b])
    }

    /// Appends a two-input NOR gate.
    pub fn nor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Nor2, &[a, b])
    }

    /// Appends a two-input XNOR gate.
    pub fn xnor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Xnor2, &[a, b])
    }

    fn alloc_net(&mut self, name: Option<String>, driver: Option<GateId>) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net { driver, name });
        id
    }

    /// Fanout list: for each net, the gates that read it.
    pub fn fanouts(&self) -> Vec<Vec<GateId>> {
        let mut fo = vec![Vec::new(); self.nets.len()];
        for (i, g) in self.gates.iter().enumerate() {
            for n in g.input_nets() {
                fo[n.index()].push(GateId(i as u32));
            }
        }
        fo
    }

    /// Fanout adjacency in compressed-sparse-row form — two flat arrays
    /// instead of one `Vec` per net. Compute it once per netlist and share
    /// it between simulators, the delay model and timing analyses.
    pub fn fanout_csr(&self) -> FanoutCsr {
        FanoutCsr::build(self)
    }

    /// Fanout count per net (load model input).
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut fo = vec![0u32; self.nets.len()];
        for g in &self.gates {
            for n in g.input_nets() {
                fo[n.index()] += 1;
            }
        }
        fo
    }

    /// Gates in topological order (inputs before outputs).
    ///
    /// Because gates are append-only and may only reference already-existing
    /// nets, insertion order *is* a topological order; this method exists to
    /// make that invariant explicit at call sites.
    pub fn topological_gates(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates.iter().enumerate().map(|(i, g)| (GateId(i as u32), g))
    }

    /// Evaluates the netlist functionally (zero-delay) for the given primary
    /// input assignment, returning the value of every net.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary inputs.
    pub fn evaluate(&self, inputs: &[bool]) -> Vec<bool> {
        let mut values = vec![false; self.nets.len()];
        self.evaluate_into(inputs, &mut values);
        values
    }

    /// In-place variant of [`Netlist::evaluate`]: fills `values` (resized to
    /// the net count) without allocating when `values` already has capacity.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary inputs.
    pub fn evaluate_into(&self, inputs: &[bool], values: &mut Vec<bool>) {
        assert_eq!(inputs.len(), self.primary_inputs.len(), "input vector length mismatch");
        values.clear();
        values.resize(self.nets.len(), false);
        for (net, &v) in self.primary_inputs.iter().zip(inputs) {
            values[net.index()] = v;
        }
        for g in &self.gates {
            let a = values[g.inputs[0].index()];
            let b = values[g.inputs[1].index()];
            values[g.output.index()] = g.kind.eval(a, b);
        }
    }

    /// Builds a primary-input assignment from named buses.
    ///
    /// Each `(bus, value)` pair assigns bit `i` of `value` to `bus[i]`.
    /// Inputs not covered by any bus default to `false`.
    pub fn input_vector(&self, buses: &[(&[NetId], u64)]) -> Vec<bool> {
        let mut v = vec![false; self.primary_inputs.len()];
        // Map net-id -> position among the primary inputs.
        for (pos, &pi) in self.primary_inputs.iter().enumerate() {
            for (bus, value) in buses {
                if let Some(bit) = bus.iter().position(|&n| n == pi) {
                    v[pos] = (value >> bit) & 1 == 1;
                }
            }
        }
        v
    }

    /// Extracts a word from a net-value map, treating `bus[i]` as bit `i`.
    pub fn word_of(values: &[bool], bus: &[NetId]) -> u64 {
        bus.iter()
            .enumerate()
            .fold(0u64, |acc, (i, n)| acc | ((values[n.index()] as u64) << i))
    }

    /// Structural validation: every net must be driven or be a primary input.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UndrivenNet`] for a floating net. (Cycles are
    /// impossible by construction but the variant is kept for future
    /// sequential extensions.)
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (i, net) in self.nets.iter().enumerate() {
            let id = NetId(i as u32);
            if net.driver.is_none() && !self.primary_inputs.contains(&id) {
                return Err(NetlistError::UndrivenNet(id));
            }
        }
        Ok(())
    }

    /// Logic depth of every net: the maximum number of gates on any path
    /// from a primary input (primary inputs have depth 0).
    pub fn logic_depths(&self) -> Vec<u32> {
        let mut depth = vec![0u32; self.nets.len()];
        for g in &self.gates {
            let worst = g.input_nets().map(|n| depth[n.index()]).max().unwrap_or(0);
            depth[g.output.index()] = worst + 1;
        }
        depth
    }

    /// The netlist's maximum logic depth (levels of gates).
    pub fn max_depth(&self) -> u32 {
        self.logic_depths().iter().copied().max().unwrap_or(0)
    }

    /// Counts gates per kind — the input to the FPGA resource estimator.
    pub fn kind_histogram(&self) -> Vec<(GateKind, usize)> {
        GateKind::ALL
            .iter()
            .map(|&k| (k, self.gates.iter().filter(|g| g.kind == k).count()))
            .filter(|&(_, c)| c > 0)
            .collect()
    }
}

/// Fanout adjacency of a netlist in compressed-sparse-row (CSR) layout.
///
/// `targets[offsets[n] .. offsets[n + 1]]` are the gates reading net `n`.
/// Compared to `Vec<Vec<GateId>>` this is two contiguous allocations total,
/// cache-friendly to traverse, and cheap to share: build it once per
/// [`Netlist`] and hand `&FanoutCsr` to every consumer (event simulator,
/// delay model, timing analysis) instead of re-deriving the adjacency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FanoutCsr {
    offsets: Vec<u32>,
    targets: Vec<GateId>,
}

impl FanoutCsr {
    /// Builds the CSR adjacency for `netlist`.
    pub fn build(netlist: &Netlist) -> Self {
        let nets = netlist.net_count();
        // Counting pass: offsets[n + 1] accumulates net n's reader count.
        let mut offsets = vec![0u32; nets + 1];
        for g in &netlist.gates {
            for n in g.input_nets() {
                offsets[n.index() + 1] += 1;
            }
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        // Filling pass, using a per-net write cursor.
        let mut cursor: Vec<u32> = offsets[..nets].to_vec();
        let mut targets = vec![GateId(0); offsets[nets] as usize];
        for (i, g) in netlist.gates.iter().enumerate() {
            for n in g.input_nets() {
                let slot = &mut cursor[n.index()];
                targets[*slot as usize] = GateId(i as u32);
                *slot += 1;
            }
        }
        FanoutCsr { offsets, targets }
    }

    /// Number of nets this adjacency covers.
    pub fn net_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The gates reading `net`, in gate-id order.
    pub fn readers(&self, net: NetId) -> &[GateId] {
        self.readers_at(net.index())
    }

    /// [`FanoutCsr::readers`] by raw net index, for hot loops that already
    /// hold the index.
    pub fn readers_at(&self, net_index: usize) -> &[GateId] {
        let lo = self.offsets[net_index] as usize;
        let hi = self.offsets[net_index + 1] as usize;
        &self.targets[lo..hi]
    }

    /// The CSR edge range of `net`: `targets[range]` (and any parallel
    /// per-edge array laid out in the same order) holds its readers.
    pub fn range_at(&self, net_index: usize) -> core::ops::Range<usize> {
        self.offsets[net_index] as usize..self.offsets[net_index + 1] as usize
    }

    /// Fanout count of `net` (the load-model input).
    pub fn count(&self, net: NetId) -> u32 {
        self.offsets[net.index() + 1] - self.offsets[net.index()]
    }

    /// Total number of (net, reader) edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_kind_truth_tables() {
        assert!(GateKind::And2.eval(true, true));
        assert!(!GateKind::And2.eval(true, false));
        assert!(GateKind::Or2.eval(false, true));
        assert!(!GateKind::Or2.eval(false, false));
        assert!(GateKind::Xor2.eval(true, false));
        assert!(!GateKind::Xor2.eval(true, true));
        assert!(GateKind::Nand2.eval(false, false));
        assert!(!GateKind::Nand2.eval(true, true));
        assert!(GateKind::Nor2.eval(false, false));
        assert!(!GateKind::Nor2.eval(false, true));
        assert!(GateKind::Xnor2.eval(true, true));
        assert!(!GateKind::Xnor2.eval(false, true));
        assert!(GateKind::Buf.eval(true, false));
        assert!(!GateKind::Not.eval(true, true));
    }

    #[test]
    fn arity_matches_kind() {
        for k in GateKind::ALL {
            let expected = matches!(k, GateKind::Buf | GateKind::Not);
            assert_eq!(k.arity() == 1, expected, "{k}");
        }
    }

    #[test]
    fn build_and_evaluate_half_adder() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let sum = nl.xor2(a, b);
        let carry = nl.and2(a, b);
        nl.mark_output(sum, "sum");
        nl.mark_output(carry, "carry");
        nl.validate().unwrap();

        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let values = nl.evaluate(&[va, vb]);
            assert_eq!(values[sum.index()], va ^ vb);
            assert_eq!(values[carry.index()], va & vb);
        }
    }

    #[test]
    fn input_vector_round_trip() {
        let mut nl = Netlist::new();
        let bus = nl.input_bus("x", 8);
        let v = nl.input_vector(&[(&bus, 0xA5)]);
        assert_eq!(Netlist::word_of(&v, &bus), 0xA5);
    }

    #[test]
    fn fanout_counts_track_usage() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.xor2(a, b);
        let _y = nl.and2(a, x);
        let fo = nl.fanout_counts();
        assert_eq!(fo[a.index()], 2);
        assert_eq!(fo[b.index()], 1);
        assert_eq!(fo[x.index()], 1);
    }

    #[test]
    fn validate_accepts_well_formed() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n = nl.not(a);
        nl.mark_output(n, "q");
        assert_eq!(nl.validate(), Ok(()));
    }

    #[test]
    fn kind_histogram_counts() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        nl.xor2(a, b);
        nl.xor2(a, b);
        nl.and2(a, b);
        let h = nl.kind_histogram();
        assert!(h.contains(&(GateKind::Xor2, 2)));
        assert!(h.contains(&(GateKind::And2, 1)));
    }

    #[test]
    fn placement_cursor_applies_to_new_gates() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        nl.place_at(10.0, 20.0);
        let n = nl.not(a);
        let g = nl.net(n).driver.unwrap();
        assert_eq!(nl.gate_at(g).placement, Placement { x: 10.0, y: 20.0 });
    }

    #[test]
    fn logic_depth_of_chain_and_adder() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let mut n = a;
        for _ in 0..5 {
            n = nl.not(n);
        }
        assert_eq!(nl.max_depth(), 5);
        assert_eq!(nl.logic_depths()[a.index()], 0);

        // A ripple-carry adder's depth grows ~3 levels per bit slice.
        let mut rca = Netlist::new();
        crate::gen::ripple_carry_adder(&mut rca, 8, "alu");
        let d8 = rca.max_depth();
        let mut rca16 = Netlist::new();
        crate::gen::ripple_carry_adder(&mut rca16, 16, "alu");
        assert!(rca16.max_depth() > d8);
    }

    #[test]
    #[should_panic(expected = "takes 2 inputs")]
    fn wrong_arity_panics() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        nl.gate(GateKind::And2, &[a]);
    }

    #[test]
    fn fanout_csr_matches_nested_fanouts() {
        let mut nl = Netlist::new();
        crate::gen::ripple_carry_adder(&mut nl, 8, "alu");
        let nested = nl.fanouts();
        let csr = nl.fanout_csr();
        assert_eq!(csr.net_count(), nl.net_count());
        assert_eq!(csr.edge_count(), nested.iter().map(Vec::len).sum::<usize>());
        for (i, readers) in nested.iter().enumerate() {
            let net = NetId(i as u32);
            assert_eq!(csr.readers(net), readers.as_slice(), "net {net}");
            assert_eq!(csr.count(net) as usize, readers.len());
        }
        let counts = nl.fanout_counts();
        for (i, &c) in counts.iter().enumerate() {
            assert_eq!(csr.count(NetId(i as u32)), c);
        }
    }

    #[test]
    fn evaluate_into_matches_evaluate_and_reuses_buffer() {
        let mut nl = Netlist::new();
        let p = crate::gen::ripple_carry_adder(&mut nl, 8, "alu");
        let inputs = nl.input_vector(&[(&p.a, 0xA7), (&p.b, 0x15)]);
        let fresh = nl.evaluate(&inputs);
        let mut buf = Vec::new();
        nl.evaluate_into(&inputs, &mut buf);
        assert_eq!(buf, fresh);
        // A second call must not need to grow the buffer.
        let cap = buf.capacity();
        nl.evaluate_into(&inputs, &mut buf);
        assert_eq!(buf.capacity(), cap);
        assert_eq!(Netlist::word_of(&buf, &p.sum), (0xA7 + 0x15) & 0xFF);
    }
}
