//! The sharded device registry: fleet state under concurrent access.
//!
//! A campaign runs many attestation sessions at once, and every session
//! must consult and update device state (is this device still eligible?
//! how many times has it failed in a row?). A single `Mutex<HashMap>`
//! would serialise the whole fleet on that one lock; the registry instead
//! splits the id space over `N` shards, each behind its own [`Mutex`], so
//! sessions against different devices contend only when their ids hash to
//! the same shard.
//!
//! Per device the registry keeps a [`FleetStatus`] lifecycle and a bounded
//! [`RingBuffer`] of recent [`SessionOutcome`]s — enough history for an
//! operator to ask "why was this device quarantined?" without the registry
//! growing without bound on a long-lived service.

use crate::sync::{lock_ranked, rank};
use pufatt::RingBuffer;
use std::collections::HashMap;
use std::sync::Mutex;

/// Identifier of a fleet device.
pub type DeviceId = u32;

/// Lifecycle state of one fleet device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetStatus {
    /// Eligible for attestation.
    Active,
    /// Failing repeatedly; still attested, but on probation — further
    /// failures revoke it, a success reactivates it.
    Quarantined,
    /// Out of service; sessions are refused until re-enrollment.
    Revoked,
}

/// Outcome of one attestation session (possibly after retries).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// Whether the verifier accepted the final attempt.
    pub accepted: bool,
    /// Whether the final attempt's response matched.
    pub response_ok: bool,
    /// Whether the final attempt met the time bound δ.
    pub time_ok: bool,
    /// Whether the session exceeded the scheduler's session timeout.
    pub timed_out: bool,
    /// Attempts spent (1 = no retry).
    pub attempts: u32,
    /// End-to-end time of the session in (simulated) seconds, including
    /// retry backoff.
    pub elapsed_s: f64,
}

/// When to retry, quarantine, and revoke.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifecyclePolicy {
    /// Attempts per session before it counts as failed (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before retry `k` is `backoff_base_s * 2^(k-1)` of simulated
    /// time, added to the session's elapsed time.
    pub backoff_base_s: f64,
    /// Consecutive failed sessions before an [`FleetStatus::Active`]
    /// device is quarantined.
    pub quarantine_after: u32,
    /// Further consecutive failed sessions a quarantined device is allowed
    /// before revocation.
    pub revoke_after: u32,
    /// Consecutive *successes* a quarantined device must string together
    /// before it returns to [`FleetStatus::Active`]. This is the
    /// hysteresis half of the lifecycle: entering quarantine takes
    /// `quarantine_after` failures, leaving it takes `reactivate_after`
    /// successes, so a device on a marginal link (alternating pass/fail)
    /// settles in quarantine instead of flapping between states.
    pub reactivate_after: u32,
}

impl Default for LifecyclePolicy {
    fn default() -> Self {
        LifecyclePolicy {
            max_attempts: 3,
            backoff_base_s: 0.05,
            quarantine_after: 2,
            revoke_after: 2,
            reactivate_after: 2,
        }
    }
}

#[derive(Debug, Clone)]
struct FleetDevice {
    status: FleetStatus,
    consecutive_failures: u32,
    consecutive_successes: u32,
    history: RingBuffer<SessionOutcome>,
}

/// Device counts by lifecycle state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatusCounts {
    /// Devices currently [`FleetStatus::Active`].
    pub active: usize,
    /// Devices currently [`FleetStatus::Quarantined`].
    pub quarantined: usize,
    /// Devices currently [`FleetStatus::Revoked`].
    pub revoked: usize,
}

impl StatusCounts {
    /// Total devices across all states.
    pub fn total(&self) -> usize {
        self.active + self.quarantined + self.revoked
    }
}

/// Fleet state split over independently locked shards.
#[derive(Debug)]
pub struct ShardedRegistry {
    shards: Vec<Mutex<HashMap<DeviceId, FleetDevice>>>,
    history_capacity: usize,
}

impl ShardedRegistry {
    /// Creates an empty registry with `shards` locks, keeping at most
    /// `history_capacity` outcomes per device.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(shards: usize, history_capacity: usize) -> Self {
        assert!(shards > 0, "registry needs at least one shard");
        assert!(history_capacity > 0, "device history capacity must be positive");
        ShardedRegistry {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            history_capacity,
        }
    }

    /// Number of shards (fixed at construction).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, id: DeviceId) -> &Mutex<HashMap<DeviceId, FleetDevice>> {
        // Fibonacci hashing spreads both sequential and structured id
        // spaces evenly over the shards.
        let h = (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Enrolls a device as [`FleetStatus::Active`]. Returns `false` (and
    /// changes nothing) if the id is already present.
    pub fn enroll(&self, id: DeviceId) -> bool {
        let mut shard = lock_ranked(self.shard(id), rank::REGISTRY_SHARD);
        if shard.contains_key(&id) {
            return false;
        }
        shard.insert(
            id,
            FleetDevice {
                status: FleetStatus::Active,
                consecutive_failures: 0,
                consecutive_successes: 0,
                history: RingBuffer::new(self.history_capacity),
            },
        );
        true
    }

    /// Re-enrolls a known device: back to [`FleetStatus::Active`] with the
    /// failure counter cleared (history is kept — the record of *why* it
    /// was revoked survives the decision to trust it again). Returns
    /// `false` for unknown ids.
    pub fn re_enroll(&self, id: DeviceId) -> bool {
        let mut shard = lock_ranked(self.shard(id), rank::REGISTRY_SHARD);
        match shard.get_mut(&id) {
            Some(device) => {
                device.status = FleetStatus::Active;
                device.consecutive_failures = 0;
                device.consecutive_successes = 0;
                true
            }
            None => false,
        }
    }

    /// A device's current status.
    pub fn status(&self, id: DeviceId) -> Option<FleetStatus> {
        lock_ranked(self.shard(id), rank::REGISTRY_SHARD).get(&id).map(|d| d.status)
    }

    /// Manually revokes a device.
    pub fn revoke(&self, id: DeviceId) {
        if let Some(d) = lock_ranked(self.shard(id), rank::REGISTRY_SHARD).get_mut(&id) {
            d.status = FleetStatus::Revoked;
        }
    }

    /// Manually quarantines a device (no-op if revoked).
    pub fn quarantine(&self, id: DeviceId) {
        if let Some(d) = lock_ranked(self.shard(id), rank::REGISTRY_SHARD).get_mut(&id) {
            if d.status != FleetStatus::Revoked {
                d.status = FleetStatus::Quarantined;
            }
        }
    }

    /// Records a session outcome and applies `policy`'s lifecycle
    /// transitions with hysteresis: `quarantine_after` consecutive failures
    /// demote an active device, `reactivate_after` consecutive successes
    /// promote a quarantined one back (a `0` reactivates on the first
    /// success), and `revoke_after` further consecutive failures inside
    /// quarantine revoke it. Returns the post-transition status, or `None`
    /// for unknown ids.
    pub fn record_outcome(
        &self,
        id: DeviceId,
        outcome: SessionOutcome,
        policy: &LifecyclePolicy,
    ) -> Option<FleetStatus> {
        self.record_outcome_traced(id, outcome, policy).map(|(status, _, _)| status)
    }

    /// [`ShardedRegistry::record_outcome`], additionally exposing the
    /// post-transition streak counters `(status, consecutive_failures,
    /// consecutive_successes)`. The durable campaign journals these with
    /// each session so recovery can restore a device without re-deriving
    /// the lifecycle policy's decisions.
    pub fn record_outcome_traced(
        &self,
        id: DeviceId,
        outcome: SessionOutcome,
        policy: &LifecyclePolicy,
    ) -> Option<(FleetStatus, u32, u32)> {
        let mut shard = lock_ranked(self.shard(id), rank::REGISTRY_SHARD);
        let device = shard.get_mut(&id)?;
        if outcome.accepted {
            device.consecutive_failures = 0;
            device.consecutive_successes += 1;
            if device.status == FleetStatus::Quarantined
                && device.consecutive_successes >= policy.reactivate_after.max(1)
            {
                device.status = FleetStatus::Active;
                device.consecutive_successes = 0;
            }
        } else {
            device.consecutive_successes = 0;
            device.consecutive_failures += 1;
            if device.status == FleetStatus::Active && device.consecutive_failures >= policy.quarantine_after {
                device.status = FleetStatus::Quarantined;
                device.consecutive_failures = 0;
            } else if device.status == FleetStatus::Quarantined && device.consecutive_failures >= policy.revoke_after {
                device.status = FleetStatus::Revoked;
            }
        }
        device.history.push(outcome);
        Some((device.status, device.consecutive_failures, device.consecutive_successes))
    }

    /// Restores a device from persisted state (durable-store recovery),
    /// enrolling it if unknown and otherwise overwriting its lifecycle
    /// state wholesale. `history` is oldest-first; `total_recorded` is the
    /// all-time session count, so the rebuilt [`RingBuffer`] reports the
    /// same retention/eviction numbers as the uninterrupted original.
    pub fn restore_device(
        &self,
        id: DeviceId,
        status: FleetStatus,
        consecutive_failures: u32,
        consecutive_successes: u32,
        history: Vec<SessionOutcome>,
        total_recorded: u64,
    ) {
        let mut shard = lock_ranked(self.shard(id), rank::REGISTRY_SHARD);
        shard.insert(
            id,
            FleetDevice {
                status,
                consecutive_failures,
                consecutive_successes,
                history: RingBuffer::rehydrate(self.history_capacity, history, total_recorded),
            },
        );
    }

    /// A device's retained session history, oldest first.
    pub fn history(&self, id: DeviceId) -> Option<Vec<SessionOutcome>> {
        lock_ranked(self.shard(id), rank::REGISTRY_SHARD)
            .get(&id)
            .map(|d| d.history.iter().cloned().collect())
    }

    /// Total sessions ever recorded for a device (retained + rolled off).
    pub fn sessions_recorded(&self, id: DeviceId) -> Option<u64> {
        lock_ranked(self.shard(id), rank::REGISTRY_SHARD)
            .get(&id)
            .map(|d| d.history.total_pushed())
    }

    /// Number of enrolled devices (all states).
    pub fn device_count(&self) -> usize {
        self.shards.iter().map(|s| lock_ranked(s, rank::REGISTRY_SHARD).len()).sum()
    }

    /// Device counts by state, taken shard by shard (each shard is
    /// consistent; the total is a near-point-in-time view).
    pub fn status_counts(&self) -> StatusCounts {
        let mut counts = StatusCounts::default();
        for shard in &self.shards {
            for device in lock_ranked(shard, rank::REGISTRY_SHARD).values() {
                match device.status {
                    FleetStatus::Active => counts.active += 1,
                    FleetStatus::Quarantined => counts.quarantined += 1,
                    FleetStatus::Revoked => counts.revoked += 1,
                }
            }
        }
        counts
    }

    /// All enrolled ids, ascending.
    pub fn ids(&self) -> Vec<DeviceId> {
        let mut ids: Vec<DeviceId> = self
            .shards
            .iter()
            .flat_map(|s| lock_ranked(s, rank::REGISTRY_SHARD).keys().copied().collect::<Vec<_>>())
            .collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::lock;

    fn failed() -> SessionOutcome {
        SessionOutcome {
            accepted: false,
            response_ok: false,
            time_ok: true,
            timed_out: false,
            attempts: 3,
            elapsed_s: 0.2,
        }
    }

    fn passed() -> SessionOutcome {
        SessionOutcome {
            accepted: true,
            response_ok: true,
            time_ok: true,
            timed_out: false,
            attempts: 1,
            elapsed_s: 0.1,
        }
    }

    #[test]
    fn enrollment_and_duplicate_refusal() {
        let reg = ShardedRegistry::new(4, 8);
        assert!(reg.enroll(7));
        assert!(!reg.enroll(7), "duplicate enroll must be refused");
        assert_eq!(reg.status(7), Some(FleetStatus::Active));
        assert_eq!(reg.status(8), None);
        assert_eq!(reg.device_count(), 1);
    }

    #[test]
    fn failures_quarantine_then_revoke() {
        let reg = ShardedRegistry::new(2, 8);
        let policy = LifecyclePolicy {
            quarantine_after: 2,
            revoke_after: 2,
            ..LifecyclePolicy::default()
        };
        reg.enroll(1);
        assert_eq!(reg.record_outcome(1, failed(), &policy), Some(FleetStatus::Active));
        assert_eq!(reg.record_outcome(1, failed(), &policy), Some(FleetStatus::Quarantined));
        assert_eq!(reg.record_outcome(1, failed(), &policy), Some(FleetStatus::Quarantined));
        assert_eq!(reg.record_outcome(1, failed(), &policy), Some(FleetStatus::Revoked));
        assert_eq!(reg.status_counts(), StatusCounts { active: 0, quarantined: 0, revoked: 1 });
    }

    #[test]
    fn reactivation_needs_consecutive_successes() {
        let reg = ShardedRegistry::new(2, 8);
        let policy = LifecyclePolicy {
            quarantine_after: 1,
            reactivate_after: 2,
            ..LifecyclePolicy::default()
        };
        reg.enroll(1);
        assert_eq!(reg.record_outcome(1, failed(), &policy), Some(FleetStatus::Quarantined));
        assert_eq!(
            reg.record_outcome(1, passed(), &policy),
            Some(FleetStatus::Quarantined),
            "one success is not enough"
        );
        assert_eq!(reg.record_outcome(1, passed(), &policy), Some(FleetStatus::Active), "the second one is");
    }

    #[test]
    fn flapping_device_settles_in_quarantine() {
        // Alternating pass/fail never strings together the two successes
        // reactivation demands, and quarantine failures only revoke when
        // *consecutive* — the hysteresis holds the device in quarantine.
        let reg = ShardedRegistry::new(2, 8);
        let policy = LifecyclePolicy {
            quarantine_after: 2,
            revoke_after: 2,
            reactivate_after: 2,
            ..LifecyclePolicy::default()
        };
        reg.enroll(1);
        reg.record_outcome(1, failed(), &policy);
        reg.record_outcome(1, failed(), &policy);
        assert_eq!(reg.status(1), Some(FleetStatus::Quarantined));
        for _ in 0..6 {
            reg.record_outcome(1, passed(), &policy);
            assert_eq!(reg.record_outcome(1, failed(), &policy), Some(FleetStatus::Quarantined), "no flapping");
        }
    }

    #[test]
    fn re_enrollment_reactivates_a_revoked_device() {
        let reg = ShardedRegistry::new(2, 8);
        reg.enroll(3);
        reg.revoke(3);
        assert_eq!(reg.status(3), Some(FleetStatus::Revoked));
        assert!(reg.re_enroll(3));
        assert_eq!(reg.status(3), Some(FleetStatus::Active));
        assert!(!reg.re_enroll(99), "unknown devices cannot re-enroll");
    }

    #[test]
    fn history_is_bounded_per_device() {
        let reg = ShardedRegistry::new(2, 3);
        let policy = LifecyclePolicy::default();
        reg.enroll(1);
        for _ in 0..5 {
            reg.record_outcome(1, passed(), &policy);
        }
        assert_eq!(reg.history(1).unwrap().len(), 3);
        assert_eq!(reg.sessions_recorded(1), Some(5));
    }

    #[test]
    fn restore_device_rebuilds_lifecycle_and_history() {
        let reg = ShardedRegistry::new(2, 3);
        reg.restore_device(9, FleetStatus::Quarantined, 1, 0, vec![passed(), failed()], 5);
        assert_eq!(reg.status(9), Some(FleetStatus::Quarantined));
        assert_eq!(reg.history(9).unwrap().len(), 2);
        assert_eq!(reg.sessions_recorded(9), Some(5), "all-time count survives restore");
        let policy = LifecyclePolicy { revoke_after: 2, ..LifecyclePolicy::default() };
        assert_eq!(
            reg.record_outcome_traced(9, failed(), &policy),
            Some((FleetStatus::Revoked, 2, 0)),
            "restored streaks feed straight into the lifecycle policy"
        );
    }

    #[test]
    fn sharding_spreads_devices() {
        let reg = ShardedRegistry::new(8, 4);
        for id in 0..64 {
            reg.enroll(id);
        }
        assert_eq!(reg.device_count(), 64);
        assert_eq!(reg.ids(), (0..64).collect::<Vec<_>>());
        let nonempty = reg.shards.iter().filter(|s| !lock(s).is_empty()).count();
        assert!(nonempty >= 6, "sequential ids should hit most shards, got {nonempty}");
    }

    #[test]
    fn concurrent_updates_from_many_threads() {
        use std::sync::Arc;
        let reg = Arc::new(ShardedRegistry::new(4, 4));
        let policy = LifecyclePolicy::default();
        for id in 0..32 {
            reg.enroll(id);
        }
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for id in (t..32).step_by(4) {
                        for _ in 0..10 {
                            reg.record_outcome(id, passed(), &policy);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for id in 0..32 {
            assert_eq!(reg.sessions_recorded(id), Some(10));
        }
    }
}
