//! The fleet engine as a service: per-request attestation fronted by a
//! wire protocol.
//!
//! [`run_campaign`](crate::campaign::run_campaign) drives a whole fleet
//! from one process — it owns the schedule, so it can provision a device
//! and run all of its sessions inside one pool job. A *server* cannot:
//! requests arrive one at a time, from many connections, in whatever
//! order the network delivers them. [`FleetService`] is the façade that
//! turns the campaign internals into that shape:
//!
//! * [`FleetService::enroll`] provisions one device (registry entry plus
//!   a live prover/verifier session slot);
//! * [`FleetService::open_session`] gates one attestation session (the
//!   revocation check the campaign runner performs before each session);
//! * [`FleetService::attest`] runs exactly one session — the same
//!   [`run_one_session`](crate::campaign)/chaos path the in-process
//!   campaign uses, so a fixed-seed campaign driven through the service
//!   produces **bit-identical** verdicts to `run_campaign` (pinned by
//!   `service_matches_in_process_campaign` below and end-to-end over real
//!   sockets by `pufatt-transport`);
//! * [`FleetService::abort_session`] records a session the transport
//!   opened but never completed (client vanished mid-handshake) as a
//!   lost, timed-out failure — the same accounting a chaos campaign gives
//!   a session the channel ate, so quarantine hysteresis keeps working
//!   when the loss happens at the socket layer instead of the simulated
//!   channel.
//!
//! # Ordering contract
//!
//! One device's sessions must be applied in order (each session advances
//! the device's seeded RNG). The service serialises per *slot shard*:
//! every call for device `id` locks shard [`FleetService::shard_of`]`(id)`
//! for the duration of the session. A transport that dispatches each
//! device's requests to one shard-affine worker (as `pufatt-transport`
//! does) therefore preserves per-device order end to end while distinct
//! shards attest fully in parallel.

use crate::campaign::{
    device_is_flaky, device_is_tampered, provision_device, run_one_chaos_session, run_one_session, CampaignConfig,
    DeviceRecord, DeviceSession, SessionEvent,
};
use crate::durable::{
    config_fingerprint, fast_forward, from_outcome_rec, from_stored, journal, storage_err, to_outcome_rec, to_stored,
    DevicePrior,
};
use crate::metrics::{FleetMetrics, FleetSnapshot};
use crate::registry::{DeviceId, FleetStatus, SessionOutcome, ShardedRegistry};
use crate::sync::{lock_ranked, rank};
use pufatt::PufattError;
use pufatt_alupuf::device::AluPufDesign;
use pufatt_store::record::Record;
use pufatt_store::state::MetaInfo;
use pufatt_store::{ShardedStore, StoreError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One device's server-side state.
enum Slot {
    /// Provisioned and ready to attest.
    Ready {
        /// Live prover/verifier session state.
        session: Box<DeviceSession>,
        /// Session events journaled for this device (the cursor position a
        /// journaled service writes after each one). Tracked here so the
        /// service never has to read the store back on the hot path.
        events_seen: u32,
    },
    /// Provisioning failed; the device is enrolled in the registry but can
    /// never run a session this campaign (mirrors the in-process
    /// campaign's abandoned devices).
    Abandoned,
}

/// How [`FleetService::enroll`] left a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnrollOutcome {
    /// Whether this call created the device (false: it was already
    /// enrolled — enrollment is idempotent, the live session state is
    /// kept).
    pub fresh: bool,
    /// The device's lifecycle state after the call.
    pub status: FleetStatus,
}

/// What [`FleetService::open_session`] decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionGate {
    /// The session may proceed; `ticket` identifies it until the matching
    /// [`FleetService::attest`] (or abort).
    Granted {
        /// Opaque session ticket (unique per service instance).
        ticket: u64,
    },
    /// The device is revoked; the session was counted as refused.
    Refused,
    /// The device was enrolled but could not be provisioned; it cannot
    /// attest.
    Faulty,
    /// The device id is not enrolled.
    Unknown,
    /// The device's durable home shard is sick (Degraded or Failed): the
    /// session is refused up front, before any RNG is consumed or any
    /// record written, so no accepted-but-undurable verdict can exist.
    /// Devices on healthy shards keep attesting; an operator
    /// [`FleetService::reopen_shard`] restores service.
    Unavailable,
}

/// The verdict of one service-driven session.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceVerdict {
    /// The session reached a verdict (accepted or rejected) and the
    /// lifecycle policy was applied.
    Closed {
        /// The session's outcome, exactly as the in-process campaign
        /// would have recorded it.
        outcome: SessionOutcome,
        /// The device's lifecycle state after the outcome.
        status: FleetStatus,
    },
    /// The device was revoked when the attest arrived; the session was
    /// refused without running.
    Refused,
    /// The device faulted outside the protocol (trap mid-attestation);
    /// no verdict, nothing recorded in the registry.
    Fault,
    /// The device id is not enrolled (or was never provisioned).
    Unknown,
    /// The device's durable home shard is sick; the session was refused
    /// before running (see [`SessionGate::Unavailable`]).
    Unavailable,
}

/// The fleet engine behind a per-request API — see the module docs.
pub struct FleetService {
    cfg: CampaignConfig,
    design: Arc<AluPufDesign>,
    registry: ShardedRegistry,
    metrics: FleetMetrics,
    slots: Vec<Mutex<HashMap<DeviceId, Slot>>>,
    next_ticket: AtomicU64,
    /// When present, every enrollment, verdict, refusal, and cursor is
    /// journaled through the sharded store, and construction restored the
    /// service from whatever the store already held.
    journal: Option<Arc<ShardedStore>>,
    /// Background group-commit thread bounding power-cut loss to the
    /// configured commit interval. Spawned by [`FleetService::with_journal`]
    /// when `commit_interval_s > 0`; stopped (with a final flush) on drop.
    committer: Option<pufatt_store::Committer>,
}

impl FleetService {
    /// Builds a service around a campaign configuration. The `devices`,
    /// `workers` and `queue_depth` fields are ignored — the transport
    /// decides who connects and how requests queue; everything
    /// verdict-affecting (seed, PUF profile, checksum parameters, policy,
    /// chaos plan) is honoured exactly as `run_campaign` would.
    ///
    /// # Errors
    ///
    /// Rejects configurations `run_campaign` would reject before any
    /// thread spawns (unsupported PUF width, zero sessions).
    pub fn new(cfg: CampaignConfig) -> Result<Self, PufattError> {
        let width = cfg.puf.width;
        if !(width.is_power_of_two() && (4..=32).contains(&width)) {
            return Err(PufattError::UnsupportedWidth { width });
        }
        if cfg.sessions_per_device == 0 {
            return Err(PufattError::Codegen("service needs sessions_per_device > 0".into()));
        }
        let shards = cfg.shards.max(1);
        Ok(FleetService {
            design: Arc::new(AluPufDesign::new(cfg.puf.clone())),
            registry: ShardedRegistry::new(shards, cfg.history_capacity.max(1)),
            metrics: FleetMetrics::new(),
            slots: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            next_ticket: AtomicU64::new(1),
            cfg,
            journal: None,
            committer: None,
        })
    }

    /// Builds a service whose state is journaled through (and restored
    /// from) a sharded durable store — the `pufatt serve --state-dir`
    /// entry point. An empty store starts fresh; a store holding this
    /// configuration's campaign is restored: every enrolled device is
    /// re-provisioned and fast-forwarded to its journaled cursor, so the
    /// restarted service hands out **bit-identical** verdicts from where
    /// the previous process stopped.
    ///
    /// # Errors
    ///
    /// As [`FleetService::new`]; [`PufattError::Storage`] if the store
    /// belongs to a different campaign configuration.
    pub fn with_journal(cfg: CampaignConfig, store: Arc<ShardedStore>) -> Result<Self, PufattError> {
        let mut service = FleetService::new(cfg)?;
        let meta = MetaInfo {
            config_hash: config_fingerprint(&service.cfg),
            devices: service.cfg.devices as u32,
            sessions_per_device: service.cfg.sessions_per_device,
            seed: service.cfg.seed,
        };
        match store.meta() {
            Some(existing) if existing != meta => {
                return Err(PufattError::Storage(
                    "state directory belongs to a different campaign configuration; refusing to blend them".into(),
                ));
            }
            Some(_) => {}
            None => {
                store
                    .append_synced(&Record::Meta {
                        config_hash: meta.config_hash,
                        devices: meta.devices,
                        sessions_per_device: meta.sessions_per_device,
                        seed: meta.seed,
                    })
                    .map_err(|e| PufattError::Storage(e.to_string()))?;
            }
        }
        service.metrics = FleetMetrics::from_store_counters(&store.counters());
        let mut restore_error = None;
        store.for_each_device(|id, device| {
            service.registry.restore_device(
                id,
                from_stored(device.status),
                device.fails,
                device.succs,
                device.outcomes.iter().map(from_outcome_rec).collect(),
                device.outcomes_total,
            );
            if id as usize >= service.cfg.devices {
                service.metrics.device_enrolled_online();
            }
            let prior = DevicePrior::from_state(device);
            let shard = service.shard_of(id);
            let slot = if prior.abandoned {
                Slot::Abandoned
            } else {
                match provision_device(&service.design, &service.cfg, id) {
                    Ok(mut session) => {
                        fast_forward(&mut session, &service.cfg, &prior);
                        Slot::Ready { session: Box::new(session), events_seen: prior.events_seen }
                    }
                    Err(e) => {
                        // Provisioning is deterministic; a device that
                        // provisioned before must provision again. Failing
                        // here means the store and the configuration
                        // disagree — refuse the restore.
                        restore_error.get_or_insert(e);
                        return;
                    }
                }
            };
            lock_ranked(&service.slots[shard], rank::SERVICE_SLOT).insert(id, slot);
        });
        if let Some(e) = restore_error {
            return Err(e);
        }
        if service.cfg.commit_interval_s > 0.0 {
            service.committer =
                Some(store.committer(std::time::Duration::from_secs_f64(service.cfg.commit_interval_s)));
        }
        service.journal = Some(store);
        Ok(service)
    }

    /// Appends `record` to the journal (group-committed, forced-sync
    /// fallback under backpressure). No-op for unjournaled services.
    fn journal_event(&self, record: &Record) {
        if let Some(store) = &self.journal {
            // A failed append has already degraded the record's home shard,
            // so every subsequent request for its devices is refused up
            // front by `storage_guard`. The one record lost here is
            // re-derived bit-identically on restore after a reopen — the
            // same determinism argument that covers a lost group-commit
            // tail — so it is deliberately not re-raised to the caller.
            let _ = journal(store, record);
        }
    }

    /// Refuses requests for devices whose durable home shard is sick. A
    /// service without a journal has no shards to be sick.
    ///
    /// # Errors
    ///
    /// [`PufattError::StorageUnavailable`] naming the sick store shard.
    fn storage_guard(&self, id: DeviceId) -> Result<(), PufattError> {
        if let Some(store) = &self.journal {
            let shard = store.shard_of_id(id);
            if store.shard_health(shard) != pufatt_store::ShardHealth::Healthy {
                return Err(PufattError::StorageUnavailable { shard: shard as u32 });
            }
        }
        Ok(())
    }

    /// Journals the post-session cursor for a device's live slot.
    fn journal_cursor(&self, id: DeviceId, slot: &mut Slot) {
        if self.journal.is_none() {
            return;
        }
        if let Slot::Ready { session, events_seen } = slot {
            *events_seen += 1;
            let c = session.cursor();
            self.journal_event(&Record::DeviceCursor {
                id,
                events_done: *events_seen,
                session_pos: c.session_pos,
                noise_pos: c.noise_pos,
                noise_evals: c.noise_evals,
                tamper_parity: c.tamper_parity,
            });
        }
    }

    /// The verdict-affecting configuration this service runs.
    pub fn config(&self) -> &CampaignConfig {
        &self.cfg
    }

    /// Number of slot shards (serialisation domains for per-device order).
    pub fn shard_count(&self) -> usize {
        self.slots.len()
    }

    /// The shard all of device `id`'s requests must be serialised on.
    pub fn shard_of(&self, id: DeviceId) -> usize {
        id as usize % self.slots.len()
    }

    /// Enrolls and provisions one device. Idempotent: a second call for a
    /// live device changes nothing and reports `fresh: false`.
    ///
    /// # Errors
    ///
    /// Propagates the provisioning failure; the device stays enrolled in
    /// the registry (as in the in-process campaign) but is marked
    /// abandoned and counted as a device fault.
    /// [`PufattError::StorageUnavailable`] if the device's durable home
    /// shard is sick — nothing is admitted that could not be journaled.
    pub fn enroll(&self, id: DeviceId) -> Result<EnrollOutcome, PufattError> {
        let mut slots = lock_ranked(&self.slots[self.shard_of(id)], rank::SERVICE_SLOT);
        self.storage_guard(id)?;
        if self.registry.status(id).is_none() {
            // Admit-or-absent: the enrollment is durable before the device
            // becomes visible in the registry or a slot.
            if let Some(store) = &self.journal {
                // analyze: allow(conc: the slot shard serializes this device's sessions; fsync-before-visibility under it is the ordering point)
                match store.append_synced(&Record::DeviceEnrolled { id }) {
                    Ok(()) | Err(StoreError::IllegalTransition { .. }) => {}
                    Err(e) => return Err(storage_err(e)),
                }
            }
        }
        let fresh = self.registry.enroll(id);
        if fresh && id as usize >= self.cfg.devices {
            self.metrics.device_enrolled_online();
        }
        if slots.contains_key(&id) {
            let status = self.registry.status(id).unwrap_or(FleetStatus::Active);
            return Ok(EnrollOutcome { fresh: false, status });
        }
        match provision_device(&self.design, &self.cfg, id) {
            Ok(session) => {
                slots.insert(id, Slot::Ready { session: Box::new(session), events_seen: 0 });
                let status = self.registry.status(id).unwrap_or(FleetStatus::Active);
                Ok(EnrollOutcome { fresh, status })
            }
            Err(e) => {
                self.metrics.device_fault();
                self.journal_event(&Record::DeviceAbandoned { id });
                slots.insert(id, Slot::Abandoned);
                Err(e)
            }
        }
    }

    /// Gates one attestation session: the pre-session revocation check the
    /// campaign runner performs. A revoked device's session is counted as
    /// refused here (never started), exactly as in-process.
    pub fn open_session(&self, id: DeviceId) -> SessionGate {
        let mut slots = lock_ranked(&self.slots[self.shard_of(id)], rank::SERVICE_SLOT);
        if self.registry.status(id).is_none() {
            return SessionGate::Unknown;
        }
        // Refused before the revocation branch: a sick shard cannot even
        // journal a refusal, so no record is attempted and no device RNG
        // is consumed — re-driving the session after a reopen yields the
        // verdict it would always have had.
        if self.storage_guard(id).is_err() {
            self.metrics.session_unavailable();
            return SessionGate::Unavailable;
        }
        match self.registry.status(id) {
            None => SessionGate::Unknown,
            Some(FleetStatus::Revoked) => {
                self.metrics.session_refused();
                self.journal_event(&Record::SessionRefused { id });
                if let Some(slot) = slots.get_mut(&id) {
                    self.journal_cursor(id, slot);
                }
                SessionGate::Refused
            }
            Some(_) => match slots.get(&id) {
                None => SessionGate::Unknown,
                Some(Slot::Abandoned) => SessionGate::Faulty,
                Some(Slot::Ready { .. }) => {
                    SessionGate::Granted { ticket: self.next_ticket.fetch_add(1, Ordering::Relaxed) }
                }
            },
        }
    }

    /// Runs exactly one attestation session for `id` (with the campaign's
    /// retry policy, and through the chaos harness when the configuration
    /// carries a fault plan), applies the lifecycle policy, and returns
    /// the verdict.
    pub fn attest(&self, id: DeviceId) -> ServiceVerdict {
        let mut slots = lock_ranked(&self.slots[self.shard_of(id)], rank::SERVICE_SLOT);
        if self.registry.status(id).is_none() {
            return ServiceVerdict::Unknown;
        }
        // Checked again here (not only at open_session): the shard may
        // have sickened between the gate and the attest, and running the
        // session would advance device RNG towards a verdict the journal
        // could never hold.
        if self.storage_guard(id).is_err() {
            self.metrics.session_unavailable();
            return ServiceVerdict::Unavailable;
        }
        if self.registry.status(id) == Some(FleetStatus::Revoked) {
            self.metrics.session_refused();
            self.journal_event(&Record::SessionRefused { id });
            if let Some(slot) = slots.get_mut(&id) {
                self.journal_cursor(id, slot);
            }
            return ServiceVerdict::Refused;
        }
        let Some(slot) = slots.get_mut(&id) else {
            return ServiceVerdict::Unknown;
        };
        let session = match slot {
            Slot::Abandoned => return ServiceVerdict::Unknown,
            Slot::Ready { session, .. } => session,
        };
        let event = if self.cfg.chaos.is_some() {
            run_one_chaos_session(session, &self.cfg, &self.metrics)
        } else {
            run_one_session(session, &self.cfg, &self.metrics)
        };
        let verdict = match event {
            SessionEvent::Closed { outcome, retried, dropped, lost, crp_hits, crp_misses } => {
                let (status, fails, succs) = self
                    .registry
                    .record_outcome_traced(id, outcome.clone(), &self.cfg.policy)
                    .unwrap_or((FleetStatus::Active, 0, 0));
                let rec = to_outcome_rec(&outcome, retried, dropped, lost, crp_hits, crp_misses);
                self.journal_event(&Record::SessionClosed {
                    id,
                    outcome: rec,
                    status: to_stored(status),
                    fails,
                    succs,
                });
                ServiceVerdict::Closed { outcome, status }
            }
            SessionEvent::Fault { retried, dropped, crp_hits, crp_misses } => {
                self.journal_event(&Record::SessionFault { id, retried, dropped, crp_hits, crp_misses });
                ServiceVerdict::Fault
            }
        };
        self.journal_cursor(id, slot);
        verdict
    }

    /// Records a session that was opened but never attested — the client
    /// disappeared between [`FleetService::open_session`] and
    /// [`FleetService::attest`]. Accounted exactly like a chaos session
    /// the channel ate: started, lost, rejected by timeout, and fed into
    /// the lifecycle so repeated transport loss quarantines the device.
    pub fn abort_session(&self, id: DeviceId) {
        let mut slots = lock_ranked(&self.slots[self.shard_of(id)], rank::SERVICE_SLOT);
        if self.registry.status(id).is_some() && self.storage_guard(id).is_err() {
            // The lost-session outcome cannot be journaled; counting it
            // into the registry now would put memory ahead of the store.
            // The abort is dropped as unavailable — on a sick shard the
            // session was never granted in the first place.
            self.metrics.session_unavailable();
            return;
        }
        match self.registry.status(id) {
            None => return,
            Some(FleetStatus::Revoked) => {
                // The campaign model refuses sessions on revoked devices;
                // an abort racing a revocation is accounted the same way.
                self.metrics.session_refused();
                self.journal_event(&Record::SessionRefused { id });
                if let Some(slot) = slots.get_mut(&id) {
                    self.journal_cursor(id, slot);
                }
                return;
            }
            Some(_) => {}
        }
        self.metrics.session_started();
        self.metrics.session_lost();
        self.metrics.session_rejected();
        self.metrics.session_timed_out();
        let outcome = SessionOutcome {
            accepted: false,
            response_ok: false,
            time_ok: false,
            timed_out: true,
            attempts: 1,
            elapsed_s: self.cfg.timeout_s,
        };
        self.metrics.observe_latency(outcome.elapsed_s);
        if let Some((status, fails, succs)) = self.registry.record_outcome_traced(id, outcome.clone(), &self.cfg.policy)
        {
            // An abort consumed no device randomness, so the cursor written
            // after it repeats the previous RNG positions with the event
            // count advanced — a restart resumes exactly here.
            let rec = to_outcome_rec(&outcome, 0, 0, true, 0, 0);
            self.journal_event(&Record::SessionClosed { id, outcome: rec, status: to_stored(status), fails, succs });
            if let Some(slot) = slots.get_mut(&id) {
                self.journal_cursor(id, slot);
            }
        }
    }

    /// Revokes a device (operator action). Returns its post-call status,
    /// or `Ok(None)` for unknown ids. The revocation record is journaled
    /// with a forced sync *before* the registry transition becomes
    /// visible: an operator's revocation must survive an immediate crash,
    /// and a crash between the two steps merely re-applies the record on
    /// resume — never the reverse (a visible revocation the journal has
    /// no memory of).
    ///
    /// # Errors
    ///
    /// [`PufattError::Storage`] if the synced append fails. The registry
    /// is left untouched, so the operator sees the revocation refused
    /// rather than a trust decision that would evaporate on restart.
    pub fn revoke(&self, id: DeviceId) -> Result<Option<FleetStatus>, PufattError> {
        let _slots = lock_ranked(&self.slots[self.shard_of(id)], rank::SERVICE_SLOT);
        let Some(status) = self.registry.status(id) else {
            return Ok(None);
        };
        self.storage_guard(id)?;
        if status != FleetStatus::Revoked {
            if let Some(store) = &self.journal {
                let rec = Record::StatusChanged { id, status: pufatt_store::record::StoredStatus::Revoked };
                // analyze: allow(conc: the slot shard serializes this device's sessions; fsync-before-visibility under it is the ordering point)
                store.append_synced(&rec).map_err(storage_err)?;
            }
            self.registry.revoke(id);
        }
        Ok(self.registry.status(id))
    }

    /// Re-enrolls a known device (operator action): back to Active with
    /// streaks cleared, history kept. Returns `Ok(false)` for unknown
    /// ids. Journaled with a forced sync before the registry transition,
    /// like [`FleetService::revoke`].
    ///
    /// # Errors
    ///
    /// [`PufattError::Storage`] if the synced append fails; the registry
    /// is left untouched.
    pub fn re_enroll(&self, id: DeviceId) -> Result<bool, PufattError> {
        let _slots = lock_ranked(&self.slots[self.shard_of(id)], rank::SERVICE_SLOT);
        if self.registry.status(id).is_none() {
            return Ok(false);
        }
        self.storage_guard(id)?;
        if let Some(store) = &self.journal {
            let rec = Record::DeviceReEnrolled { id };
            // analyze: allow(conc: the slot shard serializes this device's sessions; fsync-before-visibility under it is the ordering point)
            store.append_synced(&rec).map_err(storage_err)?;
        }
        Ok(self.registry.re_enroll(id))
    }

    /// A device's current lifecycle state.
    pub fn status(&self, id: DeviceId) -> Option<FleetStatus> {
        self.registry.status(id)
    }

    /// Point-in-time counters and device states.
    pub fn snapshot(&self) -> FleetSnapshot {
        self.metrics.snapshot(self.registry.status_counts())
    }

    /// Per-device end states and retained histories, ascending by id —
    /// the same determinism witness `run_campaign` reports, so a service
    /// campaign can be compared bit-for-bit with an in-process one.
    pub fn device_records(&self) -> Vec<DeviceRecord> {
        self.registry
            .ids()
            .into_iter()
            .map(|id| DeviceRecord {
                id,
                tampered: device_is_tampered(self.cfg.seed, id, self.cfg.tamper_fraction),
                flaky: matches!(&self.cfg.chaos, Some(c) if device_is_flaky(self.cfg.seed, id, c.flaky_fraction)),
                status: self.registry.status(id).unwrap_or(FleetStatus::Active),
                outcomes: self.registry.history(id).unwrap_or_default(),
            })
            .collect()
    }

    /// Flushes any group-committed tail and writes a snapshot checkpoint,
    /// so a subsequent [`FleetService::with_journal`] restore replays a
    /// short WAL suffix instead of the whole history. No-op for an
    /// unjournaled service.
    ///
    /// # Errors
    ///
    /// [`PufattError::Storage`] when the flush or checkpoint write fails;
    /// the journal itself stays consistent (the checkpoint is advisory).
    pub fn checkpoint(&self) -> Result<(), PufattError> {
        if let Some(store) = &self.journal {
            store.flush().map_err(storage_err)?;
            store.checkpoint().map_err(storage_err)?;
        }
        Ok(())
    }

    /// Point-in-time storage statistics (WAL bytes, replay counts, shard
    /// health tally) when the service is journaled, `None` otherwise.
    pub fn store_stats(&self) -> Option<pufatt_store::StoreStats> {
        self.journal.as_ref().map(|store| store.stats())
    }

    /// Operator recovery: reopens a sick *store* shard (fresh handles,
    /// shard-local recovery against whatever is actually durable) and
    /// rebuilds the in-memory state of every device homed on it from the
    /// reopened journal — registry entry, provisioned session,
    /// fast-forward to the journaled cursor. In-memory progress past the
    /// durable prefix (the at-most-one session whose record the failing
    /// append lost) is rewound; re-driving it yields a bit-identical
    /// verdict, exactly like a post-power-cut resume. Returns the number
    /// of devices restored.
    ///
    /// Call this while the shard's traffic is still being refused (it is,
    /// until the reopen succeeds): a request racing the rebuild could
    /// otherwise attest against pre-rewind session state.
    ///
    /// # Errors
    ///
    /// [`PufattError::Storage`] for an unjournaled service or when the
    /// underlying reopen fails (the shard is then marked Failed and keeps
    /// refusing); provisioning errors if the restored records disagree
    /// with the configuration.
    pub fn reopen_shard(&self, store_shard: usize) -> Result<usize, PufattError> {
        let Some(store) = &self.journal else {
            return Err(PufattError::Storage("service has no journal; nothing to reopen".into()));
        };
        store.reopen_shard(store_shard).map_err(storage_err)?;
        let mut restored = 0;
        let mut restore_error = None;
        store.for_each_device_in(store_shard, |id, device| {
            if restore_error.is_some() {
                return;
            }
            self.registry.restore_device(
                id,
                from_stored(device.status),
                device.fails,
                device.succs,
                device.outcomes.iter().map(from_outcome_rec).collect(),
                device.outcomes_total,
            );
            let prior = DevicePrior::from_state(device);
            let slot = if prior.abandoned {
                Slot::Abandoned
            } else {
                match provision_device(&self.design, &self.cfg, id) {
                    Ok(mut session) => {
                        fast_forward(&mut session, &self.cfg, &prior);
                        Slot::Ready { session: Box::new(session), events_seen: prior.events_seen }
                    }
                    Err(e) => {
                        restore_error.get_or_insert(e);
                        return;
                    }
                }
            };
            lock_ranked(&self.slots[self.shard_of(id)], rank::SERVICE_SLOT).insert(id, slot);
            restored += 1;
        });
        if let Some(e) = restore_error {
            return Err(e);
        }
        Ok(restored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, small_test_config, ChaosConfig};
    use pufatt_faults::FaultPlan;

    /// Drives a service exactly as a well-behaved wire client fleet would:
    /// enroll everything, then interleave sessions across devices.
    fn drive_service(cfg: &CampaignConfig) -> (Vec<DeviceRecord>, FleetSnapshot) {
        let service = FleetService::new(cfg.clone()).expect("valid config");
        let ids: Vec<DeviceId> = (0..cfg.devices as DeviceId).collect();
        for &id in &ids {
            // Abandoned devices keep their registry entry; the client just
            // skips their sessions (same as the in-process campaign).
            let _ = service.enroll(id);
        }
        // Interleave: session k of every device before session k+1 of any —
        // a deliberately different schedule from run_campaign's
        // device-at-a-time jobs, to show scheduling cannot change verdicts.
        for _ in 0..cfg.sessions_per_device {
            for &id in &ids {
                match service.open_session(id) {
                    SessionGate::Granted { .. } => {
                        let verdict = service.attest(id);
                        assert!(
                            matches!(verdict, ServiceVerdict::Closed { .. } | ServiceVerdict::Fault),
                            "granted session must run: {verdict:?}"
                        );
                    }
                    SessionGate::Refused | SessionGate::Faulty => {}
                    SessionGate::Unknown => panic!("enrolled device went unknown"),
                    SessionGate::Unavailable => panic!("unjournaled service has no shards to be sick"),
                }
            }
        }
        (service.device_records(), service.snapshot())
    }

    #[test]
    fn service_matches_in_process_campaign() {
        let cfg = small_test_config(12, 3, 0xC0FFEE);
        let in_process = run_campaign(&cfg).expect("campaign runs");
        let (records, snapshot) = drive_service(&cfg);
        assert_eq!(records, in_process.device_records, "verdicts must be bit-identical");
        assert_eq!(snapshot, in_process.snapshot, "counters must match exactly");
    }

    #[test]
    fn chaos_service_matches_in_process_campaign() {
        let mut cfg = small_test_config(10, 2, 0xFA17);
        cfg.sessions_per_device = 4;
        cfg.chaos = Some(ChaosConfig {
            plan: FaultPlan::clean(0).with_drops(0.3).with_bit_flips(0.01),
            flaky_fraction: 0.5,
        });
        let in_process = run_campaign(&cfg).expect("campaign runs");
        let (records, snapshot) = drive_service(&cfg);
        assert_eq!(records, in_process.device_records);
        assert_eq!(snapshot, in_process.snapshot);
    }

    #[test]
    fn enroll_is_idempotent_and_revocation_refuses() {
        let cfg = small_test_config(4, 1, 3);
        let service = FleetService::new(cfg).expect("valid config");
        let first = service.enroll(0).expect("provision");
        assert!(first.fresh);
        let second = service.enroll(0).expect("idempotent");
        assert!(!second.fresh);
        service.revoke(0).expect("journal accepts");
        assert_eq!(service.open_session(0), SessionGate::Refused);
        assert_eq!(service.attest(0), ServiceVerdict::Refused);
        assert_eq!(service.snapshot().sessions_refused, 2);
        assert_eq!(service.open_session(99), SessionGate::Unknown);
        assert_eq!(service.attest(99), ServiceVerdict::Unknown);
    }

    #[test]
    fn aborted_sessions_walk_the_lifecycle() {
        let mut cfg = small_test_config(2, 1, 7);
        cfg.policy.quarantine_after = 2;
        let service = FleetService::new(cfg).expect("valid config");
        service.enroll(1).expect("provision");
        for _ in 0..2 {
            assert!(matches!(service.open_session(1), SessionGate::Granted { .. }));
            service.abort_session(1);
        }
        assert_eq!(service.status(1), Some(FleetStatus::Quarantined), "transport loss must quarantine");
        let snap = service.snapshot();
        assert_eq!(snap.sessions_lost, 2);
        assert_eq!(snap.sessions_started, snap.sessions_rejected);
        service.abort_session(42); // unknown ids are ignored
        assert_eq!(service.snapshot().sessions_lost, 2);
    }

    fn sharded_opts(cfg: &CampaignConfig) -> pufatt_store::ShardedOptions {
        pufatt_store::ShardedOptions {
            history_capacity: cfg.history_capacity,
            shards: 4,
            range_width: 2,
            ..pufatt_store::ShardedOptions::default()
        }
    }

    fn open_store(cfg: &CampaignConfig, vfs: &pufatt_store::SimVfs) -> Arc<ShardedStore> {
        Arc::new(ShardedStore::open(Arc::new(vfs.clone()), sharded_opts(cfg)).expect("recovery"))
    }

    #[test]
    fn journaled_service_restarts_bit_identically() {
        let cfg = small_test_config(6, 2, 0x5E12);
        let (reference_records, reference_snapshot) = drive_service(&cfg);

        let vfs = pufatt_store::SimVfs::new();
        let ids: Vec<DeviceId> = (0..cfg.devices as DeviceId).collect();
        let service = FleetService::with_journal(cfg.clone(), open_store(&cfg, &vfs)).expect("fresh journal");
        for &id in &ids {
            let _ = service.enroll(id);
        }
        // First session of every device, then stop the process model (a
        // graceful handle drop: nothing was synced beyond the group
        // commit, but no power cut means nothing is lost either).
        for &id in &ids {
            if matches!(service.open_session(id), SessionGate::Granted { .. }) {
                let _ = service.attest(id);
            }
        }
        drop(service);

        let service = FleetService::with_journal(cfg.clone(), open_store(&cfg, &vfs)).expect("restore");
        for _ in 1..cfg.sessions_per_device {
            for &id in &ids {
                if matches!(service.open_session(id), SessionGate::Granted { .. }) {
                    let _ = service.attest(id);
                }
            }
        }
        assert_eq!(service.device_records(), reference_records, "restart must not change verdicts");
        assert_eq!(service.snapshot(), reference_snapshot, "restart must not change counters");
    }

    #[test]
    fn journaled_service_survives_a_power_cut() {
        // Tamper-free so every session closes (no refusals): a device's
        // retained history length then equals its committed session count,
        // which lets the client re-drive lost sessions to completion.
        let mut cfg = small_test_config(5, 2, 0x70C1);
        cfg.tamper_fraction = 0.0;
        cfg.sessions_per_device = 3;
        let (reference_records, reference_snapshot) = drive_service(&cfg);

        let vfs = pufatt_store::SimVfs::new();
        let ids: Vec<DeviceId> = (0..cfg.devices as DeviceId).collect();
        let service = FleetService::with_journal(cfg.clone(), open_store(&cfg, &vfs)).expect("fresh journal");
        for &id in &ids {
            let _ = service.enroll(id);
        }
        for _ in 0..2 {
            for &id in &ids {
                if matches!(service.open_session(id), SessionGate::Granted { .. }) {
                    let _ = service.attest(id);
                }
            }
        }
        drop(service);
        // Power cut with a torn tail: group-committed records since the
        // last sync are gone. The restarted service rewinds to the last
        // committed cursor of each device; re-running the lost sessions
        // produces the same verdicts they had (determinism), so driving
        // every device back to a full schedule matches the reference.
        let disk = vfs.power_cut(pufatt_store::TornMode::Torn);
        let service = FleetService::with_journal(cfg.clone(), open_store(&cfg, &disk)).expect("restore after cut");
        for &id in &ids {
            loop {
                let done = service
                    .device_records()
                    .iter()
                    .find(|r| r.id == id)
                    .map(|r| r.outcomes.len())
                    .unwrap_or(0);
                if done >= cfg.sessions_per_device as usize {
                    break;
                }
                assert!(matches!(service.open_session(id), SessionGate::Granted { .. }));
                let _ = service.attest(id);
            }
        }
        assert_eq!(service.device_records(), reference_records, "power cut must not change verdicts");
        assert_eq!(service.snapshot(), reference_snapshot, "power cut must not change counters");
    }

    #[test]
    fn sick_shard_refuses_typed_and_reopen_resumes_bit_identically() {
        // Tamper-free so every session closes; the retained history length
        // of a device then equals its completed session count, letting the
        // client re-drive rewound sessions to a full schedule.
        let mut cfg = small_test_config(6, 2, 0x51C6);
        cfg.tamper_fraction = 0.0;
        cfg.sessions_per_device = 3;
        let (reference_records, _) = drive_service(&cfg);

        let vfs = pufatt_store::SimVfs::new();
        let ids: Vec<DeviceId> = (0..cfg.devices as DeviceId).collect();
        let store = open_store(&cfg, &vfs);
        let service = FleetService::with_journal(cfg.clone(), Arc::clone(&store)).expect("fresh journal");
        for &id in &ids {
            let _ = service.enroll(id);
        }
        for &id in &ids {
            assert!(matches!(service.open_session(id), SessionGate::Granted { .. }));
            let _ = service.attest(id);
        }

        // Shard 1's disk goes sticky-sick. The next attest for a device
        // homed there runs (the guard saw Healthy), fails to journal, and
        // degrades the shard — the at-most-one in-memory-ahead session the
        // reopen path later rewinds and re-derives.
        vfs.inject(
            pufatt_store::ErrorInjection::on_prefix("shard-001/", pufatt_store::InjectedErrorKind::Eio).sticky(),
        );
        let sick: Vec<DeviceId> = ids.iter().copied().filter(|&id| store.shard_of_id(id) == 1).collect();
        let healthy: Vec<DeviceId> = ids.iter().copied().filter(|&id| store.shard_of_id(id) != 1).collect();
        assert!(!sick.is_empty() && !healthy.is_empty(), "test needs both populations");
        assert!(matches!(service.attest(sick[0]), ServiceVerdict::Closed { .. }));
        assert_eq!(store.shard_health(1), pufatt_store::ShardHealth::Degraded);

        // Every entry point refuses the sick shard with the typed error —
        // no journal write is attempted, no device RNG is consumed.
        for &id in &sick {
            assert_eq!(service.open_session(id), SessionGate::Unavailable);
            assert_eq!(service.attest(id), ServiceVerdict::Unavailable);
            assert!(matches!(service.enroll(id), Err(PufattError::StorageUnavailable { shard: 1 })));
            assert!(matches!(service.revoke(id), Err(PufattError::StorageUnavailable { shard: 1 })));
            assert!(matches!(service.re_enroll(id), Err(PufattError::StorageUnavailable { shard: 1 })));
        }
        assert!(service.snapshot().sessions_unavailable > 0, "typed refusals must be counted");
        let stats = service.store_stats().expect("journaled");
        assert_eq!((stats.shards_total, stats.shards_degraded), (4, 1));

        // Healthy shards are fully unaffected: their devices complete the
        // whole schedule while shard 1 is down.
        for _ in 1..cfg.sessions_per_device {
            for &id in &healthy {
                assert!(matches!(service.open_session(id), SessionGate::Granted { .. }));
                assert!(matches!(service.attest(id), ServiceVerdict::Closed { .. }));
            }
        }

        // Operator drill: replace the disk, reopen the shard, re-drive its
        // devices. The rewound session re-derives bit-identically.
        vfs.clear_injections("shard-001/");
        let restored = service.reopen_shard(1).expect("reopen succeeds on a healthy disk");
        assert_eq!(restored, sick.len(), "every device homed on the shard is rebuilt");
        assert_eq!(store.shard_health(1), pufatt_store::ShardHealth::Healthy);
        for &id in &sick {
            loop {
                let done = service
                    .device_records()
                    .iter()
                    .find(|r| r.id == id)
                    .map(|r| r.outcomes.len())
                    .unwrap_or(0);
                if done >= cfg.sessions_per_device as usize {
                    break;
                }
                assert!(matches!(service.open_session(id), SessionGate::Granted { .. }));
                assert!(matches!(service.attest(id), ServiceVerdict::Closed { .. }));
            }
        }
        assert_eq!(service.device_records(), reference_records, "degradation and reopen must not change verdicts");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = small_test_config(2, 1, 1);
        cfg.puf.width = 12;
        assert!(FleetService::new(cfg).is_err());
        let mut cfg = small_test_config(2, 1, 1);
        cfg.sessions_per_device = 0;
        assert!(FleetService::new(cfg).is_err());
    }

    #[test]
    fn tickets_are_unique() {
        let cfg = small_test_config(4, 1, 9);
        let service = FleetService::new(cfg).expect("valid config");
        service.enroll(0).expect("provision");
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..16 {
            match service.open_session(0) {
                SessionGate::Granted { ticket } => assert!(seen.insert(ticket), "duplicate ticket"),
                other => panic!("expected grant, got {other:?}"),
            }
            service.abort_session(0);
            // Aborts eventually revoke the device; re-enroll to keep going.
            if service.status(0) == Some(FleetStatus::Revoked) {
                assert!(service.re_enroll(0).expect("journal accepts"));
            }
        }
    }
}
