//! The fleet engine as a service: per-request attestation fronted by a
//! wire protocol.
//!
//! [`run_campaign`](crate::campaign::run_campaign) drives a whole fleet
//! from one process — it owns the schedule, so it can provision a device
//! and run all of its sessions inside one pool job. A *server* cannot:
//! requests arrive one at a time, from many connections, in whatever
//! order the network delivers them. [`FleetService`] is the façade that
//! turns the campaign internals into that shape:
//!
//! * [`FleetService::enroll`] provisions one device (registry entry plus
//!   a live prover/verifier session slot);
//! * [`FleetService::open_session`] gates one attestation session (the
//!   revocation check the campaign runner performs before each session);
//! * [`FleetService::attest`] runs exactly one session — the same
//!   [`run_one_session`](crate::campaign)/chaos path the in-process
//!   campaign uses, so a fixed-seed campaign driven through the service
//!   produces **bit-identical** verdicts to `run_campaign` (pinned by
//!   `service_matches_in_process_campaign` below and end-to-end over real
//!   sockets by `pufatt-transport`);
//! * [`FleetService::abort_session`] records a session the transport
//!   opened but never completed (client vanished mid-handshake) as a
//!   lost, timed-out failure — the same accounting a chaos campaign gives
//!   a session the channel ate, so quarantine hysteresis keeps working
//!   when the loss happens at the socket layer instead of the simulated
//!   channel.
//!
//! # Ordering contract
//!
//! One device's sessions must be applied in order (each session advances
//! the device's seeded RNG). The service serialises per *slot shard*:
//! every call for device `id` locks shard [`FleetService::shard_of`]`(id)`
//! for the duration of the session. A transport that dispatches each
//! device's requests to one shard-affine worker (as `pufatt-transport`
//! does) therefore preserves per-device order end to end while distinct
//! shards attest fully in parallel.

use crate::campaign::{
    device_is_flaky, device_is_tampered, provision_device, run_one_chaos_session, run_one_session, CampaignConfig,
    DeviceRecord, DeviceSession, SessionEvent,
};
use crate::metrics::{FleetMetrics, FleetSnapshot};
use crate::registry::{DeviceId, FleetStatus, SessionOutcome, ShardedRegistry};
use crate::sync::lock;
use pufatt::PufattError;
use pufatt_alupuf::device::AluPufDesign;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One device's server-side state.
enum Slot {
    /// Provisioned and ready to attest.
    Ready(Box<DeviceSession>),
    /// Provisioning failed; the device is enrolled in the registry but can
    /// never run a session this campaign (mirrors the in-process
    /// campaign's abandoned devices).
    Abandoned,
}

/// How [`FleetService::enroll`] left a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnrollOutcome {
    /// Whether this call created the device (false: it was already
    /// enrolled — enrollment is idempotent, the live session state is
    /// kept).
    pub fresh: bool,
    /// The device's lifecycle state after the call.
    pub status: FleetStatus,
}

/// What [`FleetService::open_session`] decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionGate {
    /// The session may proceed; `ticket` identifies it until the matching
    /// [`FleetService::attest`] (or abort).
    Granted {
        /// Opaque session ticket (unique per service instance).
        ticket: u64,
    },
    /// The device is revoked; the session was counted as refused.
    Refused,
    /// The device was enrolled but could not be provisioned; it cannot
    /// attest.
    Faulty,
    /// The device id is not enrolled.
    Unknown,
}

/// The verdict of one service-driven session.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceVerdict {
    /// The session reached a verdict (accepted or rejected) and the
    /// lifecycle policy was applied.
    Closed {
        /// The session's outcome, exactly as the in-process campaign
        /// would have recorded it.
        outcome: SessionOutcome,
        /// The device's lifecycle state after the outcome.
        status: FleetStatus,
    },
    /// The device was revoked when the attest arrived; the session was
    /// refused without running.
    Refused,
    /// The device faulted outside the protocol (trap mid-attestation);
    /// no verdict, nothing recorded in the registry.
    Fault,
    /// The device id is not enrolled (or was never provisioned).
    Unknown,
}

/// The fleet engine behind a per-request API — see the module docs.
pub struct FleetService {
    cfg: CampaignConfig,
    design: Arc<AluPufDesign>,
    registry: ShardedRegistry,
    metrics: FleetMetrics,
    slots: Vec<Mutex<HashMap<DeviceId, Slot>>>,
    next_ticket: AtomicU64,
}

impl FleetService {
    /// Builds a service around a campaign configuration. The `devices`,
    /// `workers` and `queue_depth` fields are ignored — the transport
    /// decides who connects and how requests queue; everything
    /// verdict-affecting (seed, PUF profile, checksum parameters, policy,
    /// chaos plan) is honoured exactly as `run_campaign` would.
    ///
    /// # Errors
    ///
    /// Rejects configurations `run_campaign` would reject before any
    /// thread spawns (unsupported PUF width, zero sessions).
    pub fn new(cfg: CampaignConfig) -> Result<Self, PufattError> {
        let width = cfg.puf.width;
        if !(width.is_power_of_two() && (4..=32).contains(&width)) {
            return Err(PufattError::UnsupportedWidth { width });
        }
        if cfg.sessions_per_device == 0 {
            return Err(PufattError::Codegen("service needs sessions_per_device > 0".into()));
        }
        let shards = cfg.shards.max(1);
        Ok(FleetService {
            design: Arc::new(AluPufDesign::new(cfg.puf.clone())),
            registry: ShardedRegistry::new(shards, cfg.history_capacity.max(1)),
            metrics: FleetMetrics::new(),
            slots: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            next_ticket: AtomicU64::new(1),
            cfg,
        })
    }

    /// The verdict-affecting configuration this service runs.
    pub fn config(&self) -> &CampaignConfig {
        &self.cfg
    }

    /// Number of slot shards (serialisation domains for per-device order).
    pub fn shard_count(&self) -> usize {
        self.slots.len()
    }

    /// The shard all of device `id`'s requests must be serialised on.
    pub fn shard_of(&self, id: DeviceId) -> usize {
        id as usize % self.slots.len()
    }

    /// Enrolls and provisions one device. Idempotent: a second call for a
    /// live device changes nothing and reports `fresh: false`.
    ///
    /// # Errors
    ///
    /// Propagates the provisioning failure; the device stays enrolled in
    /// the registry (as in the in-process campaign) but is marked
    /// abandoned and counted as a device fault.
    pub fn enroll(&self, id: DeviceId) -> Result<EnrollOutcome, PufattError> {
        let mut slots = lock(&self.slots[self.shard_of(id)]);
        let fresh = self.registry.enroll(id);
        if slots.contains_key(&id) {
            let status = self.registry.status(id).unwrap_or(FleetStatus::Active);
            return Ok(EnrollOutcome { fresh: false, status });
        }
        match provision_device(&self.design, &self.cfg, id) {
            Ok(session) => {
                slots.insert(id, Slot::Ready(Box::new(session)));
                let status = self.registry.status(id).unwrap_or(FleetStatus::Active);
                Ok(EnrollOutcome { fresh, status })
            }
            Err(e) => {
                self.metrics.device_fault();
                slots.insert(id, Slot::Abandoned);
                Err(e)
            }
        }
    }

    /// Gates one attestation session: the pre-session revocation check the
    /// campaign runner performs. A revoked device's session is counted as
    /// refused here (never started), exactly as in-process.
    pub fn open_session(&self, id: DeviceId) -> SessionGate {
        let slots = lock(&self.slots[self.shard_of(id)]);
        match self.registry.status(id) {
            None => SessionGate::Unknown,
            Some(FleetStatus::Revoked) => {
                self.metrics.session_refused();
                SessionGate::Refused
            }
            Some(_) => match slots.get(&id) {
                None => SessionGate::Unknown,
                Some(Slot::Abandoned) => SessionGate::Faulty,
                Some(Slot::Ready(_)) => {
                    SessionGate::Granted { ticket: self.next_ticket.fetch_add(1, Ordering::Relaxed) }
                }
            },
        }
    }

    /// Runs exactly one attestation session for `id` (with the campaign's
    /// retry policy, and through the chaos harness when the configuration
    /// carries a fault plan), applies the lifecycle policy, and returns
    /// the verdict.
    pub fn attest(&self, id: DeviceId) -> ServiceVerdict {
        let mut slots = lock(&self.slots[self.shard_of(id)]);
        if self.registry.status(id) == Some(FleetStatus::Revoked) {
            self.metrics.session_refused();
            return ServiceVerdict::Refused;
        }
        let Some(slot) = slots.get_mut(&id) else {
            return ServiceVerdict::Unknown;
        };
        let session = match slot {
            Slot::Abandoned => return ServiceVerdict::Unknown,
            Slot::Ready(session) => session,
        };
        let event = if self.cfg.chaos.is_some() {
            run_one_chaos_session(session, &self.cfg, &self.metrics)
        } else {
            run_one_session(session, &self.cfg, &self.metrics)
        };
        match event {
            SessionEvent::Closed { outcome, .. } => {
                let status = self
                    .registry
                    .record_outcome(id, outcome.clone(), &self.cfg.policy)
                    .unwrap_or(FleetStatus::Active);
                ServiceVerdict::Closed { outcome, status }
            }
            SessionEvent::Fault { .. } => ServiceVerdict::Fault,
        }
    }

    /// Records a session that was opened but never attested — the client
    /// disappeared between [`FleetService::open_session`] and
    /// [`FleetService::attest`]. Accounted exactly like a chaos session
    /// the channel ate: started, lost, rejected by timeout, and fed into
    /// the lifecycle so repeated transport loss quarantines the device.
    pub fn abort_session(&self, id: DeviceId) {
        let _slots = lock(&self.slots[self.shard_of(id)]);
        if self.registry.status(id).is_none() {
            return;
        }
        self.metrics.session_started();
        self.metrics.session_lost();
        self.metrics.session_rejected();
        self.metrics.session_timed_out();
        let outcome = SessionOutcome {
            accepted: false,
            response_ok: false,
            time_ok: false,
            timed_out: true,
            attempts: 1,
            elapsed_s: self.cfg.timeout_s,
        };
        self.metrics.observe_latency(outcome.elapsed_s);
        self.registry.record_outcome(id, outcome, &self.cfg.policy);
    }

    /// Revokes a device (operator action). Returns its post-call status,
    /// or `None` for unknown ids.
    pub fn revoke(&self, id: DeviceId) -> Option<FleetStatus> {
        self.registry.revoke(id);
        self.registry.status(id)
    }

    /// Re-enrolls a known device (operator action): back to Active with
    /// streaks cleared, history kept. Returns `false` for unknown ids.
    pub fn re_enroll(&self, id: DeviceId) -> bool {
        self.registry.re_enroll(id)
    }

    /// A device's current lifecycle state.
    pub fn status(&self, id: DeviceId) -> Option<FleetStatus> {
        self.registry.status(id)
    }

    /// Point-in-time counters and device states.
    pub fn snapshot(&self) -> FleetSnapshot {
        self.metrics.snapshot(self.registry.status_counts())
    }

    /// Per-device end states and retained histories, ascending by id —
    /// the same determinism witness `run_campaign` reports, so a service
    /// campaign can be compared bit-for-bit with an in-process one.
    pub fn device_records(&self) -> Vec<DeviceRecord> {
        self.registry
            .ids()
            .into_iter()
            .map(|id| DeviceRecord {
                id,
                tampered: device_is_tampered(self.cfg.seed, id, self.cfg.tamper_fraction),
                flaky: matches!(&self.cfg.chaos, Some(c) if device_is_flaky(self.cfg.seed, id, c.flaky_fraction)),
                status: self.registry.status(id).unwrap_or(FleetStatus::Active),
                outcomes: self.registry.history(id).unwrap_or_default(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, small_test_config, ChaosConfig};
    use pufatt_faults::FaultPlan;

    /// Drives a service exactly as a well-behaved wire client fleet would:
    /// enroll everything, then interleave sessions across devices.
    fn drive_service(cfg: &CampaignConfig) -> (Vec<DeviceRecord>, FleetSnapshot) {
        let service = FleetService::new(cfg.clone()).expect("valid config");
        let ids: Vec<DeviceId> = (0..cfg.devices as DeviceId).collect();
        for &id in &ids {
            // Abandoned devices keep their registry entry; the client just
            // skips their sessions (same as the in-process campaign).
            let _ = service.enroll(id);
        }
        // Interleave: session k of every device before session k+1 of any —
        // a deliberately different schedule from run_campaign's
        // device-at-a-time jobs, to show scheduling cannot change verdicts.
        for _ in 0..cfg.sessions_per_device {
            for &id in &ids {
                match service.open_session(id) {
                    SessionGate::Granted { .. } => {
                        let verdict = service.attest(id);
                        assert!(
                            matches!(verdict, ServiceVerdict::Closed { .. } | ServiceVerdict::Fault),
                            "granted session must run: {verdict:?}"
                        );
                    }
                    SessionGate::Refused | SessionGate::Faulty => {}
                    SessionGate::Unknown => panic!("enrolled device went unknown"),
                }
            }
        }
        (service.device_records(), service.snapshot())
    }

    #[test]
    fn service_matches_in_process_campaign() {
        let cfg = small_test_config(12, 3, 0xC0FFEE);
        let in_process = run_campaign(&cfg).expect("campaign runs");
        let (records, snapshot) = drive_service(&cfg);
        assert_eq!(records, in_process.device_records, "verdicts must be bit-identical");
        assert_eq!(snapshot, in_process.snapshot, "counters must match exactly");
    }

    #[test]
    fn chaos_service_matches_in_process_campaign() {
        let mut cfg = small_test_config(10, 2, 0xFA17);
        cfg.sessions_per_device = 4;
        cfg.chaos = Some(ChaosConfig {
            plan: FaultPlan::clean(0).with_drops(0.3).with_bit_flips(0.01),
            flaky_fraction: 0.5,
        });
        let in_process = run_campaign(&cfg).expect("campaign runs");
        let (records, snapshot) = drive_service(&cfg);
        assert_eq!(records, in_process.device_records);
        assert_eq!(snapshot, in_process.snapshot);
    }

    #[test]
    fn enroll_is_idempotent_and_revocation_refuses() {
        let cfg = small_test_config(4, 1, 3);
        let service = FleetService::new(cfg).expect("valid config");
        let first = service.enroll(0).expect("provision");
        assert!(first.fresh);
        let second = service.enroll(0).expect("idempotent");
        assert!(!second.fresh);
        service.revoke(0);
        assert_eq!(service.open_session(0), SessionGate::Refused);
        assert_eq!(service.attest(0), ServiceVerdict::Refused);
        assert_eq!(service.snapshot().sessions_refused, 2);
        assert_eq!(service.open_session(99), SessionGate::Unknown);
        assert_eq!(service.attest(99), ServiceVerdict::Unknown);
    }

    #[test]
    fn aborted_sessions_walk_the_lifecycle() {
        let mut cfg = small_test_config(2, 1, 7);
        cfg.policy.quarantine_after = 2;
        let service = FleetService::new(cfg).expect("valid config");
        service.enroll(1).expect("provision");
        for _ in 0..2 {
            assert!(matches!(service.open_session(1), SessionGate::Granted { .. }));
            service.abort_session(1);
        }
        assert_eq!(service.status(1), Some(FleetStatus::Quarantined), "transport loss must quarantine");
        let snap = service.snapshot();
        assert_eq!(snap.sessions_lost, 2);
        assert_eq!(snap.sessions_started, snap.sessions_rejected);
        service.abort_session(42); // unknown ids are ignored
        assert_eq!(service.snapshot().sessions_lost, 2);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = small_test_config(2, 1, 1);
        cfg.puf.width = 12;
        assert!(FleetService::new(cfg).is_err());
        let mut cfg = small_test_config(2, 1, 1);
        cfg.sessions_per_device = 0;
        assert!(FleetService::new(cfg).is_err());
    }

    #[test]
    fn tickets_are_unique() {
        let cfg = small_test_config(4, 1, 9);
        let service = FleetService::new(cfg).expect("valid config");
        service.enroll(0).expect("provision");
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..16 {
            match service.open_session(0) {
                SessionGate::Granted { ticket } => assert!(seen.insert(ticket), "duplicate ticket"),
                other => panic!("expected grant, got {other:?}"),
            }
            service.abort_session(0);
            // Aborts eventually revoke the device; re-enroll to keep going.
            if service.status(0) == Some(FleetStatus::Revoked) {
                assert!(service.re_enroll(0));
            }
        }
    }
}
