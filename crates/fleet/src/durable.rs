//! Persistent campaigns: journal every fleet transition through
//! [`pufatt_store::ShardedStore`] and resume an interrupted run.
//!
//! # What is journaled
//!
//! Campaign identity ([`Record::Meta`]), enrollments, one record per
//! scheduled session ([`Record::SessionClosed`] with verdict +
//! post-transition lifecycle state + streaks + metric deltas,
//! [`Record::SessionRefused`], [`Record::SessionFault`], or
//! [`Record::DeviceAbandoned`]), and — after every scheduled session — a
//! [`Record::DeviceCursor`] snapshot of the device's deterministic
//! position: its session RNG word offset, its PUF noise-RNG word offset
//! and evaluation count, and the tamper-parity bit. Records route to
//! per-device-range WAL shards and ride a *group commit*: appends are
//! acknowledged when applied and queued, and a background
//! [`pufatt_store::Committer`] fsyncs each dirty shard within
//! the configured latency bound ([`CampaignConfig::commit_interval_s`]).
//!
//! # Why resume reproduces the uninterrupted run
//!
//! Campaigns are deterministic in their configuration (see
//! [`crate::campaign`]): every per-device random stream derives from the
//! seed and device id, and one device's sessions run sequentially inside
//! one job. Resume exploits this twice over. The registry, metrics, and
//! histories are restored from the store. Then each device fast-forwards:
//! its journaled cursor restores the RNG positions directly (no replay),
//! any committed session events *after* the last cursor are re-run against
//! scratch metrics purely to advance RNG and channel state (refusals
//! consumed no randomness and are skipped), and the remaining sessions run
//! live. A crash can lose at most the unflushed group-commit tail of each
//! shard — and every lost record is re-derived identically by re-running
//! those sessions, so the final report is bit-identical to a run that was
//! never interrupted (modulo wall-clock time and store statistics).
//!
//! Resuming under a different configuration is refused via the persisted
//! config fingerprint rather than silently blending two campaigns. Worker
//! count, registry shard count, queue depth, and the commit interval are
//! deliberately *excluded* from the fingerprint — they change scheduling
//! and durability latency, never verdicts.
//!
//! # Online enrollment
//!
//! [`RunningCampaign`] exposes the campaign mid-flight:
//! [`RunningCampaign::enroll`] admits a device *while the pool is
//! attesting*, journaling the enrollment with a forced sync before the
//! device becomes visible anywhere — so at every crash point a new device
//! is either fully admitted (and will resume like any other) or entirely
//! absent, never half-enrolled. Devices admitted past the configured
//! fleet size are counted as
//! [`devices_enrolled_online`](crate::metrics::FleetSnapshot::devices_enrolled_online)
//! and re-counted on resume by their id alone.

use crate::campaign::{
    device_is_flaky, device_is_tampered, provision_device, run_one_chaos_session, run_one_session, CampaignConfig,
    CampaignReport, DeviceRecord, DeviceSession, SessionCursor, SessionEvent,
};
use crate::metrics::{FleetMetrics, LatencyHistogram};
use crate::pool::WorkerPool;
use crate::registry::{DeviceId, FleetStatus, ShardedRegistry};
use pufatt::PufattError;
use pufatt_alupuf::device::AluPufDesign;
use pufatt_store::record::{OutcomeRec, Record, StoredStatus};
use pufatt_store::state::{CursorInfo, MetaInfo, EV_REFUSED};
use pufatt_store::{Committer, ShardHealth, ShardedOptions, ShardedStore, StdVfs, StoreError};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fingerprint of the verdict-affecting configuration fields, persisted
/// in [`Record::Meta`]. Scheduling knobs (workers, shards, queue depth,
/// commit interval) are excluded: a campaign may legitimately be resumed
/// on a machine with a different core count or durability budget.
pub fn config_fingerprint(cfg: &CampaignConfig) -> u64 {
    let text = format!(
        "pufatt-campaign-v1|devices={}|sessions={}|seed={}|tamper={:016x}|timeout={:016x}|history={}|puf={:?}|params={:?}|policy={:?}|chaos={:?}",
        cfg.devices,
        cfg.sessions_per_device,
        cfg.seed,
        cfg.tamper_fraction.to_bits(),
        cfg.timeout_s.to_bits(),
        cfg.history_capacity,
        cfg.puf,
        cfg.params,
        cfg.policy,
        cfg.chaos,
    );
    // FNV-1a: tiny, dependency-free, and collision resistance is not a
    // security property here — the fingerprint guards against operator
    // mistakes, not adversaries (a forged state directory already implies
    // a compromised verifier host).
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn storage(e: impl std::fmt::Display) -> PufattError {
    PufattError::Storage(e.to_string())
}

/// Maps a store error onto the fleet error type, preserving the typed
/// per-shard refusal ([`StoreError::ShardUnavailable`] →
/// [`PufattError::StorageUnavailable`]) instead of flattening it to text.
pub(crate) fn storage_err(e: StoreError) -> PufattError {
    match e {
        StoreError::ShardUnavailable { shard } => PufattError::StorageUnavailable { shard },
        other => storage(other),
    }
}

pub(crate) fn to_stored(status: FleetStatus) -> StoredStatus {
    match status {
        FleetStatus::Active => StoredStatus::Active,
        FleetStatus::Quarantined => StoredStatus::Quarantined,
        FleetStatus::Revoked => StoredStatus::Revoked,
    }
}

pub(crate) fn from_stored(status: StoredStatus) -> FleetStatus {
    match status {
        StoredStatus::Active => FleetStatus::Active,
        StoredStatus::Quarantined => FleetStatus::Quarantined,
        StoredStatus::Revoked => FleetStatus::Revoked,
    }
}

pub(crate) fn to_outcome_rec(
    o: &crate::registry::SessionOutcome,
    retried: u32,
    dropped: u32,
    lost: bool,
    crp_hits: u32,
    crp_misses: u32,
) -> OutcomeRec {
    OutcomeRec {
        accepted: o.accepted,
        response_ok: o.response_ok,
        time_ok: o.time_ok,
        timed_out: o.timed_out,
        attempts: o.attempts,
        elapsed_bits: o.elapsed_s.to_bits(),
        retried,
        dropped,
        lost,
        latency_slot: LatencyHistogram::bucket_index(o.elapsed_s) as u8,
        crp_hits,
        crp_misses,
    }
}

pub(crate) fn from_outcome_rec(r: &OutcomeRec) -> crate::registry::SessionOutcome {
    crate::registry::SessionOutcome {
        accepted: r.accepted,
        response_ok: r.response_ok,
        time_ok: r.time_ok,
        timed_out: r.timed_out,
        attempts: r.attempts,
        elapsed_s: r.elapsed_s(),
    }
}

/// Commits one record through the group-commit path, falling back to a
/// forced sync when the shard's commit queue is full (backpressure
/// degrades throughput, never loses the record). A hard failure comes
/// back typed: the store has already degraded the record's home shard, so
/// the caller stops routing work there and the campaign keeps attesting
/// the healthy shards — the lost record is re-derived bit-identically on
/// resume after the shard reopens.
pub(crate) fn journal(store: &ShardedStore, record: &Record) -> Result<(), StoreError> {
    match store.append(record) {
        Err(StoreError::Backpressure) => store.append_synced(record),
        other => other,
    }
}

/// A device's committed position when the store was opened: what resume
/// must fast-forward past before running live sessions.
#[derive(Debug, Clone, Default)]
pub(crate) struct DevicePrior {
    /// Session events after the last cursor (full history if none).
    pub events: Vec<u8>,
    /// Total session events ever committed for the device.
    pub events_seen: u32,
    /// The last committed cursor, if any.
    pub cursor: Option<CursorInfo>,
    /// Whether provisioning already failed for good.
    pub abandoned: bool,
}

impl DevicePrior {
    pub(crate) fn from_state(d: &pufatt_store::DeviceState) -> Self {
        DevicePrior {
            events: d.events.clone(),
            events_seen: d.events_seen,
            cursor: d.cursor,
            abandoned: d.abandoned,
        }
    }
}

/// Fast-forwards a freshly provisioned session to a device's committed
/// position: jump to the cursor (absolute RNG word positions — nothing
/// before it is replayed), then re-run only the post-cursor event tail
/// against scratch metrics (the real counters were already restored from
/// the store; refusals consumed no randomness and are skipped).
pub(crate) fn fast_forward(session: &mut DeviceSession, cfg: &CampaignConfig, prior: &DevicePrior) {
    if let Some(c) = &prior.cursor {
        session.restore_cursor(&SessionCursor {
            session_pos: c.session_pos,
            noise_pos: c.noise_pos,
            noise_evals: c.noise_evals,
            tamper_parity: c.tamper_parity,
        });
    }
    let scratch = FleetMetrics::new();
    for &event in &prior.events {
        if event != EV_REFUSED {
            if cfg.chaos.is_some() {
                run_one_chaos_session(session, cfg, &scratch);
            } else {
                run_one_session(session, cfg, &scratch);
            }
        }
    }
}

fn cursor_record(id: DeviceId, events_done: u32, c: SessionCursor) -> Record {
    Record::DeviceCursor {
        id,
        events_done,
        session_pos: c.session_pos,
        noise_pos: c.noise_pos,
        noise_evals: c.noise_evals,
        tamper_parity: c.tamper_parity,
    }
}

/// The durable version of one device's pool job: skip if the device was
/// abandoned in a previous run, fast-forward past the committed prefix,
/// then run and journal the rest — each session's outcome followed by a
/// cursor so the *next* resume can skip the replay entirely.
///
/// Storage failures stop the device, never the process: once the device's
/// home shard is sick (detected up front or via a failed journal append),
/// the remaining schedule is counted as unavailable and the job returns.
/// Healthy-shard devices are untouched, and a resumed campaign re-derives
/// the stopped device's missing sessions bit-identically after the shard
/// reopens.
fn run_device_durable(
    design: &Arc<AluPufDesign>,
    registry: &ShardedRegistry,
    metrics: &FleetMetrics,
    cfg: &CampaignConfig,
    id: DeviceId,
    store: &ShardedStore,
    prior: &DevicePrior,
) {
    if prior.abandoned {
        // Provisioning is deterministic: it failed before, it would fail
        // again. The fault is already journaled and counted.
        return;
    }
    let home = store.shard_of_id(id);
    let unavailable = |done: u32| {
        for _ in done..cfg.sessions_per_device {
            metrics.session_unavailable();
        }
    };
    let mut session = match provision_device(design, cfg, id) {
        Ok(session) => session,
        Err(_) => {
            // The abandonment may fail to journal on a sick shard; the
            // fault is deterministic and is re-derived (and re-journaled)
            // on resume after the shard reopens.
            let _ = journal(store, &Record::DeviceAbandoned { id });
            metrics.device_fault();
            return;
        }
    };
    fast_forward(&mut session, cfg, prior);
    let mut done = prior.events_seen;
    while done < cfg.sessions_per_device {
        if store.shard_health(home) != ShardHealth::Healthy {
            unavailable(done);
            return;
        }
        if registry.status(id) == Some(FleetStatus::Revoked) {
            if journal(store, &Record::SessionRefused { id }).is_err() {
                unavailable(done);
                return;
            }
            metrics.session_refused();
            done += 1;
            // Cursors are a replay optimisation: losing one costs replay
            // time on the next resume, never correctness.
            let _ = journal(store, &cursor_record(id, done, session.cursor()));
            continue;
        }
        let event = if cfg.chaos.is_some() {
            run_one_chaos_session(&mut session, cfg, metrics)
        } else {
            run_one_session(&mut session, cfg, metrics)
        };
        let journaled = match event {
            SessionEvent::Closed { outcome, retried, dropped, lost, crp_hits, crp_misses } => {
                let rec = to_outcome_rec(&outcome, retried, dropped, lost, crp_hits, crp_misses);
                let Some((status, fails, succs)) = registry.record_outcome_traced(id, outcome, &cfg.policy) else {
                    // The device was enrolled before its job was submitted;
                    // an unknown id here is a registry bug, not a fleet
                    // condition — fail the job, not the state.
                    panic!("device {id} vanished from the registry mid-campaign");
                };
                journal(store, &Record::SessionClosed { id, outcome: rec, status: to_stored(status), fails, succs })
            }
            SessionEvent::Fault { retried, dropped, crp_hits, crp_misses } => {
                journal(store, &Record::SessionFault { id, retried, dropped, crp_hits, crp_misses })
            }
        };
        done += 1;
        if journaled.is_err() {
            // The session itself completed (its outcome is in memory and
            // is re-derived identically on resume, exactly like a lost
            // group-commit tail); the rest of the schedule is refused.
            unavailable(done);
            return;
        }
        let _ = journal(store, &cursor_record(id, done, session.cursor()));
    }
}

/// A persistent campaign mid-flight: the pool is attesting, the committer
/// (if configured) is syncing shards in the background, and new devices
/// can still be admitted. Obtained from [`RunningCampaign::launch`];
/// consumed by [`RunningCampaign::finish`].
pub struct RunningCampaign {
    cfg: Arc<CampaignConfig>,
    design: Arc<AluPufDesign>,
    registry: Arc<ShardedRegistry>,
    metrics: Arc<FleetMetrics>,
    store: Arc<ShardedStore>,
    pool: WorkerPool,
    committer: Option<Committer>,
    start: Instant,
}

impl RunningCampaign {
    /// Validates the configuration, reconciles the store's persisted
    /// campaign identity, restores committed state, and submits every
    /// configured (and previously online-enrolled) device to the pool.
    ///
    /// Pass `resume = false` for a run that must start fresh: an existing
    /// campaign in the store is then refused instead of silently
    /// continued. With `resume = true`, persisted state is restored (an
    /// empty store is simply a fresh start).
    ///
    /// # Errors
    ///
    /// Invalid configurations (as [`crate::campaign::run_campaign`]);
    /// [`PufattError::Storage`] if the store holds a different campaign or
    /// holds a campaign and `resume` is false.
    pub fn launch(
        cfg: &CampaignConfig,
        store: &Arc<ShardedStore>,
        resume: bool,
    ) -> Result<RunningCampaign, PufattError> {
        if cfg.devices == 0 || cfg.workers == 0 || cfg.sessions_per_device == 0 {
            return Err(PufattError::Codegen("campaign needs devices, workers, and sessions > 0".into()));
        }
        let width = cfg.puf.width;
        if !(width.is_power_of_two() && (4..=32).contains(&width)) {
            return Err(PufattError::UnsupportedWidth { width });
        }

        let meta = MetaInfo {
            config_hash: config_fingerprint(cfg),
            devices: cfg.devices as u32,
            sessions_per_device: cfg.sessions_per_device,
            seed: cfg.seed,
        };
        match store.meta() {
            Some(existing) if !resume => {
                return Err(storage(format!(
                    "state directory already holds a campaign (seed {}); pass resume to continue it",
                    existing.seed
                )));
            }
            Some(existing) if existing != meta => {
                return Err(storage(
                    "state directory belongs to a different campaign configuration; refusing to blend them",
                ));
            }
            Some(_) => {}
            None => {
                store
                    .append_synced(&Record::Meta {
                        config_hash: meta.config_hash,
                        devices: meta.devices,
                        sessions_per_device: meta.sessions_per_device,
                        seed: meta.seed,
                    })
                    .map_err(storage)?;
            }
        }

        let start = Instant::now();
        let design = Arc::new(AluPufDesign::new(cfg.puf.clone()));
        let registry = Arc::new(ShardedRegistry::new(cfg.shards.max(1), cfg.history_capacity.max(1)));
        let metrics = Arc::new(FleetMetrics::from_store_counters(&store.counters()));
        let mut priors: HashMap<DeviceId, DevicePrior> = HashMap::new();
        store.for_each_device(|id, device| {
            registry.restore_device(
                id,
                from_stored(device.status),
                device.fails,
                device.succs,
                device.outcomes.iter().map(from_outcome_rec).collect(),
                device.outcomes_total,
            );
            if id as usize >= cfg.devices {
                metrics.device_enrolled_online();
            }
            priors.insert(id, DevicePrior::from_state(device));
        });
        let committer =
            (cfg.commit_interval_s > 0.0).then(|| store.committer(Duration::from_secs_f64(cfg.commit_interval_s)));

        let campaign = RunningCampaign {
            cfg: Arc::new(cfg.clone()),
            design,
            registry,
            metrics,
            store: Arc::clone(store),
            pool: WorkerPool::new(cfg.workers, cfg.queue_depth.max(1)),
            committer,
            start,
        };
        // Jobs for every configured device, plus every stored device past
        // the configured range (admitted online in a previous run).
        let mut extra: Vec<DeviceId> = priors.keys().copied().filter(|&id| id as usize >= cfg.devices).collect();
        extra.sort_unstable();
        for id in (0..cfg.devices as DeviceId).chain(extra) {
            let prior = priors.remove(&id).unwrap_or_default();
            if campaign.registry.enroll(id) {
                // Group-committed: a lost enrollment is re-derived (and
                // re-journaled) by the next resume. Under `--fail-fast` a
                // hard failure aborts the launch with a typed error; in
                // degrade mode (the default) the store has already marked
                // the home shard sick, the device's job refuses itself up
                // front, and healthy shards enroll on.
                if let Err(e) = journal(&campaign.store, &Record::DeviceEnrolled { id }) {
                    if cfg.fail_fast {
                        return Err(storage_err(e));
                    }
                }
            }
            campaign.submit(id, prior);
        }
        Ok(campaign)
    }

    fn submit(&self, id: DeviceId, prior: DevicePrior) {
        let design = Arc::clone(&self.design);
        let registry = Arc::clone(&self.registry);
        let metrics = Arc::clone(&self.metrics);
        let cfg = Arc::clone(&self.cfg);
        let store = Arc::clone(&self.store);
        self.pool
            .submit(move || run_device_durable(&design, &registry, &metrics, &cfg, id, &store, &prior));
    }

    /// Admits a new device while the campaign runs. The enrollment is
    /// journaled with a forced sync *before* the device becomes visible in
    /// the registry or the pool, so a crash leaves it either fully
    /// admitted or entirely absent. Returns `false` (and does nothing) if
    /// the device is already enrolled.
    ///
    /// # Errors
    ///
    /// [`PufattError::Storage`] if the enrollment cannot be committed; the
    /// device was not admitted.
    pub fn enroll(&self, id: DeviceId) -> Result<bool, PufattError> {
        if self.registry.status(id).is_some() {
            return Ok(false);
        }
        match self.store.append_synced(&Record::DeviceEnrolled { id }) {
            Ok(()) => {}
            // Journaled by a previous run whose registry entry we somehow
            // lack — restore covered it; treat as already enrolled.
            Err(StoreError::IllegalTransition { .. }) => return Ok(false),
            Err(e) => return Err(storage(e)),
        }
        if !self.registry.enroll(id) {
            return Ok(false);
        }
        if id as usize >= self.cfg.devices {
            self.metrics.device_enrolled_online();
        }
        self.submit(id, DevicePrior::default());
        Ok(true)
    }

    /// The campaign's sharded store (e.g. for progress statistics).
    pub fn store(&self) -> &Arc<ShardedStore> {
        &self.store
    }

    /// Drains the pool, stops the committer (final flush), folds the WAL
    /// into fresh snapshots, and reports — the report is bit-identical to
    /// an uninterrupted in-memory run of the same configuration.
    ///
    /// Under [`CampaignConfig::fail_fast`], a store that broke mid-run is
    /// a typed error. In degrade mode (the default) a campaign with sick
    /// shards still reports: healthy-shard devices completed their full
    /// schedule, sick-shard devices show their refused sessions as
    /// `sessions_unavailable`, and the snapshot's store stats carry the
    /// shard-health tally for the operator.
    ///
    /// # Errors
    ///
    /// [`PufattError::Storage`] if the store broke mid-run and
    /// `fail_fast` is set (reopen the state directory and resume), or if
    /// the final flush/checkpoint hits a failure `fail_fast` must not
    /// tolerate.
    pub fn finish(self) -> Result<CampaignReport, PufattError> {
        let RunningCampaign { cfg, registry, metrics, store, pool, committer, start, .. } = self;
        let panicked_jobs = pool.shutdown();
        if let Some(committer) = committer {
            committer.stop();
        }
        if cfg.fail_fast && store.is_broken() {
            return Err(storage("durable store failed mid-campaign; reopen the state directory and resume"));
        }
        // Fold the WAL into fresh snapshots so the next open replays
        // nothing. Sick shards are skipped inside the store; a *new*
        // failure here degrades its shard, which only fail-fast treats as
        // fatal (the health tally reports it either way).
        let folded = store.flush().and_then(|()| store.checkpoint());
        if let Err(e) = folded {
            if cfg.fail_fast {
                return Err(storage_err(e));
            }
        }

        let device_records = registry
            .ids()
            .into_iter()
            .filter_map(|id| {
                Some(DeviceRecord {
                    id,
                    tampered: device_is_tampered(cfg.seed, id, cfg.tamper_fraction),
                    flaky: matches!(&cfg.chaos, Some(c) if device_is_flaky(cfg.seed, id, c.flaky_fraction)),
                    status: registry.status(id)?,
                    outcomes: registry.history(id)?,
                })
            })
            .collect();

        let mut snapshot = metrics.snapshot(registry.status_counts());
        snapshot.store = Some(store.stats());
        Ok(CampaignReport {
            snapshot,
            device_records,
            wall_time: start.elapsed(),
            panicked_jobs,
        })
    }
}

/// Runs a campaign whose every transition is journaled through `store`,
/// resuming from whatever committed state the store holds:
/// [`RunningCampaign::launch`] immediately followed by
/// [`RunningCampaign::finish`].
///
/// # Errors
///
/// As [`RunningCampaign::launch`] and [`RunningCampaign::finish`].
pub fn run_persistent_campaign(
    cfg: &CampaignConfig,
    store: &Arc<ShardedStore>,
    resume: bool,
) -> Result<CampaignReport, PufattError> {
    RunningCampaign::launch(cfg, store, resume)?.finish()
}

/// Opens (creating if needed) `dir` as a sharded campaign state directory
/// with the production file backend and the configuration's history bound.
///
/// # Errors
///
/// [`PufattError::Storage`] if the directory cannot be created or its
/// existing state fails recovery (including a legacy single-WAL layout,
/// which is refused rather than silently shadowed).
pub fn open_state_dir(dir: &Path, history_capacity: usize) -> Result<Arc<ShardedStore>, PufattError> {
    let vfs = StdVfs::open(dir).map_err(storage)?;
    let opts = ShardedOptions {
        history_capacity: history_capacity.max(1),
        ..ShardedOptions::default()
    };
    ShardedStore::open(Arc::new(vfs), opts).map(Arc::new).map_err(storage)
}

/// [`run_persistent_campaign`] against an on-disk state directory — the
/// `pufatt fleet --state-dir <dir> [--resume]` entry point.
///
/// # Errors
///
/// As [`open_state_dir`] and [`run_persistent_campaign`].
pub fn run_campaign_with_dir(cfg: &CampaignConfig, dir: &Path, resume: bool) -> Result<CampaignReport, PufattError> {
    let store = open_state_dir(dir, cfg.history_capacity)?;
    run_persistent_campaign(cfg, &store, resume)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, small_test_config, ChaosConfig};
    use pufatt_faults::FaultPlan;
    use pufatt_store::SimVfs;

    fn open_sim(vfs: &SimVfs, history_capacity: usize) -> Arc<ShardedStore> {
        // Narrow ranges so even small test fleets span several shards.
        let opts = ShardedOptions {
            history_capacity,
            shards: 4,
            range_width: 2,
            ..ShardedOptions::default()
        };
        Arc::new(ShardedStore::open(Arc::new(vfs.clone()), opts).expect("recovery"))
    }

    /// Strips the store statistics (wall-clock-ish, run-shape dependent)
    /// so snapshots from persistent and in-memory runs compare.
    fn core_snapshot(report: &CampaignReport) -> crate::metrics::FleetSnapshot {
        let mut snap = report.snapshot.clone();
        snap.store = None;
        snap
    }

    #[test]
    fn persistent_campaign_matches_in_memory_run() {
        let cfg = small_test_config(8, 2, 0x5EED);
        let plain = run_campaign(&cfg).unwrap();
        let vfs = SimVfs::new();
        let durable = run_persistent_campaign(&cfg, &open_sim(&vfs, cfg.history_capacity), false).unwrap();
        assert_eq!(durable.device_records, plain.device_records);
        assert_eq!(core_snapshot(&durable), plain.snapshot);
        let stats = durable.snapshot.store.expect("persistent run reports store stats");
        assert!(stats.records_appended > 0);
    }

    #[test]
    fn finished_campaign_resumes_to_the_same_report() {
        let cfg = small_test_config(6, 2, 0xAB);
        let vfs = SimVfs::new();
        let first = run_persistent_campaign(&cfg, &open_sim(&vfs, cfg.history_capacity), false).unwrap();
        let resumed = run_persistent_campaign(&cfg, &open_sim(&vfs, cfg.history_capacity), true).unwrap();
        assert_eq!(resumed.device_records, first.device_records);
        assert_eq!(core_snapshot(&resumed), core_snapshot(&first));
        let stats = resumed.snapshot.store.unwrap();
        assert_eq!(stats.records_appended, 0, "a finished campaign appends nothing on resume");
    }

    #[test]
    fn campaign_with_a_sick_shard_completes_healthy_devices_and_resumes_bit_identically() {
        let mut cfg = small_test_config(8, 2, 0xD16E);
        cfg.tamper_fraction = 0.0;
        let reference = run_campaign(&cfg).unwrap();

        let vfs = SimVfs::new();
        let store = open_sim(&vfs, cfg.history_capacity);
        vfs.inject(
            pufatt_store::ErrorInjection::on_prefix("shard-001/", pufatt_store::InjectedErrorKind::Eio).sticky(),
        );
        let degraded = run_persistent_campaign(&cfg, &store, false).unwrap();

        let sick: Vec<DeviceId> = (0..cfg.devices as DeviceId).filter(|&id| store.shard_of_id(id) == 1).collect();
        assert!(!sick.is_empty(), "test geometry must home devices on the sick shard");
        // Healthy-shard devices complete their full schedule with verdicts
        // bit-identical to a failure-free run; sick-shard devices never
        // start a session (no accepted-but-undurable state to reconcile).
        for rec in &degraded.device_records {
            let reference_rec = reference.device_records.iter().find(|r| r.id == rec.id).expect("same fleet");
            if sick.contains(&rec.id) {
                assert!(rec.outcomes.is_empty(), "sick-shard device {} must not attest", rec.id);
            } else {
                assert_eq!(rec, reference_rec, "healthy-shard device must be unaffected");
            }
        }
        assert_eq!(
            degraded.snapshot.sessions_unavailable,
            sick.len() as u64 * cfg.sessions_per_device as u64,
            "every skipped session is accounted as unavailable"
        );
        let stats = degraded.snapshot.store.expect("persistent run reports store stats");
        assert!(stats.shards_degraded + stats.shards_failed > 0, "sick shard must show in stats: {stats}");

        // Operator drill: replace the disk and resume. Nothing undurable
        // was admitted while the shard was sick, so the resumed campaign
        // re-derives the missing sessions and converges on the
        // failure-free report exactly.
        vfs.clear_injections("shard-001/");
        let resumed = run_persistent_campaign(&cfg, &open_sim(&vfs, cfg.history_capacity), true).unwrap();
        assert_eq!(resumed.device_records, reference.device_records, "reopen must not change verdicts");
        assert_eq!(core_snapshot(&resumed), reference.snapshot, "reopen must not change counters");
    }

    #[test]
    fn fail_fast_campaign_stops_typed_on_a_sick_shard() {
        let cfg = {
            let mut c = small_test_config(8, 2, 0xFA57);
            c.fail_fast = true;
            c
        };
        let vfs = SimVfs::new();
        let store = open_sim(&vfs, cfg.history_capacity);
        vfs.inject(
            pufatt_store::ErrorInjection::on_prefix("shard-001/", pufatt_store::InjectedErrorKind::NoSpace).sticky(),
        );
        match run_persistent_campaign(&cfg, &store, false) {
            Err(PufattError::Storage(_) | PufattError::StorageUnavailable { .. }) => {}
            other => panic!("fail-fast must surface the storage failure, got {other:?}"),
        }
    }

    #[test]
    fn fresh_run_refuses_an_occupied_state_dir_and_wrong_config_refuses_resume() {
        let cfg = small_test_config(4, 1, 0xCD);
        let vfs = SimVfs::new();
        run_persistent_campaign(&cfg, &open_sim(&vfs, cfg.history_capacity), false).unwrap();
        let store = open_sim(&vfs, cfg.history_capacity);
        assert!(matches!(run_persistent_campaign(&cfg, &store, false), Err(PufattError::Storage(_))));
        let mut other = cfg.clone();
        other.seed ^= 1;
        assert!(matches!(run_persistent_campaign(&other, &store, true), Err(PufattError::Storage(_))));
    }

    #[test]
    fn chaos_campaign_survives_persistence_round_trip() {
        let mut cfg = small_test_config(8, 2, 0xFA17);
        cfg.sessions_per_device = 4;
        cfg.chaos = Some(ChaosConfig {
            plan: FaultPlan::clean(0).with_drops(0.3).with_bit_flips(0.01),
            flaky_fraction: 0.5,
        });
        let plain = run_campaign(&cfg).unwrap();
        let vfs = SimVfs::new();
        let durable = run_persistent_campaign(&cfg, &open_sim(&vfs, cfg.history_capacity), false).unwrap();
        assert_eq!(durable.device_records, plain.device_records);
        assert_eq!(core_snapshot(&durable), plain.snapshot);
    }

    #[test]
    fn group_commit_campaign_matches_the_synchronous_one() {
        let mut cfg = small_test_config(8, 3, 0x6C0);
        cfg.sessions_per_device = 3;
        let vfs_sync = SimVfs::new();
        let sync_run = run_persistent_campaign(&cfg, &open_sim(&vfs_sync, cfg.history_capacity), false).unwrap();
        cfg.commit_interval_s = 0.001;
        let vfs_group = SimVfs::new();
        let group_run = run_persistent_campaign(&cfg, &open_sim(&vfs_group, cfg.history_capacity), false).unwrap();
        assert_eq!(group_run.device_records, sync_run.device_records);
        assert_eq!(core_snapshot(&group_run), core_snapshot(&sync_run));
    }

    #[test]
    fn online_enrollment_extends_the_fleet_and_survives_resume() {
        let cfg = small_test_config(4, 2, 0x0E0);
        let vfs = SimVfs::new();
        let campaign = RunningCampaign::launch(&cfg, &open_sim(&vfs, cfg.history_capacity), false).unwrap();
        assert!(campaign.enroll(100).unwrap(), "new id admitted");
        assert!(!campaign.enroll(100).unwrap(), "second admit is a no-op");
        assert!(!campaign.enroll(0).unwrap(), "configured ids are already enrolled");
        let report = campaign.finish().unwrap();
        assert_eq!(report.snapshot.devices.total(), 5);
        assert_eq!(report.snapshot.devices_enrolled_online, 1);
        assert!(report.device_records.iter().any(|r| r.id == 100));
        let online = report.device_records.iter().find(|r| r.id == 100).unwrap();
        assert_eq!(online.outcomes.len(), cfg.sessions_per_device as usize, "online device ran a full schedule");

        // Resume sees the online device again without re-enrolling it.
        let resumed = run_persistent_campaign(&cfg, &open_sim(&vfs, cfg.history_capacity), true).unwrap();
        assert_eq!(resumed.device_records, report.device_records);
        assert_eq!(resumed.snapshot.devices_enrolled_online, 1);
        assert_eq!(core_snapshot(&resumed), core_snapshot(&report));
    }

    #[test]
    fn fingerprint_ignores_scheduling_but_not_verdicts() {
        let cfg = small_test_config(8, 2, 1);
        let mut other_workers = cfg.clone();
        other_workers.workers = 7;
        other_workers.shards = 3;
        other_workers.queue_depth = 5;
        other_workers.commit_interval_s = 0.25;
        assert_eq!(config_fingerprint(&cfg), config_fingerprint(&other_workers));
        let mut other_seed = cfg.clone();
        other_seed.seed ^= 1;
        assert_ne!(config_fingerprint(&cfg), config_fingerprint(&other_seed));
        let mut other_timeout = cfg;
        other_timeout.timeout_s *= 2.0;
        assert_ne!(config_fingerprint(&other_timeout), config_fingerprint(&other_seed));
    }
}
