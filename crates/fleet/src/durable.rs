//! Persistent campaigns: journal every fleet transition through
//! [`pufatt_store::DurableStore`] and resume an interrupted run.
//!
//! # What is journaled
//!
//! Campaign identity ([`Record::Meta`]), enrollments, and one record per
//! scheduled session: [`Record::SessionClosed`] (verdict + post-transition
//! lifecycle state + streaks + metric deltas), [`Record::SessionRefused`],
//! [`Record::SessionFault`], or [`Record::DeviceAbandoned`]. Each record
//! is synced before the campaign moves on, so the WAL's valid prefix at
//! any crash point is exactly the set of sessions whose effects recovery
//! restores.
//!
//! # Why resume reproduces the uninterrupted run
//!
//! Campaigns are deterministic in their configuration (see
//! [`crate::campaign`]): every per-device random stream derives from the
//! seed and device id, and one device's sessions run sequentially inside
//! one job. Resume exploits this: the registry, metrics, and histories
//! are restored from the store, and each device's already-committed
//! sessions are *re-run against scratch metrics* purely to advance its RNG
//! and channel state to where the interrupted run left off — refusals
//! consumed no randomness and are skipped. The remaining sessions then run
//! live, and the final report is bit-identical to a run that was never
//! interrupted (modulo wall-clock time and store statistics).
//!
//! Resuming under a different configuration is refused via the persisted
//! config fingerprint rather than silently blending two campaigns. Worker
//! count, shard count, and queue depth are deliberately *excluded* from
//! the fingerprint — they change scheduling, never verdicts.

use crate::campaign::{
    device_is_flaky, device_is_tampered, provision_device, run_one_chaos_session, run_one_session, CampaignConfig,
    CampaignReport, DeviceRecord, SessionEvent,
};
use crate::metrics::{FleetMetrics, LatencyHistogram};
use crate::pool::WorkerPool;
use crate::registry::{DeviceId, FleetStatus, ShardedRegistry};
use pufatt::PufattError;
use pufatt_alupuf::device::AluPufDesign;
use pufatt_store::record::{OutcomeRec, Record, StoredStatus};
use pufatt_store::state::{MetaInfo, EV_REFUSED};
use pufatt_store::{DurableStore, StdVfs, StoreOptions};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Fingerprint of the verdict-affecting configuration fields, persisted
/// in [`Record::Meta`]. Scheduling knobs (workers, shards, queue depth)
/// are excluded: a campaign may legitimately be resumed on a machine with
/// a different core count.
pub fn config_fingerprint(cfg: &CampaignConfig) -> u64 {
    let text = format!(
        "pufatt-campaign-v1|devices={}|sessions={}|seed={}|tamper={:016x}|timeout={:016x}|history={}|puf={:?}|params={:?}|policy={:?}|chaos={:?}",
        cfg.devices,
        cfg.sessions_per_device,
        cfg.seed,
        cfg.tamper_fraction.to_bits(),
        cfg.timeout_s.to_bits(),
        cfg.history_capacity,
        cfg.puf,
        cfg.params,
        cfg.policy,
        cfg.chaos,
    );
    // FNV-1a: tiny, dependency-free, and collision resistance is not a
    // security property here — the fingerprint guards against operator
    // mistakes, not adversaries (a forged state directory already implies
    // a compromised verifier host).
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn storage(e: impl std::fmt::Display) -> PufattError {
    PufattError::Storage(e.to_string())
}

fn to_stored(status: FleetStatus) -> StoredStatus {
    match status {
        FleetStatus::Active => StoredStatus::Active,
        FleetStatus::Quarantined => StoredStatus::Quarantined,
        FleetStatus::Revoked => StoredStatus::Revoked,
    }
}

fn from_stored(status: StoredStatus) -> FleetStatus {
    match status {
        StoredStatus::Active => FleetStatus::Active,
        StoredStatus::Quarantined => FleetStatus::Quarantined,
        StoredStatus::Revoked => FleetStatus::Revoked,
    }
}

#[allow(clippy::too_many_arguments)]
fn to_outcome_rec(
    o: &crate::registry::SessionOutcome,
    retried: u32,
    dropped: u32,
    lost: bool,
    crp_hits: u32,
    crp_misses: u32,
) -> OutcomeRec {
    OutcomeRec {
        accepted: o.accepted,
        response_ok: o.response_ok,
        time_ok: o.time_ok,
        timed_out: o.timed_out,
        attempts: o.attempts,
        elapsed_bits: o.elapsed_s.to_bits(),
        retried,
        dropped,
        lost,
        latency_slot: LatencyHistogram::bucket_index(o.elapsed_s) as u8,
        crp_hits,
        crp_misses,
    }
}

fn from_outcome_rec(r: &OutcomeRec) -> crate::registry::SessionOutcome {
    crate::registry::SessionOutcome {
        accepted: r.accepted,
        response_ok: r.response_ok,
        time_ok: r.time_ok,
        timed_out: r.timed_out,
        attempts: r.attempts,
        elapsed_s: r.elapsed_s(),
    }
}

/// Commits one record or dies trying: a failed append means memory is
/// ahead of the disk, and the only safe continuation is reopen-and-resume.
/// The panic kills just this pool job (the pool contains it) and
/// [`run_persistent_campaign`] turns the broken store into a typed error.
fn journal(store: &DurableStore, record: &Record) {
    if let Err(e) = store.append_synced(record) {
        panic!("durable store append failed: {e}");
    }
}

/// The durable version of one device's pool job: skip if the device was
/// abandoned in a previous run, replay committed sessions to advance the
/// device's deterministic state, then run and journal the rest.
#[allow(clippy::too_many_arguments)]
fn run_device_durable(
    design: &Arc<AluPufDesign>,
    registry: &ShardedRegistry,
    metrics: &FleetMetrics,
    cfg: &CampaignConfig,
    id: DeviceId,
    store: &DurableStore,
    prior_events: &[u8],
    abandoned: bool,
) {
    if abandoned {
        // Provisioning is deterministic: it failed before, it would fail
        // again. The fault is already journaled and counted.
        return;
    }
    let mut session = match provision_device(design, cfg, id) {
        Ok(session) => session,
        Err(_) => {
            journal(store, &Record::DeviceAbandoned { id });
            metrics.device_fault();
            return;
        }
    };
    // Advance the device's RNG/channel state past the committed prefix.
    // Scratch metrics absorb the replayed increments — the real counters
    // were already restored from the store.
    let scratch = FleetMetrics::new();
    for &event in prior_events {
        if event != EV_REFUSED {
            if cfg.chaos.is_some() {
                run_one_chaos_session(&mut session, cfg, &scratch);
            } else {
                run_one_session(&mut session, cfg, &scratch);
            }
        }
    }
    for _ in prior_events.len() as u32..cfg.sessions_per_device {
        if registry.status(id) == Some(FleetStatus::Revoked) {
            journal(store, &Record::SessionRefused { id });
            metrics.session_refused();
            continue;
        }
        let event = if cfg.chaos.is_some() {
            run_one_chaos_session(&mut session, cfg, metrics)
        } else {
            run_one_session(&mut session, cfg, metrics)
        };
        match event {
            SessionEvent::Closed { outcome, retried, dropped, lost, crp_hits, crp_misses } => {
                let rec = to_outcome_rec(&outcome, retried, dropped, lost, crp_hits, crp_misses);
                let Some((status, fails, succs)) = registry.record_outcome_traced(id, outcome, &cfg.policy) else {
                    // The device was enrolled before its job was submitted;
                    // an unknown id here is a registry bug, not a fleet
                    // condition — fail the job, not the state.
                    panic!("device {id} vanished from the registry mid-campaign");
                };
                journal(store, &Record::SessionClosed { id, outcome: rec, status: to_stored(status), fails, succs });
            }
            SessionEvent::Fault { retried, dropped, crp_hits, crp_misses } => {
                journal(store, &Record::SessionFault { id, retried, dropped, crp_hits, crp_misses });
            }
        }
    }
}

/// Runs a campaign whose every transition is journaled through `store`,
/// resuming from whatever committed state the store holds.
///
/// Pass `resume = false` for a run that must start fresh: an existing
/// campaign in the store is then refused instead of silently continued.
/// With `resume = true`, persisted state is restored (an empty store is
/// simply a fresh start) and the report is identical to an uninterrupted
/// run of the same configuration.
///
/// # Errors
///
/// Invalid configurations (as [`crate::campaign::run_campaign`]);
/// [`PufattError::Storage`] if the store holds a different campaign, holds
/// a campaign and `resume` is false, or fails mid-run (reopen the state
/// directory and resume).
pub fn run_persistent_campaign(
    cfg: &CampaignConfig,
    store: &Arc<DurableStore>,
    resume: bool,
) -> Result<CampaignReport, PufattError> {
    if cfg.devices == 0 || cfg.workers == 0 || cfg.sessions_per_device == 0 {
        return Err(PufattError::Codegen("campaign needs devices, workers, and sessions > 0".into()));
    }
    let width = cfg.puf.width;
    if !(width.is_power_of_two() && (4..=32).contains(&width)) {
        return Err(PufattError::UnsupportedWidth { width });
    }

    let meta = MetaInfo {
        config_hash: config_fingerprint(cfg),
        devices: cfg.devices as u32,
        sessions_per_device: cfg.sessions_per_device,
        seed: cfg.seed,
    };
    match store.meta() {
        Some(existing) if !resume => {
            return Err(storage(format!(
                "state directory already holds a campaign (seed {}); pass resume to continue it",
                existing.seed
            )));
        }
        Some(existing) if existing != meta => {
            return Err(storage(
                "state directory belongs to a different campaign configuration; refusing to blend them",
            ));
        }
        Some(_) => {}
        None => {
            store
                .append_synced(&Record::Meta {
                    config_hash: meta.config_hash,
                    devices: meta.devices,
                    sessions_per_device: meta.sessions_per_device,
                    seed: meta.seed,
                })
                .map_err(storage)?;
        }
    }

    let start = Instant::now();
    let restored = store.state();
    let design = Arc::new(AluPufDesign::new(cfg.puf.clone()));
    let registry = Arc::new(ShardedRegistry::new(cfg.shards.max(1), cfg.history_capacity.max(1)));
    let metrics = Arc::new(FleetMetrics::from_store_counters(&restored.counters));
    for (&id, device) in &restored.devices {
        registry.restore_device(
            id,
            from_stored(device.status),
            device.fails,
            device.succs,
            device.outcomes.iter().map(from_outcome_rec).collect(),
            device.outcomes_total,
        );
    }
    let shared_cfg = Arc::new(cfg.clone());

    let pool = WorkerPool::new(cfg.workers, cfg.queue_depth.max(1));
    for id in 0..cfg.devices as DeviceId {
        let (prior_events, abandoned) = restored
            .devices
            .get(&id)
            .map(|d| (d.events.clone(), d.abandoned))
            .unwrap_or_default();
        if registry.enroll(id) {
            store.append_synced(&Record::DeviceEnrolled { id }).map_err(storage)?;
        }
        let design = Arc::clone(&design);
        let registry = Arc::clone(&registry);
        let metrics = Arc::clone(&metrics);
        let cfg = Arc::clone(&shared_cfg);
        let store = Arc::clone(store);
        pool.submit(move || {
            run_device_durable(&design, &registry, &metrics, &cfg, id, &store, &prior_events, abandoned)
        });
    }
    let panicked_jobs = pool.shutdown();
    if store.is_broken() {
        return Err(storage("durable store failed mid-campaign; reopen the state directory and resume"));
    }
    // Fold the WAL into a fresh snapshot so the next open replays nothing.
    store.checkpoint().map_err(storage)?;

    let device_records = registry
        .ids()
        .into_iter()
        .map(|id| DeviceRecord {
            id,
            tampered: device_is_tampered(cfg.seed, id, cfg.tamper_fraction),
            flaky: matches!(&cfg.chaos, Some(c) if device_is_flaky(cfg.seed, id, c.flaky_fraction)),
            status: registry.status(id).expect("id came from the registry"),
            outcomes: registry.history(id).expect("id came from the registry"),
        })
        .collect();

    let mut snapshot = metrics.snapshot(registry.status_counts());
    snapshot.store = Some(store.stats());
    Ok(CampaignReport {
        snapshot,
        device_records,
        wall_time: start.elapsed(),
        panicked_jobs,
    })
}

/// Opens (creating if needed) `dir` as a campaign state directory with the
/// production file backend and the configuration's history bound.
///
/// # Errors
///
/// [`PufattError::Storage`] if the directory cannot be created or its
/// existing state fails recovery.
pub fn open_state_dir(dir: &Path, history_capacity: usize) -> Result<Arc<DurableStore>, PufattError> {
    let vfs = StdVfs::open(dir).map_err(storage)?;
    let opts = StoreOptions {
        history_capacity: history_capacity.max(1),
        ..StoreOptions::default()
    };
    DurableStore::open(Arc::new(vfs), opts).map(Arc::new).map_err(storage)
}

/// [`run_persistent_campaign`] against an on-disk state directory — the
/// `pufatt fleet --state-dir <dir> [--resume]` entry point.
///
/// # Errors
///
/// As [`open_state_dir`] and [`run_persistent_campaign`].
pub fn run_campaign_with_dir(cfg: &CampaignConfig, dir: &Path, resume: bool) -> Result<CampaignReport, PufattError> {
    let store = open_state_dir(dir, cfg.history_capacity)?;
    run_persistent_campaign(cfg, &store, resume)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, small_test_config, ChaosConfig};
    use pufatt_faults::FaultPlan;
    use pufatt_store::SimVfs;

    fn open_sim(vfs: &SimVfs, history_capacity: usize) -> Arc<DurableStore> {
        let opts = StoreOptions { history_capacity, ..StoreOptions::default() };
        Arc::new(DurableStore::open(Arc::new(vfs.clone()), opts).expect("recovery"))
    }

    /// Strips the store statistics (wall-clock-ish, run-shape dependent)
    /// so snapshots from persistent and in-memory runs compare.
    fn core_snapshot(report: &CampaignReport) -> crate::metrics::FleetSnapshot {
        let mut snap = report.snapshot.clone();
        snap.store = None;
        snap
    }

    #[test]
    fn persistent_campaign_matches_in_memory_run() {
        let cfg = small_test_config(8, 2, 0x5EED);
        let plain = run_campaign(&cfg).unwrap();
        let vfs = SimVfs::new();
        let durable = run_persistent_campaign(&cfg, &open_sim(&vfs, cfg.history_capacity), false).unwrap();
        assert_eq!(durable.device_records, plain.device_records);
        assert_eq!(core_snapshot(&durable), plain.snapshot);
        let stats = durable.snapshot.store.expect("persistent run reports store stats");
        assert!(stats.records_appended > 0);
    }

    #[test]
    fn finished_campaign_resumes_to_the_same_report() {
        let cfg = small_test_config(6, 2, 0xAB);
        let vfs = SimVfs::new();
        let first = run_persistent_campaign(&cfg, &open_sim(&vfs, cfg.history_capacity), false).unwrap();
        let resumed = run_persistent_campaign(&cfg, &open_sim(&vfs, cfg.history_capacity), true).unwrap();
        assert_eq!(resumed.device_records, first.device_records);
        assert_eq!(core_snapshot(&resumed), core_snapshot(&first));
        let stats = resumed.snapshot.store.unwrap();
        assert_eq!(stats.records_appended, 0, "a finished campaign appends nothing on resume");
    }

    #[test]
    fn fresh_run_refuses_an_occupied_state_dir_and_wrong_config_refuses_resume() {
        let cfg = small_test_config(4, 1, 0xCD);
        let vfs = SimVfs::new();
        run_persistent_campaign(&cfg, &open_sim(&vfs, cfg.history_capacity), false).unwrap();
        let store = open_sim(&vfs, cfg.history_capacity);
        assert!(matches!(run_persistent_campaign(&cfg, &store, false), Err(PufattError::Storage(_))));
        let mut other = cfg.clone();
        other.seed ^= 1;
        assert!(matches!(run_persistent_campaign(&other, &store, true), Err(PufattError::Storage(_))));
    }

    #[test]
    fn chaos_campaign_survives_persistence_round_trip() {
        let mut cfg = small_test_config(8, 2, 0xFA17);
        cfg.sessions_per_device = 4;
        cfg.chaos = Some(ChaosConfig {
            plan: FaultPlan::clean(0).with_drops(0.3).with_bit_flips(0.01),
            flaky_fraction: 0.5,
        });
        let plain = run_campaign(&cfg).unwrap();
        let vfs = SimVfs::new();
        let durable = run_persistent_campaign(&cfg, &open_sim(&vfs, cfg.history_capacity), false).unwrap();
        assert_eq!(durable.device_records, plain.device_records);
        assert_eq!(core_snapshot(&durable), plain.snapshot);
    }

    #[test]
    fn fingerprint_ignores_scheduling_but_not_verdicts() {
        let cfg = small_test_config(8, 2, 1);
        let mut other_workers = cfg.clone();
        other_workers.workers = 7;
        other_workers.shards = 3;
        other_workers.queue_depth = 5;
        assert_eq!(config_fingerprint(&cfg), config_fingerprint(&other_workers));
        let mut other_seed = cfg.clone();
        other_seed.seed ^= 1;
        assert_ne!(config_fingerprint(&cfg), config_fingerprint(&other_seed));
        let mut other_timeout = cfg;
        other_timeout.timeout_s *= 2.0;
        assert_ne!(config_fingerprint(&other_timeout), config_fingerprint(&other_seed));
    }
}
