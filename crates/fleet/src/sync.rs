//! Shared synchronisation helpers.

use std::sync::{Mutex, MutexGuard};

/// Poison-tolerant lock acquisition.
///
/// A panicking job (e.g. a failed assertion on a chaos-test worker
/// thread) poisons any `Mutex` it held; the default `lock().unwrap()`
/// then panics in *every* later session that touches the same shard or
/// queue, cascading one contained failure into a wedged fleet. All the
/// state behind this crate's locks — registry shards, the pool's job
/// receiver — stays internally consistent under any interleaving of its
/// updates, so the right response to poison is to keep going, not to
/// propagate it.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn poisoned_mutex_is_still_usable() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock(&m), 7, "the value survives the poison");
        *lock(&m) += 1;
        assert_eq!(*lock(&m), 8);
    }
}
