//! Shared synchronisation helpers: poison-tolerant locking plus a
//! debug-assert lock-rank witness.
//!
//! Every long-lived lock in the fleet/transport stack belongs to a named
//! **lock class** with a documented acquisition rank (see [`rank`]). A
//! thread may only acquire a lock whose rank is *strictly greater* than
//! every lock it already holds; any interleaving that respects the rank
//! order is cycle-free, so the fleet cannot deadlock. [`lock_ranked`]
//! asserts that order at runtime under `debug_assertions` (live in tests
//! and in CI's `careful` chaos runs) and compiles to a plain [`lock`]
//! call in release builds. The static half of the same contract is
//! `pufatt-analyze`'s Pass 4 (`conc::RANKS` mirrors [`rank`]'s table and
//! both sides pin the values with unit tests).

use std::ops::{Deref, DerefMut};
use std::sync::{Mutex, MutexGuard};

/// Poison-tolerant lock acquisition.
///
/// A panicking job (e.g. a failed assertion on a chaos-test worker
/// thread) poisons any `Mutex` it held; the default `lock().unwrap()`
/// then panics in *every* later session that touches the same shard or
/// queue, cascading one contained failure into a wedged fleet. All the
/// state behind this crate's locks — registry shards, the pool's job
/// receiver — stays internally consistent under any interleaving of its
/// updates, so the right response to poison is to keep going, not to
/// propagate it.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Acquisition ranks for the named lock classes, lowest first. The
/// values are mirrored by `pufatt-analyze`'s `conc::RANKS` (which adds
/// the store/core classes that cannot depend on this crate); unit tests
/// on both sides pin them against each other.
pub mod rank {
    /// `transport::Server`'s live-connection map.
    pub const SERVER_CONNS: u32 = 10;
    /// `transport::Server`'s handler `JoinHandle` list.
    pub const HANDLER_HANDLES: u32 = 20;
    /// A connection's pending-ticket table.
    pub const TICKET_TABLE: u32 = 30;
    /// A connection's shared frame writer.
    pub const CONN_WRITER: u32 = 40;
    /// A `FleetService` per-device slot shard.
    pub const SERVICE_SLOT: u32 = 50;
    /// A `Registry` shard.
    pub const REGISTRY_SHARD: u32 = 60;
    /// A `WorkerPool`'s shared job receiver.
    pub const POOL_RECEIVER: u32 = 70;

    /// Class name for a rank, for witness panic messages.
    pub fn name(rank: u32) -> &'static str {
        match rank {
            SERVER_CONNS => "server_conns",
            HANDLER_HANDLES => "handler_handles",
            TICKET_TABLE => "ticket_table",
            CONN_WRITER => "conn_writer",
            SERVICE_SLOT => "service_slot",
            REGISTRY_SHARD => "registry_shard",
            POOL_RECEIVER => "pool_receiver",
            _ => "unknown",
        }
    }
}

#[cfg(debug_assertions)]
mod witness {
    use std::cell::RefCell;

    thread_local! {
        /// Ranks of the locks this thread currently holds, in
        /// acquisition order.
        static HELD: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
    }

    pub fn acquire(rank: u32) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&top) = held.last() {
                assert!(
                    rank > top,
                    "lock-rank violation: acquiring `{}` (rank {rank}) while holding `{}` (rank {top})",
                    super::rank::name(rank),
                    super::rank::name(top),
                );
            }
            held.push(rank);
        });
    }

    pub fn release(rank: u32) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&r| r == rank) {
                held.remove(pos);
            }
        });
    }
}

/// A [`MutexGuard`] that reports its release to the rank witness. In
/// release builds this is a zero-cost newtype over the guard.
pub struct RankGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    rank: u32,
}

impl<T> Deref for RankGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for RankGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for RankGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        witness::release(self.rank);
    }
}

/// Poison-tolerant lock acquisition checked against the rank order.
///
/// Under `debug_assertions` the calling thread's held-rank stack is
/// consulted first: acquiring a lock whose rank is not strictly above
/// every held rank panics with both class names. In release builds the
/// witness (and the rank argument) compile away entirely.
///
/// # Panics
///
/// Under `debug_assertions`, on an out-of-rank-order acquisition.
pub fn lock_ranked<'a, T>(m: &'a Mutex<T>, rank: u32) -> RankGuard<'a, T> {
    #[cfg(debug_assertions)]
    {
        witness::acquire(rank);
        RankGuard { guard: lock(m), rank }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = rank;
        RankGuard { guard: lock(m) }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn poisoned_mutex_is_still_usable() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock(&m), 7, "the value survives the poison");
        *lock(&m) += 1;
        assert_eq!(*lock(&m), 8);
    }

    #[test]
    fn rank_table_matches_the_static_analyzer() {
        // Pinned against `pufatt-analyze`'s `conc::RANKS` (which carries
        // the mirror-image assertion).
        assert_eq!((rank::SERVER_CONNS, rank::name(10)), (10, "server_conns"));
        assert_eq!((rank::HANDLER_HANDLES, rank::name(20)), (20, "handler_handles"));
        assert_eq!((rank::TICKET_TABLE, rank::name(30)), (30, "ticket_table"));
        assert_eq!((rank::CONN_WRITER, rank::name(40)), (40, "conn_writer"));
        assert_eq!((rank::SERVICE_SLOT, rank::name(50)), (50, "service_slot"));
        assert_eq!((rank::REGISTRY_SHARD, rank::name(60)), (60, "registry_shard"));
        assert_eq!((rank::POOL_RECEIVER, rank::name(70)), (70, "pool_receiver"));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-rank violation")]
    fn out_of_order_acquisition_panics_under_debug_assertions() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        let _shard = lock_ranked(&a, rank::REGISTRY_SHARD);
        let _slot = lock_ranked(&b, rank::SERVICE_SLOT); // 50 under 60: backwards
    }

    #[cfg(debug_assertions)]
    #[test]
    fn in_order_acquisition_is_clean_and_release_unwinds_the_stack() {
        let a = Mutex::new(1);
        let b = Mutex::new(2);
        {
            let g = lock_ranked(&a, rank::TICKET_TABLE);
            let h = lock_ranked(&b, rank::SERVICE_SLOT);
            assert_eq!(*g + *h, 3);
        }
        // Both released: a low-rank acquisition is legal again.
        let g = lock_ranked(&a, rank::SERVER_CONNS);
        assert_eq!(*g, 1);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn witness_is_free_in_release() {
        // The same backwards order that panics under debug_assertions is
        // not even observed in release builds.
        let a = Mutex::new(());
        let b = Mutex::new(());
        let _shard = lock_ranked(&a, rank::REGISTRY_SHARD);
        let _slot = lock_ranked(&b, rank::SERVICE_SLOT);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn rank_guard_derefs_mutably_and_releases_on_drop() {
        let m = Mutex::new(41);
        *lock_ranked(&m, rank::POOL_RECEIVER) += 1;
        assert_eq!(*lock_ranked(&m, rank::POOL_RECEIVER), 42);
    }
}
