//! Campaign metrics: lock-free counters and a latency histogram.
//!
//! Workers on many threads record outcomes concurrently; everything here
//! is an [`AtomicU64`] with relaxed ordering — the counters are monotonic
//! statistics, not synchronisation, so no ordering stronger than the
//! individual increments is needed. A [`FleetSnapshot`] is a point-in-time
//! copy for reporting (counters are read independently, so a snapshot
//! taken mid-campaign can be off by in-flight sessions; taken after
//! drain it is exact).

use crate::registry::StatusCounts;
use pufatt_store::{Counters, StoreStats};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

// The durable store persists latency as fixed-width slot counts; the two
// layers must agree on the histogram shape or restores silently shift
// buckets.
const _: () = assert!(LATENCY_BUCKETS == pufatt_store::record::LATENCY_SLOTS);

/// Number of log-scale latency buckets: bucket `i` covers
/// `[2^i, 2^(i+1))` microseconds, with the last bucket open-ended.
pub const LATENCY_BUCKETS: usize = 32;

/// A log₂-bucketed histogram of session latencies.
///
/// Log-scale buckets give constant relative resolution: a 100 µs honest
/// session and a 3 s retried-into-backoff session land far apart without
/// either tail needing thousands of linear bins.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// The bucket an elapsed time lands in. Public because the durable
    /// campaign journals this slot with each session outcome — persisted
    /// and live sessions must bucket identically for a resumed campaign's
    /// histogram to match an uninterrupted run's.
    pub fn bucket_index(elapsed_s: f64) -> usize {
        let us = (elapsed_s * 1e6).max(0.0) as u64;
        // 0 and 1 µs share bucket 0; everything ≥ 2^31 µs (~36 min)
        // lands in the open-ended last bucket.
        (63 - us.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
    }

    /// Records one session's elapsed time.
    pub fn record(&self, elapsed_s: f64) {
        self.buckets[Self::bucket_index(elapsed_s)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded sessions.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Non-empty buckets as `(lower_bound_us, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((1u64 << i, n))
            })
            .collect()
    }
}

/// Shared counters for one campaign, incremented by workers and read by
/// the reporter.
#[derive(Debug, Default)]
pub struct FleetMetrics {
    sessions_started: AtomicU64,
    sessions_accepted: AtomicU64,
    sessions_rejected: AtomicU64,
    sessions_timed_out: AtomicU64,
    attempts_retried: AtomicU64,
    sessions_refused: AtomicU64,
    sessions_unavailable: AtomicU64,
    device_faults: AtomicU64,
    messages_dropped: AtomicU64,
    sessions_lost: AtomicU64,
    crp_hits: AtomicU64,
    crp_misses: AtomicU64,
    devices_enrolled_online: AtomicU64,
    latency: LatencyHistogram,
}

impl FleetMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        FleetMetrics::default()
    }

    /// A session left the queue and began its first attempt.
    pub fn session_started(&self) {
        self.sessions_started.fetch_add(1, Ordering::Relaxed);
    }

    /// A session ended accepted.
    pub fn session_accepted(&self) {
        self.sessions_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// A session ended rejected (response/time check failed after all
    /// attempts).
    pub fn session_rejected(&self) {
        self.sessions_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// A session ended rejected specifically by exceeding the scheduler's
    /// session timeout (also counted in `rejected`).
    pub fn session_timed_out(&self) {
        self.sessions_timed_out.fetch_add(1, Ordering::Relaxed);
    }

    /// One attempt failed and the session is retrying.
    pub fn attempt_retried(&self) {
        self.attempts_retried.fetch_add(1, Ordering::Relaxed);
    }

    /// A session was refused without running (device revoked).
    pub fn session_refused(&self) {
        self.sessions_refused.fetch_add(1, Ordering::Relaxed);
    }

    /// A session was refused because its device's storage shard is sick
    /// (Degraded or Failed). Not journaled — the sick shard could not
    /// record it anyway — and deliberately *not* restored from store
    /// counters: after the shard reopens, a resumed campaign runs these
    /// sessions for real, so carrying the refusal count forward would
    /// double-book them.
    pub fn session_unavailable(&self) {
        self.sessions_unavailable.fetch_add(1, Ordering::Relaxed);
    }

    /// A device errored outside the protocol (trap, provisioning fault).
    pub fn device_fault(&self) {
        self.device_faults.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` protocol messages were lost in transit during a chaos session.
    pub fn messages_dropped(&self, n: u64) {
        self.messages_dropped.fetch_add(n, Ordering::Relaxed);
    }

    /// A session died without a verdict: the deadline expired or the
    /// channel ate every attempt (also counted in `rejected` — a lost
    /// session is a failed session for lifecycle purposes).
    pub fn session_lost(&self) {
        self.sessions_lost.fetch_add(1, Ordering::Relaxed);
    }

    /// A session's verifier served `hits` reference responses from its CRP
    /// cache and emulated `misses`.
    pub fn record_crp(&self, hits: u64, misses: u64) {
        self.crp_hits.fetch_add(hits, Ordering::Relaxed);
        self.crp_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// A device beyond the configured fleet size was admitted while the
    /// campaign ran (online enrollment). Derived on resume by counting
    /// restored ids past the configured range, so the counter survives
    /// restarts without its own journal record.
    pub fn device_enrolled_online(&self) {
        self.devices_enrolled_online.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a finished session's end-to-end latency.
    pub fn observe_latency(&self, elapsed_s: f64) {
        self.latency.record(elapsed_s);
    }

    /// The latency histogram.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Rebuilds metrics from a durable store's recovered counters, so a
    /// resumed campaign continues counting where the interrupted run's
    /// *committed* records left off and its final snapshot equals an
    /// uninterrupted run's.
    pub fn from_store_counters(c: &Counters) -> Self {
        let m = FleetMetrics::new();
        m.sessions_started.store(c.started, Ordering::Relaxed);
        m.sessions_accepted.store(c.accepted, Ordering::Relaxed);
        m.sessions_rejected.store(c.rejected, Ordering::Relaxed);
        m.sessions_timed_out.store(c.timed_out, Ordering::Relaxed);
        m.attempts_retried.store(c.retried, Ordering::Relaxed);
        m.sessions_refused.store(c.refused, Ordering::Relaxed);
        m.device_faults.store(c.faults, Ordering::Relaxed);
        m.messages_dropped.store(c.dropped, Ordering::Relaxed);
        m.sessions_lost.store(c.lost, Ordering::Relaxed);
        m.crp_hits.store(c.crp_hits, Ordering::Relaxed);
        m.crp_misses.store(c.crp_misses, Ordering::Relaxed);
        for (bucket, &n) in m.latency.buckets.iter().zip(c.latency.iter()) {
            bucket.store(n, Ordering::Relaxed);
        }
        m
    }

    /// Point-in-time copy of all counters, paired with the registry's
    /// device counts.
    pub fn snapshot(&self, devices: StatusCounts) -> FleetSnapshot {
        FleetSnapshot {
            sessions_started: self.sessions_started.load(Ordering::Relaxed),
            sessions_accepted: self.sessions_accepted.load(Ordering::Relaxed),
            sessions_rejected: self.sessions_rejected.load(Ordering::Relaxed),
            sessions_timed_out: self.sessions_timed_out.load(Ordering::Relaxed),
            attempts_retried: self.attempts_retried.load(Ordering::Relaxed),
            sessions_refused: self.sessions_refused.load(Ordering::Relaxed),
            sessions_unavailable: self.sessions_unavailable.load(Ordering::Relaxed),
            device_faults: self.device_faults.load(Ordering::Relaxed),
            messages_dropped: self.messages_dropped.load(Ordering::Relaxed),
            sessions_lost: self.sessions_lost.load(Ordering::Relaxed),
            crp_hits: self.crp_hits.load(Ordering::Relaxed),
            crp_misses: self.crp_misses.load(Ordering::Relaxed),
            devices_enrolled_online: self.devices_enrolled_online.load(Ordering::Relaxed),
            devices,
            latency_buckets_us: self.latency.nonzero_buckets(),
            store: None,
        }
    }
}

/// Point-in-time view of a campaign, suitable for printing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSnapshot {
    /// Sessions that began their first attempt.
    pub sessions_started: u64,
    /// Sessions accepted by the verifier.
    pub sessions_accepted: u64,
    /// Sessions rejected (includes timed-out ones).
    pub sessions_rejected: u64,
    /// Rejected sessions whose cause was the session timeout.
    pub sessions_timed_out: u64,
    /// Individual attempts that failed and were retried.
    pub attempts_retried: u64,
    /// Sessions refused up front because the device was revoked.
    pub sessions_refused: u64,
    /// Sessions refused because the device's storage shard was sick
    /// (Degraded or Failed) — typed availability refusals, never
    /// verdicts. Zero whenever storage stayed healthy.
    pub sessions_unavailable: u64,
    /// Devices that faulted outside the protocol.
    pub device_faults: u64,
    /// Protocol messages lost in transit (chaos campaigns).
    pub messages_dropped: u64,
    /// Sessions that ended without a verdict — deadline expired or every
    /// attempt lost to the channel (subset of `sessions_rejected`).
    pub sessions_lost: u64,
    /// Reference responses the verifiers served from their CRP caches.
    pub crp_hits: u64,
    /// Reference responses the verifiers had to emulate (cache misses).
    pub crp_misses: u64,
    /// Devices admitted beyond the configured fleet size while the
    /// campaign ran (online enrollment).
    pub devices_enrolled_online: u64,
    /// Device counts by lifecycle state.
    pub devices: StatusCounts,
    /// Non-empty latency buckets as `(lower_bound_us, count)`.
    pub latency_buckets_us: Vec<(u64, u64)>,
    /// Durable-store health for persistent campaigns (`None` for purely
    /// in-memory runs): WAL bytes, records appended/replayed, snapshots
    /// written, torn tails recovered.
    pub store: Option<StoreStats>,
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.0}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.0}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

impl fmt::Display for FleetSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "devices   {} active / {} quarantined / {} revoked ({} total)",
            self.devices.active,
            self.devices.quarantined,
            self.devices.revoked,
            self.devices.total()
        )?;
        if self.devices_enrolled_online > 0 {
            writeln!(f, "          {} enrolled online (beyond the configured fleet)", self.devices_enrolled_online)?;
        }
        writeln!(
            f,
            "sessions  {} started / {} accepted / {} rejected ({} timed out) / {} refused",
            self.sessions_started,
            self.sessions_accepted,
            self.sessions_rejected,
            self.sessions_timed_out,
            self.sessions_refused
        )?;
        if self.sessions_unavailable > 0 {
            writeln!(f, "          {} refused: storage shard unavailable", self.sessions_unavailable)?;
        }
        writeln!(f, "attempts  {} retried, {} device faults", self.attempts_retried, self.device_faults)?;
        if self.crp_hits > 0 || self.crp_misses > 0 {
            let total = self.crp_hits + self.crp_misses;
            writeln!(
                f,
                "crp cache {} hits / {} misses ({:.1}% hit rate)",
                self.crp_hits,
                self.crp_misses,
                self.crp_hits as f64 * 100.0 / total as f64
            )?;
        }
        if self.messages_dropped > 0 || self.sessions_lost > 0 {
            writeln!(f, "chaos     {} messages dropped, {} sessions lost", self.messages_dropped, self.sessions_lost)?;
        }
        if let Some(store) = &self.store {
            writeln!(f, "store     {store}")?;
        }
        writeln!(f, "latency (end-to-end, simulated):")?;
        let peak = self.latency_buckets_us.iter().map(|&(_, n)| n).max().unwrap_or(0);
        for &(lower, count) in &self.latency_buckets_us {
            let bar = "#".repeat(((count * 40).div_ceil(peak.max(1))) as usize);
            writeln!(f, "  {:>7} – {:<7} {:>7}  {}", fmt_us(lower), fmt_us(lower * 2), count, bar)?;
        }
        if self.latency_buckets_us.is_empty() {
            writeln!(f, "  (no sessions recorded)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_log_scale() {
        assert_eq!(LatencyHistogram::bucket_index(0.0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1e-6), 0);
        assert_eq!(LatencyHistogram::bucket_index(3e-6), 1); // 3 µs → [2,4)
        assert_eq!(LatencyHistogram::bucket_index(1e-3), 9); // 1000 µs → [512, 1024)
        assert_eq!(LatencyHistogram::bucket_index(1e6), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn histogram_counts_and_reports() {
        let h = LatencyHistogram::new();
        h.record(100e-6);
        h.record(110e-6);
        h.record(0.5);
        assert_eq!(h.count(), 3);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0], (64, 2)); // 100 µs and 110 µs share [64,128)
        assert_eq!(buckets[1].1, 1);
    }

    #[test]
    fn restored_counters_continue_where_the_store_left_off() {
        let live = FleetMetrics::new();
        live.session_started();
        live.session_started();
        live.session_accepted();
        live.session_rejected();
        live.session_timed_out();
        live.attempt_retried();
        live.session_refused();
        live.device_fault();
        live.messages_dropped(3);
        live.session_lost();
        live.record_crp(56, 8);
        live.observe_latency(1e-3);
        live.observe_latency(0.5);

        let mut persisted = Counters {
            started: 2,
            accepted: 1,
            rejected: 1,
            timed_out: 1,
            retried: 1,
            refused: 1,
            faults: 1,
            dropped: 3,
            lost: 1,
            crp_hits: 56,
            crp_misses: 8,
            ..Counters::default()
        };
        persisted.latency[LatencyHistogram::bucket_index(1e-3)] += 1;
        persisted.latency[LatencyHistogram::bucket_index(0.5)] += 1;

        let restored = FleetMetrics::from_store_counters(&persisted);
        let devices = StatusCounts { active: 1, quarantined: 0, revoked: 0 };
        assert_eq!(restored.snapshot(devices), live.snapshot(devices));
    }

    #[test]
    fn snapshot_copies_counters() {
        let m = FleetMetrics::new();
        m.session_started();
        m.session_started();
        m.session_accepted();
        m.session_rejected();
        m.session_timed_out();
        m.attempt_retried();
        m.observe_latency(1e-3);
        let snap = m.snapshot(StatusCounts { active: 3, quarantined: 1, revoked: 0 });
        assert_eq!(snap.sessions_started, 2);
        assert_eq!(snap.sessions_accepted, 1);
        assert_eq!(snap.sessions_rejected, 1);
        assert_eq!(snap.sessions_timed_out, 1);
        assert_eq!(snap.attempts_retried, 1);
        assert_eq!(snap.devices.total(), 4);
        assert_eq!(snap.latency_buckets_us.len(), 1);
        let rendered = snap.to_string();
        assert!(rendered.contains("accepted"), "display mentions acceptances: {rendered}");
        assert!(rendered.contains('#'), "display draws histogram bars: {rendered}");
    }
}
