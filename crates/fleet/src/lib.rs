//! Fleet-scale attestation for the PUFatt reproduction.
//!
//! The core crate's [`pufatt::server::AttestationServer`] is the paper's
//! verifier with bookkeeping: one lock, one caller, one session at a
//! time. This crate is the production-shaped version of that role — the
//! engine an operator would actually run against thousands of deployed
//! sensors:
//!
//! * [`registry`] — fleet state sharded over independent locks, with an
//!   `Active → Quarantined → Revoked` lifecycle and bounded per-device
//!   session history.
//! * [`pool`] — a `std::thread` worker pool behind a bounded queue
//!   (backpressure by blocking submit), with contained job panics and
//!   graceful drain on shutdown.
//! * [`metrics`] — relaxed atomic counters and a log-scale latency
//!   histogram, snapshotted into a printable [`FleetSnapshot`].
//! * [`campaign`] — the runner tying them together: manufacture a fleet
//!   off one shared design, attest every device concurrently, apply the
//!   retry/quarantine/revocation policy. Deterministic in its seed —
//!   worker count changes wall-clock time, never verdicts (all session
//!   time is simulated, all randomness is derived per device).
//! * [`durable`] — the same campaign journaled through
//!   `pufatt_store::ShardedStore`: records route to per-device-range WAL
//!   shards, ride a group commit with a bounded-latency background
//!   committer, and carry per-device RNG cursors so an interrupted run
//!   fast-forwards (instead of replaying) to a report identical to an
//!   uninterrupted one. [`RunningCampaign`] additionally admits new
//!   devices online while the pool is attesting.
//! * [`service`] — the engine behind a per-request façade
//!   (enroll / open-session / attest / revoke) for the `pufatt-transport`
//!   socket server, with the same verdicts, bit for bit, as an in-process
//!   campaign.
//!
//! Campaigns degrade gracefully under faults: with a
//! [`campaign::ChaosConfig`], a deterministic subset of the fleet becomes
//! *flaky* — it carries a `pufatt_faults::FaultPlan` and talks over the
//! plan's lossy channel — and repeated timeouts or lost sessions walk those
//! devices through the same `Active → Quarantined → Revoked` lifecycle as
//! attesting failures, with hysteresis
//! ([`LifecyclePolicy::reactivate_after`]) so marginal links settle instead
//! of flapping.
//!
//! Everything is std-only, same as the rest of the workspace.
//!
//! # Quickstart
//!
//! ```
//! use pufatt_fleet::{run_campaign, small_test_config};
//!
//! let report = run_campaign(&small_test_config(8, 2, 42)).unwrap();
//! assert!(report.snapshot.sessions_accepted > 0);
//! println!("{}", report.snapshot);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod campaign;
pub mod durable;
pub mod metrics;
pub mod pool;
pub mod registry;
pub mod service;
pub mod sync;

pub use campaign::{
    device_is_flaky, device_is_tampered, run_campaign, small_test_config, CampaignConfig, CampaignReport, ChaosConfig,
    DeviceRecord,
};
pub use durable::{
    config_fingerprint, open_state_dir, run_campaign_with_dir, run_persistent_campaign, RunningCampaign,
};
pub use metrics::{FleetMetrics, FleetSnapshot, LatencyHistogram, LATENCY_BUCKETS};
pub use pool::{SubmitError, WorkerPool};
pub use registry::{DeviceId, FleetStatus, LifecyclePolicy, SessionOutcome, ShardedRegistry, StatusCounts};
pub use service::{EnrollOutcome, FleetService, ServiceVerdict, SessionGate};

// The whole design rests on prover/verifier state being movable across
// worker threads; fail the build, not the campaign, if that regresses.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<pufatt::ProverDevice>();
    assert_send::<pufatt::Verifier>();
    assert_send::<pufatt::EnrolledDevice>();
    assert_send::<ShardedRegistry>();
    assert_send::<FleetMetrics>();
};
