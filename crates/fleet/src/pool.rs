//! A fixed worker pool over a bounded queue.
//!
//! Sessions are CPU-bound (each one emulates a PE32 device and a PUF), so
//! the pool is plain `std::thread` workers pulling jobs from one bounded
//! MPSC channel. The bound is the backpressure: a producer enqueuing
//! faster than the fleet can attest blocks in [`WorkerPool::submit`]
//! instead of growing an unbounded backlog. Shutdown is graceful — the
//! queue is closed, workers drain what is already queued, then exit.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why [`WorkerPool::try_submit`] could not take a job right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity — the caller should shed load (reply
    /// `Busy`) rather than block.
    QueueFull,
}

/// A fixed set of worker threads draining one bounded job queue.
pub struct WorkerPool {
    sender: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    panicked: Arc<AtomicU64>,
}

impl WorkerPool {
    /// Spawns `workers` threads behind a queue of `queue_depth` pending
    /// jobs (submissions beyond that block — that is the backpressure).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`. A `queue_depth` of zero is a rendezvous
    /// channel: every submit waits for a worker to take the job directly.
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        assert!(workers > 0, "worker pool needs at least one worker");
        let (sender, receiver) = sync_channel::<Job>(queue_depth);
        let receiver = Arc::new(Mutex::new(receiver));
        let panicked = Arc::new(AtomicU64::new(0));
        let handles = (0..workers)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let panicked = Arc::clone(&panicked);
                std::thread::Builder::new()
                    .name(format!("fleet-worker-{i}"))
                    .spawn(move || worker_loop(&receiver, &panicked))
                    .unwrap_or_else(|e| panic!("spawn fleet worker: {e}"))
            })
            .collect();
        WorkerPool { sender: Some(sender), workers: handles, panicked }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job, blocking while the queue is full.
    ///
    /// # Panics
    ///
    /// Panics if called after [`WorkerPool::shutdown`] (the pool owns no
    /// queue anymore) or if every worker died — both are caller bugs, not
    /// runtime conditions.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) {
        let Some(sender) = self.sender.as_ref() else {
            panic!("submit after shutdown");
        };
        if sender.send(Box::new(job)).is_err() {
            panic!("all workers exited");
        }
    }

    /// Enqueues a job without blocking. A full queue returns
    /// [`SubmitError::QueueFull`] and hands the job back untouched —
    /// this is the load-shedding submit a server uses so a saturated
    /// fleet answers `Busy` instead of stacking connections behind a
    /// blocking [`WorkerPool::submit`].
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the bounded queue is at capacity.
    ///
    /// # Panics
    ///
    /// Panics if called after [`WorkerPool::shutdown`] or if every worker
    /// died — both caller bugs, exactly as for [`WorkerPool::submit`].
    pub fn try_submit<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), SubmitError> {
        let Some(sender) = self.sender.as_ref() else {
            panic!("try_submit after shutdown");
        };
        match sender.try_send(Box::new(job)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(SubmitError::QueueFull),
            Err(TrySendError::Disconnected(_)) => panic!("all workers exited"),
        }
    }

    /// Closes the queue, drains remaining jobs, joins every worker, and
    /// returns how many jobs panicked (their panics are contained, not
    /// propagated — one poisoned device must not take the campaign down).
    pub fn shutdown(mut self) -> u64 {
        self.drain();
        self.panicked.load(Ordering::Relaxed)
    }

    fn drain(&mut self) {
        // Dropping the sender closes the channel; workers exit when the
        // queue is empty.
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.drain();
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>, panicked: &AtomicU64) {
    loop {
        // Hold the lock only to take a job, never while running it. The
        // poison-tolerant lock matters here: a panicking job poisons this
        // mutex for every sibling worker, and `unwrap()` would turn one
        // contained panic into a dead pool.
        // analyze: allow(conc: recv under the receiver lock IS the handoff; the lock is this class's only member and nothing is acquired under it)
        let job = match crate::sync::lock_ranked(receiver, crate::sync::rank::POOL_RECEIVER).recv() {
            Ok(job) => job,
            Err(_) => return, // queue closed and empty
        };
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            panicked.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_job_across_workers() {
        let pool = WorkerPool::new(4, 8);
        assert_eq!(pool.worker_count(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(pool.shutdown(), 0);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn bounded_queue_applies_backpressure_without_deadlock() {
        // Depth 1 with a single worker: submits block until the worker
        // frees a slot, yet all jobs still complete.
        let pool = WorkerPool::new(1, 1);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn panicking_jobs_are_contained_and_counted() {
        let pool = WorkerPool::new(2, 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..10 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                if i % 2 == 0 {
                    panic!("job {i} failed");
                }
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(pool.shutdown(), 5, "five jobs panicked");
        assert_eq!(counter.load(Ordering::Relaxed), 5, "the others still ran");
    }

    #[test]
    fn try_submit_sheds_load_instead_of_blocking() {
        // One worker parked on a gate: the queue fills, and further
        // try_submits fail fast instead of blocking the producer.
        let gate = Arc::new(Mutex::new(()));
        let held = gate.lock().expect("fresh mutex");
        let pool = WorkerPool::new(1, 2);
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let gate = Arc::clone(&gate);
            let ran = Arc::clone(&ran);
            let _ = pool.try_submit(move || {
                drop(gate.lock());
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Worker holds one job, queue holds two: at least one submission
        // must have been shed.
        assert!(pool.try_submit(|| {}).is_err(), "queue must report full");
        drop(held);
        pool.shutdown();
        let ran = ran.load(Ordering::Relaxed);
        assert!((1..8).contains(&ran), "some ran ({ran}), some were shed");
    }

    #[test]
    fn drop_without_shutdown_still_drains() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2, 4);
            for _ in 0..8 {
                let counter = Arc::clone(&counter);
                pool.submit(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }
}
