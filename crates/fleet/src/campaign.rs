//! Campaign runner: attest a whole fleet through the worker pool.
//!
//! A campaign manufactures `devices` chips of one product line (the
//! design is instantiated once and shared), provisions each with its own
//! prover/verifier pair, and runs `sessions_per_device` attestation
//! sessions per device across the pool, applying the retry/quarantine/
//! revocation lifecycle and recording metrics.
//!
//! # Determinism
//!
//! Results are a function of the configuration only, never of scheduling:
//! every per-device random stream (silicon draw, PUF noise, challenge
//! sequence, tamper decision) is seeded from `seed` and the device id,
//! all of one device's sessions run inside one pool job (so they are
//! sequential), and time — session elapsed, timeout, backoff — is
//! *simulated* time derived from the cycle-accurate clock and channel
//! model, not wall-clock. A campaign with 8 workers therefore produces
//! exactly the same accept/reject totals as the same campaign with 1.

use crate::metrics::{FleetMetrics, FleetSnapshot};
use crate::pool::WorkerPool;
use crate::registry::{DeviceId, FleetStatus, LifecyclePolicy, SessionOutcome, ShardedRegistry};
use pufatt::adversary::build_malicious_prover;
use pufatt::enroll::enroll_with_design;
use pufatt::protocol::{provision, AttestationRequest, Channel, ProverDevice, Verifier};
use pufatt::PufattError;
use pufatt_alupuf::device::{AluPufConfig, AluPufDesign};
use pufatt_faults::{apply_device_faults, run_chaos_session, ChaosReport, FaultPlan, LossyChannel, RetryPolicy};
use pufatt_swatt::checksum::SwattParams;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything a campaign needs; [`CampaignConfig::default`] is a small
/// but representative fleet.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Devices to manufacture and attest.
    pub devices: usize,
    /// Worker threads running sessions.
    pub workers: usize,
    /// Registry shards.
    pub shards: usize,
    /// Attestation sessions per device.
    pub sessions_per_device: u32,
    /// Master seed; all per-device randomness derives from it.
    pub seed: u64,
    /// Fraction of devices manufactured compromised (malware in the
    /// attested region), deterministically chosen per device.
    pub tamper_fraction: f64,
    /// The product line's PUF configuration.
    pub puf: AluPufConfig,
    /// Checksum parameters of the attestation program.
    pub params: SwattParams,
    /// Retry/quarantine/revocation policy.
    pub policy: LifecyclePolicy,
    /// Session timeout in simulated seconds (elapsed time beyond this
    /// rejects the attempt even if the response verifies).
    pub timeout_s: f64,
    /// Retained outcomes per device in the registry.
    pub history_capacity: usize,
    /// Pending jobs the pool queue holds before submits block.
    pub queue_depth: usize,
    /// Chaos mode: a fault plan and the fraction of the fleet it afflicts.
    /// `None` runs the campaign exactly as before (ideal channel, no
    /// injected faults).
    pub chaos: Option<ChaosConfig>,
    /// Group-commit latency bound for persistent campaigns, in seconds:
    /// a background committer fsyncs each shard's WAL at least this often,
    /// so a crash loses at most this much recent (re-derivable) history.
    /// `0` runs without a committer — appends become durable when the
    /// queue fills, a record is force-synced, or the campaign finishes.
    /// Scheduling-only: excluded from the config fingerprint, never
    /// verdict-affecting.
    pub commit_interval_s: f64,
    /// Storage-failure policy for persistent campaigns. `false` (the
    /// default) degrades gracefully: a sick shard refuses its devices
    /// with typed errors while healthy shards keep attesting. `true`
    /// fails fast: the first shard failure aborts the campaign with a
    /// typed storage error. Policy-only: excluded from the config
    /// fingerprint — it changes what happens *during* a failure, never
    /// any verdict.
    pub fail_fast: bool,
}

/// What a chaos campaign injects and into how much of the fleet.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// The faults applied to flaky devices (PUF, transport, clock, memory
    /// layers — see `pufatt_faults::FaultPlan`).
    pub plan: FaultPlan,
    /// Fraction of devices that are flaky, chosen deterministically per
    /// device from the campaign seed (independent of the tamper set).
    pub flaky_fraction: f64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            devices: 64,
            workers: 4,
            shards: 16,
            sessions_per_device: 2,
            seed: 0xF1EE7,
            tamper_fraction: 0.125,
            puf: AluPufConfig::paper_32bit(),
            // Small regions and few rounds: a fleet campaign cares about
            // scheduling and lifecycle, not per-session checksum strength.
            params: SwattParams { region_bits: 8, rounds: 192, puf_interval: 32 },
            policy: LifecyclePolicy::default(),
            timeout_s: 1.0,
            history_capacity: 64,
            queue_depth: 64,
            chaos: None,
            commit_interval_s: 0.0,
            fail_fast: false,
        }
    }
}

/// Result of a finished campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Final counters and device states (exact: taken after drain).
    pub snapshot: FleetSnapshot,
    /// Per-device end state and full retained session history, ascending
    /// by id. This is the determinism witness: two runs of the same
    /// configuration must produce identical records whatever the worker
    /// count.
    pub device_records: Vec<DeviceRecord>,
    /// Real (wall-clock) time the campaign took.
    pub wall_time: Duration,
    /// Pool jobs that panicked (0 in a healthy campaign).
    pub panicked_jobs: u64,
}

/// One device's campaign outcome, reconstructed from the registry after
/// the pool drains.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceRecord {
    /// The device id.
    pub id: DeviceId,
    /// Whether the device was manufactured compromised.
    pub tampered: bool,
    /// Whether the chaos configuration marked the device flaky.
    pub flaky: bool,
    /// Lifecycle state when the campaign ended.
    pub status: FleetStatus,
    /// Retained session outcomes, oldest first.
    pub outcomes: Vec<SessionOutcome>,
}

impl CampaignReport {
    /// Completed sessions per wall-clock second — the scheduler-throughput
    /// figure the benchmarks sweep over worker counts.
    pub fn sessions_per_second(&self) -> f64 {
        let finished = self.snapshot.sessions_accepted + self.snapshot.sessions_rejected;
        finished as f64 / self.wall_time.as_secs_f64().max(1e-9)
    }
}

/// SplitMix64: decorrelates the per-device seeds derived from one master
/// seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn device_seed(campaign_seed: u64, id: DeviceId) -> u64 {
    splitmix64(campaign_seed ^ splitmix64(id as u64))
}

/// Whether device `id` is manufactured compromised — a pure function of
/// the campaign seed, so the tamper set is identical however the fleet is
/// scheduled.
pub fn device_is_tampered(campaign_seed: u64, id: DeviceId, tamper_fraction: f64) -> bool {
    let draw = splitmix64(device_seed(campaign_seed, id) ^ 0x7A3D) >> 11;
    (draw as f64) * (1.0 / (1u64 << 53) as f64) < tamper_fraction
}

/// Whether device `id` is flaky under a chaos campaign — like
/// [`device_is_tampered`] a pure function of the seed, and drawn with a
/// different salt so the flaky and tampered sets are independent.
pub fn device_is_flaky(campaign_seed: u64, id: DeviceId, flaky_fraction: f64) -> bool {
    let draw = splitmix64(device_seed(campaign_seed, id) ^ 0x1F1A) >> 11;
    (draw as f64) * (1.0 / (1u64 << 53) as f64) < flaky_fraction
}

/// One device's provisioned session state, built inside the pool job.
pub(crate) struct DeviceSession {
    prover: ProverDevice,
    verifier: Verifier,
    rng: ChaCha8Rng,
    /// The device's link: lossy for flaky devices under chaos, ideal
    /// otherwise.
    channel: LossyChannel,
    /// The faults this device lives with (clean unless chaos marked it
    /// flaky).
    plan: FaultPlan,
    /// The word index chaos tamper targets in this device's memory.
    tamper_cell: usize,
    /// That word's pristine value at provision time. Mid-traversal tamper
    /// XORs the word and the mutation persists across sessions, so the
    /// current value differing from this baseline is exactly one bit of
    /// cross-session device state — the only such bit (seed/x0 cells are
    /// replanted every session; nothing else in the attested region is
    /// written). Captured so a resume cursor can record and re-apply it.
    tamper_baseline: Option<u32>,
}

/// Everything a [`DeviceSession`] needs to fast-forward to a checkpoint:
/// the fields of a journaled `Record::DeviceCursor`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct SessionCursor {
    /// The session RNG's absolute ChaCha word position.
    pub session_pos: u64,
    /// The device PUF's noise-RNG absolute word position.
    pub noise_pos: u64,
    /// Raw PUF evaluations performed (drives burst-fault scheduling).
    pub noise_evals: u64,
    /// Whether the tamper cell currently differs from its baseline.
    pub tamper_parity: bool,
}

impl DeviceSession {
    /// Snapshot of the deterministic per-device state a resume must
    /// restore: RNG positions, PUF evaluation count, tamper parity.
    pub(crate) fn cursor(&mut self) -> SessionCursor {
        let (noise_pos, noise_evals) = self.prover.puf().with(|d| d.noise_state());
        SessionCursor {
            session_pos: self.rng.word_pos(),
            noise_pos,
            noise_evals,
            tamper_parity: self.tamper_parity(),
        }
    }

    /// Fast-forwards a freshly provisioned session to `cursor` without
    /// replaying the sessions that produced it. Word positions are
    /// absolute, so whatever the provisioning path consumed is irrelevant.
    pub(crate) fn restore_cursor(&mut self, cursor: &SessionCursor) {
        self.rng.set_word_pos(cursor.session_pos);
        self.prover
            .puf()
            .with(|d| d.restore_noise_state(cursor.noise_pos, cursor.noise_evals));
        if self.tamper_parity() != cursor.tamper_parity {
            let cell = self.tamper_cell;
            self.prover.memory_mut()[cell] ^= pufatt_faults::MID_TRAVERSAL_XOR;
        }
    }

    fn tamper_parity(&mut self) -> bool {
        match self.tamper_baseline {
            Some(baseline) => self.prover.memory_mut()[self.tamper_cell] != baseline,
            None => false,
        }
    }
}

pub(crate) fn provision_device(
    design: &Arc<AluPufDesign>,
    cfg: &CampaignConfig,
    id: DeviceId,
) -> Result<DeviceSession, PufattError> {
    let seed = device_seed(cfg.seed, id);
    let enrolled = enroll_with_design(design, seed)?;
    // The attestation clock comes from the device's own PUF timing limit
    // (the §4.2 overclock defence); few samples keep provisioning cheap.
    let clock = pufatt::protocol::puf_limited_clock(&enrolled, 1.10, 16, splitmix64(seed ^ 1));
    let (prover, verifier, _) =
        provision(&enrolled, cfg.params, clock, Channel::sensor_link(), splitmix64(seed ^ 2), 1.10)?;
    let prover = if device_is_tampered(cfg.seed, id, cfg.tamper_fraction) {
        // A compromised device mounts the memory-copy attack (§4): the
        // redirecting checksum forges the response from a pristine copy,
        // and the per-round redirection overhead breaks the time bound —
        // so the verifier rejects it every session, deterministically.
        let expected_region = prover.expected_region();
        build_malicious_prover(enrolled.device_handle(splitmix64(seed ^ 4)), cfg.params, &expected_region, clock, 1.0)?
    } else {
        prover
    };
    // Chaos: flaky devices carry their plan's device-side faults and talk
    // over the plan's lossy channel; everyone else keeps the clean line.
    let flaky = matches!(&cfg.chaos, Some(chaos) if device_is_flaky(cfg.seed, id, chaos.flaky_fraction));
    let plan = match (&cfg.chaos, flaky) {
        (Some(chaos), true) => FaultPlan { seed: splitmix64(seed ^ 5), ..chaos.plan.clone() },
        _ => FaultPlan::clean(splitmix64(seed ^ 5)),
    };
    let mut prover = prover;
    apply_device_faults(&mut prover, &plan);
    let channel = if flaky {
        LossyChannel::from_plan(verifier.channel(), &plan)
    } else {
        LossyChannel::ideal(verifier.channel())
    };
    let tamper_cell = pufatt_faults::mid_traversal_addr(&prover.layout()) as usize;
    let tamper_baseline = prover.memory_mut().get(tamper_cell).copied();
    Ok(DeviceSession {
        prover,
        verifier,
        rng: ChaCha8Rng::seed_from_u64(splitmix64(seed ^ 3)),
        channel,
        plan,
        tamper_cell,
        tamper_baseline,
    })
}

/// How one scheduled session ended, with the per-session metric deltas
/// the durable campaign journals alongside the outcome (the in-memory
/// campaign only needs the outcome itself).
pub(crate) enum SessionEvent {
    /// The session reached a verdict to record in the registry.
    Closed {
        /// The verdict.
        outcome: SessionOutcome,
        /// Retry increments this session contributed to the counters.
        retried: u32,
        /// Messages the channel ate during this session.
        dropped: u32,
        /// Whether the session died without a verdict (deadline/channel)
        /// and the rejection is synthetic.
        lost: bool,
        /// Verifier CRP-cache hits this session contributed.
        crp_hits: u32,
        /// Verifier CRP-cache misses this session contributed.
        crp_misses: u32,
    },
    /// The device faulted outside the protocol; no verdict.
    Fault {
        /// Retry increments counted before the fault.
        retried: u32,
        /// Messages dropped before the fault.
        dropped: u32,
        /// Verifier CRP-cache hits counted before the fault.
        crp_hits: u32,
        /// Verifier CRP-cache misses counted before the fault.
        crp_misses: u32,
    },
}

/// Per-session CRP-cache delta: the verifier's cumulative counters minus a
/// baseline taken when the session began. Sessions run sequentially per
/// device, so the delta is exact and scheduling-independent.
fn crp_delta(verifier: &Verifier, baseline: (u64, u64), metrics: &FleetMetrics) -> (u32, u32) {
    let (h1, m1) = verifier.crp_cache_stats();
    let (hits, misses) = (h1.saturating_sub(baseline.0), m1.saturating_sub(baseline.1));
    metrics.record_crp(hits, misses);
    (hits as u32, misses as u32)
}

/// Runs one session (with retries) against an already-provisioned device.
pub(crate) fn run_one_session(
    session: &mut DeviceSession,
    cfg: &CampaignConfig,
    metrics: &FleetMetrics,
) -> SessionEvent {
    metrics.session_started();
    // A new session starts with a cold CRP cache; retry attempts within it
    // replay the same challenge stream and hit.
    session.verifier.begin_session();
    let crp0 = session.verifier.crp_cache_stats();
    let mut attempts = 0u32;
    let mut backoff_s = 0.0f64;
    loop {
        attempts += 1;
        let request = AttestationRequest::random(&mut session.rng);
        let report = match session.prover.attest(request) {
            Ok(report) => report,
            Err(_) => {
                metrics.device_fault();
                let (crp_hits, crp_misses) = crp_delta(&session.verifier, crp0, metrics);
                return SessionEvent::Fault { retried: attempts - 1, dropped: 0, crp_hits, crp_misses };
            }
        };
        let compute_s = session.prover.clock().duration_ns(report.cycles) * 1e-9;
        let verdict = session.verifier.verify(request, &report, compute_s);
        let elapsed_s = verdict.elapsed_s + backoff_s;
        let timed_out = elapsed_s > cfg.timeout_s;
        let accepted = verdict.accepted && !timed_out;
        if accepted || attempts >= cfg.policy.max_attempts.max(1) {
            let outcome = SessionOutcome {
                accepted,
                response_ok: verdict.response_ok,
                time_ok: verdict.time_ok,
                timed_out,
                attempts,
                elapsed_s,
            };
            if accepted {
                metrics.session_accepted();
            } else {
                metrics.session_rejected();
                if timed_out {
                    metrics.session_timed_out();
                }
            }
            metrics.observe_latency(elapsed_s);
            let (crp_hits, crp_misses) = crp_delta(&session.verifier, crp0, metrics);
            return SessionEvent::Closed {
                outcome,
                retried: attempts - 1,
                dropped: 0,
                lost: false,
                crp_hits,
                crp_misses,
            };
        }
        metrics.attempt_retried();
        // Exponential backoff in simulated time: it delays the session
        // (and can push it over the timeout) without sleeping the worker.
        backoff_s += cfg.policy.backoff_base_s * f64::from(1u32 << (attempts - 1).min(16));
    }
}

/// Runs one session through the chaos harness: the device's lossy channel,
/// its fault plan, and the verifier-side retry/backoff/deadline state
/// machine. Sessions that die without a verdict (deadline, channel fully
/// lost) count as failed-and-timed-out towards the lifecycle, never as a
/// crash.
pub(crate) fn run_one_chaos_session(
    session: &mut DeviceSession,
    cfg: &CampaignConfig,
    metrics: &FleetMetrics,
) -> SessionEvent {
    metrics.session_started();
    session.verifier.begin_session();
    let crp0 = session.verifier.crp_cache_stats();
    let mut policy = RetryPolicy::for_verifier(&session.verifier, cfg.policy.max_attempts);
    policy.backoff_base_s = cfg.policy.backoff_base_s;
    policy.deadline_s = policy.deadline_s.min(cfg.timeout_s);
    let report: ChaosReport = run_chaos_session(
        &mut session.prover,
        &session.verifier,
        &session.channel,
        &session.plan,
        &policy,
        &mut session.rng,
    );
    let dropped = report.messages_dropped();
    metrics.messages_dropped(u64::from(dropped));
    let retried = u32::from(report.attempts > 1);
    if report.attempts > 1 {
        metrics.attempt_retried();
    }
    let (outcome, lost) = match &report.result {
        Ok(verdict) => (
            SessionOutcome {
                accepted: verdict.accepted,
                response_ok: verdict.response_ok,
                time_ok: verdict.time_ok,
                timed_out: false,
                attempts: report.attempts,
                elapsed_s: report.elapsed_s,
            },
            false,
        ),
        Err(PufattError::Timeout { .. }) | Err(PufattError::ChannelLost { .. }) => {
            metrics.session_lost();
            (
                SessionOutcome {
                    accepted: false,
                    response_ok: false,
                    time_ok: false,
                    timed_out: true,
                    attempts: report.attempts,
                    elapsed_s: report.elapsed_s,
                },
                true,
            )
        }
        Err(_) => {
            metrics.device_fault();
            let (crp_hits, crp_misses) = crp_delta(&session.verifier, crp0, metrics);
            return SessionEvent::Fault { retried, dropped, crp_hits, crp_misses };
        }
    };
    if outcome.accepted {
        metrics.session_accepted();
    } else {
        metrics.session_rejected();
        if outcome.timed_out {
            metrics.session_timed_out();
        }
    }
    metrics.observe_latency(outcome.elapsed_s);
    let (crp_hits, crp_misses) = crp_delta(&session.verifier, crp0, metrics);
    SessionEvent::Closed { outcome, retried, dropped, lost, crp_hits, crp_misses }
}

/// The whole job for one device: provision, then run its sessions
/// sequentially, recording lifecycle transitions after each.
fn run_device(
    design: &Arc<AluPufDesign>,
    registry: &ShardedRegistry,
    metrics: &FleetMetrics,
    cfg: &CampaignConfig,
    id: DeviceId,
) {
    let mut session = match provision_device(design, cfg, id) {
        Ok(session) => session,
        Err(_) => {
            metrics.device_fault();
            return;
        }
    };
    for _ in 0..cfg.sessions_per_device {
        if registry.status(id) == Some(FleetStatus::Revoked) {
            metrics.session_refused();
            continue;
        }
        let event = if cfg.chaos.is_some() {
            run_one_chaos_session(&mut session, cfg, metrics)
        } else {
            run_one_session(&mut session, cfg, metrics)
        };
        if let SessionEvent::Closed { outcome, .. } = event {
            registry.record_outcome(id, outcome, &cfg.policy);
        }
    }
}

/// Runs a full campaign and reports the final state.
///
/// # Errors
///
/// Rejects invalid configurations (zero devices/workers, an unsupported
/// PUF width) before any thread spawns; per-device faults during the run
/// are counted in the snapshot instead of aborting the fleet.
pub fn run_campaign(cfg: &CampaignConfig) -> Result<CampaignReport, PufattError> {
    if cfg.devices == 0 || cfg.workers == 0 || cfg.sessions_per_device == 0 {
        return Err(PufattError::Codegen("campaign needs devices, workers, and sessions > 0".into()));
    }
    let width = cfg.puf.width;
    if !(width.is_power_of_two() && (4..=32).contains(&width)) {
        return Err(PufattError::UnsupportedWidth { width });
    }

    let start = Instant::now();
    let design = Arc::new(AluPufDesign::new(cfg.puf.clone()));
    let registry = Arc::new(ShardedRegistry::new(cfg.shards.max(1), cfg.history_capacity.max(1)));
    let metrics = Arc::new(FleetMetrics::new());
    let shared_cfg = Arc::new(cfg.clone());

    let pool = WorkerPool::new(cfg.workers, cfg.queue_depth.max(1));
    for id in 0..cfg.devices as DeviceId {
        registry.enroll(id);
        let design = Arc::clone(&design);
        let registry = Arc::clone(&registry);
        let metrics = Arc::clone(&metrics);
        let cfg = Arc::clone(&shared_cfg);
        pool.submit(move || run_device(&design, &registry, &metrics, &cfg, id));
    }
    let panicked_jobs = pool.shutdown();

    let device_records = registry
        .ids()
        .into_iter()
        .filter_map(|id| {
            Some(DeviceRecord {
                id,
                tampered: device_is_tampered(cfg.seed, id, cfg.tamper_fraction),
                flaky: matches!(&cfg.chaos, Some(c) if device_is_flaky(cfg.seed, id, c.flaky_fraction)),
                status: registry.status(id)?,
                outcomes: registry.history(id)?,
            })
        })
        .collect();

    Ok(CampaignReport {
        snapshot: metrics.snapshot(registry.status_counts()),
        device_records,
        wall_time: start.elapsed(),
        panicked_jobs,
    })
}

/// A cheap configuration for tests and benchmarks: a narrow PUF and a
/// short checksum keep per-session cost low while exercising every layer.
pub fn small_test_config(devices: usize, workers: usize, seed: u64) -> CampaignConfig {
    CampaignConfig {
        devices,
        workers,
        shards: 8,
        sessions_per_device: 2,
        seed,
        tamper_fraction: 0.25,
        puf: AluPufConfig { width: 16, design_seed: 7, ..AluPufConfig::paper_32bit() },
        params: SwattParams { region_bits: 8, rounds: 128, puf_interval: 32 },
        policy: LifecyclePolicy { max_attempts: 2, ..LifecyclePolicy::default() },
        timeout_s: 1.0,
        history_capacity: 16,
        queue_depth: 32,
        chaos: None,
        commit_interval_s: 0.0,
        fail_fast: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_attests_a_small_fleet() {
        let report = run_campaign(&small_test_config(12, 3, 0xC0FFEE)).unwrap();
        let snap = &report.snapshot;
        assert_eq!(report.panicked_jobs, 0);
        assert_eq!(snap.devices.total(), 12);
        assert!(snap.sessions_accepted > 0, "honest majority accepted: {snap}");
        assert!(snap.sessions_rejected > 0, "tampered devices rejected: {snap}");
        assert_eq!(
            snap.sessions_started,
            snap.sessions_accepted + snap.sessions_rejected,
            "every started session terminates"
        );
        assert!(!snap.latency_buckets_us.is_empty(), "latencies recorded");
    }

    #[test]
    fn tamper_set_is_a_pure_function_of_the_seed() {
        let a: Vec<bool> = (0..64).map(|id| device_is_tampered(9, id, 0.25)).collect();
        let b: Vec<bool> = (0..64).map(|id| device_is_tampered(9, id, 0.25)).collect();
        assert_eq!(a, b);
        let tampered = a.iter().filter(|&&t| t).count();
        assert!((4..=28).contains(&tampered), "≈25% of 64 devices, got {tampered}");
        assert!((0..64).all(|id| !device_is_tampered(9, id, 0.0)));
        assert!((0..64).all(|id| device_is_tampered(9, id, 1.0)));
    }

    #[test]
    fn zero_config_is_rejected() {
        let mut cfg = small_test_config(0, 1, 1);
        assert!(run_campaign(&cfg).is_err());
        cfg.devices = 1;
        cfg.workers = 0;
        assert!(run_campaign(&cfg).is_err());
    }

    #[test]
    fn impossible_timeout_rejects_everything() {
        let mut cfg = small_test_config(6, 2, 5);
        cfg.timeout_s = 0.0;
        let report = run_campaign(&cfg).unwrap();
        let snap = &report.snapshot;
        assert_eq!(snap.sessions_accepted, 0);
        assert!(snap.sessions_timed_out > 0);
        assert_eq!(snap.sessions_timed_out, snap.sessions_rejected);
    }

    #[test]
    fn chaos_campaign_quarantines_flaky_devices() {
        // Flaky devices lose most messages: their sessions die on the
        // channel, the lifecycle walks them out of Active, while clean
        // devices keep attesting normally.
        let mut cfg = small_test_config(12, 3, 0xD1CE);
        cfg.tamper_fraction = 0.0;
        cfg.sessions_per_device = 6;
        cfg.policy = LifecyclePolicy {
            max_attempts: 2,
            quarantine_after: 2,
            revoke_after: 4,
            reactivate_after: 2,
            ..LifecyclePolicy::default()
        };
        cfg.chaos = Some(ChaosConfig {
            plan: FaultPlan::clean(0).with_drops(0.9).with_jitter_ms(1.0),
            flaky_fraction: 0.4,
        });
        let report = run_campaign(&cfg).unwrap();
        let snap = &report.snapshot;
        assert_eq!(report.panicked_jobs, 0);
        assert!(snap.messages_dropped > 0, "drops must be counted: {snap}");
        assert!(snap.sessions_lost > 0, "90% drop rate loses sessions: {snap}");
        let flaky: Vec<_> = report.device_records.iter().filter(|r| r.flaky).collect();
        assert!(!flaky.is_empty(), "0.4 of 12 devices should be flaky");
        assert!(
            flaky.iter().any(|r| r.status != FleetStatus::Active),
            "persistent loss must demote flaky devices: {:?}",
            flaky.iter().map(|r| (r.id, r.status)).collect::<Vec<_>>()
        );
        for r in report.device_records.iter().filter(|r| !r.flaky) {
            assert_eq!(r.status, FleetStatus::Active, "clean device {} must stay active", r.id);
        }
    }

    #[test]
    fn chaos_campaign_is_deterministic_across_worker_counts() {
        let make = |workers| {
            let mut cfg = small_test_config(10, workers, 0xFA17);
            cfg.sessions_per_device = 4;
            cfg.chaos = Some(ChaosConfig {
                plan: FaultPlan::clean(0).with_drops(0.3).with_bit_flips(0.01),
                flaky_fraction: 0.5,
            });
            run_campaign(&cfg).unwrap()
        };
        let one = make(1);
        let four = make(4);
        assert_eq!(one.device_records, four.device_records, "verdicts must not depend on scheduling");
        assert_eq!(one.snapshot, four.snapshot);
    }

    #[test]
    fn tampered_devices_progress_towards_quarantine_or_revocation() {
        let mut cfg = small_test_config(8, 2, 0xBAD);
        cfg.tamper_fraction = 1.0;
        cfg.sessions_per_device = 6;
        let report = run_campaign(&cfg).unwrap();
        let snap = &report.snapshot;
        assert_eq!(snap.sessions_accepted, 0, "all devices tampered: {snap}");
        assert_eq!(snap.devices.active, 0, "none should stay active: {snap}");
        assert!(snap.devices.revoked > 0, "repeat offenders get revoked: {snap}");
        assert!(snap.sessions_refused > 0, "revoked devices are refused: {snap}");
        assert!(snap.attempts_retried > 0, "failures are retried first: {snap}");
    }
}
