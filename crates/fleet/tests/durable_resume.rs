//! Exhaustive interrupt/resume proof for persistent campaigns: a campaign
//! crashed at *every* backend operation and resumed must produce verdicts
//! identical to a run that was never interrupted.

// Panicking on a broken fixture is exactly what a test should do.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use pufatt::PufattError;
use pufatt_fleet::campaign::ChaosConfig;
use pufatt_fleet::registry::DeviceId;
use pufatt_fleet::{
    run_campaign, run_persistent_campaign, small_test_config, CampaignConfig, CampaignReport, RunningCampaign,
};
use pufatt_store::{ShardedOptions, ShardedStore, SimVfs, TornMode};
use std::sync::Arc;

/// Narrow ranges over several shards so even these small fleets exercise
/// cross-shard recovery: device n lives in WAL shard (n/2)%4.
fn open(cfg: &CampaignConfig, vfs: &SimVfs) -> Result<Arc<ShardedStore>, PufattError> {
    let opts = ShardedOptions {
        history_capacity: cfg.history_capacity,
        shards: 4,
        range_width: 2,
        ..ShardedOptions::default()
    };
    ShardedStore::open(Arc::new(vfs.clone()), opts)
        .map(Arc::new)
        .map_err(|e| PufattError::Storage(e.to_string()))
}

fn attempt(cfg: &CampaignConfig, vfs: &SimVfs, resume: bool) -> Result<CampaignReport, PufattError> {
    run_persistent_campaign(cfg, &open(cfg, vfs)?, resume)
}

/// Launches the campaign, admits `extra` devices online while the pool is
/// attesting, and finishes. Re-admitting an already-enrolled device is a
/// no-op, so resumes pass the same list.
fn attempt_online(
    cfg: &CampaignConfig,
    vfs: &SimVfs,
    resume: bool,
    extra: &[DeviceId],
) -> Result<CampaignReport, PufattError> {
    let campaign = RunningCampaign::launch(cfg, &open(cfg, vfs)?, resume)?;
    for &id in extra {
        campaign.enroll(id)?;
    }
    campaign.finish()
}

fn assert_matches_reference(resumed: &CampaignReport, reference: &CampaignReport, context: &str) {
    assert_eq!(resumed.device_records, reference.device_records, "verdicts diverged: {context}");
    let mut snap = resumed.snapshot.clone();
    snap.store = None;
    assert_eq!(snap, reference.snapshot, "metrics diverged: {context}");
}

#[test]
fn campaign_interrupted_anywhere_resumes_to_identical_verdicts() {
    let mut cfg = small_test_config(4, 1, 0x0DDB);
    cfg.sessions_per_device = 3;
    let reference = run_campaign(&cfg).expect("reference run");

    // A crash-free persistent run both validates the journal and counts
    // the backend operations the matrix must cover.
    let probe = SimVfs::new();
    let probe_report = attempt(&cfg, &probe, false).expect("crash-free persistent run");
    assert_matches_reference(&probe_report, &reference, "crash-free persistent run");
    let total_ops = probe.ops();
    assert!(total_ops > 30, "campaign should cross many crash points, got {total_ops}");

    for k in 0..=total_ops {
        for mode in [TornMode::Drop, TornMode::Flip] {
            let vfs = SimVfs::crashing_at(k);
            // The interrupted run may stop anywhere: during store open, a
            // main-thread append, or a worker's journal (which degrades
            // the device's home shard and refuses the rest of its
            // schedule — no panic, no partial admission).
            let _ = attempt(&cfg, &vfs, false);
            let disk = vfs.power_cut(mode);
            let resumed = attempt(&cfg, &disk, true)
                .unwrap_or_else(|e| panic!("resume after crash at op {k} ({mode:?}) failed: {e}"));
            assert_matches_reference(&resumed, &reference, &format!("crash at op {k} ({mode:?})"));
        }
    }
}

#[test]
fn online_enrollment_survives_interruption() {
    let mut cfg = small_test_config(3, 1, 0x0E11);
    cfg.sessions_per_device = 2;
    // Ids past the configured range, landing in different WAL shards.
    let extra: [DeviceId; 2] = [9, 12];

    let probe = SimVfs::new();
    let mut reference = attempt_online(&cfg, &probe, false, &extra).expect("crash-free online run");
    // The reference is itself a persistent run; drop its store statistics
    // so assert_matches_reference compares fleet state only.
    reference.snapshot.store = None;
    assert_eq!(reference.snapshot.devices.total(), 5);
    assert_eq!(reference.snapshot.devices_enrolled_online, 2);
    let total_ops = probe.ops();

    for k in (0..=total_ops).step_by(3) {
        for mode in [TornMode::Drop, TornMode::Torn] {
            let vfs = SimVfs::crashing_at(k);
            // The interrupted run may die anywhere — including inside an
            // online enrollment's forced sync, which must leave the device
            // fully admitted or entirely absent.
            let _ = attempt_online(&cfg, &vfs, false, &extra);
            let disk = vfs.power_cut(mode);
            let resumed = attempt_online(&cfg, &disk, true, &extra)
                .unwrap_or_else(|e| panic!("online resume after crash at op {k} ({mode:?}) failed: {e}"));
            assert_matches_reference(&resumed, &reference, &format!("online crash at op {k} ({mode:?})"));
            assert_eq!(resumed.snapshot.devices_enrolled_online, 2, "crash at op {k} ({mode:?})");
        }
    }
}

#[test]
fn chaos_campaign_survives_interruption() {
    let mut cfg = small_test_config(6, 2, 0xFA57);
    cfg.sessions_per_device = 4;
    cfg.chaos = Some(ChaosConfig {
        plan: pufatt_faults::FaultPlan::clean(0).with_drops(0.4).with_jitter_ms(1.0),
        flaky_fraction: 0.5,
    });
    let reference = run_campaign(&cfg).expect("reference chaos run");

    let probe = SimVfs::new();
    let total_ops = {
        attempt(&cfg, &probe, false).expect("crash-free persistent chaos run");
        probe.ops()
    };
    // Chaos sessions are costlier; sample the crash space instead of
    // enumerating it — the store-level matrix already proves every crash
    // point recovers, this checks the fleet replay on top of it.
    for k in (0..=total_ops).step_by(7) {
        let vfs = SimVfs::crashing_at(k);
        let _ = attempt(&cfg, &vfs, false);
        let disk = vfs.power_cut(TornMode::Torn);
        let resumed =
            attempt(&cfg, &disk, true).unwrap_or_else(|e| panic!("chaos resume after crash at op {k} failed: {e}"));
        assert_matches_reference(&resumed, &reference, &format!("chaos crash at op {k}"));
    }
}
