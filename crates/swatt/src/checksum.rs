//! The PUFatt checksum: a SWATT/SCUBA-style pseudorandom memory traversal
//! whose compression function is entangled with PUF outputs.
//!
//! This is the *Rust reference implementation*; [`crate::codegen`] emits
//! PE32 assembly computing bit-identical results (cross-checked by tests),
//! so the verifier can run this fast native version while the prover runs
//! the real instruction sequence with real cycle counts.
//!
//! Algorithm (8-lane state, unrolled as in SWATT):
//!
//! ```text
//! x ← r₀;  C[k] ← (r₀ + k + 1) ⊕ x₀       (k = 0..7)
//! repeat rounds/8 times, unrolled over k = 0..7:
//!     x ← x + (x² ∨ 5)                    (T-function)
//!     a ← x ∧ mask;  w ← mem[a]
//!     C[k] ← rotl1(C[k] ⊕ (w + C[k−1 mod 8]))
//! every `puf_interval`-th block:
//!     z ← PUF(x, C[0]), …, PUF-challenges (x, C[k]) for all lanes
//!     C[0] ← C[0] ⊕ z
//! response r = (C[0], …, C[7])
//! ```

use crate::prg::TFunction;

/// Number of checksum lanes (fixed by the unrolled code layout).
pub const STATE_WORDS: usize = 8;

/// Parameters of a checksum computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwattParams {
    /// log2 of the attested region size in words; addresses are masked to
    /// `2^region_bits`.
    pub region_bits: u32,
    /// Total traversal rounds; must be a multiple of 8 (one unrolled block
    /// updates all 8 lanes).
    pub rounds: u32,
    /// PUF entanglement period in blocks: every `puf_interval`-th block of
    /// 8 rounds queries the PUF. 0 disables PUF entanglement (the pure
    /// software-attestation baseline).
    pub puf_interval: u32,
}

impl SwattParams {
    /// Default parameters used by the experiments: 2 Ki-word region, 4×
    /// coverage, PUF query every 32 blocks.
    pub fn default_for_region(region_bits: u32) -> Self {
        let words = 1u32 << region_bits;
        SwattParams { region_bits, rounds: words * 4, puf_interval: 32 }
    }

    /// Number of unrolled blocks.
    pub fn blocks(&self) -> u32 {
        self.rounds / 8
    }

    /// Number of PUF queries the computation performs.
    pub fn puf_queries(&self) -> u32 {
        self.blocks().checked_div(self.puf_interval).unwrap_or(0)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is not a positive multiple of 8 or the region is
    /// unreasonably sized.
    pub fn validate(&self) {
        assert!(
            self.rounds > 0 && self.rounds.is_multiple_of(8),
            "rounds {} must be a positive multiple of 8",
            self.rounds
        );
        assert!((4..=24).contains(&self.region_bits), "region_bits {} out of range", self.region_bits);
    }
}

/// The checksum's view of the PUF: one obfuscated output per query, derived
/// from the 8 per-lane challenges.
///
/// Implementations: the real device pipeline and the verifier's emulator
/// (in the `pufatt` core crate), plus [`NoPuf`] and [`MixPuf`] here.
pub trait RoundPuf {
    /// Queries the PUF with one challenge pair per lane.
    fn query(&mut self, challenges: &[(u32, u32); STATE_WORDS]) -> u32;
}

/// Disables PUF entanglement: the pure software-attestation baseline
/// (`z = 0` never perturbs the state).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPuf;

impl RoundPuf for NoPuf {
    fn query(&mut self, _challenges: &[(u32, u32); STATE_WORDS]) -> u32 {
        0
    }
}

/// A deterministic challenge mixer standing in for a PUF in tests. Computes
/// the same function as `pufatt_pe32::puf_port::MockPufPort`, so CPU-level
/// and reference-level runs can be cross-checked without silicon.
#[derive(Debug, Clone, Copy, Default)]
pub struct MixPuf;

impl RoundPuf for MixPuf {
    fn query(&mut self, challenges: &[(u32, u32); STATE_WORDS]) -> u32 {
        let mut z = 0x9E37_79B9u32;
        for &(a, b) in challenges {
            z = z.rotate_left(5) ^ a.wrapping_add(b.rotate_left(13));
        }
        z
    }
}

/// Result of a checksum computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChecksumResult {
    /// Final lane state — the attestation response `r`.
    pub response: [u32; STATE_WORDS],
    /// Number of PUF queries performed.
    pub puf_queries: u32,
}

/// Computes the PUFatt checksum over `memory`.
///
/// `memory` must cover the attested region (`2^region_bits` words); `r0` is
/// the attestation challenge and `x0` the PUF challenge seed of the Fig. 2
/// protocol (both sent by the verifier). The PUF hook is invoked exactly as
/// the PE32 code does it, so helper-data side effects line up.
///
/// # Panics
///
/// Panics if parameters are inconsistent or `memory` is smaller than the
/// attested region.
pub fn compute<P: RoundPuf>(memory: &[u32], r0: u32, x0: u32, params: &SwattParams, puf: &mut P) -> ChecksumResult {
    params.validate();
    let mask = (1usize << params.region_bits) - 1;
    assert!(memory.len() > mask, "memory ({} words) smaller than attested region ({})", memory.len(), mask + 1);

    let mut x = TFunction::new(r0);
    let mut c = [0u32; STATE_WORDS];
    for (k, lane) in c.iter_mut().enumerate() {
        *lane = r0.wrapping_add(k as u32 + 1) ^ x0;
    }

    let mut puf_queries = 0;
    for block in 1..=params.blocks() {
        for k in 0..STATE_WORDS {
            let xv = x.next();
            let addr = (xv as usize) & mask;
            let w = memory[addr];
            let prev = c[(k + STATE_WORDS - 1) % STATE_WORDS];
            c[k] = (c[k] ^ w.wrapping_add(prev)).rotate_left(1);
        }
        if params.puf_interval != 0 && block % params.puf_interval == 0 {
            let xv = x.state();
            let mut challenges: [(u32, u32); STATE_WORDS] = std::array::from_fn(|k| (xv, c[k]));
            // The last challenge of every query is the full-carry canary:
            // adding 1 to all-ones ripples the complete carry chain, so the
            // canary's settling time sits at T_ALU. Any clock fast enough
            // to mask a modified checksum violates the canary's setup and
            // corrupts z — this is what gives the overclocking defence of
            // 4.2 its teeth for realistic (short-carry) challenges.
            challenges[STATE_WORDS - 1] = (u32::MAX, 1);
            let z = puf.query(&challenges);
            c[0] ^= z;
            puf_queries += 1;
        }
    }
    ChecksumResult { response: c, puf_queries }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory(words: usize, fill: impl Fn(usize) -> u32) -> Vec<u32> {
        (0..words).map(fill).collect()
    }

    fn params() -> SwattParams {
        SwattParams { region_bits: 8, rounds: 1024, puf_interval: 8 }
    }

    #[test]
    fn deterministic() {
        let mem = memory(256, |i| (i as u32).wrapping_mul(2654435761));
        let a = compute(&mem, 42, 0xA5A5_0F0F, &params(), &mut MixPuf);
        let b = compute(&mem, 42, 0xA5A5_0F0F, &params(), &mut MixPuf);
        assert_eq!(a, b);
    }

    #[test]
    fn seed_sensitivity() {
        let mem = memory(256, |i| i as u32);
        let a = compute(&mem, 1, 0xA5A5_0F0F, &params(), &mut MixPuf);
        let b = compute(&mem, 2, 0xA5A5_0F0F, &params(), &mut MixPuf);
        assert_ne!(a.response, b.response);
    }

    #[test]
    fn single_bit_memory_change_diffuses() {
        let mem = memory(256, |i| i as u32);
        let mut tampered = mem.clone();
        tampered[137] ^= 1;
        let a = compute(&mem, 7, 0xA5A5_0F0F, &params(), &mut NoPuf);
        let b = compute(&tampered, 7, 0xA5A5_0F0F, &params(), &mut NoPuf);
        assert_ne!(a.response, b.response);
        // Diffusion: more than one lane should differ.
        let lanes = a.response.iter().zip(&b.response).filter(|(x, y)| x != y).count();
        assert!(lanes >= 2, "only {lanes} lanes differ");
    }

    #[test]
    fn every_region_word_is_sampled_with_4x_coverage() {
        // With rounds = 4·region the traversal touches the vast majority of
        // words; verify a tampered word at any sampled position changes the
        // checksum for at least 95% of positions.
        let p = SwattParams { region_bits: 6, rounds: 64 * 8, puf_interval: 0 };
        let mem = memory(64, |i| i as u32);
        let base = compute(&mem, 9, 0xA5A5_0F0F, &p, &mut NoPuf);
        let mut missed = 0;
        for pos in 0..64 {
            let mut t = mem.clone();
            t[pos] ^= 0x8000_0000;
            if compute(&t, 9, 0xA5A5_0F0F, &p, &mut NoPuf).response == base.response {
                missed += 1;
            }
        }
        assert!(missed <= 3, "{missed}/64 positions unsampled");
    }

    #[test]
    fn puf_entanglement_changes_response() {
        let mem = memory(256, |i| i as u32);
        let with = compute(&mem, 5, 0xA5A5_0F0F, &params(), &mut MixPuf);
        let without = compute(&mem, 5, 0xA5A5_0F0F, &params(), &mut NoPuf);
        assert_ne!(with.response, without.response);
        assert_eq!(with.puf_queries, params().blocks() / 8);
        assert_eq!(without.puf_queries, with.puf_queries, "NoPuf is still queried, it just returns 0");
    }

    #[test]
    fn puf_interval_zero_disables_queries() {
        let p = SwattParams { puf_interval: 0, ..params() };
        let mem = memory(256, |i| i as u32);
        let r = compute(&mem, 5, 0xA5A5_0F0F, &p, &mut MixPuf);
        assert_eq!(r.puf_queries, 0);
    }

    #[test]
    fn different_pufs_different_responses() {
        // Two different "devices": MixPuf vs a biased variant.
        struct OtherPuf;
        impl RoundPuf for OtherPuf {
            fn query(&mut self, ch: &[(u32, u32); STATE_WORDS]) -> u32 {
                MixPuf.query(ch) ^ 0xFFFF_0000
            }
        }
        let mem = memory(256, |i| i as u32);
        let a = compute(&mem, 5, 0xA5A5_0F0F, &params(), &mut MixPuf);
        let b = compute(&mem, 5, 0xA5A5_0F0F, &params(), &mut OtherPuf);
        assert_ne!(a.response, b.response, "PUF identity must be bound into r");
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn rejects_unaligned_rounds() {
        let p = SwattParams { region_bits: 8, rounds: 12, puf_interval: 0 };
        compute(&[0; 256], 0, 0xA5A5_0F0F, &p, &mut NoPuf);
    }

    #[test]
    #[should_panic(expected = "smaller than attested region")]
    fn rejects_short_memory() {
        let p = SwattParams { region_bits: 8, rounds: 8, puf_interval: 0 };
        compute(&[0; 16], 0, 0xA5A5_0F0F, &p, &mut NoPuf);
    }
}
