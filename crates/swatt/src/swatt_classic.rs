//! The classical SWATT checksum (Seshadri et al., SOSP'04/WiSe'06 lineage)
//! — the pure software-attestation baseline PUFatt builds on.
//!
//! Differences from the PUFatt checksum in [`crate::checksum`]:
//!
//! * addresses come from an RC4 keystream seeded by the verifier's
//!   challenge (the original design) instead of a T-function;
//! * there is no PUF entanglement — which is precisely the gap PUFatt
//!   closes: a classical-SWATT response can be computed by *any* device
//!   holding a copy of the memory.
//!
//! The module exists to quantify that gap (the `design_space` bench) and
//! as a second, structurally different checksum for cross-validation.

use crate::checksum::{ChecksumResult, STATE_WORDS};
use crate::prg::Rc4Prg;

/// Parameters of a classical SWATT computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassicParams {
    /// log2 of the attested region in words.
    pub region_bits: u32,
    /// Traversal rounds (multiple of 8).
    pub rounds: u32,
}

impl ClassicParams {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is not a positive multiple of 8 or the region is
    /// out of range.
    pub fn validate(&self) {
        assert!(
            self.rounds > 0 && self.rounds.is_multiple_of(8),
            "rounds {} must be a positive multiple of 8",
            self.rounds
        );
        assert!((4..=24).contains(&self.region_bits), "region_bits {} out of range", self.region_bits);
    }
}

/// Computes the classical SWATT checksum over `memory`.
///
/// The RC4 generator is keyed with the big-endian bytes of `seed`; each
/// round mixes one pseudorandomly addressed memory word into one of the 8
/// checksum lanes with the SWATT add-xor-rotate structure.
///
/// # Panics
///
/// Panics on inconsistent parameters or a memory smaller than the region.
pub fn compute_classic(memory: &[u32], seed: u32, params: &ClassicParams) -> ChecksumResult {
    params.validate();
    let mask = (1usize << params.region_bits) - 1;
    assert!(memory.len() > mask, "memory smaller than attested region");

    let mut prg = Rc4Prg::new(&seed.to_be_bytes());
    let mut c = [0u32; STATE_WORDS];
    for (k, lane) in c.iter_mut().enumerate() {
        *lane = prg.next_u32().wrapping_add(k as u32);
    }
    for round in 0..params.rounds {
        let k = (round as usize) % STATE_WORDS;
        let addr = (prg.next_u32() as usize) & mask;
        let w = memory[addr];
        let prev = c[(k + STATE_WORDS - 1) % STATE_WORDS];
        c[k] = (c[k] ^ w.wrapping_add(prev)).rotate_left(1);
    }
    ChecksumResult { response: c, puf_queries: 0 }
}

/// Estimated cycle cost of one classical SWATT round on PE32 (RC4 is
/// byte-oriented: the address generator alone needs ~4 table lookups and
/// ~12 ALU operations per 32-bit output, versus 3 ALU ops for the
/// T-function).
pub const CLASSIC_CYCLES_PER_ROUND: u64 = 28;

#[cfg(test)]
mod tests {
    use super::*;

    fn memory() -> Vec<u32> {
        (0..256u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect()
    }

    fn params() -> ClassicParams {
        ClassicParams { region_bits: 8, rounds: 1024 }
    }

    #[test]
    fn deterministic() {
        let mem = memory();
        assert_eq!(compute_classic(&mem, 42, &params()), compute_classic(&mem, 42, &params()));
    }

    #[test]
    fn seed_and_memory_sensitivity() {
        let mem = memory();
        let a = compute_classic(&mem, 1, &params());
        let b = compute_classic(&mem, 2, &params());
        assert_ne!(a.response, b.response, "seed must matter");
        let mut tampered = mem.clone();
        tampered[99] ^= 4;
        let c = compute_classic(&tampered, 1, &params());
        assert_ne!(a.response, c.response, "memory must matter");
    }

    #[test]
    fn never_queries_a_puf() {
        let r = compute_classic(&memory(), 7, &params());
        assert_eq!(r.puf_queries, 0);
    }

    #[test]
    fn covers_the_region() {
        // 4x coverage: tampering any single word must be detected for the
        // vast majority of positions.
        let p = ClassicParams { region_bits: 6, rounds: 64 * 8 };
        let mem: Vec<u32> = (0..64).map(|i| i as u32).collect();
        let base = compute_classic(&mem, 9, &p);
        let mut missed = 0;
        for pos in 0..64 {
            let mut t = mem.clone();
            t[pos] ^= 0x10;
            if compute_classic(&t, 9, &p).response == base.response {
                missed += 1;
            }
        }
        assert!(missed <= 3, "{missed}/64 positions unsampled");
    }

    #[test]
    fn structurally_independent_of_pufatt_checksum() {
        // Same memory and seed: different algorithms must disagree (a
        // sanity check that the two checksums really are distinct).
        let mem = memory();
        let classic = compute_classic(&mem, 5, &params());
        let pufatt = crate::checksum::compute(
            &mem,
            5,
            0,
            &crate::checksum::SwattParams { region_bits: 8, rounds: 1024, puf_interval: 0 },
            &mut crate::checksum::NoPuf,
        );
        assert_ne!(classic.response, pufatt.response);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn rejects_bad_rounds() {
        compute_classic(&[0; 256], 0, &ClassicParams { region_bits: 8, rounds: 10 });
    }
}
