//! Pseudorandom generators for memory-traversal checksums.
//!
//! SWATT (Seshadri et al.) drives its pseudorandom memory walk with RC4;
//! later schemes use T-functions, which need only add/mul/or — cheap on a
//! bare embedded core and trivially mirrored in PE32 assembly. The
//! reproduction's checksum uses the T-function; RC4 is provided as the
//! faithful SWATT baseline.

/// The classic RC4 keystream generator (byte-oriented), as used by SWATT's
/// address generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rc4Prg {
    s: [u8; 256],
    i: u8,
    j: u8,
}

impl Rc4Prg {
    /// Initialises RC4 with the standard key-scheduling algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `key` is empty or longer than 256 bytes.
    pub fn new(key: &[u8]) -> Self {
        assert!(!key.is_empty() && key.len() <= 256, "RC4 key length {} out of range", key.len());
        let mut s = [0u8; 256];
        for (i, v) in s.iter_mut().enumerate() {
            *v = i as u8;
        }
        let mut j = 0u8;
        for i in 0..256 {
            j = j.wrapping_add(s[i]).wrapping_add(key[i % key.len()]);
            s.swap(i, j as usize);
        }
        Rc4Prg { s, i: 0, j: 0 }
    }

    /// Next keystream byte.
    pub fn next_byte(&mut self) -> u8 {
        self.i = self.i.wrapping_add(1);
        self.j = self.j.wrapping_add(self.s[self.i as usize]);
        self.s.swap(self.i as usize, self.j as usize);
        let idx = self.s[self.i as usize].wrapping_add(self.s[self.j as usize]);
        self.s[idx as usize]
    }

    /// Next 32-bit word (big-endian byte order, first byte most
    /// significant).
    pub fn next_u32(&mut self) -> u32 {
        let mut w = 0u32;
        for _ in 0..4 {
            w = (w << 8) | self.next_byte() as u32;
        }
        w
    }
}

/// A single-cycle T-function PRG: `x ← x + (x² ∨ 5) (mod 2³²)`.
///
/// Invertible with period 2³² over the full state space; every update uses
/// only `mul`, `or`, `add`, making the PE32 assembly mirror exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TFunction {
    state: u32,
}

impl TFunction {
    /// Seeds the generator.
    pub fn new(seed: u32) -> Self {
        TFunction { state: seed }
    }

    /// Current state.
    pub fn state(self) -> u32 {
        self.state
    }

    /// Advances and returns the new state.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u32 {
        self.state = self.state.wrapping_add(self.state.wrapping_mul(self.state) | 5);
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rc4_matches_published_vector() {
        // RFC 6229 test vector: key 0x0102030405, first keystream bytes.
        let mut prg = Rc4Prg::new(&[0x01, 0x02, 0x03, 0x04, 0x05]);
        let expect = [0xb2u8, 0x39, 0x63, 0x05, 0xf0, 0x3d, 0xc0, 0x27];
        for (k, &e) in expect.iter().enumerate() {
            assert_eq!(prg.next_byte(), e, "byte {k}");
        }
    }

    #[test]
    fn rc4_next_u32_packs_big_endian() {
        let mut a = Rc4Prg::new(b"key");
        let mut b = Rc4Prg::new(b"key");
        let bytes = [a.next_byte(), a.next_byte(), a.next_byte(), a.next_byte()];
        assert_eq!(b.next_u32(), u32::from_be_bytes(bytes));
    }

    #[test]
    fn rc4_streams_diverge_with_key() {
        let mut a = Rc4Prg::new(b"alpha");
        let mut b = Rc4Prg::new(b"beta");
        let same = (0..64).filter(|_| a.next_byte() == b.next_byte()).count();
        assert!(same < 16, "streams should differ, {same}/64 equal");
    }

    #[test]
    fn tfunction_is_deterministic_and_moves() {
        let mut t1 = TFunction::new(0x1234_5678);
        let mut t2 = TFunction::new(0x1234_5678);
        for _ in 0..100 {
            assert_eq!(t1.next(), t2.next());
        }
        assert_ne!(t1.state(), 0x1234_5678);
    }

    #[test]
    fn tfunction_update_rule() {
        let mut t = TFunction::new(7);
        let x = 7u32;
        let expect = x.wrapping_add(x.wrapping_mul(x) | 5);
        assert_eq!(t.next(), expect);
    }

    #[test]
    fn tfunction_low_bits_eventually_vary_in_high_positions() {
        // T-functions are weak in low bits but the high bits mix; check the
        // top byte takes many values over a short run.
        let mut t = TFunction::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4096 {
            seen.insert(t.next() >> 24);
        }
        assert!(seen.len() > 100, "only {} distinct top bytes", seen.len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rc4_rejects_empty_key() {
        Rc4Prg::new(&[]);
    }
}
