//! PE32 code generation for the PUFatt checksum.
//!
//! Emits assembly that computes *bit-identical* results to
//! [`crate::checksum::compute`], so the verifier can predict the response
//! while the prover executes real instructions with real cycle counts —
//! the quantity the time bound δ is enforced on.
//!
//! Memory layout of the generated program (word addresses):
//!
//! ```text
//! 0 .. code_end        the checksum program itself (attested)
//! seed_cell            the attestation challenge r₀ (attested — the
//!                      verifier chose it and knows its value)
//! … free …             remainder of the 2^region_bits attested region
//! region_end ..        scratch (NOT attested): result\[8\], helper words,
//!                      helper write pointer
//! ```
//!
//! Register allocation: `r1..r8` = lanes `C[0..7]`, `r9` = T-function state
//! `x`, `r10` = block counter, `r11/r12/r15` = temporaries, `r13` = address
//! mask, `r14` = PUF interval countdown.

use crate::checksum::{SwattParams, STATE_WORDS};
use std::fmt::Write;

/// Addresses of the generated program's memory interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwattLayout {
    /// Word address holding the attestation seed r₀ (inside the region).
    pub seed_cell: u32,
    /// Word address holding the PUF challenge seed x₀ (inside the region).
    pub x0_cell: u32,
    /// First scratch address: the 8 response words land here.
    pub result_base: u32,
    /// Helper-data words are appended from this address upward.
    pub helper_base: u32,
    /// Scratch cell holding the helper write pointer.
    pub helper_ptr_cell: u32,
    /// Total memory words the program needs.
    pub memory_words: u32,
    /// End of the attested region (`2^region_bits`).
    pub region_end: u32,
}

/// Options controlling code generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CodegenOptions {
    /// Generate the adversary's *modified* checksum that hides malware by
    /// redirecting reads of `[malware_start, malware_end)` to a clean copy
    /// at `copy_base` (the classic memory-copy attack). The redirection
    /// costs extra cycles every round — exactly what the time bound δ
    /// catches.
    pub redirect: Option<Redirection>,
}

/// Address-redirection parameters of the memory-copy attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Redirection {
    /// First word of the malware-occupied region.
    pub malware_start: u32,
    /// One past the last malware word.
    pub malware_end: u32,
    /// Clean copy of the original words, placed in scratch.
    pub copy_base: u32,
}

/// Generated program: assembly source plus its layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedSwatt {
    /// PE32 assembly source.
    pub source: String,
    /// Memory layout constants.
    pub layout: SwattLayout,
}

/// Emits the PUFatt checksum program for `params`.
///
/// # Panics
///
/// Panics if the parameters fail [`SwattParams::validate`], if the block
/// count exceeds the 16-bit immediate range, or if a redirection copy
/// region would overlap the generated scratch area.
pub fn generate(params: &SwattParams, options: &CodegenOptions) -> GeneratedSwatt {
    params.validate();
    let blocks = params.blocks();
    assert!(blocks <= i16::MAX as u32, "block count {blocks} exceeds immediate range");
    let region_end = 1u32 << params.region_bits;
    let seed_cell = region_end - 1;
    let x0_cell = region_end - 2;
    let result_base = region_end;
    let helper_ptr_cell = region_end + STATE_WORDS as u32;
    let helper_base = helper_ptr_cell + 1;
    // When the PUF section is emitted at all (puf_interval != 0) the
    // image contains helper stores for one burst even if the block count
    // never lets them execute (puf_queries() == 0); scratch must cover
    // that statically reachable span so every store is provably in
    // bounds.
    let helper_words = if params.puf_interval == 0 {
        0
    } else {
        params.puf_queries().max(1) * STATE_WORDS as u32
    };
    let mut memory_words = helper_base + helper_words.max(1);
    if let Some(r) = options.redirect {
        let copy_words = r.malware_end - r.malware_start;
        assert!(r.copy_base >= memory_words, "redirection copy region overlaps program scratch");
        memory_words = r.copy_base + copy_words;
    }

    let mut s = String::new();
    let w = &mut s;
    let mask = region_end - 1;
    writeln!(
        w,
        "; PUFatt checksum ({} rounds, region 2^{} words{})",
        params.rounds,
        params.region_bits,
        if options.redirect.is_some() { ", WITH memory-copy redirection" } else { "" }
    )
    .unwrap();
    writeln!(w, "        lw   r9, {seed_cell}(r0)       ; x = r0 (attestation challenge)").unwrap();
    writeln!(w, "        lw   r12, {x0_cell}(r0)        ; x0 (PUF challenge seed)").unwrap();
    for k in 0..STATE_WORDS {
        writeln!(w, "        addi r{}, r9, {}", k + 1, k + 1).unwrap();
        writeln!(w, "        xor  r{0}, r{0}, r12          ; C[{k}] = (r0 + {1}) ^ x0", k + 1, k + 1).unwrap();
    }
    // Address mask: region_end - 1 fits 16 bits for region_bits <= 16.
    assert!(params.region_bits <= 15, "codegen supports region_bits <= 15 (mask must fit a positive imm16)");
    writeln!(w, "        addi r13, r0, {mask}        ; address mask").unwrap();
    writeln!(w, "        addi r10, r0, {blocks}      ; block counter").unwrap();
    if params.puf_interval != 0 {
        writeln!(w, "        addi r14, r0, {}        ; PUF interval countdown", params.puf_interval).unwrap();
        writeln!(w, "        addi r11, r0, {helper_base}").unwrap();
        writeln!(w, "        sw   r11, {helper_ptr_cell}(r0)   ; helper write pointer").unwrap();
    }
    writeln!(w, "block:").unwrap();
    for k in 0..STATE_WORDS {
        let ck = k + 1; // register holding C[k]
        let prev = (k + STATE_WORDS - 1) % STATE_WORDS + 1;
        writeln!(w, "        ; lane {k}").unwrap();
        writeln!(w, "        mul  r11, r9, r9").unwrap();
        writeln!(w, "        ori  r11, r11, 5").unwrap();
        writeln!(w, "        add  r9, r9, r11           ; x = x + (x*x | 5)").unwrap();
        writeln!(w, "        and  r12, r9, r13          ; addr = x & mask").unwrap();
        match options.redirect {
            None => {
                writeln!(w, "        lw   r11, 0(r12)           ; w = mem[addr]").unwrap();
            }
            Some(r) => {
                // if (addr - start) <u (end - start) then redirect
                let span = r.malware_end - r.malware_start;
                writeln!(w, "        addi r15, r12, -{}         ; addr - malware_start", r.malware_start).unwrap();
                writeln!(w, "        addi r11, r0, {span}").unwrap();
                writeln!(w, "        bltu r15, r11, redir_{k}").unwrap();
                writeln!(w, "        lw   r11, 0(r12)           ; clean read").unwrap();
                writeln!(w, "        jal  r0, after_{k}").unwrap();
                writeln!(w, "redir_{k}:").unwrap();
                writeln!(w, "        addi r15, r15, {}          ; copy_base + offset", r.copy_base).unwrap();
                writeln!(w, "        lw   r11, 0(r15)           ; redirected read").unwrap();
                writeln!(w, "after_{k}:").unwrap();
            }
        }
        writeln!(w, "        add  r11, r11, r{prev}         ; w + C[prev]").unwrap();
        writeln!(w, "        xor  r{ck}, r{ck}, r11").unwrap();
        writeln!(w, "        slli r12, r{ck}, 1").unwrap();
        writeln!(w, "        srli r15, r{ck}, 31").unwrap();
        writeln!(w, "        or   r{ck}, r12, r15           ; C[{k}] = rotl1(C[{k}])").unwrap();
    }
    if params.puf_interval != 0 {
        writeln!(w, "        addi r14, r14, -1").unwrap();
        writeln!(w, "        bne  r14, r0, noPuf").unwrap();
        writeln!(w, "        addi r14, r0, {}         ; reset countdown", params.puf_interval).unwrap();
        writeln!(w, "        pstart").unwrap();
        for k in 0..STATE_WORDS - 1 {
            writeln!(w, "        add  r11, r9, r{}          ; challenge (x, C[{k}])", k + 1).unwrap();
        }
        // Full-carry canary challenge (0xFFFFFFFF, 1): pins the PUF's
        // timing requirement to T_ALU (see the checksum reference).
        writeln!(w, "        addi r11, r0, -1").unwrap();
        writeln!(w, "        addi r12, r0, 1").unwrap();
        writeln!(w, "        add  r15, r11, r12         ; canary challenge (all-ones, 1)").unwrap();
        writeln!(w, "        pend").unwrap();
        writeln!(w, "        pread r11").unwrap();
        writeln!(w, "        xor  r1, r1, r11           ; C[0] ^= z").unwrap();
        // Persist the helper words for transmission to the verifier.
        writeln!(w, "        lw   r12, {helper_ptr_cell}(r0)").unwrap();
        for k in 0..STATE_WORDS {
            writeln!(w, "        phelp r11, {k}").unwrap();
            writeln!(w, "        sw   r11, {k}(r12)").unwrap();
        }
        writeln!(w, "        addi r12, r12, {STATE_WORDS}").unwrap();
        writeln!(w, "        sw   r12, {helper_ptr_cell}(r0)").unwrap();
        writeln!(w, "noPuf:").unwrap();
    }
    writeln!(w, "        addi r10, r10, -1").unwrap();
    writeln!(w, "        bne  r10, r0, block").unwrap();
    for k in 0..STATE_WORDS {
        writeln!(w, "        sw   r{}, {}(r0)         ; result[{k}]", k + 1, result_base + k as u32).unwrap();
    }
    writeln!(w, "        halt").unwrap();

    GeneratedSwatt {
        source: s,
        layout: SwattLayout {
            seed_cell,
            x0_cell,
            result_base,
            helper_base,
            helper_ptr_cell,
            memory_words,
            region_end,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum::{compute, MixPuf, NoPuf};
    use pufatt_pe32::asm::assemble;
    use pufatt_pe32::cpu::Cpu;
    use pufatt_pe32::puf_port::MockPufPort;

    const X0: u32 = 0x0F1E_2D3C;

    fn run_generated(params: &SwattParams, options: &CodegenOptions, seed: u32) -> (Vec<u32>, Vec<u32>, u64, Vec<u32>) {
        let gen = generate(params, options);
        let prog = assemble(&gen.source).expect("generated assembly must assemble");
        assert!(
            (prog.image.len() as u32) < gen.layout.seed_cell,
            "program ({} words) must fit below the seed cell ({})",
            prog.image.len(),
            gen.layout.seed_cell
        );
        let mut cpu = Cpu::new(gen.layout.memory_words.max(64) as usize);
        cpu.attach_puf(Box::new(MockPufPort::new()));
        cpu.load_program(&prog.image);
        cpu.store_word(gen.layout.seed_cell, seed).unwrap();
        cpu.store_word(gen.layout.x0_cell, X0).unwrap();
        let memory_snapshot: Vec<u32> = cpu.memory()[..gen.layout.region_end as usize].to_vec();
        let result = cpu.run(200_000_000).expect("checksum program must halt");
        let response: Vec<u32> = (0..8).map(|k| cpu.load_word(gen.layout.result_base + k).unwrap()).collect();
        let helper_end = cpu.load_word(gen.layout.helper_ptr_cell).unwrap_or(gen.layout.helper_base);
        let helper: Vec<u32> = (gen.layout.helper_base..helper_end)
            .map(|a| cpu.load_word(a).unwrap())
            .collect();
        (response, memory_snapshot, result.cycles, helper)
    }

    #[test]
    fn cpu_matches_reference_without_puf() {
        let params = SwattParams { region_bits: 9, rounds: 512, puf_interval: 0 };
        let (cpu_resp, snapshot, _, _) = run_generated(&params, &CodegenOptions::default(), 0xDEAD_BEEF);
        let reference = compute(&snapshot, 0xDEAD_BEEF, X0, &params, &mut NoPuf);
        assert_eq!(cpu_resp, reference.response.to_vec());
    }

    #[test]
    fn cpu_matches_reference_with_puf() {
        // MockPufPort (CPU side) and MixPuf (reference side) compute the
        // same mixing function, so the full PUF-entangled paths must agree.
        let params = SwattParams { region_bits: 9, rounds: 1024, puf_interval: 4 };
        let (cpu_resp, snapshot, _, helper) = run_generated(&params, &CodegenOptions::default(), 0x1234_5678);
        let reference = compute(&snapshot, 0x1234_5678, X0, &params, &mut MixPuf);
        assert_eq!(cpu_resp, reference.response.to_vec());
        // MockPufPort helper word = challenge count (8 per query).
        assert_eq!(helper.len() as u32, params.puf_queries() * 8);
        assert!(helper.iter().step_by(8).all(|&h| h == 8));
    }

    #[test]
    fn seed_changes_cpu_response() {
        let params = SwattParams { region_bits: 9, rounds: 512, puf_interval: 0 };
        let (a, _, _, _) = run_generated(&params, &CodegenOptions::default(), 1);
        let (b, _, _, _) = run_generated(&params, &CodegenOptions::default(), 2);
        assert_ne!(a, b);
    }

    #[test]
    fn full_memory_copy_attack_forges_response_but_pays_cycles() {
        // The classic attack the paper defends against: the adversary
        // replaces the whole attested region (its own modified checksum code
        // + malware) and redirects EVERY read to a pristine copy of the
        // expected memory S kept in scratch. The forged response equals the
        // honest one — but every round pays the redirection overhead, which
        // is what the time bound δ catches.
        let params = SwattParams { region_bits: 9, rounds: 512, puf_interval: 0 };
        let seed = 99;

        // Honest device: clean memory.
        let honest_gen = generate(&params, &CodegenOptions::default());
        let honest_prog = assemble(&honest_gen.source).unwrap();
        let mut honest = Cpu::new(1024);
        honest.attach_puf(Box::new(MockPufPort::new()));
        honest.load_program(&honest_prog.image);
        honest.store_word(honest_gen.layout.seed_cell, seed).unwrap();
        honest.store_word(honest_gen.layout.x0_cell, X0).unwrap();
        let expected_memory: Vec<u32> = honest.memory()[..512].to_vec();
        let honest_run = honest.run(200_000_000).unwrap();
        let honest_resp: Vec<u32> = (0..8)
            .map(|k| honest.load_word(honest_gen.layout.result_base + k).unwrap())
            .collect();

        // Infected device: the attacker's program occupies the region, the
        // pristine copy of S lives at copy_base.
        let copy_base = 2048;
        let redirect = Redirection { malware_start: 0, malware_end: 512, copy_base };
        let attack_gen = generate(&params, &CodegenOptions { redirect: Some(redirect) });
        let attack_prog = assemble(&attack_gen.source).unwrap();
        let mut infected = Cpu::new(attack_gen.layout.memory_words as usize);
        infected.attach_puf(Box::new(MockPufPort::new()));
        infected.load_program(&attack_prog.image);
        infected.store_word(attack_gen.layout.seed_cell, seed).unwrap();
        infected.store_word(attack_gen.layout.x0_cell, X0).unwrap();
        for (offset, &word) in expected_memory.iter().enumerate() {
            infected.store_word(copy_base + offset as u32, word).unwrap();
        }
        let infected_run = infected.run(200_000_000).unwrap();
        let infected_resp: Vec<u32> = (0..8)
            .map(|k| infected.load_word(attack_gen.layout.result_base + k).unwrap())
            .collect();

        // The forgery succeeds functionally…
        let reference = compute(&expected_memory, seed, X0, &params, &mut NoPuf);
        assert_eq!(honest_resp, reference.response.to_vec());
        assert_eq!(infected_resp, honest_resp, "redirection must forge the correct response");

        // …but costs at least a branch + compare per round.
        assert!(
            infected_run.cycles > honest_run.cycles + 2 * params.rounds as u64,
            "attack must pay per-round overhead: {} vs {}",
            infected_run.cycles,
            honest_run.cycles
        );
    }

    #[test]
    fn layout_is_consistent() {
        let params = SwattParams { region_bits: 10, rounds: 2048, puf_interval: 16 };
        let gen = generate(&params, &CodegenOptions::default());
        let l = gen.layout;
        assert_eq!(l.region_end, 1024);
        assert!(l.seed_cell < l.region_end);
        assert!(l.result_base >= l.region_end, "results must live outside the attested region");
        assert!(l.helper_base > l.helper_ptr_cell);
        assert!(l.memory_words >= l.helper_base + params.puf_queries() * 8);
    }

    #[test]
    #[should_panic(expected = "overlaps program scratch")]
    fn rejects_overlapping_copy_region() {
        let params = SwattParams { region_bits: 9, rounds: 512, puf_interval: 0 };
        let redirect = Redirection { malware_start: 300, malware_end: 316, copy_base: 512 };
        generate(&params, &CodegenOptions { redirect: Some(redirect) });
    }
}
