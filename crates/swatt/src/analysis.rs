//! Coverage analysis of pseudorandom memory traversal.
//!
//! A word the traversal never reads is a word malware can hide in. Two
//! regimes matter:
//!
//! * **Uniform sampling** (the classical RC4-driven SWATT): coverage
//!   follows coupon-collector statistics — the functions below give the
//!   miss probabilities and the rounds needed for a target.
//! * **The T-function** used by the PUFatt checksum is a *single-cycle
//!   permutation* of Z/2³²; its masked low bits are themselves a
//!   single-cycle permutation of the region, so every word is visited
//!   exactly once per 2^region_bits rounds — deterministic full coverage,
//!   strictly better than uniform (verified by
//!   [`measured_coverage`] in the tests).

use crate::checksum::{compute, RoundPuf, SwattParams};
use crate::prg::TFunction;

/// Expected fraction of an `n`-word region left unvisited after `rounds`
/// uniform samples: `(1 − 1/n)^rounds`.
pub fn expected_unvisited_fraction(region_words: u64, rounds: u64) -> f64 {
    assert!(region_words > 0, "region must be non-empty");
    (1.0 - 1.0 / region_words as f64).powf(rounds as f64)
}

/// Rounds needed so the expected number of unvisited words drops below
/// `target_unvisited` (e.g. 0.5 = "less than half a word expected
/// unvisited"): solves `n · (1 − 1/n)^R ≤ target`.
pub fn rounds_for_coverage(region_words: u64, target_unvisited: f64) -> u64 {
    assert!(region_words > 0, "region must be non-empty");
    assert!(target_unvisited > 0.0, "target must be positive");
    let n = region_words as f64;
    let per_round = (1.0 - 1.0 / n).ln();
    let needed = (target_unvisited / n).ln() / per_round;
    needed.ceil().max(0.0) as u64
}

/// Probability that a *specific* word (e.g. the first word of planted
/// malware) goes unsampled: `(1 − 1/n)^rounds` — the per-word soundness
/// parameter of pure software attestation.
pub fn miss_probability(region_words: u64, rounds: u64) -> f64 {
    expected_unvisited_fraction(region_words, rounds)
}

/// Measures the actual coverage of the T-function address generator over a
/// power-of-two region: returns the fraction of words visited.
///
/// # Panics
///
/// Panics if `region_bits` is outside `2..=24`.
pub fn measured_coverage(seed: u32, region_bits: u32, rounds: u64) -> f64 {
    assert!((2..=24).contains(&region_bits), "region_bits {region_bits} out of range");
    let n = 1usize << region_bits;
    let mask = (n - 1) as u32;
    let mut visited = vec![false; n];
    let mut prg = TFunction::new(seed);
    let mut count = 0usize;
    for _ in 0..rounds {
        let addr = (prg.next() & mask) as usize;
        if !visited[addr] {
            visited[addr] = true;
            count += 1;
        }
    }
    count as f64 / n as f64
}

/// Avalanche statistics of the checksum: mean fraction of response bits
/// flipped by a single-bit memory change, over `trials` random positions.
///
/// An ideal compression function flips ~50 %; values far below that would
/// let an adversary search for low-impact modifications.
///
/// # Panics
///
/// Propagates the parameter panics of [`compute`].
pub fn avalanche_fraction<P: RoundPuf>(
    memory: &[u32],
    params: &SwattParams,
    puf: &mut P,
    trials: usize,
    seed0: u32,
) -> f64 {
    let mask = (1usize << params.region_bits) - 1;
    let base = compute(memory, seed0, 0, params, puf);
    let mut flipped_bits = 0u32;
    let mut state = TFunction::new(seed0 ^ 0x5A5A_5A5A);
    for _ in 0..trials {
        let pos = (state.next() as usize) & mask;
        let bit = state.next() % 32;
        let mut tampered = memory.to_vec();
        tampered[pos] ^= 1 << bit;
        let out = compute(&tampered, seed0, 0, params, puf);
        for (a, b) in base.response.iter().zip(&out.response) {
            flipped_bits += (a ^ b).count_ones();
        }
    }
    flipped_bits as f64 / (trials as f64 * 256.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unvisited_fraction_decays() {
        let n = 1024;
        let f1 = expected_unvisited_fraction(n, n);
        let f4 = expected_unvisited_fraction(n, 4 * n);
        assert!((f1 - (-1.0f64).exp()).abs() < 0.01, "R = n leaves ~e^-1: {f1}");
        assert!((f4 - (-4.0f64).exp()).abs() < 0.005, "R = 4n leaves ~e^-4: {f4}");
    }

    #[test]
    fn rounds_for_coverage_is_consistent() {
        let n = 2048;
        let r = rounds_for_coverage(n, 0.5);
        // At the returned rounds the expectation is at/below target...
        assert!(n as f64 * expected_unvisited_fraction(n, r) <= 0.5 + 1e-9);
        // ...and one full region fewer rounds is above it.
        assert!(n as f64 * expected_unvisited_fraction(n, r - n) > 0.5);
    }

    #[test]
    fn tfunction_addresses_achieve_deterministic_full_coverage() {
        // x -> x + (x^2 | 5) is a single-cycle T-function: reduced mod any
        // power of two it is still a single cycle, so the masked address
        // stream is a permutation of the region — full coverage in exactly
        // n rounds, strictly better than uniform sampling's 1 - e^-1.
        let region_bits = 10;
        let n = 1u64 << region_bits;
        for seed in [0u32, 1, 0xC0FFEE, u32::MAX] {
            let full = measured_coverage(seed, region_bits, n);
            assert!((full - 1.0).abs() < 1e-12, "seed {seed}: coverage {full}");
            let half = measured_coverage(seed, region_bits, n / 2);
            assert!((half - 0.5).abs() < 1e-12, "permutation visits n/2 distinct words in n/2 rounds");
        }
        // Contrast: uniform sampling at R = n would leave ~37% unvisited.
        assert!(expected_unvisited_fraction(n, n) > 0.35);
    }

    #[test]
    fn miss_probability_matches_soundness_intuition() {
        // With 4x coverage over 1024 words, a single hidden word is missed
        // with probability ~e^-4 ≈ 1.8 %.
        let p = miss_probability(1024, 4096);
        assert!((0.01..0.03).contains(&p), "{p}");
    }

    #[test]
    fn checksum_avalanche_is_strong() {
        use crate::checksum::NoPuf;
        let memory: Vec<u32> = (0..256u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let params = SwattParams { region_bits: 8, rounds: 2048, puf_interval: 0 };
        let frac = avalanche_fraction(&memory, &params, &mut NoPuf, 30, 0xA1A);
        assert!((0.35..0.65).contains(&frac), "avalanche fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_region() {
        expected_unvisited_fraction(0, 1);
    }
}
