//! Software-based attestation for PUFatt (DAC 2014).
//!
//! PUFatt adapts the SWATT/SCUBA line of *timed* software attestation: the
//! verifier challenges the prover to compute a checksum over its program
//! memory via a pseudorandom traversal, timed against a bound δ chosen so
//! that any modified checksum routine (hiding malware) overshoots. PUFatt's
//! twist is entangling the checksum's compression function with ALU PUF
//! outputs, which binds the computation to one physical chip.
//!
//! * [`analysis`] — coupon-collector coverage math for choosing `rounds`.
//! * [`prg`] — RC4 (the SWATT original) and the T-function PRG the
//!   reproduction's checksum uses.
//! * [`checksum`] — the Rust reference implementation of the PUF-entangled
//!   checksum and the [`checksum::RoundPuf`] hook.
//! * [`codegen`] — emits PE32 assembly computing bit-identical results,
//!   including the adversary's memory-copy redirection variant.
//! * [`swatt_classic`] — the original RC4-driven SWATT checksum (the pure
//!   software-attestation baseline PUFatt improves on), with its own PE32
//!   code generator in [`codegen_classic`].
//!
//! # Example
//!
//! ```
//! use pufatt_swatt::checksum::{compute, MixPuf, SwattParams};
//!
//! let memory: Vec<u32> = (0..256u32).map(|i| i.wrapping_mul(2654435761)).collect();
//! let params = SwattParams { region_bits: 8, rounds: 1024, puf_interval: 8 };
//! let result = compute(&memory, 0xC0FFEE, 0xF00D, &params, &mut MixPuf);
//! assert_eq!(result.puf_queries, 16);
//! ```

pub mod analysis;
pub mod checksum;
pub mod codegen;
pub mod codegen_classic;
pub mod prg;
pub mod swatt_classic;

pub use checksum::{compute, ChecksumResult, MixPuf, NoPuf, RoundPuf, SwattParams, STATE_WORDS};
pub use codegen::{generate, CodegenOptions, GeneratedSwatt, Redirection, SwattLayout};
pub use codegen_classic::{generate_classic, ClassicLayout, GeneratedClassic};
pub use prg::{Rc4Prg, TFunction};
pub use swatt_classic::{compute_classic, ClassicParams};
