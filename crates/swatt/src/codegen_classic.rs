//! PE32 code generation for the classical RC4-driven SWATT checksum.
//!
//! Produces a program computing bit-identical results to
//! [`crate::swatt_classic::compute_classic`], so the pure
//! software-attestation baseline can be *run* on the prover CPU and timed
//! against the PUFatt variant (the PUF-less baseline is what PUFatt's
//! prover-authentication argument is measured against).
//!
//! RC4 is byte-oriented; PE32 memory is word-addressed, so the S-box lives
//! as 256 one-byte-per-word entries in scratch (outside the attested
//! region), which is also how 8-bit-era SWATT deployments on 16/32-bit
//! word machines laid it out. One 32-bit PRG output costs four PRGA steps
//! (~60 cycles) versus three ALU ops for the T-function — the measured
//! cycle gap is reported by the cross-check tests.
//!
//! Register allocation: `r1` S-box base, `r2` the byte mask 0xFF, `r3` the
//! region address mask, `r4` block counter, `r9`/`r10` the RC4 `i`/`j`
//! state, `r7` PRG word accumulator, `r14`/`r15` link registers
//! (`next_byte` / `next_u32`), the rest temporaries.

use crate::swatt_classic::ClassicParams;
use std::fmt::Write;

/// Memory layout of the generated classical-SWATT program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassicLayout {
    /// Word address of the seed (RC4 key) cell, inside the attested region.
    pub seed_cell: u32,
    /// End of the attested region.
    pub region_end: u32,
    /// The 8 checksum lanes (double as the result buffer), in scratch.
    pub lanes_base: u32,
    /// The 4 key-byte words, in scratch.
    pub key_base: u32,
    /// The 256-word S-box, in scratch.
    pub sbox_base: u32,
    /// Total memory words required.
    pub memory_words: u32,
}

/// Generated classical-SWATT program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedClassic {
    /// PE32 assembly source.
    pub source: String,
    /// Memory layout constants.
    pub layout: ClassicLayout,
}

/// Emits the classical SWATT program for `params`.
///
/// # Panics
///
/// Panics on invalid parameters (see [`ClassicParams::validate`]) or a
/// block count beyond the immediate range.
pub fn generate_classic(params: &ClassicParams) -> GeneratedClassic {
    params.validate();
    assert!(params.region_bits <= 15, "region mask must fit a positive imm16");
    let blocks = params.rounds / 8;
    assert!(blocks <= i16::MAX as u32, "block count {blocks} exceeds immediate range");
    let region_end = 1u32 << params.region_bits;
    let seed_cell = region_end - 1;
    let lanes_base = region_end;
    let key_base = lanes_base + 8;
    let sbox_base = key_base + 4;
    let memory_words = sbox_base + 256;
    let mask = region_end - 1;

    let mut s = String::new();
    let w = &mut s;
    writeln!(
        w,
        "; classical RC4-SWATT checksum ({} rounds, region 2^{} words)",
        params.rounds, params.region_bits
    )
    .unwrap();
    // --- constants ------------------------------------------------------
    writeln!(w, "        addi r1, r0, {sbox_base}     ; S-box base").unwrap();
    writeln!(w, "        addi r2, r0, 255         ; byte mask").unwrap();
    writeln!(w, "        addi r3, r0, {mask}      ; region address mask").unwrap();
    // --- key bytes (big-endian bytes of the seed) -------------------------
    writeln!(w, "        lw   r7, {seed_cell}(r0)").unwrap();
    for b in 0..4 {
        writeln!(w, "        srli r8, r7, {}", 24 - 8 * b).unwrap();
        writeln!(w, "        and  r8, r8, r2").unwrap();
        writeln!(w, "        sw   r8, {}(r0)", key_base + b).unwrap();
    }
    // --- KSA --------------------------------------------------------------
    writeln!(w, "        addi r9, r0, 0").unwrap();
    writeln!(w, "ksa_ident:").unwrap();
    writeln!(w, "        add  r12, r1, r9").unwrap();
    writeln!(w, "        sw   r9, 0(r12)").unwrap();
    writeln!(w, "        addi r9, r9, 1").unwrap();
    writeln!(w, "        addi r12, r0, 256").unwrap();
    writeln!(w, "        bne  r9, r12, ksa_ident").unwrap();
    writeln!(w, "        addi r9, r0, 0").unwrap();
    writeln!(w, "        addi r10, r0, 0").unwrap();
    writeln!(w, "ksa_mix:").unwrap();
    writeln!(w, "        add  r12, r1, r9").unwrap();
    writeln!(w, "        lw   r13, 0(r12)         ; S[i]").unwrap();
    writeln!(w, "        add  r10, r10, r13").unwrap();
    writeln!(w, "        andi r8, r9, 3").unwrap();
    writeln!(w, "        addi r8, r8, {key_base}").unwrap();
    writeln!(w, "        lw   r8, 0(r8)           ; key[i mod 4]").unwrap();
    writeln!(w, "        add  r10, r10, r8").unwrap();
    writeln!(w, "        and  r10, r10, r2").unwrap();
    writeln!(w, "        add  r11, r1, r10").unwrap();
    writeln!(w, "        lw   r8, 0(r11)          ; S[j]").unwrap();
    writeln!(w, "        sw   r8, 0(r12)").unwrap();
    writeln!(w, "        sw   r13, 0(r11)").unwrap();
    writeln!(w, "        addi r9, r9, 1").unwrap();
    writeln!(w, "        addi r12, r0, 256").unwrap();
    writeln!(w, "        bne  r9, r12, ksa_mix").unwrap();
    writeln!(w, "        addi r9, r0, 0           ; PRGA i").unwrap();
    writeln!(w, "        addi r10, r0, 0          ; PRGA j").unwrap();
    // --- lane init: c[k] = next_u32() + k --------------------------------
    for k in 0..8u32 {
        writeln!(w, "        jal  r15, next_u32").unwrap();
        if k > 0 {
            writeln!(w, "        addi r7, r7, {k}").unwrap();
        }
        writeln!(w, "        sw   r7, {}(r0)", lanes_base + k).unwrap();
    }
    // --- main loop --------------------------------------------------------
    writeln!(w, "        addi r4, r0, {blocks}").unwrap();
    writeln!(w, "block:").unwrap();
    for k in 0..8u32 {
        let prev = lanes_base + (k + 7) % 8;
        let lane = lanes_base + k;
        writeln!(w, "        ; lane {k}").unwrap();
        writeln!(w, "        jal  r15, next_u32").unwrap();
        writeln!(w, "        and  r12, r7, r3         ; addr").unwrap();
        writeln!(w, "        lw   r11, 0(r12)         ; w = mem[addr]").unwrap();
        writeln!(w, "        lw   r13, {prev}(r0)").unwrap();
        writeln!(w, "        add  r11, r11, r13       ; w + C[prev]").unwrap();
        writeln!(w, "        lw   r13, {lane}(r0)").unwrap();
        writeln!(w, "        xor  r13, r13, r11").unwrap();
        writeln!(w, "        slli r12, r13, 1").unwrap();
        writeln!(w, "        srli r8, r13, 31").unwrap();
        writeln!(w, "        or   r13, r12, r8        ; rotl1").unwrap();
        writeln!(w, "        sw   r13, {lane}(r0)").unwrap();
    }
    writeln!(w, "        addi r4, r4, -1").unwrap();
    writeln!(w, "        bne  r4, r0, block").unwrap();
    writeln!(w, "        halt").unwrap();
    // --- subroutines ------------------------------------------------------
    writeln!(w, "next_u32:                        ; returns word in r7 (big-endian bytes)").unwrap();
    for b in 0..4 {
        if b == 0 {
            writeln!(w, "        jal  r14, next_byte").unwrap();
            writeln!(w, "        add  r7, r11, r0").unwrap();
        } else {
            writeln!(w, "        jal  r14, next_byte").unwrap();
            writeln!(w, "        slli r7, r7, 8").unwrap();
            writeln!(w, "        or   r7, r7, r11").unwrap();
        }
    }
    writeln!(w, "        jalr r0, r15").unwrap();
    writeln!(w, "next_byte:                       ; returns byte in r11; clobbers r8, r12, r13").unwrap();
    writeln!(w, "        addi r9, r9, 1").unwrap();
    writeln!(w, "        and  r9, r9, r2").unwrap();
    writeln!(w, "        add  r12, r1, r9").unwrap();
    writeln!(w, "        lw   r13, 0(r12)         ; S[i]").unwrap();
    writeln!(w, "        add  r10, r10, r13").unwrap();
    writeln!(w, "        and  r10, r10, r2").unwrap();
    writeln!(w, "        add  r11, r1, r10").unwrap();
    writeln!(w, "        lw   r8, 0(r11)          ; S[j]").unwrap();
    writeln!(w, "        sw   r8, 0(r12)").unwrap();
    writeln!(w, "        sw   r13, 0(r11)").unwrap();
    writeln!(w, "        add  r8, r8, r13").unwrap();
    writeln!(w, "        and  r8, r8, r2").unwrap();
    writeln!(w, "        add  r8, r1, r8").unwrap();
    writeln!(w, "        lw   r11, 0(r8)").unwrap();
    writeln!(w, "        jalr r0, r14").unwrap();

    GeneratedClassic {
        source: s,
        layout: ClassicLayout {
            seed_cell,
            region_end,
            lanes_base,
            key_base,
            sbox_base,
            memory_words,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swatt_classic::compute_classic;
    use pufatt_pe32::asm::assemble;
    use pufatt_pe32::cpu::Cpu;

    fn run_generated(params: &ClassicParams, seed: u32) -> (Vec<u32>, Vec<u32>, u64) {
        let gen = generate_classic(params);
        let program = assemble(&gen.source).expect("generated classical SWATT assembles");
        assert!(
            (program.image.len() as u32) < gen.layout.seed_cell,
            "program ({} words) must fit below the seed cell",
            program.image.len()
        );
        let mut cpu = Cpu::new(gen.layout.memory_words as usize);
        cpu.load_program(&program.image);
        cpu.store_word(gen.layout.seed_cell, seed).unwrap();
        let snapshot: Vec<u32> = cpu.memory()[..gen.layout.region_end as usize].to_vec();
        let result = cpu.run(500_000_000).expect("halts");
        let lanes: Vec<u32> = (0..8).map(|k| cpu.load_word(gen.layout.lanes_base + k).unwrap()).collect();
        (lanes, snapshot, result.cycles)
    }

    #[test]
    fn cpu_matches_reference() {
        let params = ClassicParams { region_bits: 9, rounds: 256 };
        for seed in [0u32, 1, 0xDEAD_BEEF, u32::MAX] {
            let (lanes, snapshot, _) = run_generated(&params, seed);
            let reference = compute_classic(&snapshot, seed, &params);
            assert_eq!(lanes, reference.response.to_vec(), "seed {seed:#x}");
        }
    }

    #[test]
    fn classic_costs_far_more_cycles_than_tfunction_variant() {
        let rounds = 512;
        let (_, _, classic_cycles) = run_generated(&ClassicParams { region_bits: 9, rounds }, 7);

        let tparams = crate::checksum::SwattParams { region_bits: 9, rounds, puf_interval: 0 };
        let tgen = crate::codegen::generate(&tparams, &crate::codegen::CodegenOptions::default());
        let tprog = assemble(&tgen.source).unwrap();
        let mut cpu = Cpu::new(tgen.layout.memory_words.max(64) as usize);
        cpu.attach_puf(Box::new(pufatt_pe32::puf_port::MockPufPort::new()));
        cpu.load_program(&tprog.image);
        cpu.store_word(tgen.layout.seed_cell, 7).unwrap();
        cpu.store_word(tgen.layout.x0_cell, 7).unwrap();
        let t_cycles = cpu.run(500_000_000).unwrap().cycles;

        // RC4's four byte steps per address dominate: the classical variant
        // must cost several times more per round.
        assert!(classic_cycles > 3 * t_cycles, "classic {classic_cycles} vs t-function {t_cycles}");
    }

    #[test]
    fn seed_changes_response() {
        let params = ClassicParams { region_bits: 9, rounds: 256 };
        let (a, _, _) = run_generated(&params, 1);
        let (b, _, _) = run_generated(&params, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn memory_tamper_changes_response() {
        let params = ClassicParams { region_bits: 9, rounds: 2048 };
        let gen = generate_classic(&params);
        let program = assemble(&gen.source).unwrap();
        let mut cpu = Cpu::new(gen.layout.memory_words as usize);
        cpu.load_program(&program.image);
        cpu.store_word(gen.layout.seed_cell, 3).unwrap();
        cpu.store_word(gen.layout.seed_cell - 5, 0xEB1B_EB1B).unwrap(); // malware
        cpu.run(500_000_000).unwrap();
        let tampered: Vec<u32> = (0..8).map(|k| cpu.load_word(gen.layout.lanes_base + k).unwrap()).collect();
        let (clean, _, _) = run_generated(&params, 3);
        assert_ne!(tampered, clean, "4x coverage must catch the planted word");
    }

    #[test]
    fn layout_keeps_scratch_outside_region() {
        let gen = generate_classic(&ClassicParams { region_bits: 10, rounds: 512 });
        let l = gen.layout;
        assert!(l.lanes_base >= l.region_end);
        assert!(l.key_base > l.lanes_base);
        assert!(l.sbox_base > l.key_base);
        assert_eq!(l.memory_words, l.sbox_base + 256);
    }
}
