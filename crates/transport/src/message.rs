//! Typed wire messages and their binary codec.
//!
//! Every frame payload is `corr:u32le tag:u8 fields`, with fixed-width
//! little-endian fields in the `crates/store` record style. The
//! correlation id ties a response to its request, so a client may pipeline
//! many devices' requests down one connection and match replies out of
//! order.
//!
//! The first exchange on every connection is `Hello → HelloAck`: the
//! client states the protocol magic and the version range it speaks, the
//! server picks the highest version both sides share (or refuses with a
//! `VersionMismatch` error). Nothing else is accepted before the
//! handshake.
//!
//! **Secrecy rule** (same as the store's): messages carry *public*
//! protocol facts only — device ids, tickets, verdict booleans, lifecycle
//! states, counters. PUF responses, helper data, and challenge secrets
//! never appear in a wire message, so a packet capture hands a modelling
//! adversary nothing.

use crate::error::{ErrorCode, TransportError};
use pufatt_fleet::{DeviceId, FleetStatus};

/// Identifies the protocol family (first field of `Hello`).
pub const PROTOCOL_MAGIC: [u8; 8] = *b"PUFATTN1";

/// The one protocol version this build speaks.
pub const PROTOCOL_VERSION: u16 = 1;

/// Longest `detail` string an `Error` response may carry.
pub const MAX_DETAIL_LEN: usize = 512;

/// Lifecycle state on the wire (mirrors `pufatt_fleet::FleetStatus`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireStatus {
    /// Eligible for attestation.
    Active,
    /// On probation after repeated failures.
    Quarantined,
    /// Out of service until re-enrollment.
    Revoked,
}

impl WireStatus {
    fn to_byte(self) -> u8 {
        match self {
            WireStatus::Active => 0,
            WireStatus::Quarantined => 1,
            WireStatus::Revoked => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self, TransportError> {
        match b {
            0 => Ok(WireStatus::Active),
            1 => Ok(WireStatus::Quarantined),
            2 => Ok(WireStatus::Revoked),
            other => Err(TransportError::Malformed(format!("unknown status byte {other}"))),
        }
    }
}

impl From<FleetStatus> for WireStatus {
    fn from(s: FleetStatus) -> Self {
        match s {
            FleetStatus::Active => WireStatus::Active,
            FleetStatus::Quarantined => WireStatus::Quarantined,
            FleetStatus::Revoked => WireStatus::Revoked,
        }
    }
}

impl From<WireStatus> for FleetStatus {
    fn from(s: WireStatus) -> Self {
        match s {
            WireStatus::Active => FleetStatus::Active,
            WireStatus::Quarantined => FleetStatus::Quarantined,
            WireStatus::Revoked => FleetStatus::Revoked,
        }
    }
}

/// What a client sends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Opens the conversation: protocol magic plus the version range the
    /// client speaks. Must be the first (and only) handshake frame.
    Hello {
        /// Must equal [`PROTOCOL_MAGIC`].
        magic: [u8; 8],
        /// Lowest version the client accepts.
        min_version: u16,
        /// Highest version the client accepts.
        max_version: u16,
    },
    /// Enroll (and provision) a device. Idempotent.
    Enroll {
        /// The device id.
        device: DeviceId,
    },
    /// Open one attestation session for a device; answered with a
    /// `Challenge` ticket or a `Refused` error.
    ChallengeRequest {
        /// The device id.
        device: DeviceId,
    },
    /// Run the session the ticket names to its verdict.
    Attest {
        /// The device id.
        device: DeviceId,
        /// The ticket `Challenge` granted.
        ticket: u64,
    },
    /// Revoke a device (operator action).
    Revoke {
        /// The device id.
        device: DeviceId,
    },
    /// Fetch the server's headline counters.
    Stats,
    /// Ask the server to drain and shut down.
    Shutdown,
}

/// Headline counters a `StatsReply` carries (a compact projection of the
/// fleet snapshot; full per-device records never travel the wire).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Sessions that began their first attempt.
    pub started: u64,
    /// Sessions accepted by the verifier.
    pub accepted: u64,
    /// Sessions rejected (includes timed-out ones).
    pub rejected: u64,
    /// Rejected sessions whose cause was the session timeout.
    pub timed_out: u64,
    /// Sessions refused up front (device revoked).
    pub refused: u64,
    /// Sessions that died without a verdict.
    pub lost: u64,
    /// Devices that faulted outside the protocol.
    pub faults: u64,
    /// Devices currently Active.
    pub active: u64,
    /// Devices currently Quarantined.
    pub quarantined: u64,
    /// Devices currently Revoked.
    pub revoked: u64,
    /// Reference responses the verifiers served from their CRP caches.
    pub crp_hits: u64,
    /// Reference responses the verifiers had to emulate (cache misses).
    pub crp_misses: u64,
    /// Sessions refused with `storage-unavailable` (durable home shard
    /// sick when the request arrived).
    pub unavailable: u64,
    /// Storage shards backing the server (0 when unjournaled).
    pub shards_total: u64,
    /// Shards currently Degraded (read-only, refusing their devices).
    pub shards_degraded: u64,
    /// Shards currently Failed (reopen attempt failed; operator action
    /// required).
    pub shards_failed: u64,
}

/// What a server sends back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Accepts the handshake at the negotiated version.
    HelloAck {
        /// The version both sides will speak.
        version: u16,
    },
    /// The device is enrolled and provisioned.
    EnrollOk {
        /// The device id.
        device: DeviceId,
        /// Whether this call created the device.
        fresh: bool,
        /// Lifecycle state after the call.
        status: WireStatus,
    },
    /// A session is open; attest it with this ticket.
    Challenge {
        /// The device id.
        device: DeviceId,
        /// Ticket naming the open session.
        ticket: u64,
    },
    /// The session's verdict (mirrors the fleet's `SessionOutcome`,
    /// elapsed time as IEEE-754 bits for exact round-trips).
    Verdict {
        /// The device id.
        device: DeviceId,
        /// Whether the verifier accepted the final attempt.
        accepted: bool,
        /// Whether the final attempt's response matched.
        response_ok: bool,
        /// Whether the final attempt met the time bound.
        time_ok: bool,
        /// Whether the session exceeded the scheduler timeout.
        timed_out: bool,
        /// Attempts spent (1 = no retry).
        attempts: u32,
        /// Simulated end-to-end seconds, as bits.
        elapsed_bits: u64,
        /// Lifecycle state after the outcome was applied.
        status: WireStatus,
    },
    /// The device was revoked.
    RevokeOk {
        /// The device id.
        device: DeviceId,
        /// Lifecycle state after the call (Revoked, or the prior state
        /// for unknown ids — those answer `UnknownDevice` instead).
        status: WireStatus,
    },
    /// The server's headline counters.
    StatsReply(WireStats),
    /// The server accepted the shutdown request and is draining.
    ShutdownAck,
    /// The server is saturated (full dispatch queue or rate limit); try
    /// the same request again after the hint.
    Busy {
        /// Suggested client-side backoff in milliseconds.
        retry_after_ms: u32,
    },
    /// The request failed with a typed protocol error.
    Error {
        /// The error code.
        code: ErrorCode,
        /// Human-readable detail (public facts only, capped at
        /// [`MAX_DETAIL_LEN`]).
        detail: String,
    },
}

// ------------------------------------------------------------------ codec

struct Writer<'a>(&'a mut Vec<u8>);

impl Writer<'_> {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn flag(&mut self, v: bool) {
        self.0.push(u8::from(v));
    }
    fn bytes8(&mut self, v: &[u8; 8]) {
        self.0.extend_from_slice(v);
    }
    fn str16(&mut self, v: &str) {
        let bytes = v.as_bytes();
        let take = bytes.len().min(MAX_DETAIL_LEN);
        // Truncate on a char boundary so the wire always carries UTF-8.
        let take = (0..=take).rev().find(|&i| v.is_char_boundary(i)).unwrap_or(0);
        self.0.extend_from_slice(&(take as u16).to_le_bytes());
        self.0.extend_from_slice(&bytes[..take]);
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TransportError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| TransportError::Malformed("message truncated".into()))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, TransportError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, TransportError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, TransportError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, TransportError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn flag(&mut self) -> Result<bool, TransportError> {
        Ok(self.u8()? != 0)
    }

    fn bytes8(&mut self) -> Result<[u8; 8], TransportError> {
        let b = self.take(8)?;
        let mut out = [0u8; 8];
        out.copy_from_slice(b);
        Ok(out)
    }

    fn str16(&mut self) -> Result<String, TransportError> {
        let len = self.u16()? as usize;
        if len > MAX_DETAIL_LEN {
            return Err(TransportError::Malformed(format!("detail length {len} exceeds {MAX_DETAIL_LEN}")));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| TransportError::Malformed("detail is not UTF-8".into()))
    }

    fn done(&self) -> Result<(), TransportError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(TransportError::Malformed(format!("{} trailing bytes after message", self.bytes.len() - self.pos)))
        }
    }
}

impl Request {
    /// Encodes `corr` followed by the request body into a frame payload.
    pub fn encode(&self, corr: u32, out: &mut Vec<u8>) {
        let mut w = Writer(out);
        w.u32(corr);
        match self {
            Request::Hello { magic, min_version, max_version } => {
                w.u8(0);
                w.bytes8(magic);
                w.u16(*min_version);
                w.u16(*max_version);
            }
            Request::Enroll { device } => {
                w.u8(1);
                w.u32(*device);
            }
            Request::ChallengeRequest { device } => {
                w.u8(2);
                w.u32(*device);
            }
            Request::Attest { device, ticket } => {
                w.u8(3);
                w.u32(*device);
                w.u64(*ticket);
            }
            Request::Revoke { device } => {
                w.u8(4);
                w.u32(*device);
            }
            Request::Stats => w.u8(5),
            Request::Shutdown => w.u8(6),
        }
    }

    /// Decodes a frame payload into `(corr, request)`.
    ///
    /// # Errors
    ///
    /// [`TransportError::Malformed`] on an unknown tag, truncated fields,
    /// or trailing bytes. Never panics, never over-reads — this is the
    /// surface arbitrary network bytes reach.
    pub fn decode(payload: &[u8]) -> Result<(u32, Request), TransportError> {
        let mut r = Reader::new(payload);
        let corr = r.u32()?;
        let request = match r.u8()? {
            0 => Request::Hello {
                magic: r.bytes8()?,
                min_version: r.u16()?,
                max_version: r.u16()?,
            },
            1 => Request::Enroll { device: r.u32()? },
            2 => Request::ChallengeRequest { device: r.u32()? },
            3 => Request::Attest { device: r.u32()?, ticket: r.u64()? },
            4 => Request::Revoke { device: r.u32()? },
            5 => Request::Stats,
            6 => Request::Shutdown,
            tag => return Err(TransportError::Malformed(format!("unknown request tag {tag}"))),
        };
        r.done()?;
        Ok((corr, request))
    }
}

impl Response {
    /// Encodes `corr` followed by the response body into a frame payload.
    pub fn encode(&self, corr: u32, out: &mut Vec<u8>) {
        let mut w = Writer(out);
        w.u32(corr);
        match self {
            Response::HelloAck { version } => {
                w.u8(0);
                w.u16(*version);
            }
            Response::EnrollOk { device, fresh, status } => {
                w.u8(1);
                w.u32(*device);
                w.flag(*fresh);
                w.u8(status.to_byte());
            }
            Response::Challenge { device, ticket } => {
                w.u8(2);
                w.u32(*device);
                w.u64(*ticket);
            }
            Response::Verdict {
                device,
                accepted,
                response_ok,
                time_ok,
                timed_out,
                attempts,
                elapsed_bits,
                status,
            } => {
                w.u8(3);
                w.u32(*device);
                w.flag(*accepted);
                w.flag(*response_ok);
                w.flag(*time_ok);
                w.flag(*timed_out);
                w.u32(*attempts);
                w.u64(*elapsed_bits);
                w.u8(status.to_byte());
            }
            Response::RevokeOk { device, status } => {
                w.u8(4);
                w.u32(*device);
                w.u8(status.to_byte());
            }
            Response::StatsReply(s) => {
                w.u8(5);
                w.u64(s.started);
                w.u64(s.accepted);
                w.u64(s.rejected);
                w.u64(s.timed_out);
                w.u64(s.refused);
                w.u64(s.lost);
                w.u64(s.faults);
                w.u64(s.active);
                w.u64(s.quarantined);
                w.u64(s.revoked);
                w.u64(s.crp_hits);
                w.u64(s.crp_misses);
                w.u64(s.unavailable);
                w.u64(s.shards_total);
                w.u64(s.shards_degraded);
                w.u64(s.shards_failed);
            }
            Response::ShutdownAck => w.u8(6),
            Response::Busy { retry_after_ms } => {
                w.u8(7);
                w.u32(*retry_after_ms);
            }
            Response::Error { code, detail } => {
                w.u8(8);
                w.u8(code.to_byte());
                w.str16(detail);
            }
        }
    }

    /// Decodes a frame payload into `(corr, response)`.
    ///
    /// # Errors
    ///
    /// [`TransportError::Malformed`] on an unknown tag, truncated fields,
    /// an invalid status/code byte, an oversized or non-UTF-8 detail, or
    /// trailing bytes. Never panics, never over-reads.
    pub fn decode(payload: &[u8]) -> Result<(u32, Response), TransportError> {
        let mut r = Reader::new(payload);
        let corr = r.u32()?;
        let response = match r.u8()? {
            0 => Response::HelloAck { version: r.u16()? },
            1 => Response::EnrollOk {
                device: r.u32()?,
                fresh: r.flag()?,
                status: WireStatus::from_byte(r.u8()?)?,
            },
            2 => Response::Challenge { device: r.u32()?, ticket: r.u64()? },
            3 => Response::Verdict {
                device: r.u32()?,
                accepted: r.flag()?,
                response_ok: r.flag()?,
                time_ok: r.flag()?,
                timed_out: r.flag()?,
                attempts: r.u32()?,
                elapsed_bits: r.u64()?,
                status: WireStatus::from_byte(r.u8()?)?,
            },
            4 => Response::RevokeOk { device: r.u32()?, status: WireStatus::from_byte(r.u8()?)? },
            5 => Response::StatsReply(WireStats {
                started: r.u64()?,
                accepted: r.u64()?,
                rejected: r.u64()?,
                timed_out: r.u64()?,
                refused: r.u64()?,
                lost: r.u64()?,
                faults: r.u64()?,
                active: r.u64()?,
                quarantined: r.u64()?,
                revoked: r.u64()?,
                crp_hits: r.u64()?,
                crp_misses: r.u64()?,
                unavailable: r.u64()?,
                shards_total: r.u64()?,
                shards_degraded: r.u64()?,
                shards_failed: r.u64()?,
            }),
            6 => Response::ShutdownAck,
            7 => Response::Busy { retry_after_ms: r.u32()? },
            8 => Response::Error { code: ErrorCode::from_byte(r.u8()?)?, detail: r.str16()? },
            tag => return Err(TransportError::Malformed(format!("unknown response tag {tag}"))),
        };
        r.done()?;
        Ok((corr, response))
    }
}

/// The client's opening `Hello` for this build.
pub fn hello() -> Request {
    Request::Hello {
        magic: PROTOCOL_MAGIC,
        min_version: PROTOCOL_VERSION,
        max_version: PROTOCOL_VERSION,
    }
}

/// Server-side version negotiation: validates the magic and picks the
/// highest mutually spoken version.
///
/// # Errors
///
/// [`TransportError::Malformed`] on a wrong magic,
/// [`TransportError::VersionMismatch`] when the offered range misses
/// [`PROTOCOL_VERSION`].
pub fn negotiate(magic: [u8; 8], min_version: u16, max_version: u16) -> Result<u16, TransportError> {
    if magic != PROTOCOL_MAGIC {
        return Err(TransportError::Malformed("wrong protocol magic".into()));
    }
    if min_version > max_version || PROTOCOL_VERSION < min_version || PROTOCOL_VERSION > max_version {
        return Err(TransportError::VersionMismatch { lo: min_version, hi: max_version });
    }
    Ok(PROTOCOL_VERSION)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn every_request_roundtrips() {
        let requests = [
            hello(),
            Request::Enroll { device: 7 },
            Request::ChallengeRequest { device: 0xFFFF_FFFF },
            Request::Attest { device: 3, ticket: u64::MAX },
            Request::Revoke { device: 0 },
            Request::Stats,
            Request::Shutdown,
        ];
        for (i, req) in requests.iter().enumerate() {
            let mut buf = Vec::new();
            req.encode(i as u32, &mut buf);
            let (corr, back) = Request::decode(&buf).unwrap();
            assert_eq!(corr, i as u32);
            assert_eq!(&back, req);
        }
    }

    #[test]
    fn every_response_roundtrips() {
        let responses = [
            Response::HelloAck { version: 1 },
            Response::EnrollOk { device: 9, fresh: true, status: WireStatus::Active },
            Response::Challenge { device: 9, ticket: 42 },
            Response::Verdict {
                device: 9,
                accepted: false,
                response_ok: true,
                time_ok: false,
                timed_out: true,
                attempts: 3,
                elapsed_bits: 1.25f64.to_bits(),
                status: WireStatus::Quarantined,
            },
            Response::RevokeOk { device: 9, status: WireStatus::Revoked },
            Response::StatsReply(WireStats {
                started: 1,
                accepted: 2,
                revoked: 3,
                unavailable: 4,
                shards_total: 8,
                shards_degraded: 1,
                shards_failed: 1,
                ..WireStats::default()
            }),
            Response::ShutdownAck,
            Response::Busy { retry_after_ms: 25 },
            Response::Error {
                code: ErrorCode::Refused,
                detail: "device 9 is revoked".into(),
            },
        ];
        for (i, resp) in responses.iter().enumerate() {
            let mut buf = Vec::new();
            resp.encode(i as u32, &mut buf);
            let (corr, back) = Response::decode(&buf).unwrap();
            assert_eq!(corr, i as u32);
            assert_eq!(&back, resp);
        }
    }

    #[test]
    fn negotiation_accepts_overlap_and_refuses_the_rest() {
        assert_eq!(negotiate(PROTOCOL_MAGIC, 1, 1).unwrap(), 1);
        assert_eq!(negotiate(PROTOCOL_MAGIC, 1, 9).unwrap(), PROTOCOL_VERSION);
        assert!(matches!(negotiate(PROTOCOL_MAGIC, 2, 9), Err(TransportError::VersionMismatch { lo: 2, hi: 9 })));
        assert!(matches!(negotiate(PROTOCOL_MAGIC, 3, 2), Err(TransportError::VersionMismatch { .. })));
        assert!(matches!(negotiate(*b"PUFATTW1", 1, 1), Err(TransportError::Malformed(_))));
    }

    #[test]
    fn oversized_and_non_utf8_details_are_rejected() {
        // An Error response whose declared detail length exceeds the cap.
        let mut buf = Vec::new();
        Writer(&mut buf).u32(0);
        Writer(&mut buf).u8(8);
        Writer(&mut buf).u8(ErrorCode::Internal.to_byte());
        buf.extend_from_slice(&((MAX_DETAIL_LEN as u16) + 1).to_le_bytes());
        buf.extend_from_slice(&vec![b'x'; MAX_DETAIL_LEN + 1]);
        assert!(matches!(Response::decode(&buf), Err(TransportError::Malformed(_))));

        let mut buf = Vec::new();
        Writer(&mut buf).u32(0);
        Writer(&mut buf).u8(8);
        Writer(&mut buf).u8(ErrorCode::Internal.to_byte());
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(Response::decode(&buf), Err(TransportError::Malformed(_))));
    }

    #[test]
    fn long_details_truncate_on_char_boundaries() {
        let detail = "é".repeat(MAX_DETAIL_LEN); // 2 bytes per char
        let mut buf = Vec::new();
        Response::Error { code: ErrorCode::Internal, detail }.encode(0, &mut buf);
        let (_, back) = Response::decode(&buf).unwrap();
        let Response::Error { detail, .. } = back else {
            panic!("wrong variant");
        };
        assert!(detail.len() <= MAX_DETAIL_LEN);
        assert!(detail.chars().all(|c| c == 'é'));
    }

    #[test]
    fn trailing_bytes_and_unknown_tags_are_malformed() {
        let mut buf = Vec::new();
        Request::Stats.encode(1, &mut buf);
        buf.push(0);
        assert!(matches!(Request::decode(&buf), Err(TransportError::Malformed(_))));
        let mut buf = Vec::new();
        Writer(&mut buf).u32(1);
        Writer(&mut buf).u8(99);
        assert!(matches!(Request::decode(&buf), Err(TransportError::Malformed(_))));
        assert!(matches!(Response::decode(&buf), Err(TransportError::Malformed(_))));
        assert!(matches!(Request::decode(&[1, 2]), Err(TransportError::Malformed(_))));
    }

    #[test]
    fn wire_status_mirrors_fleet_status() {
        for s in [FleetStatus::Active, FleetStatus::Quarantined, FleetStatus::Revoked] {
            assert_eq!(FleetStatus::from(WireStatus::from(s)), s);
        }
        assert!(WireStatus::from_byte(3).is_err());
    }
}
