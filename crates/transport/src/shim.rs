//! A lossy socket proxy: the `faults` crate's `LossyChannel`, rebuilt at
//! the byte level for real sockets.
//!
//! The in-process chaos layer (PR 3) drops and corrupts *protocol
//! messages*; a socket fails differently — bytes stall, trickle, and
//! stop mid-frame. [`LossyProxy`] sits between client and server and
//! reproduces exactly those failure modes, deterministically:
//!
//! * **mid-frame disconnects** — each proxied connection is cut after a
//!   seeded number of forwarded bytes, which lands inside frames as
//!   often as between them;
//! * **jitter** — seeded per-chunk forwarding delays, so read timeouts
//!   and retry backoff actually engage;
//! * **pass-through connections** — a seeded fraction survive
//!   unmolested, so campaigns progress.
//!
//! Determinism: all decisions derive from `splitmix64(seed ^ conn_index)`
//! streams, so a failing chaos run replays byte-for-byte from its seed.
//! The chaos e2e test drives a real server through this proxy and
//! asserts the PR 3 state machine's view: typed errors only, lost
//! sessions recorded, quarantine hysteresis still firing.

use crate::conn::{Endpoint, Listener, Stream};
use crate::error::TransportError;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// SplitMix64 — the workspace's standard seed expander.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Tuning for the proxy's cruelty.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Fraction of connections that get cut mid-stream (`0.0..=1.0`).
    pub cut_fraction: f64,
    /// Cut connections die after this many forwarded bytes (min..max,
    /// seeded per connection).
    pub cut_after_bytes: (u64, u64),
    /// Fraction of forwarded chunks delayed (`0.0..=1.0`).
    pub jitter_fraction: f64,
    /// Delay applied to jittered chunks, in ms (min..max, seeded).
    pub jitter_ms: (u64, u64),
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            cut_fraction: 0.5,
            cut_after_bytes: (5, 200),
            jitter_fraction: 0.2,
            jitter_ms: (1, 10),
        }
    }
}

/// A running lossy proxy between a listen endpoint and an upstream
/// server.
pub struct LossyProxy {
    endpoint: Endpoint,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl LossyProxy {
    /// Listens on `listen`, forwarding each accepted connection to
    /// `upstream` with seeded damage.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] when the listen bind fails.
    pub fn start(listen: &Endpoint, upstream: Endpoint, seed: u64, cfg: ProxyConfig) -> Result<Self, TransportError> {
        let listener = Listener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let endpoint = listener.local_endpoint();
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("pufatt-lossy-proxy".into())
                .spawn(move || {
                    let mut conn_index = 0u64;
                    while !stop.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok(Some(downstream)) => {
                                conn_index += 1;
                                let conn_seed = splitmix64(seed ^ splitmix64(conn_index));
                                proxy_connection(downstream, &upstream, conn_seed, &cfg);
                            }
                            Ok(None) => std::thread::sleep(Duration::from_millis(2)),
                            Err(_) => std::thread::sleep(Duration::from_millis(10)),
                        }
                    }
                })
                .map_err(|e| TransportError::Closed(format!("spawn proxy acceptor: {e}")))?
        };
        Ok(LossyProxy { endpoint, stop, acceptor: Some(acceptor) })
    }

    /// The endpoint clients should dial.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Stops accepting and joins the acceptor. Pump threads for
    /// already-proxied connections finish on their own as the sockets
    /// close.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

/// One seeded decision stream.
struct Dice(u64);

impl Dice {
    fn next(&mut self) -> u64 {
        self.0 = splitmix64(self.0);
        self.0
    }

    fn chance(&mut self, p: f64) -> bool {
        ((self.next() >> 11) as f64) / ((1u64 << 53) as f64) < p
    }

    fn range(&mut self, (lo, hi): (u64, u64)) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next() % (hi - lo + 1)
    }
}

fn proxy_connection(downstream: Stream, upstream: &Endpoint, conn_seed: u64, cfg: &ProxyConfig) {
    let Ok(upstream_stream) = Stream::connect(upstream) else {
        downstream.shutdown();
        return;
    };
    let mut dice = Dice(conn_seed);
    // One budget for the whole connection: whichever direction crosses it
    // first cuts both ways, so the victim sees a mid-frame disconnect.
    let cut_at = if dice.chance(cfg.cut_fraction) {
        Some(dice.range(cfg.cut_after_bytes))
    } else {
        None
    };
    let budget = Arc::new(std::sync::Mutex::new(cut_at));
    spawn_pump(&downstream, &upstream_stream, dice.next(), cfg, &budget, "up");
    spawn_pump(&upstream_stream, &downstream, dice.next(), cfg, &budget, "down");
}

fn spawn_pump(
    from: &Stream,
    to: &Stream,
    pump_seed: u64,
    cfg: &ProxyConfig,
    budget: &Arc<std::sync::Mutex<Option<u64>>>,
    dir: &'static str,
) {
    let (Ok(mut from), Ok(mut to)) = (from.try_clone(), to.try_clone()) else {
        from.shutdown();
        to.shutdown();
        return;
    };
    let cfg = cfg.clone();
    let budget = Arc::clone(budget);
    // analyze: allow(conc: pump exits when either socket closes; joining it would deadlock shutdown)
    let _ = std::thread::Builder::new().name(format!("pufatt-pump-{dir}")).spawn(move || {
        let mut dice = Dice(pump_seed);
        let mut buf = [0u8; 512];
        loop {
            let n = match from.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => n,
            };
            let mut send = n;
            let mut cut_now = false;
            {
                let mut guard = pufatt_fleet::sync::lock(&budget);
                if let Some(remaining) = guard.as_mut() {
                    if *remaining <= n as u64 {
                        send = *remaining as usize;
                        *remaining = 0;
                        cut_now = true;
                    } else {
                        *remaining -= n as u64;
                    }
                }
            }
            if dice.chance(cfg.jitter_fraction) {
                std::thread::sleep(Duration::from_millis(dice.range(cfg.jitter_ms)));
            }
            if send > 0 && to.write_all(&buf[..send]).is_err() {
                break;
            }
            if cut_now {
                break;
            }
        }
        // Cut both ends so the peer observes the disconnect immediately.
        from.shutdown();
        to.shutdown();
    });
}
