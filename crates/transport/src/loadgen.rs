//! The load generator: a fleet's worth of simulated devices multiplexed
//! over a bounded set of real connections.
//!
//! Each connection thread owns the devices whose `id % connections`
//! matches it and drives every one through the full protocol —
//! `Enroll`, then `sessions_per_device` rounds of `ChallengeRequest` +
//! `Attest` — keeping up to `window` devices in flight concurrently via
//! correlation-id pipelining. Concurrency is therefore
//! `connections × window` devices, which reaches tens of thousands
//! without tens of thousands of sockets or threads.
//!
//! The generator follows the service's own semantics exactly, which is
//! what makes its campaigns comparable to in-process runs:
//!
//! * a refused `ChallengeRequest` still *spends* one of the device's
//!   sessions (the in-process campaign counts one refusal per scheduled
//!   session of a revoked device);
//! * an `Enroll` fault abandons the device without opening sessions;
//! * `Busy` answers are retried after the server's hint — backpressure
//!   is a pacing signal, not an error.
//!
//! Latency is sampled per *session* (send of its `ChallengeRequest` to
//! receipt of its `Verdict`, busy-retry backoff included) — the
//! device-visible attestation round-trip.

use crate::client::Client;
use crate::conn::Endpoint;
use crate::error::{ErrorCode, TransportError};
use crate::message::{Request, Response};
use pufatt_fleet::registry::DeviceId;
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// What to drive and how hard.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server endpoint.
    pub endpoint: Endpoint,
    /// Devices to simulate (ids `0..devices`).
    pub devices: u32,
    /// Attestation sessions per device.
    pub sessions_per_device: u32,
    /// Real connections to open.
    pub connections: usize,
    /// Devices each connection keeps in flight concurrently.
    pub window: usize,
    /// Socket read timeout in ms (`0` = block forever).
    pub read_timeout_ms: u64,
    /// Socket write timeout in ms (`0` = block forever).
    pub write_timeout_ms: u64,
    /// `Busy` answers tolerated per request before the device errors out.
    pub max_busy_retries: u32,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            endpoint: Endpoint::Tcp("127.0.0.1:0".into()),
            devices: 64,
            sessions_per_device: 2,
            connections: 4,
            window: 16,
            read_timeout_ms: 30_000,
            write_timeout_ms: 30_000,
            max_busy_retries: 1_000,
        }
    }
}

/// The protocol phase a device was in when its connection died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LostPhase {
    /// Its `Enroll` was in flight; nothing was admitted.
    Enrolling,
    /// A `ChallengeRequest` was in flight; no session was open.
    AwaitingChallenge,
    /// An `Attest` was in flight: a session was opened but its verdict
    /// never arrived (the server records it as an aborted, lost session).
    Attesting,
    /// The connection died before its stride reached this device.
    Unstarted,
}

impl fmt::Display for LostPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LostPhase::Enrolling => "enrolling",
            LostPhase::AwaitingChallenge => "awaiting-challenge",
            LostPhase::Attesting => "attesting",
            LostPhase::Unstarted => "unstarted",
        })
    }
}

/// Typed summary of mid-campaign connection loss: which connections died,
/// the first transport error seen, and the exact disposition of every
/// stranded device — instead of a generic error that hides how far the
/// campaign got.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConnectionLost {
    /// Connections that died before completing their device stride.
    pub connections_lost: u64,
    /// The first transport error observed (the root cause, rendered).
    pub first_error: String,
    /// Every stranded device with the phase it was lost in, ascending by
    /// id.
    pub devices: Vec<(DeviceId, LostPhase)>,
}

impl fmt::Display for ConnectionLost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let count = |p: LostPhase| self.devices.iter().filter(|&&(_, q)| q == p).count();
        write!(
            f,
            "{} connection(s) lost mid-campaign ({}): {} device(s) stranded — \
             {} enrolling, {} awaiting-challenge, {} attesting, {} unstarted",
            self.connections_lost,
            self.first_error,
            self.devices.len(),
            count(LostPhase::Enrolling),
            count(LostPhase::AwaitingChallenge),
            count(LostPhase::Attesting),
            count(LostPhase::Unstarted),
        )
    }
}

/// What the campaign did, aggregated over all connections.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadgenReport {
    /// Devices driven to their terminal state.
    pub devices_completed: u64,
    /// Devices stranded by a transport error or busy-retry exhaustion.
    pub devices_errored: u64,
    /// Sessions that reached a verdict.
    pub sessions_completed: u64,
    /// Sessions the server refused (revoked device).
    pub sessions_refused: u64,
    /// Verdicts with `accepted = true`.
    pub sessions_accepted: u64,
    /// Enrolls answered with a device fault.
    pub enroll_faults: u64,
    /// Sessions refused with `storage-unavailable` (the device's durable
    /// home shard was sick; its remaining schedule is counted here).
    pub sessions_unavailable: u64,
    /// Devices that stopped because their storage shard was unavailable.
    pub devices_unavailable: u64,
    /// `Busy` answers absorbed (queue or rate backpressure).
    pub busy_retries: u64,
    /// Real connections that completed their share.
    pub connections: u64,
    /// Wall-clock seconds for the whole campaign.
    pub wall_s: f64,
    /// Completed sessions per wall-clock second.
    pub sessions_per_s: f64,
    /// Median session latency in microseconds.
    pub p50_us: u64,
    /// 90th-percentile session latency in microseconds.
    pub p90_us: u64,
    /// 99th-percentile session latency in microseconds.
    pub p99_us: u64,
    /// Worst session latency in microseconds.
    pub max_us: u64,
    /// Present when at least one connection died mid-campaign: the typed
    /// loss summary with per-device disposition. The campaign-level
    /// counters above still cover everything the surviving connections
    /// finished.
    pub connection_lost: Option<ConnectionLost>,
}

impl LoadgenReport {
    /// Renders one JSON object (no trailing newline) for bench output.
    pub fn json_object(&self, label: &str, concurrent_devices: u64) -> String {
        format!(
            concat!(
                "{{\"label\":\"{}\",\"connections\":{},\"concurrent_devices\":{},",
                "\"devices_completed\":{},\"devices_errored\":{},\"devices_unavailable\":{},",
                "\"sessions_completed\":{},\"sessions_refused\":{},\"sessions_accepted\":{},",
                "\"sessions_unavailable\":{},",
                "\"enroll_faults\":{},\"busy_retries\":{},\"connections_lost\":{},",
                "\"wall_s\":{:.6},\"sessions_per_s\":{:.1},",
                "\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"max_us\":{}}}"
            ),
            label,
            self.connections,
            concurrent_devices,
            self.devices_completed,
            self.devices_errored,
            self.devices_unavailable,
            self.sessions_completed,
            self.sessions_refused,
            self.sessions_accepted,
            self.sessions_unavailable,
            self.enroll_faults,
            self.busy_retries,
            self.connection_lost.as_ref().map_or(0, |l| l.connections_lost),
            self.wall_s,
            self.sessions_per_s,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.max_us,
        )
    }
}

/// One device's progress on its connection.
struct InFlight {
    id: DeviceId,
    /// Sessions this device still owes (including the one in flight).
    remaining: u32,
    /// The request awaiting its reply (resent verbatim on `Busy`).
    request: Request,
    /// When this session's `ChallengeRequest` went out.
    session_started: Option<Instant>,
    busy_retries: u32,
}

#[derive(Default)]
struct ConnTally {
    devices_completed: u64,
    devices_errored: u64,
    devices_unavailable: u64,
    sessions_completed: u64,
    sessions_refused: u64,
    sessions_accepted: u64,
    sessions_unavailable: u64,
    enroll_faults: u64,
    busy_retries: u64,
    latencies_us: Vec<u64>,
    /// Whether the TCP connect + handshake succeeded (distinguishes a
    /// server that was never reachable from one that vanished mid-run).
    connected: bool,
    /// Stranded devices with the phase each was lost in.
    lost_devices: Vec<(DeviceId, LostPhase)>,
}

/// Runs a full campaign against a live server and reports throughput and
/// latency.
///
/// # Errors
///
/// [`TransportError`] only when *no* connection could even be
/// established. A connection that dies *after* reaching the server does
/// not fail the call: its stranded devices are counted in
/// `devices_errored` and itemised, with the root-cause error, in the
/// report's [`LoadgenReport::connection_lost`] summary.
#[allow(clippy::result_large_err)] // the spawn closure carries drive_connection's tally-with-error pair
pub fn run_loadgen(cfg: &LoadgenConfig) -> Result<LoadgenReport, TransportError> {
    let connections = cfg.connections.max(1);
    let started = Instant::now();
    let mut handles = Vec::with_capacity(connections);
    for conn_index in 0..connections {
        let cfg = cfg.clone();
        let handle = std::thread::Builder::new()
            .name(format!("pufatt-loadgen-{conn_index}"))
            .spawn(move || drive_connection(&cfg, conn_index))
            .map_err(|e| TransportError::Closed(format!("spawn loadgen worker: {e}")))?;
        handles.push(handle);
    }
    let mut tally = ConnTally::default();
    let mut live_connections = 0u64;
    let mut connections_lost = 0u64;
    let mut any_connected = false;
    let mut first_error = String::new();
    for handle in handles {
        match handle.join() {
            Ok(Ok(conn_tally)) => {
                live_connections += 1;
                any_connected = true;
                merge(&mut tally, conn_tally);
            }
            Ok(Err((conn_tally, err))) => {
                connections_lost += 1;
                any_connected |= conn_tally.connected;
                if first_error.is_empty() {
                    first_error = err.to_string();
                }
                merge(&mut tally, conn_tally);
            }
            Err(_) => {
                connections_lost += 1;
                if first_error.is_empty() {
                    first_error = "loadgen worker panicked".into();
                }
            }
        }
    }
    if !any_connected {
        return Err(TransportError::Closed("no loadgen connection reached the server".into()));
    }
    let wall_s = started.elapsed().as_secs_f64();
    tally.latencies_us.sort_unstable();
    let pct = |p: f64| -> u64 {
        if tally.latencies_us.is_empty() {
            return 0;
        }
        let idx = ((tally.latencies_us.len() as f64 * p).ceil() as usize).clamp(1, tally.latencies_us.len());
        tally.latencies_us[idx - 1]
    };
    let connection_lost = (connections_lost > 0).then(|| {
        let mut devices = std::mem::take(&mut tally.lost_devices);
        devices.sort_unstable_by_key(|&(id, _)| id);
        ConnectionLost { connections_lost, first_error, devices }
    });
    Ok(LoadgenReport {
        devices_completed: tally.devices_completed,
        devices_errored: tally.devices_errored,
        devices_unavailable: tally.devices_unavailable,
        sessions_completed: tally.sessions_completed,
        sessions_refused: tally.sessions_refused,
        sessions_accepted: tally.sessions_accepted,
        sessions_unavailable: tally.sessions_unavailable,
        enroll_faults: tally.enroll_faults,
        busy_retries: tally.busy_retries,
        connections: live_connections,
        wall_s,
        sessions_per_s: if wall_s > 0.0 { tally.sessions_completed as f64 / wall_s } else { 0.0 },
        p50_us: pct(0.50),
        p90_us: pct(0.90),
        p99_us: pct(0.99),
        max_us: tally.latencies_us.last().copied().unwrap_or(0),
        connection_lost,
    })
}

fn merge(into: &mut ConnTally, from: ConnTally) {
    into.devices_completed += from.devices_completed;
    into.devices_errored += from.devices_errored;
    into.devices_unavailable += from.devices_unavailable;
    into.sessions_completed += from.sessions_completed;
    into.sessions_refused += from.sessions_refused;
    into.sessions_accepted += from.sessions_accepted;
    into.sessions_unavailable += from.sessions_unavailable;
    into.enroll_faults += from.enroll_faults;
    into.busy_retries += from.busy_retries;
    into.latencies_us.extend(from.latencies_us);
    into.lost_devices.extend(from.lost_devices);
}

/// Drives this connection's device stride to completion. On a transport
/// error the tally so far rides along with the error.
#[allow(clippy::result_large_err)]
fn drive_connection(cfg: &LoadgenConfig, conn_index: usize) -> Result<ConnTally, (ConnTally, TransportError)> {
    let mut tally = ConnTally::default();
    let mut client = match Client::connect(&cfg.endpoint, cfg.read_timeout_ms, cfg.write_timeout_ms) {
        Ok(client) => client,
        Err(e) => {
            // Never reached the server: the whole stride is unstarted.
            strand(&mut tally, &HashMap::new(), conn_index as u32, cfg.devices, cfg.connections.max(1) as u32);
            return Err((tally, e));
        }
    };
    tally.connected = true;
    let connections = cfg.connections.max(1) as u32;
    let mut next_device = conn_index as u32;
    let window = cfg.window.max(1);
    let mut inflight: HashMap<u32, InFlight> = HashMap::new();
    loop {
        // Fill the window with fresh devices.
        while inflight.len() < window && next_device < cfg.devices {
            let id = next_device;
            next_device += connections;
            let request = Request::Enroll { device: id };
            match client.send(&request) {
                Ok(corr) => {
                    inflight.insert(
                        corr,
                        InFlight {
                            id,
                            remaining: cfg.sessions_per_device,
                            request,
                            session_started: None,
                            busy_retries: 0,
                        },
                    );
                }
                Err(e) => {
                    tally.devices_errored += 1;
                    tally.lost_devices.push((id, LostPhase::Enrolling));
                    strand(&mut tally, &inflight, next_device, cfg.devices, connections);
                    return Err((tally, e));
                }
            }
        }
        if inflight.is_empty() {
            return Ok(tally);
        }
        let (corr, response) = match client.recv_any() {
            Ok(pair) => pair,
            Err(e) => {
                strand(&mut tally, &inflight, next_device, cfg.devices, connections);
                return Err((tally, e));
            }
        };
        let Some(mut entry) = inflight.remove(&corr) else {
            continue; // stale reply for a device we already gave up on
        };
        let was_busy = matches!(response, Response::Busy { .. });
        let next = match response {
            Response::Busy { retry_after_ms } => {
                entry.busy_retries += 1;
                tally.busy_retries += 1;
                if entry.busy_retries > cfg.max_busy_retries {
                    tally.devices_errored += 1;
                    continue;
                }
                std::thread::sleep(std::time::Duration::from_millis(u64::from(retry_after_ms.max(1))));
                Some(entry.request.clone())
            }
            Response::EnrollOk { .. } => {
                if entry.remaining == 0 {
                    tally.devices_completed += 1;
                    None
                } else {
                    entry.session_started = Some(Instant::now());
                    Some(Request::ChallengeRequest { device: entry.id })
                }
            }
            Response::Challenge { device, ticket } => Some(Request::Attest { device, ticket }),
            Response::Verdict { accepted, .. } => {
                tally.sessions_completed += 1;
                tally.sessions_accepted += u64::from(accepted);
                if let Some(t0) = entry.session_started.take() {
                    tally
                        .latencies_us
                        .push(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                }
                entry.remaining -= 1;
                if entry.remaining > 0 {
                    entry.session_started = Some(Instant::now());
                    Some(Request::ChallengeRequest { device: entry.id })
                } else {
                    tally.devices_completed += 1;
                    None
                }
            }
            Response::Error { code: ErrorCode::Refused, .. } => {
                // One scheduled session spent on a revoked device —
                // mirrors the in-process campaign's refusal accounting.
                tally.sessions_refused += 1;
                entry.remaining = entry.remaining.saturating_sub(1);
                if entry.remaining > 0 {
                    entry.session_started = Some(Instant::now());
                    Some(Request::ChallengeRequest { device: entry.id })
                } else {
                    tally.devices_completed += 1;
                    None
                }
            }
            Response::Error { code: ErrorCode::DeviceFault, .. } => {
                // Provisioning faulted: the device is abandoned with no
                // sessions, as in process.
                tally.enroll_faults += 1;
                tally.devices_completed += 1;
                None
            }
            Response::Error { code: ErrorCode::StorageUnavailable, .. } => {
                // The device's durable home shard is sick: the server
                // refuses its requests up front. Mirror the fleet's own
                // accounting — the rest of this device's schedule is
                // unavailable and the device stops (its healthy-shard
                // peers keep attesting on this same connection).
                tally.sessions_unavailable += u64::from(entry.remaining);
                tally.devices_unavailable += 1;
                None
            }
            Response::Error { .. }
            | Response::HelloAck { .. }
            | Response::RevokeOk { .. }
            | Response::StatsReply(_)
            | Response::ShutdownAck => {
                tally.devices_errored += 1;
                None
            }
        };
        if let Some(request) = next {
            if !was_busy {
                entry.busy_retries = 0;
            }
            match client.send(&request) {
                Ok(new_corr) => {
                    entry.request = request;
                    inflight.insert(new_corr, entry);
                }
                Err(e) => {
                    tally.devices_errored += 1;
                    tally.lost_devices.push((entry.id, phase_of(&request)));
                    strand(&mut tally, &inflight, next_device, cfg.devices, connections);
                    return Err((tally, e));
                }
            }
        }
    }
}

/// The loss phase a device's outstanding request pins it to.
fn phase_of(request: &Request) -> LostPhase {
    match request {
        Request::Enroll { .. } => LostPhase::Enrolling,
        Request::ChallengeRequest { .. } => LostPhase::AwaitingChallenge,
        Request::Attest { .. } => LostPhase::Attesting,
        _ => LostPhase::Unstarted,
    }
}

/// Records every device this connection strands when it dies: the
/// in-flight ones (with the phase their outstanding request names) plus
/// the unstarted remainder of its stride, all counted as errored.
fn strand(tally: &mut ConnTally, inflight: &HashMap<u32, InFlight>, next_device: u32, devices: u32, connections: u32) {
    for entry in inflight.values() {
        tally.lost_devices.push((entry.id, phase_of(&entry.request)));
    }
    let mut id = next_device;
    while id < devices {
        tally.lost_devices.push((id, LostPhase::Unstarted));
        id += connections;
    }
    let unstarted = u64::from(if next_device < devices {
        (devices - next_device).div_ceil(connections)
    } else {
        0
    });
    tally.devices_errored += inflight.len() as u64 + unstarted;
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::conn::Listener;
    use crate::frame::{read_frame, write_frame};
    use crate::message::negotiate;

    /// A server that completes the handshake, reads one request, then
    /// vanishes — the canonical mid-campaign connection loss.
    fn vanish_after_first_request(listener: Listener) {
        loop {
            match listener.accept() {
                Ok(Some(mut stream)) => {
                    let _ = stream.set_read_timeout_ms(5_000);
                    let _ = stream.set_write_timeout_ms(5_000);
                    let mut payload = Vec::new();
                    if !matches!(read_frame(&mut stream, &mut payload, 5_000), Ok(true)) {
                        return;
                    }
                    let Ok((corr, Request::Hello { magic, min_version, max_version })) = Request::decode(&payload)
                    else {
                        return;
                    };
                    let Ok(version) = negotiate(magic, min_version, max_version) else {
                        return;
                    };
                    let mut out = Vec::new();
                    Response::HelloAck { version }.encode(corr, &mut out);
                    let _ = write_frame(&mut stream, &out, 5_000);
                    // Swallow the first real request, then drop the socket.
                    let _ = read_frame(&mut stream, &mut payload, 5_000);
                    return;
                }
                Ok(None) => std::thread::sleep(std::time::Duration::from_millis(1)),
                Err(_) => return,
            }
        }
    }

    #[test]
    fn connection_loss_yields_a_typed_per_device_disposition() {
        let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let endpoint = listener.local_endpoint().clone();
        let server = std::thread::spawn(move || vanish_after_first_request(listener));
        let cfg = LoadgenConfig {
            endpoint,
            devices: 2,
            sessions_per_device: 1,
            connections: 1,
            window: 1,
            read_timeout_ms: 2_000,
            write_timeout_ms: 2_000,
            ..LoadgenConfig::default()
        };
        let report = run_loadgen(&cfg).expect("a connected-then-lost campaign still reports");
        let lost = report.connection_lost.expect("typed connection-loss summary");
        assert_eq!(lost.connections_lost, 1);
        assert!(!lost.first_error.is_empty(), "root cause must be carried");
        assert_eq!(
            lost.devices,
            vec![(0, LostPhase::Enrolling), (1, LostPhase::Unstarted)],
            "each stranded device carries the phase it was lost in"
        );
        assert_eq!(report.devices_errored, 2);
        assert_eq!(report.devices_completed, 0);
        let line = lost.to_string();
        assert!(line.contains("1 connection(s) lost") && line.contains("1 enrolling"), "display: {line}");
        server.join().unwrap();
    }

    #[test]
    fn an_unreachable_server_is_still_a_hard_error() {
        let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let endpoint = listener.local_endpoint().clone();
        drop(listener);
        let cfg = LoadgenConfig {
            endpoint,
            devices: 1,
            connections: 1,
            ..LoadgenConfig::default()
        };
        assert!(run_loadgen(&cfg).is_err(), "no connection established at all");
    }
}
