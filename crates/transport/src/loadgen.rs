//! The load generator: a fleet's worth of simulated devices multiplexed
//! over a bounded set of real connections.
//!
//! Each connection thread owns the devices whose `id % connections`
//! matches it and drives every one through the full protocol —
//! `Enroll`, then `sessions_per_device` rounds of `ChallengeRequest` +
//! `Attest` — keeping up to `window` devices in flight concurrently via
//! correlation-id pipelining. Concurrency is therefore
//! `connections × window` devices, which reaches tens of thousands
//! without tens of thousands of sockets or threads.
//!
//! The generator follows the service's own semantics exactly, which is
//! what makes its campaigns comparable to in-process runs:
//!
//! * a refused `ChallengeRequest` still *spends* one of the device's
//!   sessions (the in-process campaign counts one refusal per scheduled
//!   session of a revoked device);
//! * an `Enroll` fault abandons the device without opening sessions;
//! * `Busy` answers are retried after the server's hint — backpressure
//!   is a pacing signal, not an error.
//!
//! Latency is sampled per *session* (send of its `ChallengeRequest` to
//! receipt of its `Verdict`, busy-retry backoff included) — the
//! device-visible attestation round-trip.

use crate::client::Client;
use crate::conn::Endpoint;
use crate::error::{ErrorCode, TransportError};
use crate::message::{Request, Response};
use pufatt_fleet::registry::DeviceId;
use std::collections::HashMap;
use std::time::Instant;

/// What to drive and how hard.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server endpoint.
    pub endpoint: Endpoint,
    /// Devices to simulate (ids `0..devices`).
    pub devices: u32,
    /// Attestation sessions per device.
    pub sessions_per_device: u32,
    /// Real connections to open.
    pub connections: usize,
    /// Devices each connection keeps in flight concurrently.
    pub window: usize,
    /// Socket read timeout in ms (`0` = block forever).
    pub read_timeout_ms: u64,
    /// Socket write timeout in ms (`0` = block forever).
    pub write_timeout_ms: u64,
    /// `Busy` answers tolerated per request before the device errors out.
    pub max_busy_retries: u32,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            endpoint: Endpoint::Tcp("127.0.0.1:0".into()),
            devices: 64,
            sessions_per_device: 2,
            connections: 4,
            window: 16,
            read_timeout_ms: 30_000,
            write_timeout_ms: 30_000,
            max_busy_retries: 1_000,
        }
    }
}

/// What the campaign did, aggregated over all connections.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadgenReport {
    /// Devices driven to their terminal state.
    pub devices_completed: u64,
    /// Devices stranded by a transport error or busy-retry exhaustion.
    pub devices_errored: u64,
    /// Sessions that reached a verdict.
    pub sessions_completed: u64,
    /// Sessions the server refused (revoked device).
    pub sessions_refused: u64,
    /// Verdicts with `accepted = true`.
    pub sessions_accepted: u64,
    /// Enrolls answered with a device fault.
    pub enroll_faults: u64,
    /// `Busy` answers absorbed (queue or rate backpressure).
    pub busy_retries: u64,
    /// Real connections that completed their share.
    pub connections: u64,
    /// Wall-clock seconds for the whole campaign.
    pub wall_s: f64,
    /// Completed sessions per wall-clock second.
    pub sessions_per_s: f64,
    /// Median session latency in microseconds.
    pub p50_us: u64,
    /// 90th-percentile session latency in microseconds.
    pub p90_us: u64,
    /// 99th-percentile session latency in microseconds.
    pub p99_us: u64,
    /// Worst session latency in microseconds.
    pub max_us: u64,
}

impl LoadgenReport {
    /// Renders one JSON object (no trailing newline) for bench output.
    pub fn json_object(&self, label: &str, concurrent_devices: u64) -> String {
        format!(
            concat!(
                "{{\"label\":\"{}\",\"connections\":{},\"concurrent_devices\":{},",
                "\"devices_completed\":{},\"devices_errored\":{},",
                "\"sessions_completed\":{},\"sessions_refused\":{},\"sessions_accepted\":{},",
                "\"enroll_faults\":{},\"busy_retries\":{},\"wall_s\":{:.6},\"sessions_per_s\":{:.1},",
                "\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"max_us\":{}}}"
            ),
            label,
            self.connections,
            concurrent_devices,
            self.devices_completed,
            self.devices_errored,
            self.sessions_completed,
            self.sessions_refused,
            self.sessions_accepted,
            self.enroll_faults,
            self.busy_retries,
            self.wall_s,
            self.sessions_per_s,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.max_us,
        )
    }
}

/// One device's progress on its connection.
struct InFlight {
    id: DeviceId,
    /// Sessions this device still owes (including the one in flight).
    remaining: u32,
    /// The request awaiting its reply (resent verbatim on `Busy`).
    request: Request,
    /// When this session's `ChallengeRequest` went out.
    session_started: Option<Instant>,
    busy_retries: u32,
}

#[derive(Default)]
struct ConnTally {
    devices_completed: u64,
    devices_errored: u64,
    sessions_completed: u64,
    sessions_refused: u64,
    sessions_accepted: u64,
    enroll_faults: u64,
    busy_retries: u64,
    latencies_us: Vec<u64>,
}

/// Runs a full campaign against a live server and reports throughput and
/// latency.
///
/// # Errors
///
/// [`TransportError`] only when *no* connection could even be
/// established; per-connection failures mid-campaign are absorbed into
/// `devices_errored`.
pub fn run_loadgen(cfg: &LoadgenConfig) -> Result<LoadgenReport, TransportError> {
    let connections = cfg.connections.max(1);
    let started = Instant::now();
    let mut handles = Vec::with_capacity(connections);
    for conn_index in 0..connections {
        let cfg = cfg.clone();
        let handle = std::thread::Builder::new()
            .name(format!("pufatt-loadgen-{conn_index}"))
            .spawn(move || drive_connection(&cfg, conn_index))
            .map_err(|e| TransportError::Closed(format!("spawn loadgen worker: {e}")))?;
        handles.push(handle);
    }
    let mut tally = ConnTally::default();
    let mut live_connections = 0u64;
    for handle in handles {
        match handle.join() {
            Ok(Ok(conn_tally)) => {
                live_connections += 1;
                merge(&mut tally, conn_tally);
            }
            Ok(Err((conn_tally, _err))) => merge(&mut tally, conn_tally),
            Err(_) => {}
        }
    }
    if live_connections == 0 {
        return Err(TransportError::Closed("no loadgen connection reached the server".into()));
    }
    let wall_s = started.elapsed().as_secs_f64();
    tally.latencies_us.sort_unstable();
    let pct = |p: f64| -> u64 {
        if tally.latencies_us.is_empty() {
            return 0;
        }
        let idx = ((tally.latencies_us.len() as f64 * p).ceil() as usize).clamp(1, tally.latencies_us.len());
        tally.latencies_us[idx - 1]
    };
    Ok(LoadgenReport {
        devices_completed: tally.devices_completed,
        devices_errored: tally.devices_errored,
        sessions_completed: tally.sessions_completed,
        sessions_refused: tally.sessions_refused,
        sessions_accepted: tally.sessions_accepted,
        enroll_faults: tally.enroll_faults,
        busy_retries: tally.busy_retries,
        connections: live_connections,
        wall_s,
        sessions_per_s: if wall_s > 0.0 { tally.sessions_completed as f64 / wall_s } else { 0.0 },
        p50_us: pct(0.50),
        p90_us: pct(0.90),
        p99_us: pct(0.99),
        max_us: tally.latencies_us.last().copied().unwrap_or(0),
    })
}

fn merge(into: &mut ConnTally, from: ConnTally) {
    into.devices_completed += from.devices_completed;
    into.devices_errored += from.devices_errored;
    into.sessions_completed += from.sessions_completed;
    into.sessions_refused += from.sessions_refused;
    into.sessions_accepted += from.sessions_accepted;
    into.enroll_faults += from.enroll_faults;
    into.busy_retries += from.busy_retries;
    into.latencies_us.extend(from.latencies_us);
}

/// Drives this connection's device stride to completion. On a transport
/// error the tally so far rides along with the error.
#[allow(clippy::result_large_err)]
fn drive_connection(cfg: &LoadgenConfig, conn_index: usize) -> Result<ConnTally, (ConnTally, TransportError)> {
    let mut tally = ConnTally::default();
    let mut client = match Client::connect(&cfg.endpoint, cfg.read_timeout_ms, cfg.write_timeout_ms) {
        Ok(client) => client,
        Err(e) => return Err((tally, e)),
    };
    let connections = cfg.connections.max(1) as u32;
    let mut next_device = conn_index as u32;
    let window = cfg.window.max(1);
    let mut inflight: HashMap<u32, InFlight> = HashMap::new();
    loop {
        // Fill the window with fresh devices.
        while inflight.len() < window && next_device < cfg.devices {
            let id = next_device;
            next_device += connections;
            let request = Request::Enroll { device: id };
            match client.send(&request) {
                Ok(corr) => {
                    inflight.insert(
                        corr,
                        InFlight {
                            id,
                            remaining: cfg.sessions_per_device,
                            request,
                            session_started: None,
                            busy_retries: 0,
                        },
                    );
                }
                Err(e) => {
                    tally.devices_errored += 1 + remaining_devices(&inflight, next_device, cfg.devices, connections);
                    return Err((tally, e));
                }
            }
        }
        if inflight.is_empty() {
            return Ok(tally);
        }
        let (corr, response) = match client.recv_any() {
            Ok(pair) => pair,
            Err(e) => {
                tally.devices_errored += remaining_devices(&inflight, next_device, cfg.devices, connections);
                return Err((tally, e));
            }
        };
        let Some(mut entry) = inflight.remove(&corr) else {
            continue; // stale reply for a device we already gave up on
        };
        let was_busy = matches!(response, Response::Busy { .. });
        let next = match response {
            Response::Busy { retry_after_ms } => {
                entry.busy_retries += 1;
                tally.busy_retries += 1;
                if entry.busy_retries > cfg.max_busy_retries {
                    tally.devices_errored += 1;
                    continue;
                }
                std::thread::sleep(std::time::Duration::from_millis(u64::from(retry_after_ms.max(1))));
                Some(entry.request.clone())
            }
            Response::EnrollOk { .. } => {
                if entry.remaining == 0 {
                    tally.devices_completed += 1;
                    None
                } else {
                    entry.session_started = Some(Instant::now());
                    Some(Request::ChallengeRequest { device: entry.id })
                }
            }
            Response::Challenge { device, ticket } => Some(Request::Attest { device, ticket }),
            Response::Verdict { accepted, .. } => {
                tally.sessions_completed += 1;
                tally.sessions_accepted += u64::from(accepted);
                if let Some(t0) = entry.session_started.take() {
                    tally
                        .latencies_us
                        .push(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                }
                entry.remaining -= 1;
                if entry.remaining > 0 {
                    entry.session_started = Some(Instant::now());
                    Some(Request::ChallengeRequest { device: entry.id })
                } else {
                    tally.devices_completed += 1;
                    None
                }
            }
            Response::Error { code: ErrorCode::Refused, .. } => {
                // One scheduled session spent on a revoked device —
                // mirrors the in-process campaign's refusal accounting.
                tally.sessions_refused += 1;
                entry.remaining = entry.remaining.saturating_sub(1);
                if entry.remaining > 0 {
                    entry.session_started = Some(Instant::now());
                    Some(Request::ChallengeRequest { device: entry.id })
                } else {
                    tally.devices_completed += 1;
                    None
                }
            }
            Response::Error { code: ErrorCode::DeviceFault, .. } => {
                // Provisioning faulted: the device is abandoned with no
                // sessions, as in process.
                tally.enroll_faults += 1;
                tally.devices_completed += 1;
                None
            }
            Response::Error { .. }
            | Response::HelloAck { .. }
            | Response::RevokeOk { .. }
            | Response::StatsReply(_)
            | Response::ShutdownAck => {
                tally.devices_errored += 1;
                None
            }
        };
        if let Some(request) = next {
            if !was_busy {
                entry.busy_retries = 0;
            }
            match client.send(&request) {
                Ok(new_corr) => {
                    entry.request = request;
                    inflight.insert(new_corr, entry);
                }
                Err(e) => {
                    tally.devices_errored += 1 + remaining_devices(&inflight, next_device, cfg.devices, connections);
                    return Err((tally, e));
                }
            }
        }
    }
}

/// Devices this connection would still owe if it died right now: the
/// in-flight ones plus the unstarted remainder of its stride.
fn remaining_devices(inflight: &HashMap<u32, InFlight>, next_device: u32, devices: u32, connections: u32) -> u64 {
    let unstarted = u64::from(if next_device < devices {
        (devices - next_device).div_ceil(connections)
    } else {
        0
    });
    inflight.len() as u64 + unstarted
}
