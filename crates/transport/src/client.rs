//! A blocking protocol client: dial, handshake, then correlated
//! request/response exchange.
//!
//! The client is deliberately simple — one socket, one outstanding-reply
//! table, no internal threads. Pipelining comes from *callers*: the load
//! generator keeps a window of requests in flight by issuing several
//! [`Client::send`]s before collecting with [`Client::recv`], and the
//! correlation id (echoed by the server in every response) pairs answers
//! with questions regardless of completion order — dispatched verdicts
//! legitimately overtake inline errors on the wire.

use crate::conn::{Endpoint, Stream};
use crate::error::{ErrorCode, TransportError};
use crate::frame::{read_frame, write_frame};
use crate::message::{hello, Request, Response, PROTOCOL_VERSION};
use std::collections::HashMap;

/// A connected, handshaken protocol client.
pub struct Client {
    stream: Stream,
    read_timeout_ms: u64,
    write_timeout_ms: u64,
    next_corr: u32,
    /// Replies that arrived while waiting for a different correlation id.
    pending: HashMap<u32, Response>,
    buf: Vec<u8>,
}

impl Client {
    /// Dials `endpoint` and performs the version handshake.
    ///
    /// # Errors
    ///
    /// Connection failures, a `Busy` shed at accept (surfaced as
    /// [`TransportError::Server`] with [`ErrorCode::RateLimited`]), or a
    /// version-negotiation failure.
    pub fn connect(endpoint: &Endpoint, read_timeout_ms: u64, write_timeout_ms: u64) -> Result<Self, TransportError> {
        let stream = Stream::connect(endpoint)?;
        stream.set_read_timeout_ms(read_timeout_ms)?;
        stream.set_write_timeout_ms(write_timeout_ms)?;
        let mut client = Client {
            stream,
            read_timeout_ms,
            write_timeout_ms,
            next_corr: 0,
            pending: HashMap::new(),
            buf: Vec::new(),
        };
        let corr = client.send(&hello())?;
        match client.recv(corr)? {
            Response::HelloAck { version } if version == PROTOCOL_VERSION => Ok(client),
            Response::HelloAck { version } => Err(TransportError::VersionMismatch { lo: version, hi: version }),
            Response::Busy { retry_after_ms } => Err(TransportError::Server {
                code: ErrorCode::RateLimited,
                detail: format!("server at capacity, retry in {retry_after_ms} ms"),
            }),
            Response::Error { code, detail } => Err(TransportError::Server { code, detail }),
            other => Err(TransportError::Protocol(format!("unexpected handshake reply: {other:?}"))),
        }
    }

    /// Sends one request, returning its correlation id.
    ///
    /// # Errors
    ///
    /// Write timeouts or a vanished peer.
    pub fn send(&mut self, request: &Request) -> Result<u32, TransportError> {
        let corr = self.next_corr;
        self.next_corr = self.next_corr.wrapping_add(1);
        self.buf.clear();
        request.encode(corr, &mut self.buf);
        let payload = std::mem::take(&mut self.buf);
        let result = write_frame(&mut self.stream, &payload, self.write_timeout_ms);
        self.buf = payload;
        result?;
        Ok(corr)
    }

    /// Receives the response for `corr`, parking any responses to other
    /// outstanding requests for their own [`Client::recv`] calls.
    ///
    /// # Errors
    ///
    /// Read timeouts, torn frames, undecodable responses, or a clean
    /// server close before the awaited reply.
    pub fn recv(&mut self, corr: u32) -> Result<Response, TransportError> {
        loop {
            if let Some(response) = self.pending.remove(&corr) {
                return Ok(response);
            }
            let (got_corr, response) = self.recv_any()?;
            self.pending.insert(got_corr, response);
        }
    }

    /// Receives whichever response arrives next, with its correlation id.
    ///
    /// # Errors
    ///
    /// As [`Client::recv`].
    pub fn recv_any(&mut self) -> Result<(u32, Response), TransportError> {
        if let Some(corr) = self.pending.keys().next().copied() {
            if let Some(response) = self.pending.remove(&corr) {
                return Ok((corr, response));
            }
        }
        let mut payload = std::mem::take(&mut self.buf);
        let outcome = read_frame(&mut self.stream, &mut payload, self.read_timeout_ms);
        let decoded = match outcome {
            Ok(true) => Response::decode(&payload),
            Ok(false) => Err(TransportError::Closed("server closed the connection".into())),
            Err(e) => Err(e),
        };
        self.buf = payload;
        decoded
    }

    /// One full round trip: send, then wait for that reply.
    ///
    /// # Errors
    ///
    /// As [`Client::send`] and [`Client::recv`].
    pub fn call(&mut self, request: &Request) -> Result<Response, TransportError> {
        let corr = self.send(request)?;
        self.recv(corr)
    }

    /// Replies parked by [`Client::recv`] that no one has collected yet.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Tears the socket down; further calls fail with typed errors.
    pub fn shutdown(&self) {
        self.stream.shutdown();
    }
}
