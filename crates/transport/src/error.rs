//! The transport error taxonomy and its mapping into the core one.
//!
//! Every way a socket conversation can go wrong has a typed name here —
//! frame damage, undecodable payloads, version mismatch, timeouts, closed
//! connections, server-side protocol errors — and each maps into the
//! [`PufattError`] taxonomy the retry state machine in `pufatt_faults`
//! already understands: frame and payload damage are [`Malformed`],
//! timeouts are [`Timeout`], a vanished peer is [`ChannelLost`], and
//! everything service-level travels as the new [`Transport`] variant.
//!
//! [`Malformed`]: PufattError::Malformed
//! [`Timeout`]: PufattError::Timeout
//! [`ChannelLost`]: PufattError::ChannelLost
//! [`Transport`]: PufattError::Transport

use pufatt::PufattError;
use std::fmt;

/// Protocol-level error codes carried by `Response::Error` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The client's offered version range does not intersect the server's.
    VersionMismatch,
    /// The request frame decoded but violated the protocol (bad payload,
    /// request before the handshake, unknown tag).
    Malformed,
    /// The device id is not enrolled.
    UnknownDevice,
    /// The device is revoked; the session was refused.
    Refused,
    /// The device faulted (provisioning failure or trap); it cannot
    /// attest this campaign.
    DeviceFault,
    /// The `Attest` carried a ticket that does not match the open session.
    BadTicket,
    /// The connection exceeded its rate limit.
    RateLimited,
    /// The server is draining; no new sessions are admitted.
    Draining,
    /// The server hit an internal fault serving the request.
    Internal,
    /// The device's durable storage shard is sick (degraded or failed);
    /// the request was refused up front so no accepted-but-undurable
    /// verdict can exist. Retrying against another device, or after an
    /// operator reopens the shard, can succeed — the server itself is
    /// healthy (distinct from [`ErrorCode::Internal`]).
    StorageUnavailable,
}

impl ErrorCode {
    /// The wire byte for this code.
    pub fn to_byte(self) -> u8 {
        match self {
            ErrorCode::VersionMismatch => 0,
            ErrorCode::Malformed => 1,
            ErrorCode::UnknownDevice => 2,
            ErrorCode::Refused => 3,
            ErrorCode::DeviceFault => 4,
            ErrorCode::BadTicket => 5,
            ErrorCode::RateLimited => 6,
            ErrorCode::Draining => 7,
            ErrorCode::Internal => 8,
            ErrorCode::StorageUnavailable => 9,
        }
    }

    /// Parses a wire byte.
    ///
    /// # Errors
    ///
    /// [`TransportError::Malformed`] on an unknown code byte.
    pub fn from_byte(b: u8) -> Result<Self, TransportError> {
        Ok(match b {
            0 => ErrorCode::VersionMismatch,
            1 => ErrorCode::Malformed,
            2 => ErrorCode::UnknownDevice,
            3 => ErrorCode::Refused,
            4 => ErrorCode::DeviceFault,
            5 => ErrorCode::BadTicket,
            6 => ErrorCode::RateLimited,
            7 => ErrorCode::Draining,
            8 => ErrorCode::Internal,
            9 => ErrorCode::StorageUnavailable,
            other => return Err(TransportError::Malformed(format!("unknown error code byte {other}"))),
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::VersionMismatch => "version-mismatch",
            ErrorCode::Malformed => "malformed",
            ErrorCode::UnknownDevice => "unknown-device",
            ErrorCode::Refused => "refused",
            ErrorCode::DeviceFault => "device-fault",
            ErrorCode::BadTicket => "bad-ticket",
            ErrorCode::RateLimited => "rate-limited",
            ErrorCode::Draining => "draining",
            ErrorCode::Internal => "internal",
            ErrorCode::StorageUnavailable => "storage-unavailable",
        };
        f.write_str(name)
    }
}

/// Everything that can go wrong between two protocol endpoints.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportError {
    /// Frame-level damage: CRC mismatch, implausible length prefix, or a
    /// header torn mid-read. The connection cannot resynchronise past
    /// this — framing carries no sync marker — so the peer must close.
    Frame(String),
    /// A checksum-valid frame whose payload does not decode (unknown tag,
    /// truncated fields, trailing bytes, invalid UTF-8 in a detail).
    Malformed(String),
    /// Version negotiation failed: the peer offered `[lo, hi]` and no
    /// supported version falls inside it.
    VersionMismatch {
        /// Lowest version the peer offered.
        lo: u16,
        /// Highest version the peer offered.
        hi: u16,
    },
    /// A socket read or write exceeded its timeout.
    Timeout {
        /// The configured timeout in milliseconds.
        after_ms: u64,
    },
    /// The peer closed the connection (or the OS dropped it). The payload
    /// is the I/O layer's rendering — never response material.
    Closed(String),
    /// The server answered a request with a typed protocol error.
    Server {
        /// The error code.
        code: ErrorCode,
        /// Human-readable detail (public facts only).
        detail: String,
    },
    /// The peer broke the conversation's rules: a reply with an unknown
    /// correlation id, a response type that does not answer the request,
    /// a second `Hello`.
    Protocol(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Frame(m) => write!(f, "wire frame damaged: {m}"),
            TransportError::Malformed(m) => write!(f, "wire message malformed: {m}"),
            TransportError::VersionMismatch { lo, hi } => {
                write!(f, "no common protocol version: peer offered {lo}..={hi}")
            }
            TransportError::Timeout { after_ms } => write!(f, "socket timed out after {after_ms} ms"),
            TransportError::Closed(m) => write!(f, "connection closed: {m}"),
            TransportError::Server { code, detail } => write!(f, "server error [{code}]: {detail}"),
            TransportError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl TransportError {
    /// Wraps an I/O error, classifying timeouts and disconnects into
    /// their typed variants. `timeout_ms` is the configured socket
    /// timeout, reported in [`TransportError::Timeout`].
    pub fn from_io(e: &std::io::Error, timeout_ms: u64) -> Self {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::WouldBlock | ErrorKind::TimedOut => TransportError::Timeout { after_ms: timeout_ms },
            ErrorKind::UnexpectedEof
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe
            | ErrorKind::NotConnected => TransportError::Closed(e.kind().to_string()),
            kind => TransportError::Closed(format!("{kind}: {e}")),
        }
    }
}

impl From<TransportError> for PufattError {
    fn from(e: TransportError) -> Self {
        match e {
            TransportError::Frame(m) => PufattError::Malformed(format!("frame: {m}")),
            TransportError::Malformed(m) => PufattError::Malformed(m),
            TransportError::Timeout { after_ms } => PufattError::Timeout {
                elapsed_s: after_ms as f64 / 1e3,
                deadline_s: after_ms as f64 / 1e3,
            },
            TransportError::Closed(_) => PufattError::ChannelLost { attempts: 1 },
            other => PufattError::Transport(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn error_codes_roundtrip() {
        for code in [
            ErrorCode::VersionMismatch,
            ErrorCode::Malformed,
            ErrorCode::UnknownDevice,
            ErrorCode::Refused,
            ErrorCode::DeviceFault,
            ErrorCode::BadTicket,
            ErrorCode::RateLimited,
            ErrorCode::Draining,
            ErrorCode::Internal,
            ErrorCode::StorageUnavailable,
        ] {
            assert_eq!(ErrorCode::from_byte(code.to_byte()).unwrap(), code);
        }
        assert!(ErrorCode::from_byte(200).is_err());
    }

    #[test]
    fn io_errors_classify_into_the_taxonomy() {
        use std::io::{Error, ErrorKind};
        assert_eq!(
            TransportError::from_io(&Error::from(ErrorKind::WouldBlock), 250),
            TransportError::Timeout { after_ms: 250 }
        );
        assert!(matches!(
            TransportError::from_io(&Error::from(ErrorKind::BrokenPipe), 250),
            TransportError::Closed(_)
        ));
    }

    #[test]
    fn transport_errors_map_into_the_core_taxonomy() {
        assert!(matches!(PufattError::from(TransportError::Frame("crc".into())), PufattError::Malformed(_)));
        assert!(matches!(PufattError::from(TransportError::Timeout { after_ms: 100 }), PufattError::Timeout { .. }));
        assert!(matches!(
            PufattError::from(TransportError::Closed("reset".into())),
            PufattError::ChannelLost { attempts: 1 }
        ));
        assert!(matches!(
            PufattError::from(TransportError::VersionMismatch { lo: 2, hi: 3 }),
            PufattError::Transport(_)
        ));
    }
}
