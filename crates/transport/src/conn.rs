//! Socket plumbing shared by server, client, and shim: one [`Endpoint`]
//! type naming where to listen/connect, and [`Stream`]/[`Listener`]
//! enums erasing the TCP-vs-UDS difference for everything above.
//!
//! Unix-domain sockets are the production path (one box, no network
//! stack); loopback TCP exists for platforms without UDS and for driving
//! the server from tooling that only speaks TCP. Both are plain blocking
//! `std::net`/`std::os::unix::net` sockets with per-direction timeouts —
//! the server's concurrency comes from threads, not readiness polling.

use crate::error::TransportError;
use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};

/// Where a server listens or a client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// Loopback (or any) TCP address, e.g. `127.0.0.1:7411`.
    Tcp(String),
    /// Unix-domain socket path (unix targets only).
    Uds(std::path::PathBuf),
}

impl Endpoint {
    /// Parses `uds:<path>` / `tcp:<addr>` (an unprefixed value with a
    /// `/` is a UDS path, anything else a TCP address).
    pub fn parse(s: &str) -> Self {
        if let Some(path) = s.strip_prefix("uds:") {
            Endpoint::Uds(path.into())
        } else if let Some(addr) = s.strip_prefix("tcp:") {
            Endpoint::Tcp(addr.into())
        } else if s.contains('/') {
            Endpoint::Uds(s.into())
        } else {
            Endpoint::Tcp(s.into())
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Uds(path) => write!(f, "uds:{}", path.display()),
        }
    }
}

/// One accepted or dialed connection.
#[derive(Debug)]
pub enum Stream {
    /// A TCP stream.
    Tcp(TcpStream),
    /// A Unix-domain stream.
    #[cfg(unix)]
    Uds(UnixStream),
}

fn io_err(e: &std::io::Error) -> TransportError {
    TransportError::Closed(format!("{}: {e}", e.kind()))
}

impl Stream {
    /// Dials `endpoint`.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] when the endpoint refuses or the
    /// platform lacks the socket family.
    pub fn connect(endpoint: &Endpoint) -> Result<Self, TransportError> {
        match endpoint {
            Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(Stream::Tcp).map_err(|e| io_err(&e)),
            #[cfg(unix)]
            Endpoint::Uds(path) => UnixStream::connect(path).map(Stream::Uds).map_err(|e| io_err(&e)),
            #[cfg(not(unix))]
            Endpoint::Uds(_) => Err(TransportError::Closed("unix-domain sockets unavailable on this platform".into())),
        }
    }

    /// An independently readable/writable handle to the same socket.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] if the OS refuses the duplication.
    pub fn try_clone(&self) -> Result<Self, TransportError> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp).map_err(|e| io_err(&e)),
            #[cfg(unix)]
            Stream::Uds(s) => s.try_clone().map(Stream::Uds).map_err(|e| io_err(&e)),
        }
    }

    /// Sets the read timeout (`0` = block forever).
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] if the socket refuses the option.
    pub fn set_read_timeout_ms(&self, ms: u64) -> Result<(), TransportError> {
        let t = (ms > 0).then(|| Duration::from_millis(ms));
        match self {
            Stream::Tcp(s) => s.set_read_timeout(t).map_err(|e| io_err(&e)),
            #[cfg(unix)]
            Stream::Uds(s) => s.set_read_timeout(t).map_err(|e| io_err(&e)),
        }
    }

    /// Sets the write timeout (`0` = block forever).
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] if the socket refuses the option.
    pub fn set_write_timeout_ms(&self, ms: u64) -> Result<(), TransportError> {
        let t = (ms > 0).then(|| Duration::from_millis(ms));
        match self {
            Stream::Tcp(s) => s.set_write_timeout(t).map_err(|e| io_err(&e)),
            #[cfg(unix)]
            Stream::Uds(s) => s.set_write_timeout(t).map_err(|e| io_err(&e)),
        }
    }

    /// Tears the connection down in both directions; blocked reads on
    /// clones of this socket return immediately.
    pub fn shutdown(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Stream::Uds(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Uds(s) => s.flush(),
        }
    }
}

/// A bound listening socket.
#[derive(Debug)]
pub enum Listener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain listener.
    #[cfg(unix)]
    Uds(UnixListener),
}

impl Listener {
    /// Binds `endpoint`. A stale UDS socket file is removed first (the
    /// standard re-bind dance); TCP port `0` picks a free port — read the
    /// result of [`Listener::local_endpoint`] for the actual one.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] when the bind fails.
    pub fn bind(endpoint: &Endpoint) -> Result<Self, TransportError> {
        match endpoint {
            Endpoint::Tcp(addr) => TcpListener::bind(addr.as_str()).map(Listener::Tcp).map_err(|e| io_err(&e)),
            #[cfg(unix)]
            Endpoint::Uds(path) => {
                let _ = std::fs::remove_file(path);
                UnixListener::bind(path).map(Listener::Uds).map_err(|e| io_err(&e))
            }
            #[cfg(not(unix))]
            Endpoint::Uds(_) => Err(TransportError::Closed("unix-domain sockets unavailable on this platform".into())),
        }
    }

    /// Switches the accept loop between blocking and polling mode.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] if the socket refuses the option.
    pub fn set_nonblocking(&self, nonblocking: bool) -> Result<(), TransportError> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nonblocking).map_err(|e| io_err(&e)),
            #[cfg(unix)]
            Listener::Uds(l) => l.set_nonblocking(nonblocking).map_err(|e| io_err(&e)),
        }
    }

    /// Accepts one connection; `Ok(None)` when nonblocking and nothing is
    /// pending.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] on accept failures.
    pub fn accept(&self) -> Result<Option<Stream>, TransportError> {
        let result = match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            #[cfg(unix)]
            Listener::Uds(l) => l.accept().map(|(s, _)| Stream::Uds(s)),
        };
        match result {
            Ok(stream) => Ok(Some(stream)),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(None),
            Err(e) => Err(io_err(&e)),
        }
    }

    /// The endpoint actually bound (resolves TCP port `0`).
    pub fn local_endpoint(&self) -> Endpoint {
        match self {
            Listener::Tcp(l) => Endpoint::Tcp(l.local_addr().map_or_else(|_| "?".into(), |a| a.to_string())),
            #[cfg(unix)]
            Listener::Uds(l) => Endpoint::Uds(
                l.local_addr()
                    .ok()
                    .and_then(|a| a.as_pathname().map(std::path::Path::to_path_buf))
                    .unwrap_or_default(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn endpoint_parsing_covers_both_families() {
        assert_eq!(Endpoint::parse("tcp:127.0.0.1:7411"), Endpoint::Tcp("127.0.0.1:7411".into()));
        assert_eq!(Endpoint::parse("uds:/tmp/pufatt.sock"), Endpoint::Uds("/tmp/pufatt.sock".into()));
        assert_eq!(Endpoint::parse("/tmp/pufatt.sock"), Endpoint::Uds("/tmp/pufatt.sock".into()));
        assert_eq!(Endpoint::parse("127.0.0.1:0"), Endpoint::Tcp("127.0.0.1:0".into()));
        assert_eq!(Endpoint::parse("uds:/a").to_string(), "uds:/a");
        assert_eq!(Endpoint::parse("tcp:b:1").to_string(), "tcp:b:1");
    }

    #[test]
    fn tcp_listener_binds_accepts_and_streams() {
        let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let endpoint = listener.local_endpoint();
        let mut client = Stream::connect(&endpoint).unwrap();
        let mut server = listener.accept().unwrap().unwrap();
        client.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[cfg(unix)]
    #[test]
    fn uds_listener_binds_accepts_and_streams() {
        let dir = std::env::temp_dir().join(format!("pufatt-conn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.sock");
        let listener = Listener::bind(&Endpoint::Uds(path.clone())).unwrap();
        let mut client = Stream::connect(&Endpoint::Uds(path.clone())).unwrap();
        let mut server = listener.accept().unwrap().unwrap();
        client.write_all(b"uds!").unwrap();
        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"uds!");
        // Re-binding over the stale socket file must work.
        drop(listener);
        drop(server);
        let _rebound = Listener::bind(&Endpoint::Uds(path)).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn nonblocking_accept_returns_none_when_idle() {
        let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        listener.set_nonblocking(true).unwrap();
        assert!(listener.accept().unwrap().is_none());
    }
}
