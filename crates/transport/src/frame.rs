//! Wire framing: the WAL's `PUFATTW1` discipline pointed at a socket.
//!
//! ```text
//! frame := len:u32le  crc:u32le  payload    (len = payload length,
//!                                            crc = CRC-32/IEEE of payload)
//! ```
//!
//! The layout and checksum are exactly `pufatt_store::wal`'s — the one
//! framing discipline the repo already trusts against torn and bit-rotted
//! bytes — with two differences a live socket forces:
//!
//! * **Tighter length bound.** A WAL frame may hold a whole fleet
//!   snapshot; a protocol message is a few dozen bytes. [`MAX_FRAME_LEN`]
//!   is 4 KiB, so a hostile length prefix cannot make the server reserve
//!   a megabyte per connection.
//! * **No resynchronisation.** The WAL stops at the first bad frame and
//!   keeps the prefix; a socket has no "rest of the file" to keep. A CRC
//!   or length failure here poisons the connection — the peer closes it
//!   and (client-side) retries the session over a fresh one, which is the
//!   PR 3 retry machine's job, not the framing layer's.
//!
//! Reads are incremental and bounded: the header is read exactly, the
//! length is validated *before* any payload allocation, and a clean EOF
//! on a frame boundary is distinguished from one mid-frame (the former is
//! a polite close, the latter a torn frame).

use crate::error::TransportError;
use pufatt_store::wal::crc32;
use std::io::{Read, Write};

/// Upper bound on one frame's payload. Anything larger in a length
/// prefix is an attack or corruption, never a message.
pub const MAX_FRAME_LEN: u32 = 4096;

/// Bytes of the `len + crc` frame header.
pub const FRAME_HEADER: usize = 8;

/// Appends one framed payload to `out`.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_LEN`] — outbound messages are
/// built by this crate and statically small; a violation is a codec bug,
/// not a runtime condition.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    assert!(payload.len() <= MAX_FRAME_LEN as usize, "outbound frame exceeds MAX_FRAME_LEN");
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Decodes one frame at the front of `bytes` (for in-memory corpora and
/// tests; sockets use [`read_frame`]). Returns the payload and total
/// bytes consumed.
///
/// # Errors
///
/// [`TransportError::Frame`] on a short header, an implausible length, a
/// truncated payload, or a CRC mismatch.
pub fn decode_frame(bytes: &[u8]) -> Result<(&[u8], usize), TransportError> {
    if bytes.len() < FRAME_HEADER {
        return Err(TransportError::Frame(format!("header torn: {} of {FRAME_HEADER} bytes", bytes.len())));
    }
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    if len > MAX_FRAME_LEN {
        return Err(TransportError::Frame(format!("length prefix {len} exceeds {MAX_FRAME_LEN}")));
    }
    let crc = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    let end = FRAME_HEADER + len as usize;
    if bytes.len() < end {
        return Err(TransportError::Frame(format!("payload truncated: {} of {end} bytes", bytes.len())));
    }
    let payload = &bytes[FRAME_HEADER..end];
    if crc32(payload) != crc {
        return Err(TransportError::Frame("payload crc mismatch".into()));
    }
    Ok((payload, end))
}

/// Reads exactly `buf.len()` bytes, translating I/O failures into the
/// typed taxonomy. Returns `Ok(false)` on a clean EOF *before any byte*
/// when `eof_ok` — the peer closed on a frame boundary.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8], eof_ok: bool, timeout_ms: u64) -> Result<bool, TransportError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && eof_ok {
                    return Ok(false);
                }
                return Err(TransportError::Frame(format!("eof mid-frame: {filled} of {} bytes", buf.len())));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(TransportError::from_io(&e, timeout_ms)),
        }
    }
    Ok(true)
}

/// Reads one complete frame from a socket into `payload` (reused across
/// calls — no per-frame allocation once warm). Returns `Ok(false)` on a
/// clean close (EOF exactly on a frame boundary).
///
/// # Errors
///
/// [`TransportError::Frame`] on torn/oversized/corrupt frames,
/// [`TransportError::Timeout`] when the socket's read timeout expires,
/// [`TransportError::Closed`] when the peer vanishes mid-conversation.
pub fn read_frame(r: &mut impl Read, payload: &mut Vec<u8>, timeout_ms: u64) -> Result<bool, TransportError> {
    let mut header = [0u8; FRAME_HEADER];
    if !read_exact_or_eof(r, &mut header, true, timeout_ms)? {
        return Ok(false);
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    if len > MAX_FRAME_LEN {
        return Err(TransportError::Frame(format!("length prefix {len} exceeds {MAX_FRAME_LEN}")));
    }
    let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    payload.resize(len as usize, 0);
    read_exact_or_eof(r, payload, false, timeout_ms)?;
    if crc32(payload) != crc {
        return Err(TransportError::Frame("payload crc mismatch".into()));
    }
    Ok(true)
}

/// Frames `payload` and writes it whole to a socket.
///
/// # Errors
///
/// [`TransportError::Timeout`] or [`TransportError::Closed`] from the
/// underlying writes.
pub fn write_frame(w: &mut impl Write, payload: &[u8], timeout_ms: u64) -> Result<(), TransportError> {
    let mut framed = Vec::with_capacity(FRAME_HEADER + payload.len());
    encode_frame(payload, &mut framed);
    w.write_all(&framed).map_err(|e| TransportError::from_io(&e, timeout_ms))?;
    w.flush().map_err(|e| TransportError::from_io(&e, timeout_ms))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn roundtrip_through_a_byte_stream() {
        let mut wire = Vec::new();
        encode_frame(b"hello", &mut wire);
        encode_frame(b"", &mut wire);
        let (p1, n1) = decode_frame(&wire).unwrap();
        assert_eq!(p1, b"hello");
        let (p2, n2) = decode_frame(&wire[n1..]).unwrap();
        assert_eq!(p2, b"");
        assert_eq!(n1 + n2, wire.len());
    }

    #[test]
    fn read_frame_handles_clean_close_and_torn_frames() {
        let mut wire = Vec::new();
        encode_frame(b"msg", &mut wire);
        let mut cursor = std::io::Cursor::new(wire.clone());
        let mut payload = Vec::new();
        assert!(read_frame(&mut cursor, &mut payload, 0).unwrap());
        assert_eq!(payload, b"msg");
        assert!(!read_frame(&mut cursor, &mut payload, 0).unwrap(), "EOF on boundary is a clean close");
        // EOF inside a frame is torn, not clean.
        for cut in 1..wire.len() {
            let mut cursor = std::io::Cursor::new(wire[..cut].to_vec());
            assert!(matches!(read_frame(&mut cursor, &mut payload, 0), Err(TransportError::Frame(_))), "cut at {cut}");
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        let mut wire = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 4]);
        assert!(matches!(decode_frame(&wire), Err(TransportError::Frame(_))));
        let mut cursor = std::io::Cursor::new(wire);
        let mut payload = Vec::new();
        assert!(matches!(read_frame(&mut cursor, &mut payload, 0), Err(TransportError::Frame(_))));
    }

    #[test]
    fn bit_flips_anywhere_fail_the_crc() {
        let mut wire = Vec::new();
        encode_frame(b"attest", &mut wire);
        for pos in 0..wire.len() {
            let mut bad = wire.clone();
            bad[pos] ^= 0x40;
            // Either an invalid header or a CRC mismatch — never a payload.
            if let Ok((payload, _)) = decode_frame(&bad) {
                panic!("flip at {pos} forged payload {payload:?}");
            }
        }
    }
}
