//! Attestation as a service: the PUFatt fleet behind a socket.
//!
//! Everything below PR 5 runs the fleet *in process* — the verifier, the
//! simulated provers, the lifecycle registry, and the chaos channels all
//! share one address space. This crate puts a wire between the verifier
//! and its clients without changing a single verdict:
//!
//! * [`frame`] — length-prefixed, CRC-framed transport frames (the WAL's
//!   `PUFATTW1` discipline pointed at a socket, with a hostile-input
//!   length bound).
//! * [`message`] — the versioned protocol: magic + version negotiation,
//!   typed `Enroll` / `ChallengeRequest` / `Attest` / `Revoke` requests,
//!   verdict / `Busy` / error responses. Decoding arbitrary bytes is
//!   panic-free and never over-reads.
//! * [`conn`] — endpoints, streams, and listeners over unix-domain
//!   sockets (production) and loopback TCP (portability).
//! * [`server`] — the multi-threaded attestation server: per-connection
//!   framing threads, per-shard dispatch into bounded worker pools,
//!   token-bucket rate limiting, `Busy` backpressure, idle timeouts, and
//!   graceful drain with no lost in-flight sessions.
//! * [`client`] — a blocking protocol client with correlation-id
//!   matching and typed errors.
//! * [`loadgen`] — the load generator: tens of thousands of simulated
//!   devices multiplexed over a configurable number of connections,
//!   reporting sessions/sec and latency percentiles.
//! * [`shim`] — a lossy socket proxy (drops, jitter, mid-frame
//!   disconnects) for exercising the PR 3 retry machine over real
//!   sockets.
//! * [`error`] — the transport fault taxonomy and its mapping into
//!   [`pufatt::PufattError`].
//!
//! # Determinism contract
//!
//! The server serialises each device's heavy work onto a single dispatch
//! worker chosen by registry shard, and every session's randomness comes
//! from the device's own seeded stream — so a seeded load-generator
//! campaign over a real socket produces verdicts and final fleet state
//! **bit-identical** to the same campaign run in process. The e2e tests
//! pin exactly that.

pub mod client;
pub mod conn;
pub mod error;
pub mod frame;
pub mod loadgen;
pub mod message;
pub mod server;
pub mod shim;

pub use client::Client;
pub use conn::{Endpoint, Listener, Stream};
pub use error::{ErrorCode, TransportError};
pub use frame::{decode_frame, encode_frame, read_frame, write_frame, FRAME_HEADER, MAX_FRAME_LEN};
pub use loadgen::{run_loadgen, ConnectionLost, LoadgenConfig, LoadgenReport, LostPhase};
pub use message::{hello, negotiate, Request, Response, WireStats, WireStatus, PROTOCOL_MAGIC, PROTOCOL_VERSION};
pub use server::{Server, ServerConfig, ServerReport, TransportStats};
pub use shim::{LossyProxy, ProxyConfig};
