//! The attestation server: a multi-threaded socket front on
//! [`FleetService`].
//!
//! # Architecture
//!
//! ```text
//! acceptor thread ──┬─▶ handler thread (conn 1) ──┬─▶ inline: Hello,
//!                   ├─▶ handler thread (conn 2)   │   ChallengeRequest,
//!                   └─▶ …        (≤ max_conns)    │   Revoke, Stats
//!                                                 └─▶ dispatch: Enroll,
//!                                                     Attest
//!                                                        │ try_submit
//!                                                        ▼
//!                                  shard pools (1 worker each, bounded
//!                                  queue) ──▶ FleetService ──▶ reply via
//!                                  the connection's shared writer
//! ```
//!
//! * **Backpressure, not backlog.** Every queue is bounded: the acceptor
//!   sheds connections over `max_connections` with a `Busy` frame, the
//!   per-shard dispatch queues shed requests with `Busy` when full
//!   ([`WorkerPool::try_submit`]), and an optional per-connection token
//!   bucket sheds request floods the same way. Nothing grows with load.
//! * **Per-device order.** Device `id`'s heavy work always lands on pool
//!   `service.shard_of(id) % pools`, each pool has exactly one worker, so
//!   one device's enroll/attest jobs run in submission order even while
//!   distinct shards proceed in parallel — the property that makes a
//!   seeded campaign over sockets bit-identical to an in-process run.
//! * **Typed failure.** Idle/read timeouts, torn frames, and vanished
//!   peers surface as [`TransportError`] variants (mapped into the
//!   `faults` taxonomy), are counted in [`TransportStats`], and close
//!   only the one connection. A session opened but never attested when
//!   its connection dies is recorded through
//!   [`FleetService::abort_session`] — lost, rejected, and fed to the
//!   lifecycle, exactly like a session a chaos channel ate.
//! * **Graceful drain.** `Shutdown` (or [`Server::initiate_drain`]) stops
//!   the acceptor, refuses new enrolls/sessions with `Draining`, lets
//!   open tickets attest, force-closes stragglers after a grace period,
//!   then drains the dispatch pools so every queued job completes —
//!   [`Server::finish`] returns only after no in-flight session can be
//!   lost.

use crate::conn::{Endpoint, Listener, Stream};
use crate::error::{ErrorCode, TransportError};
use crate::frame::{read_frame, write_frame};
use crate::message::{negotiate, Request, Response, WireStats};
use pufatt::PufattError;
use pufatt_fleet::campaign::CampaignConfig;
use pufatt_fleet::pool::SubmitError;
use pufatt_fleet::registry::DeviceId;
use pufatt_fleet::service::{EnrollOutcome, ServiceVerdict, SessionGate};
use pufatt_fleet::sync::{lock, lock_ranked, rank};
use pufatt_fleet::{DeviceRecord, FleetService, FleetSnapshot, WorkerPool};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Socket-side tuning. [`ServerConfig::default`] suits tests and the CLI;
/// everything verdict-affecting lives in the fleet's `CampaignConfig`.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connections beyond this are shed at accept with a `Busy` frame.
    pub max_connections: usize,
    /// Per-connection read timeout in ms (idle clients are disconnected);
    /// `0` blocks forever.
    pub read_timeout_ms: u64,
    /// Per-connection write timeout in ms; `0` blocks forever.
    pub write_timeout_ms: u64,
    /// Token-bucket refill rate in requests/second per connection
    /// (`0.0` disables rate limiting).
    pub rate_limit_per_s: f64,
    /// Token-bucket burst capacity.
    pub rate_burst: u32,
    /// Dispatch pools (one single-worker pool per dispatch shard).
    pub dispatch_shards: usize,
    /// Pending jobs each dispatch pool queues before shedding `Busy`.
    pub queue_depth: usize,
    /// Backoff hint carried in `Busy` replies, in ms.
    pub busy_retry_ms: u32,
    /// How long [`Server::finish`] waits for connections to close before
    /// force-shutting their sockets.
    pub drain_grace_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 256,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            rate_limit_per_s: 0.0,
            rate_burst: 64,
            dispatch_shards: std::thread::available_parallelism().map_or(4, usize::from),
            queue_depth: 64,
            busy_retry_ms: 10,
            drain_grace_ms: 5_000,
        }
    }
}

/// Socket-side counters (the fleet's own metrics live in the snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Connections accepted and served.
    pub connections_served: u64,
    /// Connections shed at accept (over `max_connections`).
    pub connections_shed: u64,
    /// Requests decoded and handled.
    pub requests: u64,
    /// `Busy` replies from full dispatch queues.
    pub busy_queue: u64,
    /// `Busy` replies from the per-connection rate limiter.
    pub busy_rate: u64,
    /// Frames that decoded but whose payload was malformed.
    pub malformed: u64,
    /// Connections dropped on frame-level damage.
    pub frame_errors: u64,
    /// Connections dropped on idle/read timeout.
    pub idle_timeouts: u64,
    /// Connections dropped by the peer mid-conversation.
    pub peer_drops: u64,
    /// Open sessions aborted because their connection died.
    pub sessions_aborted: u64,
    /// Reply writes that failed (peer gone before its answer).
    pub write_errors: u64,
}

#[derive(Debug, Default)]
struct Counters {
    connections_served: AtomicU64,
    connections_shed: AtomicU64,
    requests: AtomicU64,
    busy_queue: AtomicU64,
    busy_rate: AtomicU64,
    malformed: AtomicU64,
    frame_errors: AtomicU64,
    idle_timeouts: AtomicU64,
    peer_drops: AtomicU64,
    sessions_aborted: AtomicU64,
    write_errors: AtomicU64,
}

impl Counters {
    fn bump(field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }

    fn stats(&self) -> TransportStats {
        TransportStats {
            connections_served: self.connections_served.load(Ordering::Relaxed),
            connections_shed: self.connections_shed.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            busy_queue: self.busy_queue.load(Ordering::Relaxed),
            busy_rate: self.busy_rate.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            frame_errors: self.frame_errors.load(Ordering::Relaxed),
            idle_timeouts: self.idle_timeouts.load(Ordering::Relaxed),
            peer_drops: self.peer_drops.load(Ordering::Relaxed),
            sessions_aborted: self.sessions_aborted.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
        }
    }
}

/// The final word of a served campaign: the same snapshot/device-record
/// pair `run_campaign` reports, plus the socket-side counters.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Final fleet counters (exact — taken after full drain).
    pub snapshot: FleetSnapshot,
    /// Per-device end states, ascending by id (the determinism witness).
    pub device_records: Vec<DeviceRecord>,
    /// Socket-side counters.
    pub transport: TransportStats,
    /// Dispatch jobs that panicked (0 in a healthy run).
    pub panicked_jobs: u64,
}

/// A reply writer shared between the handler thread and dispatched jobs.
struct ConnWriter {
    stream: Mutex<Stream>,
    write_timeout_ms: u64,
    counters: Arc<Counters>,
}

impl ConnWriter {
    fn send(&self, corr: u32, response: &Response) {
        let mut payload = Vec::new();
        response.encode(corr, &mut payload);
        // The writer lock must cover the whole frame write: interleaved
        // frames from the handler and a pool job would corrupt the wire
        // stream. `conn_writer` is the highest-ranked transport class, so
        // nothing is ever acquired under it.
        let mut stream = lock_ranked(&self.stream, rank::CONN_WRITER);
        // analyze: allow(conc: serialises whole frames; leaf lock by rank)
        if write_frame(&mut *stream, &payload, self.write_timeout_ms).is_err() {
            Counters::bump(&self.counters.write_errors);
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum TicketState {
    /// Granted, waiting for its `Attest`.
    Open,
    /// Its `Attest` is queued or running on a dispatch pool.
    Dispatched,
}

type TicketTable = Mutex<HashMap<DeviceId, (u64, TicketState)>>;

struct Shared {
    service: Arc<FleetService>,
    cfg: ServerConfig,
    pools: Vec<WorkerPool>,
    counters: Arc<Counters>,
    draining: AtomicBool,
    /// Live connections: id → shutdown handle (for forced drain).
    conns: Mutex<HashMap<u64, Stream>>,
    conn_exited: Condvar,
    handler_handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn pool_for(&self, id: DeviceId) -> &WorkerPool {
        &self.pools[self.service.shard_of(id) % self.pools.len()]
    }
}

/// A simple token bucket: `rate` tokens/second, up to `burst` banked.
struct TokenBucket {
    tokens: f64,
    last: Instant,
    rate: f64,
    burst: f64,
}

impl TokenBucket {
    fn new(rate: f64, burst: u32) -> Self {
        TokenBucket {
            tokens: f64::from(burst.max(1)),
            last: Instant::now(),
            rate,
            burst: f64::from(burst.max(1)),
        }
    }

    /// Takes one token, or reports how many ms until one is available.
    fn admit(&mut self) -> Result<(), u32> {
        if self.rate <= 0.0 {
            return Ok(());
        }
        let now = Instant::now();
        self.tokens = (self.tokens + now.duration_since(self.last).as_secs_f64() * self.rate).min(self.burst);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            Err((((1.0 - self.tokens) / self.rate) * 1e3).ceil().max(1.0) as u32)
        }
    }
}

/// A running attestation server. Construct with [`Server::start`], stop
/// with [`Server::finish`].
pub struct Server {
    endpoint: Endpoint,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `endpoint` and starts serving the fleet `campaign` describes
    /// under the socket policy `cfg`.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] when the bind fails, or a wrapped
    /// [`PufattError`] rendering when the campaign configuration is
    /// invalid.
    pub fn start(endpoint: &Endpoint, campaign: CampaignConfig, cfg: ServerConfig) -> Result<Self, TransportError> {
        let service = Arc::new(
            FleetService::new(campaign)
                .map_err(|e| TransportError::Protocol(format!("invalid campaign config: {e}")))?,
        );
        Self::start_with_service(endpoint, service, cfg)
    }

    /// [`Server::start`] around an already-built service — the journaled
    /// entry point: construct the service with
    /// [`FleetService::with_journal`] (restoring any prior state from its
    /// store) and serve it. Wire `Enroll` requests then admit devices
    /// online, durably, while the server runs.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] when the bind fails.
    pub fn start_with_service(
        endpoint: &Endpoint,
        service: Arc<FleetService>,
        cfg: ServerConfig,
    ) -> Result<Self, TransportError> {
        let listener = Listener::bind(endpoint)?;
        listener.set_nonblocking(true)?;
        let endpoint = listener.local_endpoint();
        let pools = (0..cfg.dispatch_shards.max(1))
            .map(|_| WorkerPool::new(1, cfg.queue_depth.max(1)))
            .collect();
        let shared = Arc::new(Shared {
            service,
            cfg,
            pools,
            counters: Arc::new(Counters::default()),
            draining: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            conn_exited: Condvar::new(),
            handler_handles: Mutex::new(Vec::new()),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("pufatt-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared))
                .map_err(|e| TransportError::Closed(format!("spawn acceptor: {e}")))?
        };
        Ok(Server { endpoint, shared, acceptor: Some(acceptor) })
    }

    /// The endpoint actually bound (resolves TCP port `0`).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The fleet service behind the sockets (for in-process inspection).
    pub fn service(&self) -> &Arc<FleetService> {
        &self.shared.service
    }

    /// Socket-side counters so far.
    pub fn transport_stats(&self) -> TransportStats {
        self.shared.counters.stats()
    }

    /// Starts the drain: stop accepting, refuse new sessions, let open
    /// tickets finish. Idempotent; also triggered by a wire `Shutdown`.
    pub fn initiate_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Whether a drain is under way.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Drains and shuts down: waits up to `drain_grace_ms` for
    /// connections to close on their own, force-closes the rest, joins
    /// every thread, completes every queued dispatch job, and returns the
    /// final report. No in-flight session is lost: a job that was queued
    /// runs to its verdict, a ticket that was open when its connection
    /// died is recorded as an aborted (lost) session.
    pub fn finish(mut self) -> ServerReport {
        self.initiate_drain();
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // Phase 1: let connections finish politely.
        let deadline = Instant::now() + Duration::from_millis(self.shared.cfg.drain_grace_ms);
        {
            // Plain `lock` (not `lock_ranked`): `Condvar::wait_timeout`
            // consumes a std `MutexGuard`, which `RankGuard` cannot hand
            // over. Nothing else is acquired in this region.
            let mut conns = lock(&self.shared.conns);
            while !conns.is_empty() {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = self
                    .shared
                    .conn_exited
                    .wait_timeout(conns, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                conns = guard;
            }
            // Phase 2: force-close stragglers; their handlers wake with a
            // typed error, abort open tickets, and exit.
            for stream in conns.values() {
                stream.shutdown();
            }
        }
        // Take the handles out first, then join with no lock held: a
        // handler that races `finish` can still register or remove itself
        // without deadlocking against this join loop.
        let mut guard = lock_ranked(&self.shared.handler_handles, rank::HANDLER_HANDLES);
        let handles: Vec<_> = guard.drain(..).collect();
        drop(guard);
        for handle in handles {
            let _ = handle.join();
        }
        // All handlers are gone; nothing can submit. Drain the pools so
        // every queued enroll/attest completes before the report.
        let shared = match Arc::try_unwrap(self.shared) {
            Ok(shared) => shared,
            Err(arc) => {
                // Unreachable in practice (all thread-held clones were
                // joined above); degrade to a drop-drain rather than
                // panicking in shutdown.
                let report = ServerReport {
                    snapshot: arc.service.snapshot(),
                    device_records: arc.service.device_records(),
                    transport: arc.counters.stats(),
                    panicked_jobs: 0,
                };
                return report;
            }
        };
        let panicked_jobs: u64 = shared.pools.into_iter().map(WorkerPool::shutdown).sum();
        ServerReport {
            snapshot: shared.service.snapshot(),
            device_records: shared.service.device_records(),
            transport: shared.counters.stats(),
            panicked_jobs,
        }
    }
}

fn accept_loop(listener: &Listener, shared: &Arc<Shared>) {
    let mut next_conn_id = 0u64;
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(Some(stream)) => {
                next_conn_id += 1;
                admit_connection(shared, stream, next_conn_id);
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(2)),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn admit_connection(shared: &Arc<Shared>, stream: Stream, conn_id: u64) {
    let counters = &shared.counters;
    let at_capacity = lock_ranked(&shared.conns, rank::SERVER_CONNS).len() >= shared.cfg.max_connections;
    if at_capacity {
        // Shed with a Busy frame instead of queueing unboundedly.
        Counters::bump(&counters.connections_shed);
        let _ = stream.set_write_timeout_ms(shared.cfg.write_timeout_ms.max(100));
        let mut payload = Vec::new();
        Response::Busy { retry_after_ms: shared.cfg.busy_retry_ms }.encode(0, &mut payload);
        let mut stream = stream;
        let _ = write_frame(&mut stream, &payload, shared.cfg.write_timeout_ms.max(100));
        return;
    }
    let Ok(shutdown_handle) = stream.try_clone() else {
        return;
    };
    lock_ranked(&shared.conns, rank::SERVER_CONNS).insert(conn_id, shutdown_handle);
    Counters::bump(&counters.connections_served);
    let thread_shared = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name(format!("pufatt-conn-{conn_id}"))
        .spawn(move || {
            handle_connection(&thread_shared, stream, conn_id);
            lock_ranked(&thread_shared.conns, rank::SERVER_CONNS).remove(&conn_id);
            thread_shared.conn_exited.notify_all();
        });
    match spawned {
        Ok(handle) => lock_ranked(&shared.handler_handles, rank::HANDLER_HANDLES).push(handle),
        Err(_) => {
            lock_ranked(&shared.conns, rank::SERVER_CONNS).remove(&conn_id);
        }
    }
}

/// Classifies a connection-ending transport error into the counters.
fn count_connection_end(counters: &Counters, err: &TransportError) {
    match err {
        TransportError::Frame(_) | TransportError::Malformed(_) => Counters::bump(&counters.frame_errors),
        TransportError::Timeout { .. } => Counters::bump(&counters.idle_timeouts),
        _ => Counters::bump(&counters.peer_drops),
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: Stream, _conn_id: u64) {
    let cfg = &shared.cfg;
    let counters = &shared.counters;
    let _ = stream.set_read_timeout_ms(cfg.read_timeout_ms);
    let _ = stream.set_write_timeout_ms(cfg.write_timeout_ms);
    let writer = match stream.try_clone() {
        Ok(clone) => Arc::new(ConnWriter {
            stream: Mutex::new(clone),
            write_timeout_ms: cfg.write_timeout_ms,
            counters: Arc::clone(counters),
        }),
        Err(_) => return,
    };
    let tickets: Arc<TicketTable> = Arc::new(Mutex::new(HashMap::new()));
    let mut reader = stream;
    let mut payload = Vec::new();

    // --- Handshake: the first frame must be a valid Hello. -------------
    match read_frame(&mut reader, &mut payload, cfg.read_timeout_ms) {
        Ok(true) => {}
        Ok(false) => return,
        Err(e) => {
            count_connection_end(counters, &e);
            return;
        }
    }
    match Request::decode(&payload) {
        Ok((corr, Request::Hello { magic, min_version, max_version })) => {
            match negotiate(magic, min_version, max_version) {
                Ok(version) => writer.send(corr, &Response::HelloAck { version }),
                Err(e) => {
                    let code = match e {
                        TransportError::VersionMismatch { .. } => ErrorCode::VersionMismatch,
                        _ => ErrorCode::Malformed,
                    };
                    writer.send(corr, &Response::Error { code, detail: e.to_string() });
                    Counters::bump(&counters.malformed);
                    return;
                }
            }
        }
        Ok((corr, _)) => {
            writer.send(
                corr,
                &Response::Error {
                    code: ErrorCode::Malformed,
                    detail: "expected Hello before any request".into(),
                },
            );
            Counters::bump(&counters.malformed);
            return;
        }
        Err(_) => {
            Counters::bump(&counters.malformed);
            return;
        }
    }

    // --- Steady state. --------------------------------------------------
    let mut bucket = TokenBucket::new(cfg.rate_limit_per_s, cfg.rate_burst);
    let exit_err = loop {
        match read_frame(&mut reader, &mut payload, cfg.read_timeout_ms) {
            Ok(true) => {}
            Ok(false) => break None, // clean close
            Err(e) => break Some(e),
        }
        let (corr, request) = match Request::decode(&payload) {
            Ok(decoded) => decoded,
            Err(e) => {
                // The frame was checksum-valid, so framing is still in
                // sync: answer the error and keep the connection.
                Counters::bump(&counters.malformed);
                writer.send(0, &Response::Error { code: ErrorCode::Malformed, detail: e.to_string() });
                continue;
            }
        };
        Counters::bump(&counters.requests);
        if let Err(wait_ms) = bucket.admit() {
            Counters::bump(&counters.busy_rate);
            writer.send(corr, &Response::Busy { retry_after_ms: wait_ms.max(cfg.busy_retry_ms) });
            continue;
        }
        handle_request(shared, &writer, &tickets, corr, request);
        if shared.draining.load(Ordering::SeqCst) && lock_ranked(&tickets, rank::TICKET_TABLE).is_empty() {
            break None; // nothing left in flight on this connection
        }
    };
    if let Some(e) = &exit_err {
        count_connection_end(counters, e);
    }
    // Any ticket still Open was a session the transport lost: record it
    // (lost + rejected + lifecycle) exactly like a chaos-eaten session.
    // Dispatched tickets stay — their queued jobs run to a real verdict.
    let open: Vec<DeviceId> = lock_ranked(&tickets, rank::TICKET_TABLE)
        .iter()
        .filter(|(_, (_, state))| *state == TicketState::Open)
        .map(|(&id, _)| id)
        .collect();
    for id in open {
        lock_ranked(&tickets, rank::TICKET_TABLE).remove(&id);
        Counters::bump(&counters.sessions_aborted);
        shared.service.abort_session(id);
    }
}

fn handle_request(
    shared: &Arc<Shared>,
    writer: &Arc<ConnWriter>,
    tickets: &Arc<TicketTable>,
    corr: u32,
    request: Request,
) {
    let service = &shared.service;
    let counters = &shared.counters;
    let draining = shared.draining.load(Ordering::SeqCst);
    match request {
        Request::Hello { .. } => {
            Counters::bump(&counters.malformed);
            writer.send(corr, &Response::Error { code: ErrorCode::Malformed, detail: "duplicate Hello".into() });
        }
        Request::Enroll { device } => {
            if draining {
                writer.send(corr, &Response::Error { code: ErrorCode::Draining, detail: "server draining".into() });
                return;
            }
            let service = Arc::clone(service);
            let writer_job = Arc::clone(writer);
            let job = move || {
                let response = match service.enroll(device) {
                    Ok(EnrollOutcome { fresh, status }) => Response::EnrollOk { device, fresh, status: status.into() },
                    Err(e) => Response::Error {
                        code: storage_aware_code(&e, ErrorCode::DeviceFault),
                        detail: error_detail(&e),
                    },
                };
                writer_job.send(corr, &response);
            };
            if shared.pool_for(device).try_submit(job) == Err(SubmitError::QueueFull) {
                Counters::bump(&counters.busy_queue);
                writer.send(corr, &Response::Busy { retry_after_ms: shared.cfg.busy_retry_ms });
            }
        }
        Request::ChallengeRequest { device } => {
            if draining {
                writer.send(corr, &Response::Error { code: ErrorCode::Draining, detail: "server draining".into() });
                return;
            }
            match service.open_session(device) {
                SessionGate::Granted { ticket } => {
                    // A forgotten earlier ticket is replaced; it carried
                    // no metrics, so dropping it silently is neutral.
                    lock_ranked(tickets, rank::TICKET_TABLE).insert(device, (ticket, TicketState::Open));
                    writer.send(corr, &Response::Challenge { device, ticket });
                }
                SessionGate::Refused => writer.send(
                    corr,
                    &Response::Error {
                        code: ErrorCode::Refused,
                        detail: format!("device {device} is revoked"),
                    },
                ),
                SessionGate::Faulty => writer.send(
                    corr,
                    &Response::Error {
                        code: ErrorCode::DeviceFault,
                        detail: format!("device {device} faulted"),
                    },
                ),
                SessionGate::Unknown => writer.send(
                    corr,
                    &Response::Error {
                        code: ErrorCode::UnknownDevice,
                        detail: format!("device {device} not enrolled"),
                    },
                ),
                SessionGate::Unavailable => writer.send(
                    corr,
                    &Response::Error {
                        code: ErrorCode::StorageUnavailable,
                        detail: format!("device {device}'s storage shard is unavailable"),
                    },
                ),
            }
        }
        Request::Attest { device, ticket } => {
            {
                let mut table = lock_ranked(tickets, rank::TICKET_TABLE);
                match table.get(&device) {
                    Some(&(granted, TicketState::Open)) if granted == ticket => {
                        table.insert(device, (ticket, TicketState::Dispatched));
                    }
                    Some(&(_, TicketState::Dispatched)) => {
                        drop(table);
                        writer.send(
                            corr,
                            &Response::Error {
                                code: ErrorCode::BadTicket,
                                detail: format!("device {device} already attesting"),
                            },
                        );
                        return;
                    }
                    _ => {
                        drop(table);
                        writer.send(
                            corr,
                            &Response::Error {
                                code: ErrorCode::BadTicket,
                                detail: format!("no open session for device {device} and that ticket"),
                            },
                        );
                        return;
                    }
                }
            }
            let service = Arc::clone(service);
            let writer_job = Arc::clone(writer);
            let tickets_job = Arc::clone(tickets);
            let job = move || {
                let response = match service.attest(device) {
                    ServiceVerdict::Closed { outcome, status } => Response::Verdict {
                        device,
                        accepted: outcome.accepted,
                        response_ok: outcome.response_ok,
                        time_ok: outcome.time_ok,
                        timed_out: outcome.timed_out,
                        attempts: outcome.attempts,
                        elapsed_bits: outcome.elapsed_s.to_bits(),
                        status: status.into(),
                    },
                    ServiceVerdict::Refused => Response::Error {
                        code: ErrorCode::Refused,
                        detail: format!("device {device} is revoked"),
                    },
                    ServiceVerdict::Fault => Response::Error {
                        code: ErrorCode::DeviceFault,
                        detail: format!("device {device} faulted"),
                    },
                    ServiceVerdict::Unknown => Response::Error {
                        code: ErrorCode::UnknownDevice,
                        detail: format!("device {device} not enrolled"),
                    },
                    ServiceVerdict::Unavailable => Response::Error {
                        code: ErrorCode::StorageUnavailable,
                        detail: format!("device {device}'s storage shard is unavailable"),
                    },
                };
                lock_ranked(&tickets_job, rank::TICKET_TABLE).remove(&device);
                writer_job.send(corr, &response);
            };
            if shared.pool_for(device).try_submit(job) == Err(SubmitError::QueueFull) {
                // Reopen the ticket so the client can retry the Attest.
                lock_ranked(tickets, rank::TICKET_TABLE).insert(device, (ticket, TicketState::Open));
                Counters::bump(&counters.busy_queue);
                writer.send(corr, &Response::Busy { retry_after_ms: shared.cfg.busy_retry_ms });
            }
        }
        Request::Revoke { device } => match service.revoke(device) {
            Ok(Some(status)) => writer.send(corr, &Response::RevokeOk { device, status: status.into() }),
            Ok(None) => writer.send(
                corr,
                &Response::Error {
                    code: ErrorCode::UnknownDevice,
                    detail: format!("device {device} not enrolled"),
                },
            ),
            // The journal refused the synced append: the revocation did
            // NOT take (the registry is untouched), and the client must
            // hear that rather than a cheerful RevokeOk.
            Err(e) => writer.send(
                corr,
                &Response::Error {
                    code: storage_aware_code(&e, ErrorCode::DeviceFault),
                    detail: error_detail(&e),
                },
            ),
        },
        Request::Stats => {
            let snap = service.snapshot();
            let store = service.store_stats();
            writer.send(
                corr,
                &Response::StatsReply(WireStats {
                    started: snap.sessions_started,
                    accepted: snap.sessions_accepted,
                    rejected: snap.sessions_rejected,
                    timed_out: snap.sessions_timed_out,
                    refused: snap.sessions_refused,
                    lost: snap.sessions_lost,
                    faults: snap.device_faults,
                    active: snap.devices.active as u64,
                    quarantined: snap.devices.quarantined as u64,
                    revoked: snap.devices.revoked as u64,
                    crp_hits: snap.crp_hits,
                    crp_misses: snap.crp_misses,
                    unavailable: snap.sessions_unavailable,
                    shards_total: store.as_ref().map_or(0, |s| u64::from(s.shards_total)),
                    shards_degraded: store.as_ref().map_or(0, |s| u64::from(s.shards_degraded)),
                    shards_failed: store.as_ref().map_or(0, |s| u64::from(s.shards_failed)),
                }),
            );
        }
        Request::Shutdown => {
            // Raise the flag before the ack travels: a client that saw the
            // ack must observe the server as draining.
            shared.draining.store(true, Ordering::SeqCst);
            writer.send(corr, &Response::ShutdownAck);
        }
    }
}

/// Renders a service error for the wire — the Display impls carry public
/// facts only (ids, widths, timings), never response material; the taint
/// lint over this crate enforces that no secret identifier reaches a
/// format macro.
fn error_detail(e: &PufattError) -> String {
    e.to_string()
}

/// Picks the wire code for a service error: a typed per-shard storage
/// refusal travels as its own stable code (the client can distinguish
/// "this shard is sick, others work" from a device-level fault);
/// everything else keeps the request's default code.
fn storage_aware_code(e: &PufattError, default: ErrorCode) -> ErrorCode {
    match e {
        PufattError::StorageUnavailable { .. } => ErrorCode::StorageUnavailable,
        _ => default,
    }
}
