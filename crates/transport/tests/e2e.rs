//! End-to-end server tests: the wire must not change a single verdict.
//!
//! The headline assertion (ISSUE 6 acceptance): a seeded load-generator
//! campaign over a real unix-domain socket produces device records and a
//! fleet snapshot **bit-identical** to `run_campaign` executing the same
//! configuration entirely in process.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pufatt_fleet::campaign::{run_campaign, small_test_config};
use pufatt_transport::client::Client;
use pufatt_transport::error::{ErrorCode, TransportError};
use pufatt_transport::loadgen::{run_loadgen, LoadgenConfig};
use pufatt_transport::message::{Request, Response, PROTOCOL_MAGIC};
use pufatt_transport::server::{Server, ServerConfig};
use pufatt_transport::Endpoint;

fn uds_endpoint(tag: &str) -> Endpoint {
    let dir = std::env::temp_dir().join(format!("pufatt-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    Endpoint::Uds(dir.join(format!("{tag}.sock")))
}

fn identity_server_config() -> ServerConfig {
    ServerConfig {
        rate_limit_per_s: 0.0, // backpressure off: identity runs must not shed
        queue_depth: 256,
        ..ServerConfig::default()
    }
}

fn assert_served_matches_in_process(endpoint: &Endpoint, devices: usize, seed: u64) {
    let cfg = small_test_config(devices, 3, seed);
    let in_process = run_campaign(&cfg).expect("in-process campaign runs");

    let server = Server::start(endpoint, cfg.clone(), identity_server_config()).expect("server starts");
    let report = run_loadgen(&LoadgenConfig {
        endpoint: server.endpoint().clone(),
        devices: devices as u32,
        sessions_per_device: cfg.sessions_per_device as u32,
        connections: 3,
        window: 8,
        ..LoadgenConfig::default()
    })
    .expect("loadgen runs");
    let served = server.finish();

    assert_eq!(report.devices_errored, 0, "no device may be stranded: {report:?}");
    assert_eq!(report.devices_completed, devices as u64);
    assert_eq!(served.panicked_jobs, 0);
    assert_eq!(served.transport.sessions_aborted, 0, "clean campaign aborts nothing");
    assert_eq!(
        served.device_records, in_process.device_records,
        "wire verdicts must be bit-identical to in-process"
    );
    assert_eq!(served.snapshot, in_process.snapshot, "fleet counters must match exactly");
    // The client-side tallies agree with the server's books.
    assert_eq!(
        report.sessions_completed + report.sessions_refused,
        served.snapshot.sessions_started + served.snapshot.sessions_refused
    );
    assert_eq!(report.sessions_accepted, served.snapshot.sessions_accepted);
}

#[cfg(unix)]
#[test]
fn uds_loadgen_campaign_is_bit_identical_to_in_process() {
    assert_served_matches_in_process(&uds_endpoint("identity"), 24, 0xC0FFEE);
}

#[test]
fn tcp_loadgen_campaign_is_bit_identical_to_in_process() {
    assert_served_matches_in_process(&Endpoint::Tcp("127.0.0.1:0".into()), 12, 0xBEEF);
}

#[test]
fn drain_completes_inflight_sessions_and_refuses_new_work() {
    let cfg = small_test_config(4, 2, 11);
    let server =
        Server::start(&Endpoint::Tcp("127.0.0.1:0".into()), cfg, identity_server_config()).expect("server starts");
    let mut client = Client::connect(server.endpoint(), 10_000, 10_000).expect("client connects");

    assert!(matches!(client.call(&Request::Enroll { device: 0 }).unwrap(), Response::EnrollOk { device: 0, .. }));
    let ticket = match client.call(&Request::ChallengeRequest { device: 0 }).unwrap() {
        Response::Challenge { ticket, .. } => ticket,
        other => panic!("expected a challenge, got {other:?}"),
    };

    // Shutdown arrives while device 0's session is still open.
    assert!(matches!(client.call(&Request::Shutdown).unwrap(), Response::ShutdownAck));
    assert!(server.is_draining());

    // New work is refused during the drain…
    match client.call(&Request::Enroll { device: 1 }).unwrap() {
        Response::Error { code: ErrorCode::Draining, .. } => {}
        other => panic!("expected Draining, got {other:?}"),
    }
    match client.call(&Request::ChallengeRequest { device: 0 }).unwrap() {
        Response::Error { code: ErrorCode::Draining, .. } => {}
        other => panic!("expected Draining, got {other:?}"),
    }
    // …but the open ticket still runs to a verdict.
    match client.call(&Request::Attest { device: 0, ticket }).unwrap() {
        Response::Verdict { device: 0, .. } => {}
        other => panic!("expected a verdict, got {other:?}"),
    }
    drop(client);

    let report = server.finish();
    assert_eq!(report.panicked_jobs, 0);
    assert_eq!(report.snapshot.sessions_lost, 0, "drain must not lose the in-flight session");
    assert_eq!(report.snapshot.sessions_started, 1);
    assert_eq!(
        report.snapshot.sessions_accepted + report.snapshot.sessions_rejected + report.snapshot.sessions_timed_out,
        1,
        "the open session reached a verdict: {:?}",
        report.snapshot
    );
}

#[test]
fn dying_connection_aborts_its_open_session_into_the_lifecycle() {
    let cfg = small_test_config(2, 1, 5);
    let server =
        Server::start(&Endpoint::Tcp("127.0.0.1:0".into()), cfg, identity_server_config()).expect("server starts");

    // Two dropped connections, each leaving device 0's session open: the
    // lifecycle counts both as lost and the hysteresis quarantines.
    for _ in 0..2 {
        let mut client = Client::connect(server.endpoint(), 10_000, 10_000).expect("client connects");
        let _ = client.call(&Request::Enroll { device: 0 }).unwrap();
        match client.call(&Request::ChallengeRequest { device: 0 }).unwrap() {
            Response::Challenge { .. } => {}
            other => panic!("expected a challenge, got {other:?}"),
        }
        drop(client); // vanish without attesting
    }

    // The abort happens on the server's handler thread after it sees the
    // close; poll the metrics briefly instead of sleeping blind.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while server.transport_stats().sessions_aborted < 2 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let report = server.finish();
    assert_eq!(report.transport.sessions_aborted, 2);
    assert_eq!(report.snapshot.sessions_lost, 2, "a torn session is a lost session");
    let record = &report.device_records[0];
    assert_eq!(record.id, 0);
    assert_eq!(record.status, pufatt_fleet::FleetStatus::Quarantined, "hysteresis fires on repeated loss");
}

#[test]
fn protocol_violations_get_typed_errors() {
    let cfg = small_test_config(2, 1, 9);
    let server =
        Server::start(&Endpoint::Tcp("127.0.0.1:0".into()), cfg, identity_server_config()).expect("server starts");
    let mut client = Client::connect(server.endpoint(), 10_000, 10_000).expect("client connects");

    // Unknown device.
    match client.call(&Request::ChallengeRequest { device: 1 }).unwrap() {
        Response::Error { code: ErrorCode::UnknownDevice, .. } => {}
        other => panic!("expected UnknownDevice, got {other:?}"),
    }
    // Attest without an open session.
    let _ = client.call(&Request::Enroll { device: 0 }).unwrap();
    match client.call(&Request::Attest { device: 0, ticket: 42 }).unwrap() {
        Response::Error { code: ErrorCode::BadTicket, .. } => {}
        other => panic!("expected BadTicket, got {other:?}"),
    }
    // A second Hello mid-conversation.
    match client.call(&pufatt_transport::hello()).unwrap() {
        Response::Error { code: ErrorCode::Malformed, .. } => {}
        other => panic!("expected Malformed, got {other:?}"),
    }
    // Revoke, then the session gate refuses.
    match client.call(&Request::Revoke { device: 0 }).unwrap() {
        Response::RevokeOk { device: 0, .. } => {}
        other => panic!("expected RevokeOk, got {other:?}"),
    }
    match client.call(&Request::ChallengeRequest { device: 0 }).unwrap() {
        Response::Error { code: ErrorCode::Refused, .. } => {}
        other => panic!("expected Refused, got {other:?}"),
    }
    // Stats reflect what happened.
    match client.call(&Request::Stats).unwrap() {
        Response::StatsReply(stats) => {
            assert_eq!(stats.refused, 1);
            assert_eq!(stats.revoked, 1);
        }
        other => panic!("expected StatsReply, got {other:?}"),
    }
    drop(client);
    let report = server.finish();
    assert_eq!(report.panicked_jobs, 0);
}

#[test]
fn version_negotiation_rejects_a_future_only_client() {
    let cfg = small_test_config(1, 1, 13);
    let server =
        Server::start(&Endpoint::Tcp("127.0.0.1:0".into()), cfg, identity_server_config()).expect("server starts");
    // Hand-roll a client that only speaks versions 2..=3.
    let mut stream = pufatt_transport::Stream::connect(server.endpoint()).expect("connects");
    stream.set_read_timeout_ms(10_000).unwrap();
    let mut payload = Vec::new();
    Request::Hello { magic: PROTOCOL_MAGIC, min_version: 2, max_version: 3 }.encode(7, &mut payload);
    pufatt_transport::write_frame(&mut stream, &payload, 0).unwrap();
    let mut reply = Vec::new();
    assert!(pufatt_transport::read_frame(&mut stream, &mut reply, 10_000).unwrap());
    let (corr, response) = Response::decode(&reply).unwrap();
    assert_eq!(corr, 7);
    match response {
        Response::Error { code: ErrorCode::VersionMismatch, .. } => {}
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
    // …and the server closed the connection afterwards.
    assert!(!pufatt_transport::read_frame(&mut stream, &mut reply, 10_000).unwrap());
    server.finish();
}

#[test]
fn capacity_and_rate_limits_shed_with_busy() {
    let cfg = small_test_config(2, 1, 17);
    let server_cfg = ServerConfig {
        max_connections: 1,
        rate_limit_per_s: 1.0,
        rate_burst: 1,
        busy_retry_ms: 3,
        ..ServerConfig::default()
    };
    let server = Server::start(&Endpoint::Tcp("127.0.0.1:0".into()), cfg, server_cfg).expect("server starts");
    let mut first = Client::connect(server.endpoint(), 10_000, 10_000).expect("first client connects");

    // Connection capacity: the second connection is shed at accept.
    match Client::connect(server.endpoint(), 10_000, 10_000) {
        Err(TransportError::Server { code: ErrorCode::RateLimited, .. }) => {}
        Err(TransportError::Closed(_)) => {} // raced the Busy frame; also a shed
        Err(other) => panic!("expected a shed connection, got {other:?}"),
        Ok(_) => panic!("second connection must be shed at capacity 1"),
    }

    // Rate limit: burst of 1 means back-to-back requests see Busy.
    let mut saw_busy = false;
    for _ in 0..5 {
        match first.call(&Request::Enroll { device: 0 }).unwrap() {
            Response::Busy { retry_after_ms } => {
                assert!(retry_after_ms >= 3);
                saw_busy = true;
                break;
            }
            Response::EnrollOk { .. } => {}
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(saw_busy, "a 1 req/s bucket must shed a burst of 5");
    drop(first);
    let report = server.finish();
    assert_eq!(report.transport.connections_shed, 1);
    assert!(report.transport.busy_rate >= 1);
}
