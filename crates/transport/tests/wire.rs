//! Wire-protocol hardening: every message round-trips exactly, and *no*
//! byte sequence — truncated, bit-flipped, length-forged, or just random
//! — makes the decoder panic, over-read, or hand back a forged message
//! without an error.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use pufatt_transport::error::{ErrorCode, TransportError};
use pufatt_transport::frame::{decode_frame, encode_frame, read_frame, FRAME_HEADER, MAX_FRAME_LEN};
use pufatt_transport::message::{Request, Response, WireStats, WireStatus, PROTOCOL_MAGIC};

// ------------------------------------------------------------ strategies

fn any_request() -> impl Strategy<Value = Request> + Clone {
    prop_oneof![
        (any::<u64>().prop_map(u64::to_le_bytes), any::<u16>(), any::<u16>())
            .prop_map(|(magic, min_version, max_version)| Request::Hello { magic, min_version, max_version }),
        any::<u32>().prop_map(|device| Request::Enroll { device }),
        any::<u32>().prop_map(|device| Request::ChallengeRequest { device }),
        (any::<u32>(), any::<u64>()).prop_map(|(device, ticket)| Request::Attest { device, ticket }),
        any::<u32>().prop_map(|device| Request::Revoke { device }),
        Just(Request::Stats),
        Just(Request::Shutdown),
    ]
}

fn any_status() -> impl Strategy<Value = WireStatus> + Clone {
    prop::sample::select(vec![WireStatus::Active, WireStatus::Quarantined, WireStatus::Revoked])
}

fn any_code() -> impl Strategy<Value = ErrorCode> + Clone {
    prop::sample::select(vec![
        ErrorCode::VersionMismatch,
        ErrorCode::Malformed,
        ErrorCode::UnknownDevice,
        ErrorCode::Refused,
        ErrorCode::DeviceFault,
        ErrorCode::BadTicket,
        ErrorCode::RateLimited,
        ErrorCode::Draining,
        ErrorCode::Internal,
        ErrorCode::StorageUnavailable,
    ])
}

fn any_detail() -> impl Strategy<Value = String> + Clone {
    prop::collection::vec(32u8..127, 0..80).prop_map(|bytes| bytes.into_iter().map(char::from).collect::<String>())
}

fn any_stats() -> impl Strategy<Value = WireStats> + Clone {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(
                (started, accepted, rejected, timed_out, refused),
                (lost, faults, active, quarantined, revoked),
                (crp_hits, crp_misses, unavailable, shards_total),
                (shards_degraded, shards_failed),
            )| {
                WireStats {
                    started,
                    accepted,
                    rejected,
                    timed_out,
                    refused,
                    lost,
                    faults,
                    active,
                    quarantined,
                    revoked,
                    crp_hits,
                    crp_misses,
                    unavailable,
                    shards_total,
                    shards_degraded,
                    shards_failed,
                }
            },
        )
}

fn any_response() -> impl Strategy<Value = Response> + Clone {
    prop_oneof![
        any::<u16>().prop_map(|version| Response::HelloAck { version }),
        (any::<u32>(), any::<bool>(), any_status()).prop_map(|(device, fresh, status)| Response::EnrollOk {
            device,
            fresh,
            status
        }),
        (any::<u32>(), any::<u64>()).prop_map(|(device, ticket)| Response::Challenge { device, ticket }),
        (
            (any::<u32>(), any::<bool>(), any::<bool>(), any::<bool>()),
            (any::<bool>(), any::<u32>(), any::<u64>(), any_status()),
        )
            .prop_map(
                |((device, accepted, response_ok, time_ok), (timed_out, attempts, elapsed_bits, status))| {
                    Response::Verdict {
                        device,
                        accepted,
                        response_ok,
                        time_ok,
                        timed_out,
                        attempts,
                        elapsed_bits,
                        status,
                    }
                }
            ),
        (any::<u32>(), any_status()).prop_map(|(device, status)| Response::RevokeOk { device, status }),
        any_stats().prop_map(Response::StatsReply),
        Just(Response::ShutdownAck),
        any::<u32>().prop_map(|retry_after_ms| Response::Busy { retry_after_ms }),
        (any_code(), any_detail()).prop_map(|(code, detail)| Response::Error { code, detail }),
    ]
}

// ------------------------------------------------------------ round trips

proptest! {
    /// Every request survives encode → frame → unframe → decode exactly,
    /// correlation id included.
    #[test]
    fn requests_roundtrip(request in any_request(), corr in any::<u32>()) {
        let mut payload = Vec::new();
        request.encode(corr, &mut payload);
        prop_assert!(payload.len() <= MAX_FRAME_LEN as usize);
        let mut wire = Vec::new();
        encode_frame(&payload, &mut wire);
        let (unframed, consumed) = decode_frame(&wire).unwrap();
        prop_assert_eq!(consumed, wire.len());
        let (got_corr, got) = Request::decode(unframed).unwrap();
        prop_assert_eq!(got_corr, corr);
        prop_assert_eq!(got, request);
    }

    /// Every response survives the same full trip.
    #[test]
    fn responses_roundtrip(response in any_response(), corr in any::<u32>()) {
        let mut payload = Vec::new();
        response.encode(corr, &mut payload);
        prop_assert!(payload.len() <= MAX_FRAME_LEN as usize);
        let mut wire = Vec::new();
        encode_frame(&payload, &mut wire);
        let (unframed, _) = decode_frame(&wire).unwrap();
        let (got_corr, got) = Response::decode(unframed).unwrap();
        prop_assert_eq!(got_corr, corr);
        prop_assert_eq!(got, response);
    }

    /// Arbitrary bytes decode to a typed error or a valid message — never
    /// a panic, never an over-read (checked implicitly: decode takes a
    /// slice and cannot index past it without panicking).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_frame(&bytes);
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
        let mut cursor = std::io::Cursor::new(bytes);
        let mut payload = Vec::new();
        let _ = read_frame(&mut cursor, &mut payload, 0);
    }

    /// Truncating a valid frame anywhere yields a Frame error (or, at a
    /// length of zero, a clean close from the stream reader).
    #[test]
    fn truncated_frames_are_typed_errors(request in any_request(), cut_fraction in 0.0f64..1.0) {
        let mut payload = Vec::new();
        request.encode(9, &mut payload);
        let mut wire = Vec::new();
        encode_frame(&payload, &mut wire);
        let cut = ((wire.len() as f64) * cut_fraction) as usize;
        prop_assume!(cut < wire.len());
        prop_assert!(matches!(decode_frame(&wire[..cut]), Err(TransportError::Frame(_))));
        let mut cursor = std::io::Cursor::new(wire[..cut].to_vec());
        let mut buf = Vec::new();
        match read_frame(&mut cursor, &mut buf, 0) {
            Ok(false) => prop_assert_eq!(cut, 0, "clean close only at a frame boundary"),
            Err(TransportError::Frame(_)) => {}
            other => return Err(TestCaseError::fail(format!("unexpected: {other:?}"))),
        }
    }

    /// Flipping any bit of a framed message is detected: decode either
    /// errors or the frame is rejected — the payload is never silently
    /// altered.
    #[test]
    fn bit_flips_never_forge_messages(request in any_request(), flip_pos in any::<usize>(), flip_bit in 0u8..8) {
        let mut payload = Vec::new();
        request.encode(1, &mut payload);
        let mut wire = Vec::new();
        encode_frame(&payload, &mut wire);
        let pos = flip_pos % wire.len();
        wire[pos] ^= 1 << flip_bit;
        if let Ok((unframed, _)) = decode_frame(&wire) {
            // Both length and CRC collided — impossible for a single flip.
            return Err(TestCaseError::fail(format!("flip at {pos} survived the crc: {unframed:?}")));
        }
    }

    /// A forged length prefix is refused before any allocation, no matter
    /// what follows it.
    #[test]
    fn oversized_length_prefixes_are_refused(extra in 1u32..u32::MAX - MAX_FRAME_LEN, junk in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut wire = (MAX_FRAME_LEN + extra).to_le_bytes().to_vec();
        wire.extend_from_slice(&junk);
        match decode_frame(&wire) {
            Err(TransportError::Frame(_)) => {}
            other => return Err(TestCaseError::fail(format!("unexpected: {other:?}"))),
        }
        if wire.len() >= FRAME_HEADER {
            let mut cursor = std::io::Cursor::new(wire);
            let mut buf = Vec::new();
            match read_frame(&mut cursor, &mut buf, 0) {
                Err(TransportError::Frame(_)) => {}
                other => return Err(TestCaseError::fail(format!("unexpected: {other:?}"))),
            }
        }
    }

    /// Unknown message tags are Malformed, not a panic and not a guess.
    #[test]
    fn unknown_tags_are_malformed(corr in any::<u32>(), tag in 7u8..=u8::MAX, tail in prop::collection::vec(any::<u8>(), 0..32)) {
        let mut payload = corr.to_le_bytes().to_vec();
        payload.push(tag);
        payload.extend_from_slice(&tail);
        prop_assert!(matches!(Request::decode(&payload), Err(TransportError::Malformed(_))));
        if tag > 8 {
            prop_assert!(matches!(Response::decode(&payload), Err(TransportError::Malformed(_))));
        }
    }

    /// Trailing bytes after a structurally complete message are refused —
    /// a smuggling channel, not slack.
    #[test]
    fn trailing_bytes_are_refused(request in any_request(), trailing in prop::collection::vec(any::<u8>(), 1..16)) {
        let mut payload = Vec::new();
        request.encode(0, &mut payload);
        payload.extend_from_slice(&trailing);
        prop_assert!(matches!(Request::decode(&payload), Err(TransportError::Malformed(_))));
    }
}

// ---------------------------------------------------- deterministic corpus

/// The hand-written malformed-frame corpus: one exemplar per attack
/// class, pinned so a codec refactor cannot silently drop a defence.
#[test]
fn malformed_corpus_is_typed_and_panic_free() {
    let valid = {
        let mut payload = Vec::new();
        Request::Hello { magic: PROTOCOL_MAGIC, min_version: 1, max_version: 1 }.encode(0, &mut payload);
        let mut wire = Vec::new();
        encode_frame(&payload, &mut wire);
        wire
    };
    let oversized = {
        let mut w = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        w.extend_from_slice(&[0; 4]);
        w
    };
    let corpus: Vec<(&str, Vec<u8>)> = vec![
        ("empty", Vec::new()),
        ("short header", valid[..FRAME_HEADER - 1].to_vec()),
        ("truncated payload", valid[..valid.len() - 1].to_vec()),
        ("oversized length", oversized),
        ("bit-flipped length", {
            let mut w = valid.clone();
            w[0] ^= 0x01;
            w
        }),
        ("bit-flipped crc", {
            let mut w = valid.clone();
            w[4] ^= 0x80;
            w
        }),
        ("bit-flipped body", {
            let mut w = valid.clone();
            let last = w.len() - 1;
            w[last] ^= 0x10;
            w
        }),
        ("all ones", vec![0xFF; 64]),
    ];
    for (name, bytes) in corpus {
        assert!(matches!(decode_frame(&bytes), Err(TransportError::Frame(_))), "{name} must be a frame error");
        let empty = bytes.is_empty();
        let mut cursor = std::io::Cursor::new(bytes);
        let mut buf = Vec::new();
        match read_frame(&mut cursor, &mut buf, 0) {
            Ok(true) => panic!("{name} must never yield a frame"),
            Ok(false) => assert!(empty, "{name}: clean close is only legal on a frame boundary"),
            Err(_) => {}
        }
    }
    // Frame-valid but protocol-invalid payloads: wrong magic and a hostile
    // detail length are Malformed at the message layer.
    let mut wrong_magic = Vec::new();
    Request::Hello { magic: *b"WRONGMAG", min_version: 1, max_version: 1 }.encode(0, &mut wrong_magic);
    let (_, decoded) = Request::decode(&wrong_magic).expect("structurally fine");
    match decoded {
        Request::Hello { magic, min_version, max_version } => {
            assert!(matches!(
                pufatt_transport::negotiate(magic, min_version, max_version),
                Err(TransportError::Malformed(_))
            ));
        }
        other => panic!("unexpected decode: {other:?}"),
    }
    // A declared string length pointing past the payload must not over-read.
    let mut forged = 0u32.to_le_bytes().to_vec();
    forged.push(8); // Response::Error tag
    forged.push(ErrorCode::Internal.to_byte());
    forged.extend_from_slice(&u16::MAX.to_le_bytes()); // detail "length"
    forged.extend_from_slice(b"tiny");
    assert!(matches!(Response::decode(&forged), Err(TransportError::Malformed(_))));
}

/// An all-zero header IS a valid empty frame (CRC-32 of nothing is 0) —
/// legal at the framing layer, refused at the message layer. Pin both
/// halves so neither layer starts covering for the other.
#[test]
fn zero_frame_is_an_empty_payload_not_an_error() {
    let mut wire = Vec::new();
    encode_frame(b"", &mut wire);
    let (payload, consumed) = decode_frame(&wire).expect("empty frame is legal");
    assert!(payload.is_empty());
    assert_eq!(consumed, FRAME_HEADER);
    // But an empty *message* payload is never a valid Request/Response.
    assert!(Request::decode(payload).is_err());
    assert!(Response::decode(payload).is_err());
}
