//! The server under a hostile link: a seeded lossy proxy (mid-frame
//! cuts, jitter) sits between a PR 3-style retrying client and the
//! server. The contract under fire:
//!
//! * every failure the client sees is a **typed** [`TransportError`] —
//!   no panics, no silent acceptance of damaged bytes;
//! * a session whose connection died with a ticket open is recorded
//!   server-side as **lost** and fed to the lifecycle, exactly like a
//!   chaos-channel loss in process;
//! * retrying over fresh connections eventually lands every device, and
//!   the verdicts stay sound: tampered devices are never accepted, and
//!   the quarantine hysteresis still fires.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pufatt_fleet::campaign::small_test_config;
use pufatt_transport::client::Client;
use pufatt_transport::error::ErrorCode;
use pufatt_transport::message::{Request, Response};
use pufatt_transport::server::{Server, ServerConfig};
use pufatt_transport::shim::{LossyProxy, ProxyConfig};
use pufatt_transport::Endpoint;

/// Reconnects through the proxy until a working connection comes up.
fn connect_with_retry(endpoint: &Endpoint, attempts: &mut u32, budget: u32) -> Client {
    loop {
        *attempts += 1;
        assert!(*attempts <= budget, "connect retry budget exhausted — the proxy seed is too cruel");
        match Client::connect(endpoint, 2_000, 2_000) {
            Ok(client) => return client,
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(5)),
        }
    }
}

#[test]
fn retrying_client_survives_a_lossy_link_and_verdicts_stay_sound() {
    let devices: u32 = 8;
    let sessions: u32 = 2;
    let cfg = small_test_config(devices as usize, 2, 0x5EED);
    let server = Server::start(
        &Endpoint::Tcp("127.0.0.1:0".into()),
        cfg,
        ServerConfig {
            rate_limit_per_s: 0.0,
            read_timeout_ms: 2_000,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let proxy = LossyProxy::start(
        &Endpoint::Tcp("127.0.0.1:0".into()),
        server.endpoint().clone(),
        0xBADC_0FFE,
        // Every connection dies after a seeded byte budget: with ~40
        // round trips of traffic ahead, cuts are guaranteed, and the
        // floor of 250 bytes guarantees each reconnect makes progress.
        ProxyConfig {
            cut_fraction: 1.0,
            cut_after_bytes: (250, 2_500),
            jitter_fraction: 0.25,
            jitter_ms: (1, 4),
        },
    )
    .expect("proxy starts");

    let budget = 400; // total reconnects across the whole campaign
    let mut attempts = 0u32;
    let mut verdicts = 0u64;
    let mut refusals = 0u64;
    let mut client = connect_with_retry(proxy.endpoint(), &mut attempts, budget);
    for id in 0..devices {
        // Enroll with retry over fresh connections.
        loop {
            match client.call(&Request::Enroll { device: id }) {
                Ok(Response::EnrollOk { .. }) => break,
                Ok(Response::Error { code: ErrorCode::DeviceFault, .. }) => break,
                Ok(other) => panic!("unexpected enroll reply: {other:?}"),
                Err(_) => client = connect_with_retry(proxy.endpoint(), &mut attempts, budget),
            }
        }
        for _ in 0..sessions {
            // One session: ChallengeRequest then Attest, retried whole on
            // any transport error (the PR 3 machine's session-level retry).
            loop {
                let ticket = match client.call(&Request::ChallengeRequest { device: id }) {
                    Ok(Response::Challenge { ticket, .. }) => ticket,
                    Ok(Response::Error { code: ErrorCode::Refused, .. }) => {
                        refusals += 1;
                        break;
                    }
                    Ok(other) => panic!("unexpected challenge reply: {other:?}"),
                    Err(_) => {
                        client = connect_with_retry(proxy.endpoint(), &mut attempts, budget);
                        continue;
                    }
                };
                match client.call(&Request::Attest { device: id, ticket }) {
                    Ok(Response::Verdict { .. }) => {
                        verdicts += 1;
                        break;
                    }
                    // The ticket died with its connection; open a new one.
                    Ok(Response::Error { code: ErrorCode::BadTicket, .. }) => {}
                    Ok(other) => panic!("unexpected attest reply: {other:?}"),
                    Err(_) => {
                        client = connect_with_retry(proxy.endpoint(), &mut attempts, budget);
                    }
                }
            }
        }
    }
    drop(client);
    proxy.stop();
    let report = server.finish();

    assert_eq!(report.panicked_jobs, 0);
    assert_eq!(verdicts + refusals, u64::from(devices * sessions), "every session resolved");
    assert!(attempts > 1, "the proxy must actually have cut connections (seed gone stale?)");
    // Cuts mid-session surface as aborted/lost sessions on the server's
    // books — the socket analogue of a chaos message drop.
    assert_eq!(report.transport.sessions_aborted, report.snapshot.sessions_lost);
    assert!(
        report.snapshot.sessions_started >= verdicts,
        "server started at least the sessions that produced verdicts"
    );
    // Soundness under damage: no tampered device is ever accepted, and
    // repeated rejection still quarantines.
    let tampered: Vec<_> = report.device_records.iter().filter(|r| r.tampered).collect();
    assert!(!tampered.is_empty(), "seed produced no tampered devices — weaken tamper_fraction assumptions");
    for record in &tampered {
        assert!(
            record.outcomes.iter().all(|o| !o.accepted),
            "tampered device {} was accepted over a lossy link",
            record.id
        );
    }
    assert!(
        tampered
            .iter()
            .all(|r| r.status != pufatt_fleet::FleetStatus::Active || r.outcomes.len() < 2),
        "a twice-rejected tampered device must not stay Active"
    );
}
