//! Golden diagnostics tests: every lint ID is pinned by a seeded defect,
//! and the shipped designs, generated programs and source tree are clean.
//!
//! These tests are the tool's compatibility contract. A lint that stops
//! firing on its seeded defect, or that starts firing on shipped
//! artefacts, is a regression even if the code "works".

// Panicking on a broken fixture is exactly what a test should do.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use pufatt_alupuf::device::{AluPufConfig, AluPufDesign};
use pufatt_analyze::circuit::{verify_alu_puf, CircuitGate, CircuitModel, CsrView};
use pufatt_analyze::program::{verify_program, ProgramSpec};
use pufatt_analyze::taint::{scan_paths, scan_source};
use pufatt_analyze::{conc, dur, LintId, Report};
use pufatt_pe32::asm::assemble;
use pufatt_silicon::netlist::GateKind;
use pufatt_swatt::checksum::SwattParams;
use pufatt_swatt::codegen::{generate, CodegenOptions, Redirection};
use std::path::PathBuf;

fn lint_set(diags: &[pufatt_analyze::Diagnostic]) -> Vec<LintId> {
    let mut lints: Vec<LintId> = diags.iter().map(|d| d.lint).collect();
    lints.dedup();
    lints
}

// ---------------------------------------------------------------- Pass 1

/// A sound 2-gate model: c = AND(a, b); d = BUF(c); PO = d.
fn sound_model() -> CircuitModel {
    CircuitModel {
        name: "fixture".into(),
        net_count: 4,
        gates: vec![
            CircuitGate { kind: GateKind::And2, inputs: vec![0, 1], output: 2 },
            CircuitGate { kind: GateKind::Buf, inputs: vec![2], output: 3 },
        ],
        primary_inputs: vec![0, 1],
        primary_outputs: vec![3],
        net_names: vec![None; 4],
        csr: None,
    }
}

#[test]
fn net001_combinational_loop() {
    let mut m = sound_model();
    // Close the loop: the AND now also reads the BUF's output.
    m.gates[0].inputs = vec![0, 3];
    let diags = m.verify();
    assert!(lint_set(&diags).contains(&LintId::CombinationalLoop), "{diags:?}");
}

#[test]
fn net002_floating_net() {
    let mut m = sound_model();
    // Net 1 loses its primary-input status but keeps its reader.
    m.primary_inputs = vec![0];
    let diags = m.verify();
    assert!(lint_set(&diags).contains(&LintId::FloatingNet), "{diags:?}");
}

#[test]
fn net003_multi_driven_net() {
    let mut m = sound_model();
    // A second gate drives net 2.
    m.gates.push(CircuitGate { kind: GateKind::Or2, inputs: vec![0, 1], output: 2 });
    let diags = m.verify();
    assert!(lint_set(&diags).contains(&LintId::MultiDrivenNet), "{diags:?}");
}

#[test]
fn net004_unreachable_gate() {
    let mut m = sound_model();
    // A gate whose output feeds nothing and no primary output.
    m.net_count = 5;
    m.net_names.push(None);
    m.gates
        .push(CircuitGate { kind: GateKind::Xor2, inputs: vec![0, 1], output: 4 });
    let diags = m.verify();
    assert!(lint_set(&diags).contains(&LintId::UnreachableGate), "{diags:?}");
}

#[test]
fn net005_corrupted_fanout_csr() {
    let mut m = sound_model();
    // CSR claims net 0 has no readers although gate 0 reads it.
    m.csr = Some(CsrView { offsets: vec![0, 0, 1, 2, 2], targets: vec![0, 1] });
    let diags = m.verify();
    assert!(lint_set(&diags).contains(&LintId::FanoutCsrMismatch), "{diags:?}");
}

#[test]
fn net006_asymmetric_arbiter_cone() {
    // Left cone: AND(a,b). Right cone: BUF(AND(a,b)) — one extra level.
    let m = CircuitModel {
        name: "fixture".into(),
        net_count: 5,
        gates: vec![
            CircuitGate { kind: GateKind::And2, inputs: vec![0, 1], output: 2 },
            CircuitGate { kind: GateKind::And2, inputs: vec![0, 1], output: 3 },
            CircuitGate { kind: GateKind::Buf, inputs: vec![3], output: 4 },
        ],
        primary_inputs: vec![0, 1],
        primary_outputs: vec![2, 4],
        net_names: vec![None; 5],
        csr: None,
    };
    let diags = m.arbiter_symmetry(&[(2, 4)]);
    assert_eq!(lint_set(&diags), vec![LintId::ArbiterAsymmetry], "{diags:?}");
}

// ---------------------------------------------------------------- Pass 3

fn spec(src: &str, memory_words: u32) -> ProgramSpec {
    let prog = assemble(src).expect("fixture assembles");
    ProgramSpec {
        name: "fixture".into(),
        code_words: prog.image.len() as u32,
        image: prog.image,
        memory_words,
        pointer_cells: vec![],
    }
}

#[test]
fn swp001_undecodable_word() {
    let mut s = spec("        nop\n        halt\n", 64);
    s.image.push(0xFFFF_FFFF);
    s.code_words += 1;
    let diags = verify_program(&s);
    assert!(lint_set(&diags).contains(&LintId::UndecodableInstruction), "{diags:?}");
}

#[test]
fn swp002_out_of_bounds_access() {
    let diags = verify_program(&spec("        lw r1, 63(r0)\n        halt\n", 32));
    assert!(lint_set(&diags).contains(&LintId::OutOfBoundsAccess), "{diags:?}");
}

#[test]
fn swp003_data_dependent_loop() {
    let src = "
        lw   r1, 50(r0)
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt
";
    let diags = verify_program(&spec(src, 64));
    assert!(lint_set(&diags).contains(&LintId::DataDependentLoop), "{diags:?}");
}

#[test]
fn swp004_store_into_code() {
    let diags = verify_program(&spec("        addi r1, r0, 7\n        sw r1, 0(r0)\n        halt\n", 64));
    assert!(lint_set(&diags).contains(&LintId::StoreIntoCode), "{diags:?}");
}

#[test]
fn swp005_unreachable_instruction() {
    let src = "
        jal  r0, end
        addi r1, r0, 1
end:    halt
";
    let diags = verify_program(&spec(src, 64));
    assert_eq!(lint_set(&diags), vec![LintId::UnreachableInstruction], "{diags:?}");
}

#[test]
fn swp006_indirect_jump() {
    let src = "
        addi r1, r0, 3
        jalr r0, r1
        halt
";
    let diags = verify_program(&spec(src, 64));
    assert!(lint_set(&diags).contains(&LintId::IndirectJump), "{diags:?}");
}

#[test]
fn swp007_no_reachable_halt() {
    let src = "
loop:   nop
        jal  r0, loop
";
    let diags = verify_program(&spec(src, 64));
    assert!(lint_set(&diags).contains(&LintId::NoReachableHalt), "{diags:?}");
}

#[test]
fn memory_copy_attack_program_is_not_statically_safe() {
    // The adversary's redirect checksum subtracts malware_start from a
    // masked address, losing the bound — the verifier must refuse to
    // certify it. (Its *timing* is what the protocol's δ catches; its
    // *shape* is what this pass catches.)
    let params = SwattParams { region_bits: 9, rounds: 512, puf_interval: 0 };
    let gen = generate(
        &params,
        &CodegenOptions {
            redirect: Some(Redirection { malware_start: 100, malware_end: 116, copy_base: 600 }),
        },
    );
    let prog = assemble(&gen.source).expect("attack program assembles");
    let s = ProgramSpec::from_generated("attack", &gen, &params, &prog);
    let diags = verify_program(&s);
    assert!(lint_set(&diags).contains(&LintId::OutOfBoundsAccess), "{diags:?}");
}

// ---------------------------------------------------------------- Pass 2

#[test]
fn tnt_lints_fire_on_leaky_fixture() {
    let leaky = r#"
pub fn leak(raw_response: u32, reference: u32) -> Result<(), Error> {
    println!("response was {raw_response}");
    if raw_response == reference {
        return Ok(());
    }
    Err(Error::Mismatch(raw_response))
}

#[derive(Debug)]
pub struct Session {
    pub raw_bits: u64,
}

pub fn fragile(x: Option<u32>) -> u32 {
    x.unwrap()
}
"#;
    let lints: Vec<LintId> = scan_source("leaky.rs", leaky).iter().map(|d| d.lint).collect();
    for expected in [
        LintId::SecretInFormat,
        LintId::SecretComparison,
        LintId::SecretInError,
        LintId::SecretDebugImpl,
        LintId::UnpinnedPanic,
    ] {
        assert!(lints.contains(&expected), "expected {expected} in {lints:?}");
    }
}

// ---------------------------------------------------------------- Pass 4

fn conc_lints(src: &str) -> Vec<LintId> {
    conc::scan_sources(&[("fixture.rs", src)]).iter().map(|d| d.lint).collect()
}

#[test]
fn conc001_lock_order_rank_violation() {
    // registry_shard (60) held while a service_slot (50) lock is taken:
    // backwards against the documented rank order.
    let src = "fn f(&self) {\n    let g = lock(self.shard(id));\n    let h = lock(&self.slots[0]);\n}\n";
    assert!(conc_lints(src).contains(&LintId::LockOrderCycle), "{:?}", conc_lints(src));
}

#[test]
fn conc001_opposite_orders_across_files_flagged_in_merged_graph() {
    // File a takes slot -> shard (ascending: fine); file b takes the
    // same pair backwards. The merged class graph pins the violation to
    // file b's inner acquisition.
    let a = "fn f(&self) {\n    let g = lock(&self.slots[0]);\n    let h = lock(self.shard(id));\n}\n";
    let b = "fn g(&self) {\n    let g = lock(self.shard(id));\n    let h = lock(&self.slots[0]);\n}\n";
    assert!(conc::scan_sources(&[("a.rs", a)]).is_empty(), "in-order file alone is clean");
    let diags = conc::scan_sources(&[("a.rs", a), ("b.rs", b)]);
    assert!(
        diags
            .iter()
            .any(|d| d.lint == LintId::LockOrderCycle && d.location.starts_with("b.rs")),
        "{diags:?}"
    );
}

#[test]
fn conc002_blocking_op_under_lock() {
    let src = "fn f(&self) {\n    let g = lock(&self.tickets);\n    self.tx.send(job).ok();\n}\n";
    assert!(conc_lints(src).contains(&LintId::LockAcrossBlocking), "{:?}", conc_lints(src));
}

#[test]
fn conc003_raw_lock_unwrap() {
    let src = "fn f(&self) { let g = self.conns.lock().unwrap(); }";
    assert!(conc_lints(src).contains(&LintId::RawLockUnwrap), "{:?}", conc_lints(src));
}

#[test]
fn conc004_condvar_wait_without_loop() {
    let src = "fn f(&self) {\n    let g = self.cv.wait(guard);\n}\n";
    assert!(conc_lints(src).contains(&LintId::CondvarNoLoop), "{:?}", conc_lints(src));
}

#[test]
fn conc005_detached_thread() {
    let src = "fn f() {\n    std::thread::spawn(move || pump());\n}\n";
    assert!(conc_lints(src).contains(&LintId::DetachedThread), "{:?}", conc_lints(src));
}

#[test]
fn conc006_unknown_lock_class() {
    let src = "fn f(&self) { let g = lock(&self.mystery_box); }";
    assert!(conc_lints(src).contains(&LintId::UnknownLockClass), "{:?}", conc_lints(src));
}

// ---------------------------------------------------------------- Pass 5

fn dur_lints(src: &str) -> Vec<LintId> {
    dur::scan_source("fixture.rs", src).iter().map(|d| d.lint).collect()
}

#[test]
fn dur001_critical_record_without_fsync() {
    let src = "fn f(&self) { self.store.append_nosync(&Record::DeviceEnrolled { id }); }";
    assert!(dur_lints(src).contains(&LintId::UnsyncedCriticalRecord), "{:?}", dur_lints(src));
}

#[test]
fn dur002_rename_without_sync() {
    let src = "fn commit(&self) {\n    self.vfs.truncate(tmp, &bytes)?;\n    self.vfs.rename(tmp, path)?;\n}\n";
    assert!(dur_lints(src).contains(&LintId::RenameBeforeSync), "{:?}", dur_lints(src));
}

#[test]
fn dur003_direct_write_to_committed_path() {
    let src = "fn f(&self) {\n    self.vfs.sync(tmp)?;\n    self.vfs.rename(tmp, path)?;\n    self.vfs.append(path, &bytes)?;\n}\n";
    assert!(dur_lints(src).contains(&LintId::DirectCommitWrite), "{:?}", dur_lints(src));
}

#[test]
fn dur004_compaction_before_snapshot() {
    let src = "fn f(&self) {\n    let wal = Wal::create(vfs, &wal_path)?;\n}\n";
    assert!(dur_lints(src).contains(&LintId::CompactionBeforeSnapshot), "{:?}", dur_lints(src));
}

#[test]
fn dur005_discarded_sync_result() {
    let src = "fn f(&self) { let _ = self.store.checkpoint(); }";
    assert!(dur_lints(src).contains(&LintId::IgnoredSyncResult), "{:?}", dur_lints(src));
}

#[test]
fn dur006_sync_retried_on_poisoned_handle() {
    let retry_loop = "fn f(&self) {\n    while self.wal.sync().is_err() {\n        backoff();\n    }\n}\n";
    assert!(dur_lints(retry_loop).contains(&LintId::SyncRetriedOnPoisonedHandle), "{:?}", dur_lints(retry_loop));
    let guard = "fn f(&self) {\n    if self.wal.sync().is_err() {\n        self.wal.sync()?;\n    }\n}\n";
    assert!(dur_lints(guard).contains(&LintId::SyncRetriedOnPoisonedHandle), "{:?}", dur_lints(guard));
    // The correct recovery — reopen the handle, then sync the fresh one —
    // stays clean.
    let reopen = "fn f(&self) {\n    if self.wal.sync().is_err() {\n        self.reopen()?;\n    }\n}\n";
    assert!(dur_lints(reopen).is_empty(), "{:?}", dur_lints(reopen));
}

// ------------------------------------------------------------- clean runs

#[test]
fn shipped_netlists_are_clean() {
    for (name, config) in [
        ("paper32", AluPufConfig::paper_32bit()),
        ("fpga16", AluPufConfig::fpga_16bit()),
    ] {
        let design = AluPufDesign::new(config);
        let diags = verify_alu_puf(name, &design);
        assert!(diags.is_empty(), "{name}: {diags:?}");
    }
}

#[test]
fn shipped_checksum_programs_are_clean() {
    for params in [
        SwattParams { region_bits: 9, rounds: 512, puf_interval: 0 },
        SwattParams { region_bits: 10, rounds: 2048, puf_interval: 32 },
        SwattParams { region_bits: 8, rounds: 192, puf_interval: 32 },
        SwattParams::default_for_region(9),
    ] {
        let gen = generate(&params, &CodegenOptions::default());
        let prog = assemble(&gen.source).expect("generated assembly assembles");
        let s = ProgramSpec::from_generated("swatt", &gen, &params, &prog);
        let diags = verify_program(&s);
        assert!(diags.is_empty(), "{params:?}: {diags:?}");
    }
}

#[test]
fn protocol_and_ecc_sources_are_clean_and_allowlist_is_pinned() {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let roots = [
        manifest.join("../core/src"),
        manifest.join("../ecc/src"),
        manifest.join("../store/src"),
        manifest.join("../transport/src"),
    ];
    for root in &roots {
        assert!(root.is_dir(), "missing source root {}", root.display());
    }
    let diags = scan_paths(&roots).expect("source roots readable");
    let mut report = Report::new();
    report.extend(diags);
    assert!(report.is_clean(), "taint findings on shipped sources:\n{report}");

    // The panic allowlist is pinned: adding an unwrap/expect to a library
    // path requires either a typed error or a reviewed marker, and the
    // marker count is part of the golden contract.
    let mut markers = 0;
    for root in &roots {
        for entry in walk(root) {
            let text = std::fs::read_to_string(&entry).expect("source readable");
            markers += text.matches("analyze: allow(panic").count();
        }
    }
    // 4 in crates/core (pipeline x2, enroll, slender) + 8 in crates/ecc
    // (bch, repetition, rm, golay x2, code, table, analysis) + 0 in
    // crates/store and 0 in crates/transport (both layers return typed
    // errors everywhere — a decoder that panics on wire bytes is a DoS).
    // Update this count only together with a reviewed marker change.
    assert_eq!(markers, 12, "panic-allowlist size changed; review the new/removed markers");
}

#[test]
fn shipped_sources_pass_the_concurrency_verifier() {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let roots = [
        manifest.join("../core/src"),
        manifest.join("../store/src"),
        manifest.join("../transport/src"),
        manifest.join("../fleet/src"),
    ];
    for root in &roots {
        assert!(root.is_dir(), "missing source root {}", root.display());
    }
    let diags = conc::scan_paths(&roots).expect("source roots readable");
    let mut report = Report::new();
    report.extend(diags);
    assert!(report.is_clean(), "concurrency findings on shipped sources:\n{report}");

    // Reviewed `allow(conc:)` sites are part of the golden contract —
    // each one is a deliberate, documented exception (see DESIGN.md §10):
    // 3 in fleet/service.rs (fsync-before-visibility under the slot
    // shard), 1 in fleet/pool.rs (recv on the shared receiver IS the
    // handoff), 1 in transport/server.rs (whole-frame writer lock),
    // 1 in transport/shim.rs (self-terminating chaos pump thread).
    let mut markers = 0;
    for root in &roots {
        for entry in walk(root) {
            let text = std::fs::read_to_string(&entry).expect("source readable");
            markers += text.matches("analyze: allow(conc:").count();
        }
    }
    assert_eq!(markers, 6, "conc-allowlist size changed; review the new/removed markers");
}

#[test]
fn shipped_sources_pass_the_durability_verifier() {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let roots = [manifest.join("../store/src"), manifest.join("../fleet/src")];
    for root in &roots {
        assert!(root.is_dir(), "missing source root {}", root.display());
    }
    let diags = dur::scan_paths(&roots).expect("source roots readable");
    let mut report = Report::new();
    report.extend(diags);
    assert!(report.is_clean(), "durability findings on shipped sources:\n{report}");

    // 1 in store/vfs.rs (best-effort directory sync after rename). The
    // stopping committer's flush marker is gone: commit_tick now degrades
    // the failing shard and counts the failure instead of discarding it.
    let mut markers = 0;
    for root in &roots {
        for entry in walk(root) {
            let text = std::fs::read_to_string(&entry).expect("source readable");
            markers += text.matches("analyze: allow(dur:").count();
        }
    }
    assert_eq!(markers, 1, "dur-allowlist size changed; review the new/removed markers");
}

fn walk(root: &std::path::Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(p) = stack.pop() {
        if p.is_dir() {
            for e in std::fs::read_dir(&p).expect("readable dir") {
                stack.push(e.expect("dir entry").path());
            }
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    out
}
