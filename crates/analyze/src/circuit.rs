//! Pass 1 — netlist verifier.
//!
//! Operates on a [`CircuitModel`], a plain gate/net graph extracted from a
//! [`pufatt_silicon::Netlist`]. The model is deliberately constructible by
//! hand: the silicon builder makes several of these defects (cycles,
//! multi-driven nets) impossible to *create*, but the verifier must still
//! prove their absence — and the golden tests must be able to seed them —
//! so the pass checks the graph, not the builder.
//!
//! Checks:
//!
//! * `NET001` — combinational loops, found with an iterative Tarjan SCC.
//! * `NET002` — floating nets (no driver, not a primary input).
//! * `NET003` — multi-driven nets (including driven primary inputs).
//! * `NET004` — gates on no primary-input→primary-output path.
//! * `NET005` — a fanout CSR that disagrees with the gate edge list.
//! * `NET006` — arbiter asymmetry: the logic cones feeding each pair of
//!   raced outputs must be structurally isomorphic (same gate kinds, same
//!   topology, same shared leaves). An asymmetric cone biases the race
//!   systematically — a defect the inter/intra-chip Hamming-distance
//!   statistics can only detect after thousands of evaluations, and only
//!   statistically.

use crate::{Diagnostic, LintId};
use pufatt_alupuf::device::AluPufDesign;
use pufatt_silicon::netlist::{FanoutCsr, GateKind, Netlist};
use std::collections::HashMap;

/// One gate of the analysable graph (net references are raw indices).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitGate {
    /// Logic function.
    pub kind: GateKind,
    /// Input net indices (`kind.arity()` of them).
    pub inputs: Vec<usize>,
    /// Output net index.
    pub output: usize,
}

/// Fanout adjacency to cross-check against the edge list, in CSR form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrView {
    /// `net_count + 1` offsets into `targets`.
    pub offsets: Vec<u32>,
    /// Reader gate indices, grouped by net.
    pub targets: Vec<u32>,
}

/// The verifier's input: a gate/net graph plus optional CSR to cross-check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitModel {
    /// Display name used in diagnostic locations.
    pub name: String,
    /// Total number of nets.
    pub net_count: usize,
    /// The gates.
    pub gates: Vec<CircuitGate>,
    /// Primary input net indices.
    pub primary_inputs: Vec<usize>,
    /// Primary output net indices.
    pub primary_outputs: Vec<usize>,
    /// Optional net names for diagnostics.
    pub net_names: Vec<Option<String>>,
    /// Optional fanout CSR to verify against the edge list.
    pub csr: Option<CsrView>,
}

impl CircuitModel {
    /// Extracts the model from a netlist, including its fanout CSR.
    pub fn from_netlist(name: impl Into<String>, netlist: &Netlist) -> Self {
        let csr = netlist.fanout_csr();
        Self::from_netlist_with_csr(name, netlist, &csr)
    }

    /// Extracts the model from a netlist plus an externally held CSR (the
    /// one simulators actually use — verifying a freshly built CSR would
    /// only test the builder against itself).
    pub fn from_netlist_with_csr(name: impl Into<String>, netlist: &Netlist, csr: &FanoutCsr) -> Self {
        let gates = netlist
            .gates()
            .iter()
            .map(|g| CircuitGate {
                kind: g.kind,
                inputs: g.input_nets().map(|n| n.index()).collect(),
                output: g.output.index(),
            })
            .collect();
        let mut offsets = Vec::with_capacity(csr.net_count() + 1);
        let mut targets = Vec::new();
        offsets.push(0u32);
        for net in 0..csr.net_count() {
            for &reader in csr.readers_at(net) {
                targets.push(reader.index() as u32);
            }
            offsets.push(targets.len() as u32);
        }
        CircuitModel {
            name: name.into(),
            net_count: netlist.net_count(),
            gates,
            primary_inputs: netlist.primary_inputs().iter().map(|n| n.index()).collect(),
            primary_outputs: netlist.primary_outputs().iter().map(|n| n.index()).collect(),
            net_names: netlist.nets().map(|(_, n)| n.name.clone()).collect(),
            csr: Some(CsrView { offsets, targets }),
        }
    }

    fn net_label(&self, net: usize) -> String {
        match self.net_names.get(net).and_then(|n| n.as_deref()) {
            Some(name) => format!("n{net} ({name})"),
            None => format!("n{net}"),
        }
    }

    fn location(&self, what: &str) -> String {
        format!("netlist {}/{what}", self.name)
    }

    /// Driver gates per net (well-formed graphs have at most one).
    fn drivers(&self) -> Vec<Vec<usize>> {
        let mut d = vec![Vec::new(); self.net_count];
        for (i, g) in self.gates.iter().enumerate() {
            if g.output < self.net_count {
                d[g.output].push(i);
            }
        }
        d
    }

    /// Runs every structural check except the arbiter-symmetry pass (which
    /// needs the raced output pairing — see [`CircuitModel::arbiter_symmetry`]).
    pub fn verify(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let drivers = self.drivers();
        self.check_driven(&drivers, &mut out);
        self.check_loops(&mut out);
        self.check_reachability(&drivers, &mut out);
        self.check_csr(&mut out);
        out
    }

    /// `NET002` + `NET003`.
    fn check_driven(&self, drivers: &[Vec<usize>], out: &mut Vec<Diagnostic>) {
        for (net, d) in drivers.iter().enumerate() {
            let is_pi = self.primary_inputs.contains(&net);
            if d.is_empty() && !is_pi {
                out.push(Diagnostic::new(
                    LintId::FloatingNet,
                    self.location(&format!("net {}", self.net_label(net))),
                    "net has no driving gate and is not a primary input; it reads as a constant X",
                    "connect a driver or declare the net as a primary input",
                ));
            }
            if d.len() > 1 {
                out.push(Diagnostic::new(
                    LintId::MultiDrivenNet,
                    self.location(&format!("net {}", self.net_label(net))),
                    format!("net is driven by {} gates ({:?}); contention makes its value undefined", d.len(), d),
                    "give each gate its own output net and combine them through logic",
                ));
            }
            if !d.is_empty() && is_pi {
                out.push(Diagnostic::new(
                    LintId::MultiDrivenNet,
                    self.location(&format!("net {}", self.net_label(net))),
                    format!("primary input is also driven by gate g{}", d[0]),
                    "primary inputs must be driven only by the testbench",
                ));
            }
        }
    }

    /// `NET001` via iterative Tarjan SCC over the gate graph.
    fn check_loops(&self, out: &mut Vec<Diagnostic>) {
        let n = self.gates.len();
        // successors(g) = gates reading g's output net.
        let mut readers = vec![Vec::new(); self.net_count];
        for (i, g) in self.gates.iter().enumerate() {
            for &inp in &g.inputs {
                if inp < self.net_count {
                    readers[inp].push(i);
                }
            }
        }
        let succ = |g: usize| -> &[usize] { &readers[self.gates[g].output] };

        const UNVISITED: u32 = u32::MAX;
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0u32;
        // Explicit DFS frames: (gate, next successor position).
        let mut frames: Vec<(usize, usize)> = Vec::new();

        for start in 0..n {
            if index[start] != UNVISITED {
                continue;
            }
            frames.push((start, 0));
            index[start] = next_index;
            lowlink[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;
            while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
                if *pos < succ(v).len() {
                    let w = succ(v)[*pos];
                    *pos += 1;
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&mut (parent, _)) = frames.last_mut() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        // v is the root of an SCC; pop it off.
                        let mut scc = Vec::new();
                        loop {
                            let w = stack.pop().unwrap_or(v);
                            on_stack[w] = false;
                            scc.push(w);
                            if w == v {
                                break;
                            }
                        }
                        let self_loop = scc.len() == 1 && succ(scc[0]).contains(&scc[0]);
                        if scc.len() > 1 || self_loop {
                            scc.sort_unstable();
                            let kinds: Vec<String> =
                                scc.iter().map(|&g| format!("g{g}:{}", self.gates[g].kind)).collect();
                            out.push(Diagnostic::new(
                                LintId::CombinationalLoop,
                                self.location(&format!("gates {:?}", scc)),
                                format!(
                                    "combinational cycle through {} gate(s): {}; the netlist has no stable \
                                     evaluation order",
                                    scc.len(),
                                    kinds.join(" -> ")
                                ),
                                "break the cycle with a register or rewire the feedback path",
                            ));
                        }
                    }
                }
            }
        }
    }

    /// `NET004`: gates must be forward-reachable from a primary input and
    /// backward-reachable from a primary output.
    fn check_reachability(&self, drivers: &[Vec<usize>], out: &mut Vec<Diagnostic>) {
        let mut readers = vec![Vec::new(); self.net_count];
        for (i, g) in self.gates.iter().enumerate() {
            for &inp in &g.inputs {
                if inp < self.net_count {
                    readers[inp].push(i);
                }
            }
        }
        // Forward: from PI nets through reader gates.
        let mut fwd_gate = vec![false; self.gates.len()];
        let mut fwd_net = vec![false; self.net_count];
        let mut work: Vec<usize> = self.primary_inputs.clone();
        for &n in &work {
            fwd_net[n] = true;
        }
        while let Some(net) = work.pop() {
            for &g in &readers[net] {
                if !fwd_gate[g] && self.gates[g].inputs.iter().all(|&i| fwd_net[i]) {
                    fwd_gate[g] = true;
                    let o = self.gates[g].output;
                    if !fwd_net[o] {
                        fwd_net[o] = true;
                        work.push(o);
                    }
                }
            }
        }
        // Backward: from PO nets through driver gates.
        let mut bwd_gate = vec![false; self.gates.len()];
        let mut bwd_net = vec![false; self.net_count];
        let mut work: Vec<usize> = self.primary_outputs.clone();
        for &n in &work {
            bwd_net[n] = true;
        }
        while let Some(net) = work.pop() {
            for &g in &drivers[net] {
                if !bwd_gate[g] {
                    bwd_gate[g] = true;
                    for &i in &self.gates[g].inputs {
                        if !bwd_net[i] {
                            bwd_net[i] = true;
                            work.push(i);
                        }
                    }
                }
            }
        }
        for (i, g) in self.gates.iter().enumerate() {
            if !fwd_gate[i] || !bwd_gate[i] {
                let why = match (fwd_gate[i], bwd_gate[i]) {
                    (false, true) => "not fed (transitively) by the primary inputs",
                    (true, false) => "feeds no primary output",
                    _ => "connected to neither primary inputs nor outputs",
                };
                out.push(Diagnostic::new(
                    LintId::UnreachableGate,
                    self.location(&format!("gate g{i} ({})", g.kind)),
                    format!("gate is {why}; it is dead logic the delay model still pays for"),
                    "remove the gate or wire its cone to the design's ports",
                ));
            }
        }
    }

    /// `NET005`: the CSR must encode exactly the edge list, net by net.
    fn check_csr(&self, out: &mut Vec<Diagnostic>) {
        let Some(csr) = &self.csr else { return };
        let loc = |what: &str| self.location(what);
        if csr.offsets.len() != self.net_count + 1 || csr.offsets.first() != Some(&0) {
            out.push(Diagnostic::new(
                LintId::FanoutCsrMismatch,
                loc("fanout CSR"),
                format!(
                    "offset table has {} entries for {} nets (expected {}, starting at 0)",
                    csr.offsets.len(),
                    self.net_count,
                    self.net_count + 1
                ),
                "rebuild the CSR from the netlist edge list",
            ));
            return;
        }
        if csr.offsets.windows(2).any(|w| w[0] > w[1])
            || csr.offsets.last().copied().unwrap_or(0) as usize != csr.targets.len()
        {
            out.push(Diagnostic::new(
                LintId::FanoutCsrMismatch,
                loc("fanout CSR"),
                "offset table is not monotone or does not cover the target array",
                "rebuild the CSR from the netlist edge list",
            ));
            return;
        }
        // Expected readers per net, from the gate edge list.
        let mut expected = vec![Vec::new(); self.net_count];
        for (i, g) in self.gates.iter().enumerate() {
            for &inp in &g.inputs {
                if inp < self.net_count {
                    expected[inp].push(i as u32);
                }
            }
        }
        for (net, want) in expected.iter().enumerate() {
            let lo = csr.offsets[net] as usize;
            let hi = csr.offsets[net + 1] as usize;
            let mut got: Vec<u32> = csr.targets[lo..hi].to_vec();
            got.sort_unstable();
            let mut want = want.clone();
            want.sort_unstable();
            if got != want {
                out.push(Diagnostic::new(
                    LintId::FanoutCsrMismatch,
                    loc(&format!("net {}", self.net_label(net))),
                    format!("CSR lists readers {got:?} but the edge list has {want:?}"),
                    "rebuild the CSR from the netlist edge list",
                ));
            }
        }
    }

    /// `NET006`: the logic cones feeding each `(left, right)` output pair
    /// must be structurally isomorphic — same gate kinds and topology,
    /// terminating in the *same* shared leaf nets.
    ///
    /// Cones are canonicalised by hash-consing: every net gets a shape id;
    /// primary inputs (and any undriven net) are unique leaves, a gate's
    /// shape is its kind plus its children's shapes, with children sorted
    /// for commutative kinds. Two cones are isomorphic iff their roots get
    /// the same shape id. Depths are compared too, so the diagnostic can
    /// report *how* the cones diverge.
    pub fn arbiter_symmetry(&self, pairs: &[(usize, usize)]) -> Vec<Diagnostic> {
        let drivers = self.drivers();
        let mut out = Vec::new();
        let mut ctx = ShapeCtx {
            interner: HashMap::new(),
            // Shape ids: leaves get `net_index`, interned gate shapes get
            // `net_count + k`, so the two ranges never collide.
            shape: vec![None; self.net_count],
            depth: vec![0; self.net_count],
            expanding: vec![false; self.net_count],
        };
        for (bit, &(left, right)) in pairs.iter().enumerate() {
            let sl = ctx.resolve(self, &drivers, left);
            let sr = ctx.resolve(self, &drivers, right);
            if sl != sr {
                let (dl, dr) = (ctx.depth[left], ctx.depth[right]);
                let detail = if dl != dr {
                    format!("logic depths differ: {dl} vs {dr} levels")
                } else {
                    "same depth but different gate kinds or topology".to_string()
                };
                out.push(Diagnostic::new(
                    LintId::ArbiterAsymmetry,
                    self.location(&format!(
                        "arbiter bit {bit} ({} vs {})",
                        self.net_label(left),
                        self.net_label(right)
                    )),
                    format!(
                        "the two racing cones are not isomorphic ({detail}); the race is structurally biased \
                         independent of process variation"
                    ),
                    "make both ALU cones gate-for-gate identical; only delay parameters may differ",
                ));
            }
        }
        out
    }
}

/// Memoised hash-consing state for cone canonicalisation.
struct ShapeCtx {
    interner: HashMap<(GateKind, Vec<u64>), u64>,
    shape: Vec<Option<u64>>,
    depth: Vec<u32>,
    /// Guards against combinational cycles (which `NET001` reports
    /// separately): a net re-entered while its own cone is being expanded
    /// is treated as a leaf so canonicalisation still terminates.
    expanding: Vec<bool>,
}

impl ShapeCtx {
    /// Iterative post-order: the canonical shape id of `root`'s cone.
    fn resolve(&mut self, model: &CircuitModel, drivers: &[Vec<usize>], root: usize) -> u64 {
        let mut stack = vec![(root, false)];
        while let Some((net, expanded)) = stack.pop() {
            if self.shape[net].is_some() {
                continue;
            }
            let Some(&gate) = drivers.get(net).and_then(|d| d.first()) else {
                // Primary input, floating or otherwise undriven net: a
                // unique leaf (identity matters — symmetric cones must
                // bottom out on the SAME shared nets).
                self.shape[net] = Some(net as u64);
                self.depth[net] = 0;
                continue;
            };
            let g = &model.gates[gate];
            if expanded {
                self.expanding[net] = false;
                let mut children: Vec<u64> = g.inputs.iter().map(|&i| self.shape[i].unwrap_or(i as u64)).collect();
                if g.kind.arity() == 2 && commutative(g.kind) {
                    children.sort_unstable();
                }
                let next = model.net_count as u64 + self.interner.len() as u64;
                let id = *self.interner.entry((g.kind, children)).or_insert(next);
                self.shape[net] = Some(id);
                self.depth[net] = g.inputs.iter().map(|&i| self.depth[i]).max().unwrap_or(0) + 1;
            } else {
                if self.expanding[net] {
                    // Cycle: break it by treating the net as a leaf.
                    self.shape[net] = Some(net as u64);
                    continue;
                }
                self.expanding[net] = true;
                stack.push((net, true));
                for &i in &g.inputs {
                    if self.shape[i].is_none() {
                        stack.push((i, false));
                    }
                }
            }
        }
        self.shape[root].unwrap_or(root as u64)
    }
}

fn commutative(kind: GateKind) -> bool {
    matches!(
        kind,
        GateKind::And2 | GateKind::Or2 | GateKind::Xor2 | GateKind::Nand2 | GateKind::Nor2 | GateKind::Xnor2
    )
}

/// Verifies a full ALU PUF design: structural checks plus arbiter symmetry
/// over every raced `(alu0, alu1)` output pair (the `w` sum bits and the
/// carry-out).
pub fn verify_alu_puf(name: impl Into<String>, design: &AluPufDesign) -> Vec<Diagnostic> {
    let model = CircuitModel::from_netlist_with_csr(name, design.netlist(), design.fanout_csr());
    let mut out = model.verify();
    let (sum0, sum1) = design.sum_buses();
    let mut pairs: Vec<(usize, usize)> = sum0.iter().zip(sum1).map(|(&a, &b)| (a.index(), b.index())).collect();
    // The couts are the last primary output of each ALU's port group.
    let pos = design.netlist().primary_outputs();
    let w = design.width();
    if pos.len() == 2 * (w + 1) {
        pairs.push((pos[w].index(), pos[2 * w + 1].index()));
    }
    out.extend(model.arbiter_symmetry(&pairs));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built, correct 1-bit half adder model.
    fn half_adder() -> CircuitModel {
        CircuitModel {
            name: "half-adder".into(),
            net_count: 4,
            gates: vec![
                CircuitGate { kind: GateKind::Xor2, inputs: vec![0, 1], output: 2 },
                CircuitGate { kind: GateKind::And2, inputs: vec![0, 1], output: 3 },
            ],
            primary_inputs: vec![0, 1],
            primary_outputs: vec![2, 3],
            net_names: vec![None; 4],
            csr: None,
        }
    }

    #[test]
    fn clean_model_verifies_clean() {
        assert!(half_adder().verify().is_empty());
    }

    #[test]
    fn detects_self_loop() {
        let mut m = half_adder();
        // Rewire the XOR to read its own output.
        m.gates[0].inputs = vec![2, 1];
        let d = m.verify();
        assert!(d.iter().any(|d| d.lint == LintId::CombinationalLoop), "{d:?}");
    }

    #[test]
    fn detects_two_gate_cycle() {
        let mut m = half_adder();
        // xor reads and's output, and reads xor's output.
        m.gates[0].inputs = vec![0, 3];
        m.gates[1].inputs = vec![2, 1];
        let d = m.verify();
        let loops: Vec<_> = d.iter().filter(|d| d.lint == LintId::CombinationalLoop).collect();
        assert_eq!(loops.len(), 1, "{d:?}");
        assert!(loops[0].message.contains("2 gate(s)"));
    }

    #[test]
    fn symmetric_cones_pass_asymmetric_fail() {
        // Two XOR cones over shared inputs; the right one gets an extra
        // buffer — exactly the arbiter-bias defect.
        let mut m = CircuitModel {
            name: "race".into(),
            net_count: 6,
            gates: vec![
                CircuitGate { kind: GateKind::Xor2, inputs: vec![0, 1], output: 2 },
                CircuitGate { kind: GateKind::Xor2, inputs: vec![1, 0], output: 3 },
            ],
            primary_inputs: vec![0, 1],
            primary_outputs: vec![2, 3],
            net_names: vec![None; 6],
            csr: None,
        };
        // Nets 4, 5 unused so far; make them a buffered variant.
        m.gates.push(CircuitGate { kind: GateKind::Buf, inputs: vec![3], output: 4 });
        m.primary_outputs = vec![2, 4];
        // Input order flipped on a commutative gate: still isomorphic...
        assert!(m.arbiter_symmetry(&[(2, 3)]).is_empty(), "commutative swap must not alarm");
        // ...but the buffered cone is not.
        let d = m.arbiter_symmetry(&[(2, 4)]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, LintId::ArbiterAsymmetry);
        assert!(d[0].message.contains("depths differ"), "{}", d[0].message);
        // Net 5 is floating; structural verify reports it.
        let s = m.verify();
        assert!(s.iter().any(|d| d.lint == LintId::FloatingNet));
    }
}
