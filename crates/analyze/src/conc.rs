//! Pass 4 — concurrency verifier over the fleet/transport/store/core
//! sources.
//!
//! PRs 6–8 made the reproduction genuinely concurrent: per-shard dispatch
//! pools, a background group-commit thread, a socket server whose handler
//! threads share a ticket table and a connection map. The deadlock- and
//! stall-freedom arguments for that code live in module docs; this pass
//! turns them into checked facts. It extracts a *lock-acquisition graph*
//! from the sources — every `sync::lock` / `sync::lock_ranked` wrapper
//! call, every inline poison-tolerant `.lock().unwrap_or_else(..)`,
//! resolved to a named **lock class** (see [`RANKS`]) — and lints:
//!
//! * `CONC001` — a cycle in the class graph, or an acquisition edge that
//!   contradicts the documented rank order (potential deadlock);
//! * `CONC002` — a lock held across a blocking operation (channel
//!   send/recv, fsync, socket I/O, `JoinHandle::join`, bounded-queue
//!   submit); `// analyze: allow(conc: reason)` acknowledges a reviewed
//!   site;
//! * `CONC003` — a raw `.lock().unwrap()` / `.expect()` (or any raw
//!   `.lock()` not immediately recovered with `unwrap_or_else`)
//!   bypassing the poison-tolerant wrapper;
//! * `CONC004` — `Condvar::wait`/`wait_timeout` outside a loop (misses
//!   spurious wakeups);
//! * `CONC005` — a spawned thread whose `JoinHandle` is discarded, so no
//!   join/drain path exists;
//! * `CONC006` — a lock site whose class cannot be resolved (warning:
//!   the graph is only as good as its node set).
//!
//! The rank order here is the *same table* the runtime witness in
//! `pufatt-fleet`'s `sync::rank` asserts under `debug_assertions`; the
//! static and dynamic orderings are pinned against each other by unit
//! tests on both sides. Like the taint pass this is a line-based lint,
//! not a proof: it works on comment/string-stripped source, skips
//! `#[cfg(test)]` modules, and trades soundness for zero dependencies
//! and zero false positives on the shipped tree.

use crate::taint::{clean_lines, collect_rs, is_ident_char, tokens};
use crate::{Diagnostic, LintId};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::PathBuf;

/// The documented lock classes and their acquisition ranks. A thread may
/// only acquire a lock whose rank is *strictly greater* than every lock
/// it already holds. The first seven classes (ranks 10–70) are enforced
/// at runtime by `pufatt-fleet`'s `sync::rank` witness; the store/core
/// classes cannot use that witness (the dependency points the other way)
/// so they are documented here and checked statically only.
pub const RANKS: &[(&str, u32)] = &[
    ("server_conns", 10),
    ("handler_handles", 20),
    ("ticket_table", 30),
    ("conn_writer", 40),
    ("service_slot", 50),
    ("registry_shard", 60),
    ("pool_receiver", 70),
    ("store_inner", 80),
    ("vfs_handles", 90),
    ("vfs_state", 95),
    ("crp_cache", 100),
    ("device_puf", 105),
    ("shim_budget", 110),
];

/// Maps the receiver/argument token at a lock site to its class. `""`
/// means "generic wrapper parameter" (the `m` of the `sync::lock`
/// helpers themselves) which participates in no ordering.
const CLASS_MAP: &[(&str, &str)] = &[
    ("conns", "server_conns"),
    ("handler_handles", "handler_handles"),
    ("tickets", "ticket_table"),
    ("tickets_job", "ticket_table"),
    ("table", "ticket_table"),
    ("stream", "conn_writer"),
    ("slots", "service_slot"),
    ("shard", "registry_shard"),
    ("s", "registry_shard"),
    ("receiver", "pool_receiver"),
    ("inner", "store_inner"),
    ("handles", "vfs_handles"),
    ("state", "vfs_state"),
    ("cache", "crp_cache"),
    // `SharedDevicePuf` is a newtype; its lock is tuple field `.0`.
    ("0", "device_puf"),
    ("budget", "shim_budget"),
    // Generic parameter names of the poison-tolerant wrapper fns
    // themselves: they alias every class, so they belong to none.
    ("m", ""),
    ("mutex", ""),
];

/// Leaf I/O classes whose entire purpose is to serialize a blocking
/// commit path (the durable store's mutex *is* the commit ordering
/// point). They are exempt from `CONC002` but still feed the cycle and
/// rank analysis, so an ordering regression against them is caught.
const BLOCKING_EXEMPT: &[&str] = &["store_inner", "vfs_handles", "vfs_state"];

/// Operations that can block the calling thread for an unbounded or
/// I/O-scale time.
const BLOCKING_OPS: &[(&str, &str)] = &[
    (".send(", "channel/socket send"),
    (".recv(", "channel recv"),
    (".recv_timeout(", "channel recv"),
    (".join()", "thread join"),
    (".sync(", "fsync"),
    (".sync_all(", "fsync"),
    (".sync_data(", "fsync"),
    (".append_synced(", "synced append (fsync)"),
    (".flush(", "flush/fsync"),
    (".checkpoint(", "checkpoint (fsync)"),
    ("write_frame(", "socket write"),
    ("read_frame(", "socket read"),
    (".accept(", "socket accept"),
    ("thread::sleep", "sleep"),
    (".submit(", "bounded-queue submit"),
];

/// Interprocedural summaries: a method call through one of these
/// receivers momentarily acquires the named class inside the callee.
/// This small table is what lets the pass see `service.enroll(..)` under
/// a ticket-table guard as a `ticket_table -> service_slot` edge without
/// whole-program analysis.
const CALL_SUMMARIES: &[(&str, &str)] = &[
    ("registry.", "registry_shard"),
    ("service.", "service_slot"),
    ("store.", "store_inner"),
    ("journal.", "store_inner"),
];

/// A directed acquisition edge between two lock classes: `from` was held
/// while `to` was acquired at `location`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// The class already held.
    pub from: String,
    /// The class acquired under it.
    pub to: String,
    /// `file:line` of the inner acquisition.
    pub location: String,
}

/// Per-file scan result: local diagnostics plus the acquisition edges
/// this file contributes to the global class graph.
#[derive(Debug, Default)]
pub struct FileScan {
    /// CONC002–CONC006 findings local to the file.
    pub diagnostics: Vec<Diagnostic>,
    /// Acquisition edges for the cross-file CONC001 graph check.
    pub edges: Vec<LockEdge>,
}

fn rank_of(class: &str) -> Option<u32> {
    RANKS.iter().find(|(c, _)| *c == class).map(|&(_, r)| r)
}

fn map_class(token: &str) -> Option<&'static str> {
    CLASS_MAP.iter().find(|(t, _)| *t == token).map(|&(_, c)| c)
}

/// How long an acquisition's guard lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GuardKind {
    /// `let g = lock(..);` — lives to the end of the enclosing block.
    Let,
    /// Acquired in a `for`/`if`/`while`/`match` header (or any line that
    /// opens a brace) — lives to the matching close brace. This matches
    /// Rust's temporary-lifetime rule for scrutinees and loop headers.
    Header,
    /// A statement temporary — lives to the next `;` on its line.
    Temp,
    /// A summarized callee acquisition — held only inside the call.
    Momentary,
}

/// One lock acquisition found on a line.
struct Acquisition {
    col: usize,
    class: Option<String>,
    kind: GuardKind,
    raw_token: String,
}

/// A guard known to be live across lines.
struct Held {
    class: Option<String>,
    name: Option<String>,
    /// Dies when the brace depth after a line drops below this.
    min_depth: i32,
    location: String,
}

/// Last identifier segment of a lock-site expression: `&self.slots[..]`
/// → `slots`, `self.shard(id)` → `shard`, `receiver` → `receiver`.
fn expr_token(expr: &str) -> String {
    let expr = expr
        .trim()
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim_start_matches('*');
    let cut = expr.find(['[', '(']).unwrap_or(expr.len());
    tokens(&expr[..cut])
        .map(|(_, t)| t)
        .filter(|t| !matches!(*t, "self" | "crate" | "mut" | "sync"))
        .last()
        .unwrap_or("")
        .to_string()
}

/// Identifier immediately left of byte offset `at` (receiver of a `.`
/// call): for `self.0.lock()` with `at` on the final `.`, yields `0`.
fn receiver_token(code: &str, at: usize) -> String {
    let bytes = code.as_bytes();
    let mut i = at;
    while i > 0 && is_ident_char(bytes[i - 1] as char) {
        i -= 1;
    }
    code[i..at].to_string()
}

/// Byte offset of the `)` matching the `(` at `open`, if it is on this
/// line.
fn paren_close(code: &str, open: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    for (off, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(off);
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts the parenthesized argument span starting at `open` (the
/// byte offset of `(`), staying on one line.
fn paren_arg(code: &str, open: usize) -> &str {
    match paren_close(code, open) {
        Some(close) => &code[open + 1..close],
        None => &code[open + 1..],
    }
}

/// Refines the line-level guard kind for one acquisition: on a `let`
/// line the guard is only block-scoped if the lock call is the whole
/// right-hand side (`let g = lock(x);`); a trailing method chain
/// (`let n = lock(x).len();`) makes it a statement temporary.
fn kind_at(code: &str, close: Option<usize>, outer: GuardKind) -> GuardKind {
    if outer != GuardKind::Let {
        return outer;
    }
    match close {
        Some(c) => {
            let rest = code[c + 1..].trim_start();
            if rest.is_empty() || rest.starts_with(';') || rest.starts_with('?') {
                GuardKind::Let
            } else {
                GuardKind::Temp
            }
        }
        None => GuardKind::Let,
    }
}

/// Scans one file, producing local diagnostics and acquisition edges.
pub fn scan_source(name: &str, source: &str) -> FileScan {
    let cleaned = clean_lines(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut out = FileScan::default();

    let mut depth: i32 = 0;
    let mut skip_exit: Option<i32> = None;
    let mut cfg_test_pending = false;
    let mut held: Vec<Held> = Vec::new();
    let mut loop_stack: Vec<i32> = Vec::new();
    // Head of the current statement, for spawn-binding and let checks on
    // continuation lines of a builder chain.
    let mut stmt_head = String::new();
    let mut new_stmt = true;

    for (idx, clean) in cleaned.iter().enumerate() {
        let lineno = idx + 1;
        let code = clean.code.as_str();
        let raw = raw_lines.get(idx).copied().unwrap_or("");
        let prev = if idx > 0 { raw_lines[idx - 1] } else { "" };
        let allow = raw.contains("analyze: allow(conc") || prev.contains("analyze: allow(conc");
        let loc = format!("{name}:{lineno}");
        let trimmed = code.trim();

        let depth_before = depth;
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }

        // ---- test-module skipping (same protocol as the taint pass) ---
        if let Some(exit) = skip_exit {
            if depth <= exit {
                skip_exit = None;
            }
            continue;
        }
        if trimmed.contains("#[cfg(test)]") {
            cfg_test_pending = true;
        }
        if cfg_test_pending && !trimmed.is_empty() && !trimmed.contains("#[cfg(test)]") && !trimmed.starts_with("#[") {
            cfg_test_pending = false;
            if depth > depth_before {
                skip_exit = Some(depth_before);
            }
            continue;
        }

        if new_stmt && !trimmed.is_empty() {
            stmt_head = trimmed.to_string();
        }
        let head = stmt_head.as_str();
        new_stmt = trimmed.is_empty()
            || trimmed.ends_with(';')
            || trimmed.ends_with('{')
            || trimmed.ends_with('}')
            || trimmed.ends_with(']')
            || trimmed.ends_with(',');

        let net_open = depth > depth_before;
        let is_let = head.starts_with("let ");
        let let_name = if is_let {
            let rest = head[4..].trim_start().trim_start_matches("mut ").trim_start();
            let end = rest.find(|c: char| !is_ident_char(c)).unwrap_or(rest.len());
            Some(rest[..end].to_string()).filter(|n| !n.is_empty() && n != "_")
        } else {
            None
        };

        // ---- loop tracking for CONC004 --------------------------------
        if net_open
            && (trimmed.starts_with("while ")
                || trimmed.starts_with("for ")
                || trimmed.starts_with("loop")
                || trimmed.contains(" while ")
                || trimmed.contains(" loop {"))
        {
            loop_stack.push(depth_before);
        }

        // ---- collect this line's acquisitions -------------------------
        let outer_kind = if net_open {
            GuardKind::Header
        } else if let_name.is_some() {
            GuardKind::Let
        } else {
            GuardKind::Temp
        };
        let mut acquisitions: Vec<Acquisition> = Vec::new();

        // `lock(expr)` / `sync::lock(expr)` wrapper calls.
        let mut search = 0;
        while let Some(rel) = code[search..].find("lock(") {
            let at = search + rel;
            search = at + 5;
            let before = code[..at].chars().next_back();
            if matches!(before, Some(c) if is_ident_char(c) || c == '.') {
                continue; // `.lock(` or part of a longer identifier
            }
            let token = expr_token(paren_arg(code, at + 4));
            acquisitions.push(Acquisition {
                col: at,
                class: map_class(&token).map(String::from).filter(|c| !c.is_empty()),
                kind: kind_at(code, paren_close(code, at + 4), outer_kind),
                raw_token: token,
            });
        }

        // `lock_ranked(expr, rank::CLASS)` wrapper calls: the class is
        // named by the rank constant, so resolution cannot drift from
        // the runtime witness.
        let mut search = 0;
        while let Some(rel) = code[search..].find("lock_ranked(") {
            let at = search + rel;
            search = at + 12;
            let token = code[at..].find("rank::").map_or(String::new(), |r| {
                let after = &code[at + r + 6..];
                let end = after.find(|c: char| !is_ident_char(c)).unwrap_or(after.len());
                after[..end].to_lowercase()
            });
            let known = rank_of(&token).is_some();
            acquisitions.push(Acquisition {
                col: at,
                class: Some(token.clone()).filter(|_| known),
                kind: kind_at(code, paren_close(code, at + 11), outer_kind),
                raw_token: token,
            });
        }

        // Raw `.lock()` sites: poison-tolerant `unwrap_or_else` is an
        // acquisition; anything else bypasses the wrapper (CONC003).
        let mut search = 0;
        while let Some(rel) = code[search..].find(".lock()") {
            let at = search + rel;
            search = at + 7;
            let after = &code[at + 7..];
            if after.starts_with(".unwrap_or_else(") {
                let token = receiver_token(code, at);
                acquisitions.push(Acquisition {
                    col: at,
                    class: map_class(&token).map(String::from).filter(|c| !c.is_empty()),
                    kind: kind_at(code, paren_close(code, at + 7 + 15), outer_kind),
                    raw_token: token,
                });
            } else if !allow {
                out.diagnostics.push(Diagnostic::new(
                    LintId::RawLockUnwrap,
                    loc.clone(),
                    "raw `.lock()` bypasses the poison-tolerant `sync::lock` wrapper",
                    "use `sync::lock`/`sync::lock_ranked`, or `.unwrap_or_else(|e| e.into_inner())`",
                ));
            }
        }

        // Summarized callee acquisitions (momentary).
        for &(pattern, class) in CALL_SUMMARIES {
            let mut search = 0;
            while let Some(rel) = code[search..].find(pattern) {
                let at = search + rel;
                search = at + pattern.len();
                // Require `recv.method(` shape so field mentions and
                // `Arc::clone(&x.store)` do not count as calls.
                let after = &code[at + pattern.len()..];
                let end = after.find(|c: char| !is_ident_char(c)).unwrap_or(after.len());
                if end == 0 || !after[end..].starts_with('(') {
                    continue;
                }
                acquisitions.push(Acquisition {
                    col: at,
                    class: Some(class.to_string()),
                    kind: GuardKind::Momentary,
                    raw_token: pattern.trim_end_matches('.').to_string(),
                });
            }
        }
        acquisitions.sort_by_key(|a| a.col);

        // ---- CONC006 + edges ------------------------------------------
        for acq in &acquisitions {
            if acq.class.is_none()
                && acq.kind != GuardKind::Momentary
                && !acq.raw_token.is_empty()
                && !allow
                && map_class(&acq.raw_token) != Some("")
            {
                out.diagnostics.push(
                    Diagnostic::new(
                        LintId::UnknownLockClass,
                        loc.clone(),
                        format!("lock site `{}` resolves to no documented lock class", acq.raw_token),
                        "add the class to the rank table (analyze `conc::RANKS` + `fleet::sync::rank`)",
                    )
                    .with_classes(vec![acq.raw_token.clone()]),
                );
            }
            if let Some(to) = &acq.class {
                for h in held.iter().filter(|h| h.class.is_some()) {
                    let from = h.class.clone().unwrap_or_default();
                    if from != *to {
                        out.edges.push(LockEdge { from, to: to.clone(), location: loc.clone() });
                    }
                }
                // Same-line nesting: a Header/Let acquired earlier on
                // this line is held for later acquisitions.
                for prior in acquisitions.iter().filter(|p| p.col < acq.col) {
                    if matches!(prior.kind, GuardKind::Header | GuardKind::Let) {
                        if let Some(from) = &prior.class {
                            if from != to {
                                out.edges
                                    .push(LockEdge { from: from.clone(), to: to.clone(), location: loc.clone() });
                            }
                        }
                    }
                }
            }
        }

        // ---- CONC002: blocking ops under a lock -----------------------
        for &(op, what) in BLOCKING_OPS {
            let mut search = 0;
            while let Some(rel) = code[search..].find(op) {
                let at = search + rel;
                search = at + op.len();
                if op == ".submit(" && code[..at].ends_with("try") {
                    continue; // `.try_submit(` never blocks
                }
                let mut offenders: Vec<(String, String)> = held
                    .iter()
                    .filter(|h| !h.class.as_deref().is_some_and(|c| BLOCKING_EXEMPT.contains(&c)))
                    .map(|h| (h.class.clone().unwrap_or_else(|| "?".into()), h.location.clone()))
                    .collect();
                for acq in &acquisitions {
                    if acq.col >= at || acq.kind == GuardKind::Momentary {
                        continue;
                    }
                    // A statement temporary only pins the op if no `;`
                    // separates them.
                    if acq.kind == GuardKind::Temp && code[acq.col..at].contains(';') {
                        continue;
                    }
                    if acq.class.as_deref().is_some_and(|c| BLOCKING_EXEMPT.contains(&c)) {
                        continue;
                    }
                    offenders.push((acq.class.clone().unwrap_or_else(|| "?".into()), loc.clone()));
                }
                if let Some((class, where_held)) = offenders.first() {
                    if !allow {
                        out.diagnostics.push(
                            Diagnostic::new(
                                LintId::LockAcrossBlocking,
                                loc.clone(),
                                format!("lock `{class}` (held since {where_held}) is held across {what} `{op}`"),
                                "release the lock before blocking, or pin a reviewed site with `// analyze: allow(conc: ...)`",
                            )
                            .with_classes(vec![class.clone()]),
                        );
                    }
                }
            }
        }

        // ---- CONC004: condvar wait outside a loop ---------------------
        for pat in [".wait(", ".wait_timeout("] {
            if code.contains(pat) && loop_stack.is_empty() && !allow {
                out.diagnostics.push(Diagnostic::new(
                    LintId::CondvarNoLoop,
                    loc.clone(),
                    "Condvar wait without an enclosing re-check loop (spurious wakeups)",
                    "wrap the wait in `while !condition { .. }`",
                ));
            }
        }

        // ---- CONC005: detached spawn ----------------------------------
        if (code.contains("thread::spawn(") || code.contains(".spawn(")) && !allow {
            let spawn_at = code.find("thread::spawn(").or_else(|| code.find(".spawn(")).unwrap_or(0);
            // The spawn's own statement head: after the last `{`/`;` on
            // this line before the spawn, else the multi-line head.
            let local = code[..spawn_at]
                .rfind(['{', ';'])
                .map(|p| code[p + 1..].trim_start())
                .filter(|h| !h.is_empty());
            let head = local.unwrap_or(head);
            let discarded = head.starts_with("let _ =")
                || head.starts_with("let _:")
                || head.starts_with("thread::spawn")
                || head.starts_with("std::thread::spawn")
                || head.starts_with("drop(");
            if discarded {
                out.diagnostics.push(Diagnostic::new(
                    LintId::DetachedThread,
                    loc.clone(),
                    "spawned thread's JoinHandle is discarded: no join/drain path",
                    "bind the handle and join it on shutdown, or pin with `// analyze: allow(conc: ...)`",
                ));
            }
        }

        // ---- guard lifetime upkeep ------------------------------------
        if let Some(dpos) = code.find("drop(") {
            let dropped = expr_token(paren_arg(code, dpos + 4));
            held.retain(|h| h.name.as_deref() != Some(dropped.as_str()));
        }
        for acq in acquisitions {
            match acq.kind {
                GuardKind::Let => held.push(Held {
                    class: acq.class,
                    name: let_name.clone(),
                    min_depth: depth_before,
                    location: loc.clone(),
                }),
                GuardKind::Header => held.push(Held {
                    class: acq.class,
                    name: None,
                    min_depth: depth_before + 1,
                    location: loc.clone(),
                }),
                GuardKind::Temp | GuardKind::Momentary => {}
            }
        }
        held.retain(|h| depth >= h.min_depth);
        while loop_stack.last().is_some_and(|&top| depth <= top) {
            loop_stack.pop();
        }
    }
    out
}

/// Cross-file graph analysis: lock-order cycles and rank-order
/// violations over the accumulated acquisition edges.
pub fn graph_check(edges: &[LockEdge]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // Dedup edges, keeping the first location seen for each class pair.
    let mut by_pair: BTreeMap<(String, String), String> = BTreeMap::new();
    for e in edges {
        by_pair
            .entry((e.from.clone(), e.to.clone()))
            .or_insert_with(|| e.location.clone());
    }

    // Rank-order violations (covers every 2-cycle as well).
    for ((from, to), loc) in &by_pair {
        if let (Some(rf), Some(rt)) = (rank_of(from), rank_of(to)) {
            if rf >= rt {
                out.push(
                    Diagnostic::new(
                        LintId::LockOrderCycle,
                        loc.clone(),
                        format!("`{to}` (rank {rt}) acquired while holding `{from}` (rank {rf}): violates the documented rank order"),
                        "acquire locks in ascending rank order (DESIGN.md lock-class table), or re-rank the classes",
                    )
                    .with_classes(vec![from.clone(), to.clone()]),
                );
            }
        }
    }

    // General cycle detection, for classes outside the rank table.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in by_pair.keys() {
        adj.entry(from).or_default().push(to);
    }
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in adj.keys().collect::<Vec<_>>().iter() {
        let mut path: Vec<&str> = vec![start];
        let mut stack: Vec<Vec<&str>> = vec![adj.get(start).cloned().unwrap_or_default()];
        while let Some(frame) = stack.last_mut() {
            let Some(next) = frame.pop() else {
                path.pop();
                stack.pop();
                continue;
            };
            if let Some(pos) = path.iter().position(|&n| n == next) {
                let mut cycle: Vec<String> = path[pos..].iter().map(|s| (*s).to_string()).collect();
                let display = cycle.clone();
                cycle.sort();
                // Rank violations above already cover ranked cycles.
                let all_ranked = display.iter().all(|c| rank_of(c).is_some());
                if reported.insert(cycle) && !all_ranked {
                    let loc = by_pair
                        .get(&(display[0].clone(), display.get(1).cloned().unwrap_or_else(|| display[0].clone())))
                        .cloned()
                        .unwrap_or_default();
                    out.push(
                        Diagnostic::new(
                            LintId::LockOrderCycle,
                            loc,
                            format!("lock-order cycle between classes: {}", display.join(" -> ")),
                            "break the cycle by fixing one acquisition order",
                        )
                        .with_classes(display),
                    );
                }
                continue;
            }
            if path.len() > 32 {
                continue; // defensive bound; class graphs are tiny
            }
            path.push(next);
            stack.push(adj.get(next).cloned().unwrap_or_default());
        }
    }
    out
}

/// Scans a set of in-memory sources (used by the golden tests).
pub fn scan_sources(files: &[(&str, &str)]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut edges = Vec::new();
    for (name, source) in files {
        let scan = scan_source(name, source);
        diags.extend(scan.diagnostics);
        edges.extend(scan.edges);
    }
    diags.extend(graph_check(&edges));
    diags
}

/// Recursively scans every `.rs` file under the given roots.
pub fn scan_paths(roots: &[PathBuf]) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for root in roots {
        collect_rs(root, &mut files)?;
    }
    files.sort();
    let mut diags = Vec::new();
    let mut edges = Vec::new();
    for f in files {
        let source = fs::read_to_string(&f)?;
        let scan = scan_source(&f.display().to_string(), &source);
        diags.extend(scan.diagnostics);
        edges.extend(scan.edges);
    }
    diags.extend(graph_check(&edges));
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lints(src: &str) -> Vec<LintId> {
        scan_sources(&[("fixture.rs", src)]).into_iter().map(|d| d.lint).collect()
    }

    #[test]
    fn rank_table_matches_the_runtime_witness() {
        // Pinned against `pufatt-fleet`'s `sync::rank` constants (which
        // carry the mirror-image assertion); if either side re-ranks a
        // class without the other, one of the two tests fails.
        let expect = [
            ("server_conns", 10),
            ("handler_handles", 20),
            ("ticket_table", 30),
            ("conn_writer", 40),
            ("service_slot", 50),
            ("registry_shard", 60),
            ("pool_receiver", 70),
        ];
        for (class, rank) in expect {
            assert_eq!(rank_of(class), Some(rank), "class {class}");
        }
    }

    #[test]
    fn rank_violation_and_cycle_are_flagged() {
        let src = "fn a(&self) {\n    let g = lock(&self.inner);\n    let h = lock(&self.tickets);\n}\n";
        assert!(lints(src).contains(&LintId::LockOrderCycle), "store_inner(80) -> ticket_table(30)");
        let clean = "fn a(&self) {\n    let g = lock(&self.tickets);\n    let h = lock(&self.inner);\n}\n";
        assert!(!lints(clean).contains(&LintId::LockOrderCycle));
    }

    #[test]
    fn blocking_under_lock_flagged_and_allow_pin_respected() {
        let src = "fn f(&self) {\n    let g = lock(&self.slots);\n    self.tx.send(1).ok();\n}\n";
        assert!(lints(src).contains(&LintId::LockAcrossBlocking));
        let pinned = "fn f(&self) {\n    let g = lock(&self.slots);\n    self.tx.send(1).ok(); // analyze: allow(conc: reviewed)\n}\n";
        assert!(!lints(pinned).contains(&LintId::LockAcrossBlocking));
        // A statement temporary released before the blocking call is clean.
        let seq = "fn f(&self) {\n    lock(&self.slots).clear();\n    self.tx.send(1).ok();\n}\n";
        assert!(!lints(seq).contains(&LintId::LockAcrossBlocking));
        // ...but a chained blocking call on the guard itself is not.
        let chain = "fn f(&self) {\n    let x = lock(receiver).recv();\n}\n";
        assert!(lints(chain).contains(&LintId::LockAcrossBlocking));
    }

    #[test]
    fn raw_lock_flagged_poison_tolerant_inline_is_not() {
        assert!(lints("fn f(&self) { self.m.lock().unwrap(); }").contains(&LintId::RawLockUnwrap));
        assert!(lints("fn f(&self) { self.m.lock().expect(\"x\"); }").contains(&LintId::RawLockUnwrap));
        let tolerant = "fn f(&self) { let g = self.budget.lock().unwrap_or_else(|e| e.into_inner()); }";
        assert!(!lints(tolerant).contains(&LintId::RawLockUnwrap));
    }

    #[test]
    fn condvar_wait_needs_a_loop() {
        let bare = "fn f(&self) {\n    let g = self.cv.wait(guard);\n}\n";
        assert!(lints(bare).contains(&LintId::CondvarNoLoop));
        let looped = "fn f(&self) {\n    while !done {\n        guard = self.cv.wait_timeout(guard, t).0;\n    }\n}\n";
        assert!(!lints(looped).contains(&LintId::CondvarNoLoop));
    }

    #[test]
    fn detached_spawn_flagged_bound_spawn_is_not() {
        assert!(lints("fn f() { let _ = std::thread::Builder::new().spawn(|| {}); }").contains(&LintId::DetachedThread));
        assert!(lints("fn f() { thread::spawn(|| {}); }").contains(&LintId::DetachedThread));
        assert!(!lints("fn f() { let h = thread::spawn(|| {}); h.join().ok(); }").contains(&LintId::DetachedThread));
    }

    #[test]
    fn unknown_class_is_a_warning_known_and_wrapper_param_are_not() {
        assert!(lints("fn f(&self) { let g = lock(&self.mystery); }").contains(&LintId::UnknownLockClass));
        assert!(!lints("fn f(&self) { let g = lock(&self.slots); }").contains(&LintId::UnknownLockClass));
        // The wrapper's own generic parameter participates in no class.
        assert!(!lints("fn lockit(m: &Mutex<u32>) { let g = m.lock().unwrap_or_else(|e| e.into_inner()); }")
            .contains(&LintId::UnknownLockClass));
    }

    #[test]
    fn call_summaries_create_edges() {
        // service_slot(50) held while calling into the registry (60): in
        // order. The reverse would be a rank violation.
        let good = "fn f(&self) {\n    let g = lock(&self.slots[i]);\n    self.registry.enroll(id);\n}\n";
        assert!(!lints(good).contains(&LintId::LockOrderCycle));
        let bad = "fn f(&self) {\n    let g = lock(self.shard(id));\n    self.service.attest(id);\n}\n";
        assert!(lints(bad).contains(&LintId::LockOrderCycle), "registry_shard(60) -> service_slot(50)");
    }

    #[test]
    fn test_modules_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(&self) { self.m.lock().unwrap(); }\n}\n";
        assert!(lints(src).is_empty());
    }
}
