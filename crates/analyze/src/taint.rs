//! Pass 2 — secret-taint lint over Rust sources.
//!
//! The PUFatt protocol is only as good as the secrecy of the raw PUF
//! response and of the values derived from it before obfuscation. This
//! pass performs a light-weight source scan over `crates/core` and
//! `crates/ecc` (or any roots the caller supplies) that tracks
//! *secret-looking identifiers* — raw responses, noisy responses,
//! anything named `secret*`/`raw_*` — and flags places where such a value
//! can escape or be mishandled:
//!
//! * `TNT001` — a secret identifier flows into a formatting macro
//!   (`format!`, `write!`, `panic!`, the `assert*` family, …), including
//!   inline `{capture}` interpolation inside format strings;
//! * `TNT002` — a type whose fields hold secrets derives `Debug`, or a
//!   hand-written `Debug`/`Display` impl touches a secret;
//! * `TNT003` — a secret identifier is moved into an `Err(..)` payload,
//!   where it will surface in logs far from the call site;
//! * `TNT004` — a secret is compared with `==`/`!=` (non-constant-time);
//!   `// analyze: allow(ct: reason)` acknowledges a reviewed site;
//! * `TNT005` — `.unwrap()`/`.expect()` on a non-test library path without
//!   a `// analyze: allow(panic: reason)` marker (on the same line or the
//!   line directly above). Panics on protocol-reachable paths are
//!   remote-triggerable aborts, so every remaining one must be pinned
//!   with a justification.
//!
//! This is a lint, not a proof: it works line-by-line on comment- and
//! string-stripped source, skips `#[cfg(test)]` modules, and trades
//! soundness for zero dependencies and zero false positives on the
//! shipped tree (enforced by the clean-run golden test).

use crate::{Diagnostic, LintId};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Formatting/printing macros whose arguments end up in human-readable
/// output.
const FORMAT_MACROS: &[&str] = &[
    "format!",
    "write!",
    "writeln!",
    "print!",
    "println!",
    "eprint!",
    "eprintln!",
    "panic!",
    "assert!",
    "assert_eq!",
    "assert_ne!",
    "todo!",
    "unimplemented!",
];

/// Methods that project a secret onto public metadata (sizes, emptiness);
/// comparing these is not a secret-dependent branch.
const PUBLIC_PROJECTIONS: &[&str] = &[".len(", ".is_empty(", ".width(", ".n(", ".k(", ".count_ones("];

pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Does this identifier look like it names secret material?
fn is_secret_ident(tok: &str) -> bool {
    if tok.is_empty() || tok.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return false;
    }
    tok == "raw" || tok == "raw_resp" || tok == "noisy_response" || tok.starts_with("raw_") || tok.contains("secret")
}

/// Does this *field name* hold secret material?
fn is_secret_field(name: &str) -> bool {
    name.starts_with("raw_") || name.contains("secret") || name == "noisy_response"
}

pub(crate) fn tokens(s: &str) -> impl Iterator<Item = (usize, &str)> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, c) in s.char_indices() {
        if is_ident_char(c) {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(b) = start.take() {
            out.push((b, &s[b..i]));
        }
    }
    if let Some(b) = start {
        out.push((b, &s[b..]));
    }
    out.into_iter()
}

fn first_secret_at_or_after(s: &str, from: usize) -> Option<(usize, &str)> {
    tokens(s).find(|(i, t)| *i >= from && is_secret_ident(t))
}

/// One source line in three views sharing character positions:
/// `code` (comments and string contents blanked), `fmt` (like `code` but
/// `{capture}` interiors of format strings kept), and the brace-depth
/// delta of the line.
pub(crate) struct CleanLine {
    pub(crate) code: String,
    pub(crate) fmt: String,
}

/// Strips comments and string literals from a whole file, preserving line
/// structure and column positions.
pub(crate) fn clean_lines(source: &str) -> Vec<CleanLine> {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Vec::new();
    let mut code = String::new();
    let mut fmt = String::new();
    let mut i = 0;
    let mut block_depth = 0usize;
    let mut line_comment = false;
    let mut in_string = false;
    let mut in_capture = false;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            out.push(CleanLine {
                code: std::mem::take(&mut code),
                fmt: std::mem::take(&mut fmt),
            });
            line_comment = false;
            i += 1;
            continue;
        }
        let blank = |code: &mut String, fmt: &mut String| {
            code.push(' ');
            fmt.push(' ');
        };
        if line_comment {
            blank(&mut code, &mut fmt);
            i += 1;
        } else if block_depth > 0 {
            if c == '*' && next == Some('/') {
                block_depth -= 1;
                blank(&mut code, &mut fmt);
                blank(&mut code, &mut fmt);
                i += 2;
            } else if c == '/' && next == Some('*') {
                block_depth += 1;
                blank(&mut code, &mut fmt);
                blank(&mut code, &mut fmt);
                i += 2;
            } else {
                blank(&mut code, &mut fmt);
                i += 1;
            }
        } else if in_string {
            if c == '\\' {
                blank(&mut code, &mut fmt);
                if next.is_some() && next != Some('\n') {
                    blank(&mut code, &mut fmt);
                    i += 1;
                }
                i += 1;
            } else if c == '"' {
                in_string = false;
                in_capture = false;
                code.push('"');
                fmt.push('"');
                i += 1;
            } else if c == '{' {
                if next == Some('{') {
                    // `{{` is a literal brace, not a capture.
                    blank(&mut code, &mut fmt);
                    blank(&mut code, &mut fmt);
                    i += 2;
                } else {
                    in_capture = true;
                    code.push(' ');
                    fmt.push('{');
                    i += 1;
                }
            } else if c == '}' {
                in_capture = false;
                code.push(' ');
                fmt.push('}');
                i += 1;
            } else {
                code.push(' ');
                fmt.push(if in_capture { c } else { ' ' });
                i += 1;
            }
        } else if c == '/' && next == Some('/') {
            line_comment = true;
        } else if c == '/' && next == Some('*') {
            block_depth = 1;
            blank(&mut code, &mut fmt);
            blank(&mut code, &mut fmt);
            i += 2;
        } else if c == '"' {
            in_string = true;
            code.push('"');
            fmt.push('"');
            i += 1;
        } else if c == '\'' {
            // Distinguish char literals from lifetimes.
            if next == Some('\\') {
                code.push(c);
                fmt.push(c);
                i += 1;
                while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
                    code.push(chars[i]);
                    fmt.push(chars[i]);
                    i += 1;
                }
            } else if chars.get(i + 2) == Some(&'\'') {
                for k in 0..3 {
                    code.push(chars[i + k]);
                    fmt.push(chars[i + k]);
                }
                i += 3;
            } else {
                code.push(c);
                fmt.push(c);
                i += 1;
            }
        } else {
            code.push(c);
            fmt.push(c);
            i += 1;
        }
    }
    if !code.is_empty() || !fmt.is_empty() {
        out.push(CleanLine { code, fmt });
    }
    out
}

/// Scans one file's source text. `name` is used in diagnostic locations.
pub fn scan_source(name: &str, source: &str) -> Vec<Diagnostic> {
    let cleaned = clean_lines(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();

    let mut depth: i32 = 0;
    // Brace depth at which a `#[cfg(test)] mod` opened; lines are skipped
    // until the depth falls back to it.
    let mut skip_exit: Option<i32> = None;
    let mut cfg_test_pending = false;
    let mut derive_debug_pending = false;
    // (exit depth, struct name) while inside a `#[derive(Debug)]` item.
    let mut debug_struct: Option<(i32, String)> = None;
    // Exit depth while inside a hand-written Debug/Display impl.
    let mut fmt_impl: Option<i32> = None;

    for (idx, clean) in cleaned.iter().enumerate() {
        let lineno = idx + 1;
        let code = clean.code.as_str();
        let raw = raw_lines.get(idx).copied().unwrap_or("");
        // A marker pins the line it is on, or the line directly below it.
        let prev = if idx > 0 { raw_lines[idx - 1] } else { "" };
        let allow_panic = raw.contains("analyze: allow(panic") || prev.contains("analyze: allow(panic");
        let allow_ct = raw.contains("analyze: allow(ct") || prev.contains("analyze: allow(ct");
        let loc = || format!("{name}:{lineno}");
        let trimmed = code.trim();

        let depth_before = depth;
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }

        // ---- test-module skipping -------------------------------------
        if let Some(exit) = skip_exit {
            if depth <= exit {
                skip_exit = None;
            }
            continue;
        }
        if trimmed.contains("#[cfg(test)]") {
            cfg_test_pending = true;
        }
        if cfg_test_pending && (trimmed.starts_with("mod ") || trimmed.contains(" mod ")) {
            cfg_test_pending = false;
            if depth > depth_before {
                skip_exit = Some(depth_before);
            }
            continue;
        }
        if cfg_test_pending && !trimmed.is_empty() && !trimmed.starts_with("#[") {
            // The cfg(test) applied to something other than a module
            // (a test-only fn or use); skip just that item if braced.
            cfg_test_pending = false;
            if depth > depth_before {
                skip_exit = Some(depth_before);
            }
            continue;
        }

        // ---- Debug-derive and fmt-impl tracking -----------------------
        if trimmed.contains("#[derive(") && trimmed.contains("Debug") {
            derive_debug_pending = true;
        }
        if derive_debug_pending {
            if let Some(pos) = trimmed.find("struct ").or_else(|| trimmed.find("enum ")) {
                derive_debug_pending = false;
                let after = &trimmed[pos..];
                let ident = after
                    .split_whitespace()
                    .nth(1)
                    .map(|w| w.chars().take_while(|&c| is_ident_char(c)).collect::<String>())
                    .unwrap_or_default();
                if depth > depth_before {
                    debug_struct = Some((depth_before, ident));
                }
            } else if !trimmed.is_empty() && !trimmed.starts_with("#[") && !trimmed.contains("derive") {
                derive_debug_pending = false;
            }
        }
        if let Some((exit, ref struct_name)) = debug_struct {
            if depth_before > exit {
                // A field line: `pub name: Type,`
                let field = trimmed.strip_prefix("pub ").unwrap_or(trimmed);
                if let Some(colon) = field.find(':') {
                    let fname: String = field[..colon].chars().filter(|&c| is_ident_char(c)).collect();
                    if !field[..colon].contains('(') && is_secret_field(&fname) {
                        out.push(Diagnostic::new(
                            LintId::SecretDebugImpl,
                            loc(),
                            format!("`{struct_name}` derives Debug but field `{fname}` holds secret material"),
                            "write a manual Debug impl that redacts the field, or rename it if it is not a secret",
                        ));
                    }
                }
            }
            if depth <= exit {
                debug_struct = None;
            }
        }
        if trimmed.starts_with("impl")
            && (trimmed.contains("Debug for") || trimmed.contains("Display for"))
            && depth > depth_before
        {
            fmt_impl = Some(depth_before);
        } else if let Some(exit) = fmt_impl {
            if depth_before > exit {
                if let Some((_, tok)) = first_secret_at_or_after(code, 0) {
                    out.push(Diagnostic::new(
                        LintId::SecretDebugImpl,
                        loc(),
                        format!("Debug/Display impl formats secret-looking value `{tok}`"),
                        "redact secrets in human-readable output",
                    ));
                }
            }
            if depth <= exit {
                fmt_impl = None;
            }
        }

        // ---- TNT005: unpinned panic paths -----------------------------
        if (code.contains(".unwrap(") || code.contains(".expect(")) && !allow_panic {
            out.push(Diagnostic::new(
                LintId::UnpinnedPanic,
                loc(),
                "unwrap/expect on a library path without an `analyze: allow(panic: ...)` pin",
                "return a typed error, or pin the site with `// analyze: allow(panic: <why it cannot fire>)`",
            ));
        }

        // ---- TNT001: secrets into formatting macros -------------------
        if let Some(mpos) = FORMAT_MACROS.iter().filter_map(|m| code.find(m)).min() {
            if let Some((_, tok)) = first_secret_at_or_after(&clean.fmt, mpos) {
                out.push(Diagnostic::new(
                    LintId::SecretInFormat,
                    loc(),
                    format!("secret-looking value `{tok}` flows into a formatting macro"),
                    "log a digest or length instead of the raw value",
                ));
            }
        }

        // ---- TNT003: secrets into error payloads ----------------------
        if let Some(epos) = code.find("Err(") {
            if let Some((_, tok)) = first_secret_at_or_after(code, epos + 4) {
                out.push(Diagnostic::new(
                    LintId::SecretInError,
                    loc(),
                    format!("secret-looking value `{tok}` is moved into an Err payload"),
                    "carry sizes or positions in errors, never the secret itself",
                ));
            }
        }

        // ---- TNT004: non-constant-time comparisons --------------------
        if !allow_ct {
            for op in ["==", "!="] {
                let mut search = 0;
                while let Some(rel) = code[search..].find(op) {
                    let at = search + rel;
                    search = at + op.len();
                    // Exclude `<=`, `>=`, `=>`, `===`-like runs.
                    let before = code[..at].chars().next_back();
                    let after = code[at + op.len()..].chars().next();
                    if matches!(before, Some('<') | Some('>') | Some('=') | Some('!')) || after == Some('=') {
                        continue;
                    }
                    for operand in [operand_left(code, at), operand_right(code, at + op.len())] {
                        let has_secret = tokens(operand).any(|(_, t)| is_secret_ident(t));
                        let projected = PUBLIC_PROJECTIONS.iter().any(|p| operand.contains(p));
                        if has_secret && !projected {
                            out.push(Diagnostic::new(
                                LintId::SecretComparison,
                                loc(),
                                format!("secret-looking value compared with `{op}` (not constant time)"),
                                "compare a MAC/digest, or pin a reviewed site with `// analyze: allow(ct: ...)`",
                            ));
                            break;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Text of the expression immediately left of byte offset `at`.
fn operand_left(code: &str, at: usize) -> &str {
    let bytes = code.as_bytes();
    let mut i = at;
    while i > 0 && bytes[i - 1] == b' ' {
        i -= 1;
    }
    let end = i;
    while i > 0 {
        let c = bytes[i - 1] as char;
        if is_ident_char(c) || matches!(c, '.' | '(' | ')' | '[' | ']') {
            i -= 1;
        } else {
            break;
        }
    }
    &code[i..end]
}

/// Text of the expression immediately right of byte offset `from`.
fn operand_right(code: &str, from: usize) -> &str {
    let bytes = code.as_bytes();
    let mut i = from;
    while i < bytes.len() && bytes[i] == b' ' {
        i += 1;
    }
    let start = i;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if is_ident_char(c) || matches!(c, '.' | '(' | ')' | '[' | ']' | '&' | '*') {
            i += 1;
        } else {
            break;
        }
    }
    &code[start..i]
}

/// Recursively scans every `.rs` file under the given roots.
pub fn scan_paths(roots: &[PathBuf]) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for root in roots {
        collect_rs(root, &mut files)?;
    }
    files.sort();
    let mut out = Vec::new();
    for f in files {
        let source = fs::read_to_string(&f)?;
        out.extend(scan_source(&f.display().to_string(), &source));
    }
    Ok(out)
}

pub(crate) fn collect_rs(path: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if path.is_dir() {
        for entry in fs::read_dir(path)? {
            collect_rs(&entry?.path(), out)?;
        }
    } else if path.extension().is_some_and(|e| e == "rs") {
        out.push(path.to_path_buf());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lints(src: &str) -> Vec<LintId> {
        scan_source("fixture.rs", src).into_iter().map(|d| d.lint).collect()
    }

    #[test]
    fn format_macro_leak_is_flagged_including_inline_capture() {
        assert_eq!(
            lints("fn f(raw_response: u32) { println!(\"got {}\", raw_response); }"),
            vec![LintId::SecretInFormat]
        );
        assert_eq!(
            lints("fn f(raw_response: u32) { println!(\"got {raw_response}\"); }"),
            vec![LintId::SecretInFormat]
        );
        assert!(lints("fn f(count: u32) { println!(\"got {count} raw items\"); }").is_empty());
    }

    #[test]
    fn debug_derive_on_secret_field_is_flagged() {
        let src = "#[derive(Debug, Clone)]\npub struct Reading {\n    pub raw_bits: u32,\n    pub width: u32,\n}\n";
        assert_eq!(lints(src), vec![LintId::SecretDebugImpl]);
        let clean = "#[derive(Debug, Clone)]\npub struct Reading {\n    pub response: u32,\n}\n";
        assert!(lints(clean).is_empty());
    }

    #[test]
    fn err_payload_and_comparison_are_flagged() {
        assert_eq!(lints("fn f(s: S) -> Result<(), E> { Err(E::Leak(s.raw_response)) }"), vec![LintId::SecretInError]);
        assert_eq!(lints("fn f(raw: u32, x: u32) -> bool { raw == x }"), vec![LintId::SecretComparison]);
        // Length projections and pinned sites are clean.
        assert!(lints("fn f(raw: &[u8], x: &[u8]) -> bool { raw.len() == x.len() }").is_empty());
        assert!(lints("fn f(raw: u32, x: u32) -> bool { raw == x } // analyze: allow(ct: test fixture)").is_empty());
    }

    #[test]
    fn unpinned_panics_flagged_pinned_and_test_code_ignored() {
        assert_eq!(lints("fn f(x: Option<u32>) -> u32 { x.unwrap() }"), vec![LintId::UnpinnedPanic]);
        assert!(
            lints("fn f(x: Option<u32>) -> u32 { x.expect(\"set\") } // analyze: allow(panic: invariant)").is_empty()
        );
        let test_mod = "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
        assert!(lints(test_mod).is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_fire() {
        assert!(lints("// the raw_response must never leak\nfn f() {}\n").is_empty());
        assert!(lints("const DOC: &str = \"raw_response handling\";\nfn f() {}\n").is_empty());
    }
}
