//! Pass 3 — SWATT program verifier.
//!
//! Verifies an *assembled* PE32 image (the thing the checksum actually
//! hashes and the CPU actually runs) by abstract interpretation over a
//! small value domain:
//!
//! * every word in the code region must decode (`SWP001`);
//! * every load/store must be **statically in bounds** (`SWP002`) — the
//!   masked-address idiom `and rX, rX, rMASK` is recognised as producing a
//!   value in `[0, mask]`;
//! * every backward branch (loop) must be conditioned on registers derived
//!   only from immediates (`SWP003`) — a data-dependent trip count is a
//!   timing channel through the very quantity the bound δ measures;
//! * no store may be able to land inside the attested code region
//!   (`SWP004`) — self-modification would desynchronise prover and
//!   verifier images;
//! * unreachable instructions are dead weight in the attested region
//!   (`SWP005`), indirect jumps defeat the analysis (`SWP006`), and a
//!   reachable `halt` must exist (`SWP007`).
//!
//! One honest assumption is made explicit rather than hidden: the helper
//! write pointer lives in memory, and its range is a *layout invariant*
//! ([`PointerCell`]) that [`ProgramSpec::from_generated`] derives
//! arithmetically from [`SwattParams`] (`helper_base + 8·queries ≤
//! memory_words`). Loads through a declared pointer cell are assumed to
//! yield a value in the declared range; everything else is proved from the
//! instruction stream alone.

use crate::{Diagnostic, LintId};
use pufatt_pe32::asm::Program;
use pufatt_pe32::isa::{AluOp, Instruction, Reg};
use pufatt_swatt::checksum::SwattParams;
use pufatt_swatt::codegen::GeneratedSwatt;

/// Declared invariant for a scratch cell holding a memory pointer: loads
/// from `cell` yield a word in `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointerCell {
    /// Word address of the cell.
    pub cell: u32,
    /// Smallest value the cell can hold.
    pub lo: u32,
    /// Largest value the cell can hold.
    pub hi: u32,
}

/// The verifier's input: an image plus the memory geometry it runs in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramSpec {
    /// Display name used in diagnostic locations.
    pub name: String,
    /// The assembled image; `image[pc]` is the instruction at word `pc`.
    pub image: Vec<u32>,
    /// Words `[0, code_words)` are the program (and must stay unmodified).
    pub code_words: u32,
    /// Total machine memory in words; every access must stay below this.
    pub memory_words: u32,
    /// Declared pointer-cell invariants (see module docs).
    pub pointer_cells: Vec<PointerCell>,
}

impl ProgramSpec {
    /// Builds the spec for a generated-and-assembled SWATT checksum,
    /// deriving the helper-pointer invariant from the layout and params.
    pub fn from_generated(
        name: impl Into<String>,
        gen: &GeneratedSwatt,
        params: &SwattParams,
        program: &Program,
    ) -> Self {
        let mut pointer_cells = Vec::new();
        if params.puf_interval != 0 {
            // Matches the codegen sizing: one burst of 8 helper words is
            // statically present even when no query dynamically executes.
            let helper_words = params.puf_queries().max(1) * 8;
            // The pointer starts at helper_base and advances by 8 per PUF
            // query; the last write burst begins at base + words − 8.
            let hi = gen.layout.helper_base + helper_words.saturating_sub(8);
            pointer_cells.push(PointerCell {
                cell: gen.layout.helper_ptr_cell,
                lo: gen.layout.helper_base,
                hi,
            });
        }
        ProgramSpec {
            name: name.into(),
            image: program.image.clone(),
            code_words: program.image.len() as u32,
            memory_words: gen.layout.memory_words,
            pointer_cells,
        }
    }
}

/// Abstract value of one register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Val {
    /// Exactly this word.
    Const(u32),
    /// Unsigned value within `[lo, hi]` (from masking or a pointer cell).
    Range(u32, u32),
    /// Anything.
    Top,
}

/// Abstract register: a value plus a purity bit — `data` is set once the
/// value depends on loaded memory or PUF output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Abs {
    val: Val,
    data: bool,
}

const CLEAN_ZERO: Abs = Abs { val: Val::Const(0), data: false };
const TOP_DATA: Abs = Abs { val: Val::Top, data: true };

type RegFile = [Abs; 16];

fn join_val(a: Val, b: Val) -> Val {
    if a == b {
        a
    } else {
        Val::Top
    }
}

fn join(a: &RegFile, b: &RegFile) -> (RegFile, bool) {
    let mut out = *a;
    let mut changed = false;
    for (o, n) in out.iter_mut().zip(b) {
        let merged = Abs { val: join_val(o.val, n.val), data: o.data || n.data };
        if merged != *o {
            *o = merged;
            changed = true;
        }
    }
    (out, changed)
}

/// Effective address range of `reg + imm`, or `None` when unbounded.
fn address_range(base: Abs, imm: i16) -> Option<(i64, i64)> {
    let imm = imm as i64;
    match base.val {
        Val::Const(c) => Some((c as i64 + imm, c as i64 + imm)),
        Val::Range(lo, hi) => Some((lo as i64 + imm, hi as i64 + imm)),
        Val::Top => None,
    }
}

fn alu_abs(op: AluOp, a: Abs, b: Abs) -> Abs {
    let data = a.data || b.data;
    let val = match (a.val, b.val) {
        (Val::Const(x), Val::Const(y)) => Val::Const(op.apply(x, y)),
        _ => match op {
            // AND bounds the result by either operand's upper bound.
            AluOp::And => match (a.val, b.val) {
                (_, Val::Const(m)) | (Val::Const(m), _) => Val::Range(0, m),
                (_, Val::Range(_, m)) | (Val::Range(_, m), _) => Val::Range(0, m),
                _ => Val::Top,
            },
            // Addition shifts ranges when it provably cannot wrap.
            AluOp::Add => {
                let bounds = |v: Val| match v {
                    Val::Const(c) => Some((c as i64, c as i64)),
                    Val::Range(lo, hi) => Some((lo as i64, hi as i64)),
                    Val::Top => None,
                };
                match (bounds(a.val), bounds(b.val)) {
                    (Some((al, ah)), Some((bl, bh))) => {
                        let (lo, hi) = (al + bl, ah + bh);
                        if lo >= 0 && hi <= u32::MAX as i64 {
                            Val::Range(lo as u32, hi as u32)
                        } else {
                            Val::Top
                        }
                    }
                    _ => Val::Top,
                }
            }
            _ => Val::Top,
        },
    };
    Abs { val, data }
}

fn read(state: &RegFile, r: Reg) -> Abs {
    if r.index() == 0 {
        CLEAN_ZERO
    } else {
        state[r.index()]
    }
}

fn write(state: &mut RegFile, r: Reg, v: Abs) {
    if r.index() != 0 {
        state[r.index()] = v;
    }
}

/// The analysis result: fixed-point register states plus reachability.
struct Analysis {
    states: Vec<Option<RegFile>>,
    decode_failed: Vec<bool>,
}

/// Control-flow successors and the post-state of one instruction.
fn step(spec: &ProgramSpec, pc: usize, inst: Instruction, state: &RegFile) -> (RegFile, Vec<usize>) {
    let mut next = *state;
    let code = spec.code_words as i64;
    let fall = pc + 1;
    let in_code = |t: i64| t >= 0 && t < code;
    match inst {
        Instruction::Alu { op, rd, rs1, rs2 } => {
            write(&mut next, rd, alu_abs(op, read(state, rs1), read(state, rs2)));
            (next, vec![fall])
        }
        Instruction::AluImm { op, rd, rs1, imm } => {
            let b = Abs { val: Val::Const(imm as i32 as u32), data: false };
            write(&mut next, rd, alu_abs(op, read(state, rs1), b));
            (next, vec![fall])
        }
        Instruction::Lui { rd, imm } => {
            write(&mut next, rd, Abs { val: Val::Const((imm as u32) << 16), data: false });
            (next, vec![fall])
        }
        Instruction::Lw { rd, rs1, imm } => {
            // A load through a declared pointer cell yields its range.
            let loaded = match address_range(read(state, rs1), imm) {
                Some((lo, hi)) if lo == hi => spec
                    .pointer_cells
                    .iter()
                    .find(|p| p.cell as i64 == lo)
                    .map(|p| Abs { val: Val::Range(p.lo, p.hi), data: true })
                    .unwrap_or(TOP_DATA),
                _ => TOP_DATA,
            };
            write(&mut next, rd, loaded);
            (next, vec![fall])
        }
        Instruction::Sw { .. } | Instruction::Nop | Instruction::Pstart | Instruction::Pend => (next, vec![fall]),
        Instruction::Pread { rd } => {
            write(&mut next, rd, TOP_DATA);
            (next, vec![fall])
        }
        Instruction::Phelp { rd, .. } => {
            write(&mut next, rd, TOP_DATA);
            (next, vec![fall])
        }
        Instruction::Branch { imm, .. } => {
            let target = pc as i64 + 1 + imm as i64;
            let mut succs = vec![fall];
            if in_code(target) {
                succs.push(target as usize);
            }
            (next, succs)
        }
        Instruction::Jal { rd, imm } => {
            write(&mut next, rd, Abs { val: Val::Const(pc as u32 + 1), data: false });
            let target = pc as i64 + 1 + imm as i64;
            (next, if in_code(target) { vec![target as usize] } else { vec![] })
        }
        Instruction::Jalr { .. } => (next, vec![]),
        Instruction::Halt => (next, vec![]),
    }
}

fn fixpoint(spec: &ProgramSpec) -> Analysis {
    let n = spec.code_words as usize;
    let mut states: Vec<Option<RegFile>> = vec![None; n];
    let mut decode_failed = vec![false; n];
    if n == 0 {
        return Analysis { states, decode_failed };
    }
    states[0] = Some([CLEAN_ZERO; 16]);
    let mut work = vec![0usize];
    while let Some(pc) = work.pop() {
        let Some(state) = states[pc] else { continue };
        let Ok(inst) = Instruction::decode(spec.image[pc]) else {
            decode_failed[pc] = true;
            continue;
        };
        let (next, succs) = step(spec, pc, inst, &state);
        for s in succs {
            if s >= n {
                continue;
            }
            match &states[s] {
                None => {
                    states[s] = Some(next);
                    work.push(s);
                }
                Some(old) => {
                    let (merged, changed) = join(old, &next);
                    if changed {
                        states[s] = Some(merged);
                        work.push(s);
                    }
                }
            }
        }
    }
    Analysis { states, decode_failed }
}

/// Verifies the program; see the module docs for the lint catalogue.
pub fn verify_program(spec: &ProgramSpec) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let loc = |pc: usize| format!("{}/pc {pc}", spec.name);
    let n = spec.code_words as usize;
    if spec.image.len() < n {
        out.push(Diagnostic::new(
            LintId::UndecodableInstruction,
            format!("{}/image", spec.name),
            format!("image has {} words but the code region claims {}", spec.image.len(), n),
            "regenerate the program or fix the spec's code_words",
        ));
        return out;
    }
    for p in &spec.pointer_cells {
        if p.lo > p.hi || p.hi >= spec.memory_words || p.cell >= spec.memory_words || p.cell < spec.code_words {
            out.push(Diagnostic::new(
                LintId::OutOfBoundsAccess,
                format!("{}/pointer cell {}", spec.name, p.cell),
                format!(
                    "declared pointer invariant [{}, {}] (cell {}) is inconsistent with memory of {} words",
                    p.lo, p.hi, p.cell, spec.memory_words
                ),
                "derive the invariant from the layout arithmetic (helper_base + 8*queries <= memory_words)",
            ));
        }
    }

    let analysis = fixpoint(spec);
    let mut halt_reachable = false;

    // SWP001 over the whole code region (attested code must be pure code).
    for pc in 0..n {
        if Instruction::decode(spec.image[pc]).is_err() {
            out.push(Diagnostic::new(
                LintId::UndecodableInstruction,
                loc(pc),
                format!("word {:#010x} does not decode to any PE32 instruction", spec.image[pc]),
                "the attested region must contain only instructions; move data beyond code_words",
            ));
        }
    }

    for pc in 0..n {
        let Some(state) = &analysis.states[pc] else {
            if !analysis.decode_failed[pc] && Instruction::decode(spec.image[pc]).is_ok() {
                out.push(Diagnostic::new(
                    LintId::UnreachableInstruction,
                    loc(pc),
                    "instruction is unreachable from the entry point",
                    "remove dead code: every attested word should earn its checksum cycles",
                ));
            }
            continue;
        };
        let Ok(inst) = Instruction::decode(spec.image[pc]) else {
            continue;
        };
        match inst {
            Instruction::Halt => halt_reachable = true,
            Instruction::Jalr { .. } => {
                out.push(Diagnostic::new(
                    LintId::IndirectJump,
                    loc(pc),
                    "indirect jump: successor set is statically unknown",
                    "use direct jal/branches so the program stays verifiable",
                ));
            }
            Instruction::Lw { rs1, imm, .. } => {
                check_access(spec, &mut out, &loc, pc, read(state, rs1), imm, false);
            }
            Instruction::Sw { rs1, imm, .. } => {
                check_access(spec, &mut out, &loc, pc, read(state, rs1), imm, true);
            }
            Instruction::Branch { cond, rs1, rs2, imm } => {
                let target = pc as i64 + 1 + imm as i64;
                if target < 0 || target >= n as i64 {
                    out.push(Diagnostic::new(
                        LintId::OutOfBoundsAccess,
                        loc(pc),
                        format!("branch target {target} lies outside the code region [0, {n})"),
                        "branches must stay inside the program",
                    ));
                } else if target as usize <= pc {
                    // A loop: its trip count must not depend on data.
                    let tainted: Vec<&str> = [(rs1, "rs1"), (rs2, "rs2")]
                        .iter()
                        .filter(|(r, _)| read(state, *r).data)
                        .map(|&(_, n)| n)
                        .collect();
                    if !tainted.is_empty() {
                        out.push(Diagnostic::new(
                            LintId::DataDependentLoop,
                            loc(pc),
                            format!(
                                "backward b{:?} at pc {pc} conditions on data-derived {} — the loop trip \
                                 count (and thus the measured time) depends on memory contents",
                                cond,
                                tainted.join("+")
                            ),
                            "drive loop exits from immediate-initialised counters only",
                        ));
                    }
                }
            }
            Instruction::Jal { imm, .. } => {
                let target = pc as i64 + 1 + imm as i64;
                if target < 0 || target >= n as i64 {
                    out.push(Diagnostic::new(
                        LintId::OutOfBoundsAccess,
                        loc(pc),
                        format!("jump target {target} lies outside the code region [0, {n})"),
                        "jumps must stay inside the program",
                    ));
                }
            }
            _ => {}
        }
    }

    if !halt_reachable && n > 0 {
        out.push(Diagnostic::new(
            LintId::NoReachableHalt,
            format!("{}/entry", spec.name),
            "no halt instruction is reachable from the entry point",
            "the checksum must terminate so its cycle count can be compared against delta",
        ));
    }
    out
}

fn check_access(
    spec: &ProgramSpec,
    out: &mut Vec<Diagnostic>,
    loc: &dyn Fn(usize) -> String,
    pc: usize,
    base: Abs,
    imm: i16,
    is_store: bool,
) {
    let what = if is_store { "store" } else { "load" };
    match address_range(base, imm) {
        None => out.push(Diagnostic::new(
            LintId::OutOfBoundsAccess,
            loc(pc),
            format!("{what} address is statically unbounded (register holds an unconstrained value)"),
            "mask the address register (and rX, rX, rMASK) or use a declared pointer cell",
        )),
        Some((lo, hi)) => {
            if lo < 0 || hi >= spec.memory_words as i64 {
                out.push(Diagnostic::new(
                    LintId::OutOfBoundsAccess,
                    loc(pc),
                    format!(
                        "{what} may touch address range [{lo}, {hi}] outside memory of {} words",
                        spec.memory_words
                    ),
                    "keep every access below memory_words; check the layout arithmetic",
                ));
            } else if is_store && lo < spec.code_words as i64 {
                out.push(Diagnostic::new(
                    LintId::StoreIntoCode,
                    loc(pc),
                    format!(
                        "store may write address range [{lo}, {hi}], overlapping the code region [0, {})",
                        spec.code_words
                    ),
                    "scratch writes must stay at or above the code end; self-modification desynchronises \
                     the verifier's image",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pufatt_pe32::asm::assemble;
    use pufatt_swatt::codegen::{generate, CodegenOptions};

    fn spec_of(source: &str, memory_words: u32) -> ProgramSpec {
        let prog = assemble(source).expect("test program assembles");
        ProgramSpec {
            name: "test".into(),
            code_words: prog.image.len() as u32,
            image: prog.image,
            memory_words,
            pointer_cells: vec![],
        }
    }

    #[test]
    fn clean_straightline_program_verifies() {
        let d = verify_program(&spec_of("        addi r1, r0, 5\n        sw r1, 40(r0)\n        halt\n", 64));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn masked_load_is_in_bounds_unmasked_is_not() {
        let ok = spec_of(
            "        lw r2, 60(r0)\n        addi r3, r0, 31\n        and r2, r2, r3\n        lw r4, 0(r2)\n        halt\n",
            64,
        );
        assert!(verify_program(&ok).is_empty());
        let bad = spec_of("        lw r2, 60(r0)\n        lw r4, 0(r2)\n        halt\n", 64);
        let d = verify_program(&bad);
        assert!(d.iter().any(|d| d.lint == LintId::OutOfBoundsAccess), "{d:?}");
    }

    #[test]
    fn generated_checksum_is_clean_for_paper_params() {
        for params in [
            SwattParams { region_bits: 9, rounds: 512, puf_interval: 0 },
            SwattParams { region_bits: 9, rounds: 1024, puf_interval: 4 },
            SwattParams { region_bits: 10, rounds: 2048, puf_interval: 16 },
        ] {
            let gen = generate(&params, &CodegenOptions::default());
            let prog = assemble(&gen.source).expect("generated assembly assembles");
            let spec = ProgramSpec::from_generated("swatt", &gen, &params, &prog);
            let d = verify_program(&spec);
            assert!(d.is_empty(), "params {params:?}: {d:?}");
        }
    }

    #[test]
    fn data_dependent_loop_is_flagged() {
        // Loop counter loaded from memory: trip count = timing channel.
        let src = "
        lw   r1, 50(r0)
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt
";
        let d = verify_program(&spec_of(src, 64));
        assert!(d.iter().any(|d| d.lint == LintId::DataDependentLoop), "{d:?}");
    }

    #[test]
    fn missing_halt_and_dead_code_are_flagged() {
        let src = "
        jal  r0, end
        addi r1, r0, 1
end:    addi r2, r0, 2
        jal  r0, forever
forever: nop
        jal  r0, forever
";
        let d = verify_program(&spec_of(src, 64));
        assert!(d.iter().any(|d| d.lint == LintId::NoReachableHalt), "{d:?}");
        assert!(d.iter().any(|d| d.lint == LintId::UnreachableInstruction), "{d:?}");
    }
}
