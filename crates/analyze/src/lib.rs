//! Static-analysis passes for the PUFatt reproduction.
//!
//! PR 3's failure-mode atlas showed that the bugs that matter here live in
//! *structure* — the burst-aliasing silent-accept was a property of the
//! code/obfuscation wiring no runtime test had exercised. This crate catches
//! that class of defect before simulation, with three passes:
//!
//! * [`circuit`] — **netlist verifier** over [`pufatt_silicon::Netlist`]:
//!   combinational loops (Tarjan SCC), floating and multi-driven nets,
//!   gates off every input→output path, fanout-CSR consistency, and the
//!   arbiter-symmetry check proving the two racing ALU cones are
//!   structurally isomorphic (an asymmetric cone is a PUF-bias bug that
//!   quality statistics can only see *statistically*).
//! * [`taint`] — **secret-taint lint** over the `crates/core` and
//!   `crates/ecc` sources: flags raw-PUF-response values flowing into
//!   `Debug` derives, format strings, error payloads and non-constant-time
//!   comparisons, plus unpinned `unwrap()`/`expect()` panic sites on
//!   protocol-reachable paths.
//! * [`program`] — **SWATT program verifier** over assembled PE32 images:
//!   every memory access statically in bounds, loop trip counts
//!   data-independent (the checksum's timing channel freedom), no stores
//!   into the attested code region, no dead or undecodable instructions.
//! * [`conc`] — **concurrency verifier** over the `fleet`, `transport`,
//!   `store`, and `core` sources: extracts the lock-acquisition graph
//!   (every lock site resolved to a named lock class) and lints for
//!   lock-order cycles, locks held across blocking operations, raw
//!   `.lock().unwrap()` bypassing the poison-tolerant wrapper,
//!   `Condvar::wait` without a loop guard, and detached threads with no
//!   join/drain path. The static class ranks mirror the runtime
//!   `fleet::sync::rank` witness, so the two orderings pin each other.
//! * [`dur`] — **durability-ordering verifier** over `crates/store` and
//!   `fleet::durable`: externally-visible record classes must reach
//!   `append_synced` (never bare `append_nosync`), the
//!   temp-file→fsync→rename commit protocol must never be reordered or
//!   skipped, and WAL compaction must only be reachable after a snapshot
//!   rename.
//!
//! Every finding is a [`Diagnostic`] with a stable [`LintId`], a severity,
//! a location and a fix hint; [`Report::deny`] turns any finding into a
//! hard failure for CI (`pufatt analyze --deny`) and [`Report::to_json`]
//! renders the machine-readable artifact CI uploads.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Lib-target panics are linted (see [lints.clippy] in Cargo.toml);
// tests are free to unwrap.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;

pub mod circuit;
pub mod conc;
pub mod dur;
pub mod program;
pub mod taint;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not provably wrong (dead logic, unreachable code).
    Warning,
    /// A structural defect: the design or program is wrong as built.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable identifier of one lint. The codes (`NET001`, …) are part of the
/// tool's interface: golden tests pin them and CI output references them,
/// so variants must never be renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintId {
    /// `NET001` — combinational cycle in the gate graph.
    CombinationalLoop,
    /// `NET002` — net with no driver that is not a primary input.
    FloatingNet,
    /// `NET003` — net driven by more than one gate (or a driven primary input).
    MultiDrivenNet,
    /// `NET004` — gate on no primary-input→primary-output path.
    UnreachableGate,
    /// `NET005` — fanout CSR disagrees with the gate edge list.
    FanoutCsrMismatch,
    /// `NET006` — the two racing arbiter cones are not isomorphic.
    ArbiterAsymmetry,
    /// `TNT001` — secret value interpolated into a format/log string.
    SecretInFormat,
    /// `TNT002` — `Debug`/`Display` derived or implemented over secret fields.
    SecretDebugImpl,
    /// `TNT003` — secret value carried in an error payload.
    SecretInError,
    /// `TNT004` — non-constant-time comparison of a secret value.
    SecretComparison,
    /// `TNT005` — `unwrap()`/`expect()` outside the pinned allowlist.
    UnpinnedPanic,
    /// `SWP001` — undecodable instruction word in the code region.
    UndecodableInstruction,
    /// `SWP002` — memory access not provably inside the machine's memory.
    OutOfBoundsAccess,
    /// `SWP003` — loop whose trip count depends on loaded/PUF data.
    DataDependentLoop,
    /// `SWP004` — store that can land inside the attested code region.
    StoreIntoCode,
    /// `SWP005` — instruction unreachable from the entry point.
    UnreachableInstruction,
    /// `SWP006` — indirect jump defeats static control-flow analysis.
    IndirectJump,
    /// `SWP007` — no halt instruction reachable from the entry point.
    NoReachableHalt,
    /// `CONC001` — cycle in the lock-class acquisition graph.
    LockOrderCycle,
    /// `CONC002` — lock held across a blocking operation.
    LockAcrossBlocking,
    /// `CONC003` — raw `.lock().unwrap()` bypassing the poison-tolerant wrapper.
    RawLockUnwrap,
    /// `CONC004` — `Condvar::wait` outside a predicate loop.
    CondvarNoLoop,
    /// `CONC005` — spawned thread whose `JoinHandle` is discarded.
    DetachedThread,
    /// `CONC006` — lock class absent from the documented rank table.
    UnknownLockClass,
    /// `DUR001` — durability-critical record appended without a forced sync.
    UnsyncedCriticalRecord,
    /// `DUR002` — temp file renamed into place without an fsync first.
    RenameBeforeSync,
    /// `DUR003` — direct write to a commit path, skipping the temp protocol.
    DirectCommitWrite,
    /// `DUR004` — WAL compaction reachable before the snapshot rename.
    CompactionBeforeSnapshot,
    /// `DUR005` — result of a durability operation silently discarded.
    IgnoredSyncResult,
    /// `DUR006` — a failed sync-class call retried on the same handle.
    SyncRetriedOnPoisonedHandle,
}

impl LintId {
    /// The stable lint code, e.g. `NET001`.
    pub fn code(self) -> &'static str {
        match self {
            LintId::CombinationalLoop => "NET001",
            LintId::FloatingNet => "NET002",
            LintId::MultiDrivenNet => "NET003",
            LintId::UnreachableGate => "NET004",
            LintId::FanoutCsrMismatch => "NET005",
            LintId::ArbiterAsymmetry => "NET006",
            LintId::SecretInFormat => "TNT001",
            LintId::SecretDebugImpl => "TNT002",
            LintId::SecretInError => "TNT003",
            LintId::SecretComparison => "TNT004",
            LintId::UnpinnedPanic => "TNT005",
            LintId::UndecodableInstruction => "SWP001",
            LintId::OutOfBoundsAccess => "SWP002",
            LintId::DataDependentLoop => "SWP003",
            LintId::StoreIntoCode => "SWP004",
            LintId::UnreachableInstruction => "SWP005",
            LintId::IndirectJump => "SWP006",
            LintId::NoReachableHalt => "SWP007",
            LintId::LockOrderCycle => "CONC001",
            LintId::LockAcrossBlocking => "CONC002",
            LintId::RawLockUnwrap => "CONC003",
            LintId::CondvarNoLoop => "CONC004",
            LintId::DetachedThread => "CONC005",
            LintId::UnknownLockClass => "CONC006",
            LintId::UnsyncedCriticalRecord => "DUR001",
            LintId::RenameBeforeSync => "DUR002",
            LintId::DirectCommitWrite => "DUR003",
            LintId::CompactionBeforeSnapshot => "DUR004",
            LintId::IgnoredSyncResult => "DUR005",
            LintId::SyncRetriedOnPoisonedHandle => "DUR006",
        }
    }

    /// Default severity of the lint.
    pub fn severity(self) -> Severity {
        match self {
            LintId::UnreachableGate | LintId::UnreachableInstruction | LintId::UnknownLockClass => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// One-line description, as shown in `pufatt analyze --lints`.
    pub fn description(self) -> &'static str {
        match self {
            LintId::CombinationalLoop => "combinational cycle in the gate graph",
            LintId::FloatingNet => "net has no driver and is not a primary input",
            LintId::MultiDrivenNet => "net is driven by more than one gate",
            LintId::UnreachableGate => "gate lies on no primary-input-to-output path",
            LintId::FanoutCsrMismatch => "fanout CSR disagrees with the gate edge list",
            LintId::ArbiterAsymmetry => "racing arbiter cones are not structurally isomorphic",
            LintId::SecretInFormat => "secret value interpolated into a format or log string",
            LintId::SecretDebugImpl => "Debug/Display over secret-bearing fields",
            LintId::SecretInError => "secret value carried in an error payload",
            LintId::SecretComparison => "non-constant-time comparison of a secret value",
            LintId::UnpinnedPanic => "unwrap()/expect() outside the pinned allowlist",
            LintId::UndecodableInstruction => "undecodable instruction word in the code region",
            LintId::OutOfBoundsAccess => "memory access not provably in bounds",
            LintId::DataDependentLoop => "loop trip count depends on loaded or PUF data",
            LintId::StoreIntoCode => "store can land inside the attested code region",
            LintId::UnreachableInstruction => "instruction unreachable from entry",
            LintId::IndirectJump => "indirect jump defeats static control-flow analysis",
            LintId::NoReachableHalt => "no halt reachable from entry",
            LintId::LockOrderCycle => "cycle in the lock-class acquisition graph (potential deadlock)",
            LintId::LockAcrossBlocking => "lock held across a blocking operation",
            LintId::RawLockUnwrap => "raw .lock().unwrap() bypasses the poison-tolerant wrapper",
            LintId::CondvarNoLoop => "Condvar wait outside a predicate loop (spurious wakeups)",
            LintId::DetachedThread => "spawned thread has no join or drain path",
            LintId::UnknownLockClass => "lock class is not in the documented rank table",
            LintId::UnsyncedCriticalRecord => "durability-critical record appended without a forced sync",
            LintId::RenameBeforeSync => "temp file renamed into place without an fsync first",
            LintId::DirectCommitWrite => "direct write to a commit path skips the temp-file protocol",
            LintId::CompactionBeforeSnapshot => "WAL compaction reachable before the snapshot rename",
            LintId::IgnoredSyncResult => "result of a durability operation silently discarded",
            LintId::SyncRetriedOnPoisonedHandle => "failed sync-class call retried on the same handle (fsyncgate)",
        }
    }

    /// Every lint, for the catalogue listing.
    pub const ALL: [LintId; 30] = [
        LintId::CombinationalLoop,
        LintId::FloatingNet,
        LintId::MultiDrivenNet,
        LintId::UnreachableGate,
        LintId::FanoutCsrMismatch,
        LintId::ArbiterAsymmetry,
        LintId::SecretInFormat,
        LintId::SecretDebugImpl,
        LintId::SecretInError,
        LintId::SecretComparison,
        LintId::UnpinnedPanic,
        LintId::UndecodableInstruction,
        LintId::OutOfBoundsAccess,
        LintId::DataDependentLoop,
        LintId::StoreIntoCode,
        LintId::UnreachableInstruction,
        LintId::IndirectJump,
        LintId::NoReachableHalt,
        LintId::LockOrderCycle,
        LintId::LockAcrossBlocking,
        LintId::RawLockUnwrap,
        LintId::CondvarNoLoop,
        LintId::DetachedThread,
        LintId::UnknownLockClass,
        LintId::UnsyncedCriticalRecord,
        LintId::RenameBeforeSync,
        LintId::DirectCommitWrite,
        LintId::CompactionBeforeSnapshot,
        LintId::IgnoredSyncResult,
        LintId::SyncRetriedOnPoisonedHandle,
    ];
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding of a pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: LintId,
    /// Severity (defaults to [`LintId::severity`]).
    pub severity: Severity,
    /// Where: `netlist/net n12`, `crates/core/src/protocol.rs:87`, `pc 17`.
    pub location: String,
    /// What is wrong, concretely.
    pub message: String,
    /// How to fix it.
    pub fix_hint: String,
    /// Lock classes involved (concurrency/durability lints; empty
    /// otherwise). Part of the `--json` artifact format.
    pub classes: Vec<String>,
}

impl Diagnostic {
    /// Builds a diagnostic with the lint's default severity.
    pub fn new(
        lint: LintId,
        location: impl Into<String>,
        message: impl Into<String>,
        fix_hint: impl Into<String>,
    ) -> Self {
        Diagnostic {
            lint,
            severity: lint.severity(),
            location: location.into(),
            message: message.into(),
            fix_hint: fix_hint.into(),
            classes: Vec::new(),
        }
    }

    /// Attaches the lock classes a concurrency/durability finding involves.
    #[must_use]
    pub fn with_classes(mut self, classes: Vec<String>) -> Self {
        self.classes = classes;
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}\n    fix: {}",
            self.severity, self.lint, self.location, self.message, self.fix_hint
        )
    }
}

/// Aggregated findings of one or more passes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends another pass's findings.
    pub fn extend(&mut self, diagnostics: Vec<Diagnostic>) {
        self.diagnostics.extend(diagnostics);
    }

    /// Whether no lint fired at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == severity).count()
    }

    /// Findings for one lint, for golden tests that pin a lint ID.
    pub fn of(&self, lint: LintId) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.lint == lint).collect()
    }

    /// Deny mode: `Err` with a summary if anything fired.
    ///
    /// # Errors
    ///
    /// Returns the formatted report when any diagnostic is present — the
    /// contract behind `pufatt analyze --deny`.
    pub fn deny(&self) -> Result<(), String> {
        if self.is_clean() {
            return Ok(());
        }
        Err(format!(
            "{} ({} error(s), {} warning(s))",
            self,
            self.count(Severity::Error),
            self.count(Severity::Warning)
        ))
    }

    /// Renders the report as a JSON document — the machine-readable
    /// artifact `pufatt analyze --json` emits and CI uploads. Stable
    /// fields per finding: `lint`, `severity`, `location`, `message`,
    /// `fix_hint`, `classes`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"lint\": {}, ", json_str(d.lint.code())));
            out.push_str(&format!("\"severity\": {}, ", json_str(&d.severity.to_string())));
            out.push_str(&format!("\"location\": {}, ", json_str(&d.location)));
            out.push_str(&format!("\"message\": {}, ", json_str(&d.message)));
            out.push_str(&format!("\"fix_hint\": {}, ", json_str(&d.fix_hint)));
            out.push_str("\"classes\": [");
            for (j, c) in d.classes.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_str(c));
            }
            out.push_str("]}");
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"errors\": {},\n  \"warnings\": {}\n}}\n",
            self.count(Severity::Error),
            self.count(Severity::Warning)
        ));
        out
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(f, "no findings");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_codes_are_unique_and_stable() {
        let codes: Vec<&str> = LintId::ALL.iter().map(|l| l.code()).collect();
        let mut deduped = codes.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), codes.len(), "duplicate lint code");
        assert_eq!(LintId::CombinationalLoop.code(), "NET001");
        assert_eq!(LintId::UnpinnedPanic.code(), "TNT005");
        assert_eq!(LintId::NoReachableHalt.code(), "SWP007");
        assert_eq!(LintId::LockOrderCycle.code(), "CONC001");
        assert_eq!(LintId::UnknownLockClass.code(), "CONC006");
        assert_eq!(LintId::UnsyncedCriticalRecord.code(), "DUR001");
        assert_eq!(LintId::IgnoredSyncResult.code(), "DUR005");
        assert_eq!(LintId::SyncRetriedOnPoisonedHandle.code(), "DUR006");
    }

    #[test]
    fn json_report_escapes_and_lists_classes() {
        let mut r = Report::new();
        assert!(r.to_json().contains("\"findings\": []"));
        r.extend(vec![
            Diagnostic::new(LintId::LockOrderCycle, "a.rs:1", "cycle \"x\"\n", "reorder")
                .with_classes(vec!["slots".into(), "registry_shard".into()]),
        ]);
        let json = r.to_json();
        assert!(json.contains("\"lint\": \"CONC001\""), "{json}");
        assert!(json.contains("\\\"x\\\"\\n"), "{json}");
        assert!(json.contains("[\"slots\", \"registry_shard\"]"), "{json}");
        assert!(json.contains("\"errors\": 1"), "{json}");
    }

    #[test]
    fn report_deny_contract() {
        let mut r = Report::new();
        assert!(r.deny().is_ok());
        r.extend(vec![Diagnostic::new(LintId::FloatingNet, "net n3", "no driver", "drive it")]);
        let err = r.deny().unwrap_err();
        assert!(err.contains("NET002"), "{err}");
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.of(LintId::FloatingNet).len(), 1);
    }

    #[test]
    fn severity_ordering_and_display() {
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(LintId::UnreachableGate.severity(), Severity::Warning);
        let d = Diagnostic::new(LintId::CombinationalLoop, "x", "y", "z");
        assert!(format!("{d}").contains("NET001"));
    }
}
