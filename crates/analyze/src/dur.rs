//! Pass 5 — durability-ordering verifier over `crates/store` and
//! `crates/fleet`.
//!
//! The store's crash-safety argument is a chain of *orderings*: an
//! externally-visible record is fsync'd before the state it implies
//! becomes observable; a snapshot is written to a temp file, fsync'd,
//! and only then renamed over the committed path; the WAL is truncated
//! (compacted) only after a snapshot rename has made it redundant. The
//! crash-matrix tests sample those orderings; this pass checks the
//! source for the ways they are most plausibly broken:
//!
//! * `DUR001` — an externally-visible record class (`Meta`,
//!   `DeviceEnrolled`, `DeviceReEnrolled`, `StatusChanged`,
//!   `CrpConsumed`) reaches `append_nosync`, so a crash can lose a
//!   decision another party already observed;
//! * `DUR002` — a `rename` whose source was never `sync`'d in the same
//!   function (the commit protocol reordered or skipped);
//! * `DUR003` — a write (`truncate`/`append`) directly targeting a path
//!   that the same function installs by rename — committed snapshots
//!   are immutable, replacements go through the temp file;
//! * `DUR004` — WAL compaction (`Wal::create`) with no earlier snapshot
//!   commit in the same function: the WAL's contents die before any
//!   snapshot covers them;
//! * `DUR005` — a sync-class result discarded with `let _ =` — an
//!   fsync error is a lost-durability event, not a hint;
//! * `DUR006` — a failed sync-class call *retried on the same handle*
//!   (`while x.sync().is_err()`, or an `is_err()` guard whose body syncs
//!   `x` again). After a failed fsync the kernel may have dropped the
//!   dirty pages, so a later "successful" sync on the same handle proves
//!   nothing (the fsyncgate failure mode) — the handle is poisoned and
//!   must be reopened, never re-synced.
//!
//! `// analyze: allow(dur: reason)` on the line (or the line above)
//! acknowledges a reviewed site. The analysis is intraprocedural and
//! line-based over comment/string-stripped source, skips `#[cfg(test)]`
//! modules, and — like the other passes — trades soundness for zero
//! dependencies and zero false positives on the shipped tree.

use crate::taint::{clean_lines, collect_rs, is_ident_char, tokens};
use crate::{Diagnostic, LintId};
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::PathBuf;

/// Record classes whose loss is visible outside the process (campaign
/// identity, fleet membership, lifecycle/trust transitions, spent CRPs).
const CRITICAL_RECORDS: &[&str] = &[
    "Meta",
    "DeviceEnrolled",
    "DeviceReEnrolled",
    "StatusChanged",
    "CrpConsumed",
];

/// Sync-class calls whose `Result` must not be discarded.
const SYNC_CALLS: &[&str] = &[
    ".sync(",
    ".sync_all(",
    ".sync_data(",
    ".flush(",
    ".append_synced(",
    ".checkpoint(",
];

/// Last identifier of an argument expression: `&self.tmp` → `tmp`,
/// `MANIFEST_TMP` → `MANIFEST_TMP`.
fn arg_token(expr: &str) -> String {
    let cut = expr.find(['[', '(']).unwrap_or(expr.len());
    tokens(&expr[..cut])
        .map(|(_, t)| t)
        .filter(|t| !matches!(*t, "self" | "mut" | "crate"))
        .last()
        .unwrap_or("")
        .to_string()
}

/// Splits a call's argument list at top-level commas.
fn split_args(args: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, c) in args.char_indices() {
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            ',' if depth == 0 => {
                out.push(args[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(args[start..].trim());
    out
}

/// Receiver identifier of a method call at `at` (the byte offset of the
/// pattern's leading `.`): `self.wal.sync(` → `wal`, `file.sync_all(` →
/// `file`.
fn recv_token(code: &str, at: usize) -> String {
    let bytes = code.as_bytes();
    let mut start = at;
    while start > 0 && is_ident_char(bytes[start - 1] as char) {
        start -= 1;
    }
    code[start..at].to_string()
}

/// First sync-class call on the line, as `(receiver, call pattern)`.
fn sync_call_on(code: &str) -> Option<(String, &'static str)> {
    for pat in SYNC_CALLS {
        if let Some(at) = code.find(pat) {
            let recv = recv_token(code, at);
            if !recv.is_empty() {
                return Some((recv, pat));
            }
        }
    }
    None
}

/// Argument span of the call whose `(` follows `pattern` at `at`.
fn call_args<'a>(code: &'a str, at: usize, pattern: &str) -> &'a str {
    let open = at + pattern.len() - 1;
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    for (off, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return &code[open + 1..off];
                }
            }
            _ => {}
        }
    }
    &code[open + 1..]
}

/// Scans one file's source text.
pub fn scan_source(name: &str, source: &str) -> Vec<Diagnostic> {
    let cleaned = clean_lines(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();

    let mut depth: i32 = 0;
    let mut skip_exit: Option<i32> = None;
    let mut cfg_test_pending = false;

    // Per-function state, reset at each `fn` item.
    let mut fn_name = String::new();
    let mut synced: BTreeSet<String> = BTreeSet::new();
    let mut renamed_to: BTreeSet<String> = BTreeSet::new();
    let mut critical_vars: BTreeSet<String> = BTreeSet::new();
    let mut snapshot_committed = false;
    // Active `if <recv>.<sync>().is_err()` guard: receiver and the depth
    // to drop back to when its block closes.
    let mut retry_guard: Option<(String, i32)> = None;

    for (idx, clean) in cleaned.iter().enumerate() {
        let lineno = idx + 1;
        let code = clean.code.as_str();
        let raw = raw_lines.get(idx).copied().unwrap_or("");
        let prev = if idx > 0 { raw_lines[idx - 1] } else { "" };
        let allow = raw.contains("analyze: allow(dur") || prev.contains("analyze: allow(dur");
        let loc = format!("{name}:{lineno}");
        let trimmed = code.trim();

        let depth_before = depth;
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }

        // ---- test-module skipping -------------------------------------
        if let Some(exit) = skip_exit {
            if depth <= exit {
                skip_exit = None;
            }
            continue;
        }
        if trimmed.contains("#[cfg(test)]") {
            cfg_test_pending = true;
        }
        if cfg_test_pending && !trimmed.is_empty() && !trimmed.contains("#[cfg(test)]") && !trimmed.starts_with("#[") {
            cfg_test_pending = false;
            if depth > depth_before {
                skip_exit = Some(depth_before);
            }
            continue;
        }

        // ---- function boundary: reset intraprocedural state -----------
        if let Some(fpos) = code.find("fn ") {
            let legit = fpos == 0 || !is_ident_char(code.as_bytes()[fpos - 1] as char);
            if legit {
                let after = &code[fpos + 3..];
                let end = after.find(|c: char| !is_ident_char(c)).unwrap_or(after.len());
                fn_name = after[..end].to_string();
                synced.clear();
                renamed_to.clear();
                critical_vars.clear();
                snapshot_committed = false;
                retry_guard = None;
            }
        }

        // ---- track critical-record bindings ---------------------------
        if trimmed.starts_with("let ") {
            if let Some(eq) = code.find('=') {
                let rhs = &code[eq + 1..];
                if CRITICAL_RECORDS.iter().any(|r| rhs.contains(&format!("Record::{r}"))) {
                    let lhs = code[..eq].trim().trim_start_matches("let ").trim_start_matches("mut ").trim();
                    let end = lhs.find(|c: char| !is_ident_char(c)).unwrap_or(lhs.len());
                    if end > 0 {
                        critical_vars.insert(lhs[..end].to_string());
                    }
                }
            }
        }

        // ---- DUR001: critical record reaches append_nosync ------------
        let mut search = 0;
        while let Some(rel) = code[search..].find(".append_nosync(") {
            let at = search + rel;
            search = at + 15;
            let args = call_args(code, at, ".append_nosync(");
            let inline = CRITICAL_RECORDS.iter().find(|r| args.contains(&format!("Record::{r}")));
            let via_var = tokens(args).map(|(_, t)| t).find(|t| critical_vars.contains(*t));
            if let Some(class) = inline.map(|r| (*r).to_string()).or_else(|| via_var.map(String::from)) {
                if !allow {
                    out.push(
                        Diagnostic::new(
                            LintId::UnsyncedCriticalRecord,
                            loc.clone(),
                            format!("externally-visible record `{class}` is appended without fsync (`append_nosync`)"),
                            "route it through `append_synced` so the decision survives a crash",
                        )
                        .with_classes(vec![class]),
                    );
                }
            }
        }

        // ---- sync/rename protocol tracking ----------------------------
        let mut search = 0;
        while let Some(rel) = code[search..].find(".sync(") {
            let at = search + rel;
            search = at + 6;
            let args = call_args(code, at, ".sync(");
            let tok = arg_token(split_args(args).first().copied().unwrap_or(""));
            if !tok.is_empty() {
                synced.insert(tok);
            }
        }

        let mut search = 0;
        while let Some(rel) = code[search..].find("rename(") {
            let at = search + rel;
            search = at + 7;
            let before = code[..at].chars().next_back();
            if matches!(before, Some(c) if is_ident_char(c)) {
                continue; // part of a longer identifier
            }
            // A `fn rename(..)` signature or the vfs primitive's own body
            // is the protocol's implementation, not a use of it.
            if code[..at].contains("fn ") || fn_name == "rename" {
                continue;
            }
            let parts_owned = call_args(code, at, "rename(").to_string();
            let parts = split_args(&parts_owned);
            let from = arg_token(parts.first().copied().unwrap_or(""));
            let to = arg_token(parts.get(1).copied().unwrap_or(""));
            if !from.is_empty() && !synced.contains(&from) && !allow {
                out.push(
                    Diagnostic::new(
                        LintId::RenameBeforeSync,
                        loc.clone(),
                        format!("`{from}` is renamed into place without an fsync in this function"),
                        "follow the commit protocol: write temp, `sync` it, then `rename`",
                    )
                    .with_classes(vec![from.clone()]),
                );
            }
            if !to.is_empty() {
                renamed_to.insert(to);
            }
            snapshot_committed = true;
        }

        if code.contains("write_snapshot(") {
            snapshot_committed = true;
        }

        // ---- DUR003: direct write to a committed path -----------------
        for pat in [".truncate(", ".append("] {
            let mut search = 0;
            while let Some(rel) = code[search..].find(pat) {
                let at = search + rel;
                search = at + pat.len();
                if pat == ".append(" && code[at..].starts_with(".append_") {
                    continue;
                }
                let args = call_args(code, at, pat);
                let tok = arg_token(split_args(args).first().copied().unwrap_or(""));
                if !tok.is_empty() && renamed_to.contains(&tok) && !allow {
                    out.push(
                        Diagnostic::new(
                            LintId::DirectCommitWrite,
                            loc.clone(),
                            format!("direct write to `{tok}`, a path this function installs by rename"),
                            "committed files are immutable; write a temp file and rename it over",
                        )
                        .with_classes(vec![tok.clone()]),
                    );
                }
            }
        }

        // ---- DUR004: WAL compaction before any snapshot commit --------
        if code.contains("Wal::create(") && !snapshot_committed && !allow {
            out.push(Diagnostic::new(
                LintId::CompactionBeforeSnapshot,
                loc.clone(),
                "WAL compaction (`Wal::create`) with no earlier snapshot commit in this function",
                "write and rename the snapshot first; only then is the WAL redundant",
            ));
        }

        // ---- DUR006: failed sync retried on the same handle -----------
        // Expire the guard once its block has closed (`}` also covers the
        // `} else {` line — the else branch is the *failure* path, not a
        // retry site).
        if matches!(retry_guard, Some((_, exit)) if depth_before <= exit || trimmed.starts_with('}')) {
            retry_guard = None;
        }
        if let Some((recv, pat)) = sync_call_on(code) {
            let call = pat.trim_matches(['.', '(']);
            let retry_while = trimmed.starts_with("while ") && code.contains(".is_err()");
            let retry_in_guard = matches!(&retry_guard, Some((g, _)) if *g == recv);
            if (retry_while || retry_in_guard) && !allow {
                out.push(
                    Diagnostic::new(
                        LintId::SyncRetriedOnPoisonedHandle,
                        loc.clone(),
                        format!("failed `{recv}.{call}()` is retried on the same handle"),
                        "a failed fsync may have dropped the dirty pages (fsyncgate); \
                         reopen and rewrite instead of re-syncing",
                    )
                    .with_classes(vec![recv.clone()]),
                );
            }
            if trimmed.starts_with("if ") && code.contains(".is_err()") && depth > depth_before {
                retry_guard = Some((recv, depth_before));
            }
        }

        // ---- DUR005: discarded sync-class results ---------------------
        if let Some(dpos) = code.find("let _ =").or_else(|| code.find("let _:")) {
            if let Some(call) = SYNC_CALLS.iter().find(|p| code[dpos..].contains(**p)) {
                if !allow {
                    out.push(Diagnostic::new(
                        LintId::IgnoredSyncResult,
                        loc.clone(),
                        format!("sync-class result (`{}`) discarded with `let _ =`", call.trim_matches(['.', '('])),
                        "propagate or handle the error; a failed fsync is lost durability",
                    ));
                }
            }
        }
    }
    out
}

/// Scans a set of in-memory sources (used by the golden tests).
pub fn scan_sources(files: &[(&str, &str)]) -> Vec<Diagnostic> {
    files.iter().flat_map(|(name, source)| scan_source(name, source)).collect()
}

/// Recursively scans every `.rs` file under the given roots.
pub fn scan_paths(roots: &[PathBuf]) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for root in roots {
        collect_rs(root, &mut files)?;
    }
    files.sort();
    let mut out = Vec::new();
    for f in files {
        let source = fs::read_to_string(&f)?;
        out.extend(scan_source(&f.display().to_string(), &source));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lints(src: &str) -> Vec<LintId> {
        scan_source("fixture.rs", src).into_iter().map(|d| d.lint).collect()
    }

    #[test]
    fn critical_record_to_append_nosync_is_flagged_inline_and_via_binding() {
        let inline = "fn f(&self) { self.store.append_nosync(&Record::CrpConsumed { id, n }); }";
        assert_eq!(lints(inline), vec![LintId::UnsyncedCriticalRecord]);
        let via_var = "fn f(&self) {\n    let rec = Record::StatusChanged { id, status };\n    self.store.append_nosync(&rec);\n}\n";
        assert_eq!(lints(via_var), vec![LintId::UnsyncedCriticalRecord]);
        // Synced appends and non-critical records are clean.
        assert!(lints("fn f(&self) { self.store.append_synced(&Record::Meta { h }); }").is_empty());
        assert!(lints("fn f(&self) { self.store.append_nosync(&Record::SessionClosed { id }); }").is_empty());
    }

    #[test]
    fn rename_without_sync_is_flagged() {
        let bad = "fn commit(&self) {\n    self.vfs.truncate(tmp, &bytes)?;\n    self.vfs.rename(tmp, path)?;\n}\n";
        assert_eq!(lints(bad), vec![LintId::RenameBeforeSync]);
        let good = "fn commit(&self) {\n    self.vfs.truncate(tmp, &bytes)?;\n    self.vfs.sync(tmp)?;\n    self.vfs.rename(tmp, path)?;\n}\n";
        assert!(lints(good).is_empty());
        // The vfs primitive's own implementation is not a protocol use.
        let primitive = "fn rename(&self, from: &str, to: &str) -> Result<(), StoreError> {\n    fs::rename(self.abs(from), self.abs(to))\n}\n";
        assert!(lints(primitive).is_empty());
    }

    #[test]
    fn direct_write_to_committed_path_is_flagged() {
        let bad = "fn f(&self) {\n    self.vfs.sync(tmp)?;\n    self.vfs.rename(tmp, path)?;\n    self.vfs.truncate(path, &bytes)?;\n}\n";
        assert_eq!(lints(bad), vec![LintId::DirectCommitWrite]);
        let good = "fn f(&self) {\n    self.vfs.sync(tmp)?;\n    self.vfs.rename(tmp, path)?;\n    self.vfs.truncate(tmp, &bytes)?;\n}\n";
        assert!(lints(good).is_empty());
    }

    #[test]
    fn compaction_requires_a_prior_snapshot_commit() {
        let bad = "fn f(&self) {\n    let wal = Wal::create(vfs, &wal_path)?;\n}\n";
        assert_eq!(lints(bad), vec![LintId::CompactionBeforeSnapshot]);
        let good = "fn f(&self) {\n    write_snapshot(&*vfs, &state, &tmp, &path)?;\n    let wal = Wal::create(vfs, &wal_path)?;\n}\n";
        assert!(lints(good).is_empty());
    }

    #[test]
    fn discarded_sync_results_are_flagged_and_pins_respected() {
        assert_eq!(lints("fn f(&self) { let _ = self.store.flush(); }"), vec![LintId::IgnoredSyncResult]);
        assert_eq!(lints("fn f(&self) { let _ = file.sync_all(); }"), vec![LintId::IgnoredSyncResult]);
        assert!(lints("fn f(&self) { let _ = self.store.flush(); // analyze: allow(dur: shutdown path)\n}").is_empty());
        assert!(lints("fn f(&self) { self.store.flush()?; }").is_empty());
    }

    #[test]
    fn sync_retry_on_the_same_handle_is_flagged() {
        let while_loop = "fn f(&self) {\n    while self.wal.sync().is_err() {\n        backoff();\n    }\n}\n";
        assert_eq!(lints(while_loop), vec![LintId::SyncRetriedOnPoisonedHandle]);
        let guard = "fn f(&self) {\n    if self.wal.sync().is_err() {\n        self.wal.sync()?;\n    }\n}\n";
        assert_eq!(lints(guard), vec![LintId::SyncRetriedOnPoisonedHandle]);
        // Reopening (or syncing a different handle) is the correct recovery.
        let reopen = "fn f(&self) {\n    if self.wal.sync().is_err() {\n        self.reopen()?;\n        self.journal.sync()?;\n    }\n}\n";
        assert!(lints(reopen).is_empty());
        // A sync after the guard's block has closed is a fresh operation.
        let after = "fn f(&self) {\n    if self.wal.sync().is_err() {\n        return Err(e);\n    }\n    self.wal.sync()?;\n}\n";
        assert!(lints(after).is_empty());
        let pinned =
            "fn f(&self) {\n    // analyze: allow(dur: bounded retry against a remounted fs)\n    while self.wal.sync().is_err() {}\n}\n";
        assert!(lints(pinned).is_empty());
    }

    #[test]
    fn test_modules_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(&self) { let _ = s.flush(); }\n}\n";
        assert!(lints(src).is_empty());
    }
}
