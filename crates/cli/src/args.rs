//! Minimal flag parser (no external dependencies).
//!
//! Supports `--key value` and `--flag` forms; every subcommand declares its
//! accepted keys so typos fail loudly instead of being ignored.

use std::collections::HashMap;

/// Parsed flags of one subcommand invocation.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `argv` (after the subcommand), accepting only the listed
    /// value keys and boolean flags.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first unknown or malformed argument.
    pub fn parse(argv: &[String], value_keys: &[&str], bool_keys: &[&str]) -> Result<Args, String> {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got `{arg}`"))?;
            if bool_keys.contains(&key) {
                out.flags.push(key.to_string());
                i += 1;
            } else if value_keys.contains(&key) {
                let value = argv.get(i + 1).ok_or_else(|| format!("--{key} needs a value"))?;
                out.values.insert(key.to_string(), value.clone());
                i += 2;
            } else {
                return Err(format!("unknown argument `--{key}`"));
            }
        }
        Ok(out)
    }

    /// String value of `key`, or `default`.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.values.get(key).map(String::as_str).unwrap_or(default)
    }

    /// Required string value.
    ///
    /// # Errors
    ///
    /// Returns a message if the key is missing.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required --{key}"))
    }

    /// Numeric value of `key`, or `default`.
    ///
    /// # Errors
    ///
    /// Returns a message if the value does not parse.
    pub fn num_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: cannot parse `{v}`")),
        }
    }

    /// Whether a boolean flag was given.
    pub fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_values_and_flags() {
        let a = Args::parse(&argv("--width 32 --verbose --out x.bin"), &["width", "out"], &["verbose"]).unwrap();
        assert_eq!(a.get_or("width", "16"), "32");
        assert_eq!(a.require("out").unwrap(), "x.bin");
        assert!(a.has("verbose"));
        assert!(!a.has("quiet"));
        assert_eq!(a.num_or("width", 0usize).unwrap(), 32);
    }

    #[test]
    fn rejects_unknown_keys() {
        assert!(Args::parse(&argv("--bogus 1"), &["width"], &[]).unwrap_err().contains("bogus"));
        assert!(Args::parse(&argv("loose"), &["width"], &[]).unwrap_err().contains("--flag"));
        assert!(Args::parse(&argv("--width"), &["width"], &[])
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(&[], &["n"], &[]).unwrap();
        assert_eq!(a.num_or("n", 7u32).unwrap(), 7);
        assert!(a.require("n").is_err());
    }
}
